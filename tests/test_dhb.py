"""Tests for the DHB dynamic matrix (including property-based model checks)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import COOMatrix, DHBMatrix, DHBRow

from tests.conftest import random_dense


class TestDHBRow:
    def test_insert_get_delete(self):
        row = DHBRow(np.dtype(np.float64))
        assert row.insert_or_assign(5, 1.0)
        assert not row.insert_or_assign(5, 2.0)  # overwrite
        assert row.get(5) == pytest.approx(2.0)
        assert row.contains(5)
        assert row.delete(5)
        assert not row.delete(5)
        assert not row.contains(5)
        assert len(row) == 0

    def test_combine_on_existing(self):
        row = DHBRow(np.dtype(np.float64))
        row.insert_or_assign(2, 1.0)
        row.insert_or_assign(2, 3.0, combine=np.add)
        assert row.get(2) == pytest.approx(4.0)

    def test_growth_keeps_entries(self):
        row = DHBRow(np.dtype(np.float64), capacity=2)
        for col in range(50):
            row.insert_or_assign(col, float(col))
        assert len(row) == 50
        assert row.grow_count >= 1
        cols, vals = row.as_arrays()
        assert set(cols.tolist()) == set(range(50))
        assert all(vals[i] == cols[i] for i in range(50))

    def test_swap_delete_keeps_index_consistent(self):
        row = DHBRow(np.dtype(np.float64))
        for col in (1, 2, 3, 4):
            row.insert_or_assign(col, float(col))
        row.delete(2)
        for col in (1, 3, 4):
            assert row.get(col) == pytest.approx(float(col))

    def test_from_arrays_lazy_index(self):
        row = DHBRow.from_arrays(np.array([3, 7, 9]), np.array([1.0, 2.0, 3.0]))
        assert row.index is None  # lazy until first point access
        assert row.get(7) == pytest.approx(2.0)
        assert row.index is not None
        assert row.get_slot(9) == 2


class TestDHBMatrix:
    def test_single_entry_operations(self):
        mat = DHBMatrix((5, 5))
        assert mat.insert(1, 2, 3.0)
        assert not mat.insert(1, 2, 4.0)  # overwrite, no new nnz
        assert mat.get(1, 2) == pytest.approx(4.0)
        assert mat.nnz == 1
        assert mat.contains(1, 2)
        assert mat.delete(1, 2)
        assert mat.nnz == 0
        assert not mat.delete(1, 2)
        assert mat.get(1, 2) == 0.0

    def test_out_of_bounds_raises(self):
        mat = DHBMatrix((3, 3))
        with pytest.raises(IndexError):
            mat.insert(3, 0, 1.0)
        with pytest.raises(IndexError):
            mat.get(0, 3)
        with pytest.raises(IndexError):
            mat.insert_batch([0], [7], [1.0])

    def test_bulk_build_matches_dense(self):
        dense = random_dense(20, 20, 0.3, seed=1)
        rows, cols = np.nonzero(dense)
        mat = DHBMatrix((20, 20))
        created = mat.insert_batch(rows, cols, dense[rows, cols], combine=PLUS_TIMES.plus)
        assert created == len(rows)
        assert np.allclose(mat.to_dense(), dense)

    def test_batch_additive_combination(self):
        mat = DHBMatrix((4, 4))
        mat.insert_batch([0, 0, 1], [1, 1, 2], [1.0, 2.0, 5.0], combine=PLUS_TIMES.plus)
        assert mat.get(0, 1) == pytest.approx(3.0)
        assert mat.get(1, 2) == pytest.approx(5.0)
        # second batch hits existing entries
        mat.insert_batch([0], [1], [4.0], combine=PLUS_TIMES.plus)
        assert mat.get(0, 1) == pytest.approx(7.0)

    def test_batch_overwrite_last_wins(self):
        mat = DHBMatrix((4, 4))
        mat.insert_batch([0, 0], [1, 1], [1.0, 9.0], combine=None)
        assert mat.get(0, 1) == pytest.approx(9.0)

    def test_add_merge_mask_updates(self):
        dense = random_dense(10, 10, 0.3, seed=3)
        mat = DHBMatrix.from_dense(dense)
        update = COOMatrix((10, 10), [0, 1], [0, 1], [5.0, 7.0])
        mat.add_update(update)
        expected = dense.copy()
        expected[0, 0] += 5.0
        expected[1, 1] += 7.0
        assert np.allclose(mat.to_dense(), expected)

        mat.merge_update(COOMatrix((10, 10), [0], [0], [-1.0]))
        expected[0, 0] = -1.0
        assert np.allclose(mat.to_dense(), expected)

        deleted = mat.mask_update(COOMatrix((10, 10), [0, 9], [0, 9], [1.0, 1.0]))
        expected[0, 0] = 0.0
        if dense[9, 9] != 0:
            expected[9, 9] = 0.0
        assert np.allclose(mat.to_dense(), expected)
        assert deleted >= 1

    def test_update_shape_mismatch_raises(self):
        mat = DHBMatrix((4, 4))
        with pytest.raises(ValueError, match="shape"):
            mat.add_update(COOMatrix.empty((5, 5)))

    def test_update_semiring_mismatch_raises(self):
        mat = DHBMatrix((4, 4))
        with pytest.raises(ValueError, match="semiring"):
            mat.add_update(COOMatrix.empty((4, 4), MIN_PLUS))

    def test_min_plus_add_update_takes_minimum(self):
        mat = DHBMatrix((3, 3), MIN_PLUS)
        mat.insert(0, 1, 5.0)
        mat.add_update(COOMatrix((3, 3), [0, 1], [1, 2], [9.0, 4.0], MIN_PLUS))
        assert mat.get(0, 1) == pytest.approx(5.0)  # min(5, 9)
        assert mat.get(1, 2) == pytest.approx(4.0)

    def test_conversions_round_trip(self):
        dense = random_dense(12, 9, 0.25, seed=5)
        mat = DHBMatrix.from_dense(dense)
        assert np.allclose(mat.to_csr().to_dense(), dense)
        assert np.allclose(mat.to_dcsr().to_dense(), dense)
        assert np.allclose(mat.copy().to_dense(), dense)
        assert np.allclose(DHBMatrix.from_csr(mat.to_csr()).to_dense(), dense)

    def test_row_arrays_and_iter_rows(self):
        dense = random_dense(7, 7, 0.4, seed=7)
        mat = DHBMatrix.from_dense(dense)
        cols, vals = mat.row_arrays(0)
        assert set(cols.tolist()) == set(np.nonzero(dense[0])[0].tolist())
        rows_seen = [i for i, _c, _v in mat.iter_rows()]
        assert rows_seen == sorted(rows_seen)
        empty_cols, empty_vals = DHBMatrix((3, 3)).row_arrays(1)
        assert empty_cols.size == 0 and empty_vals.size == 0

    def test_reserve_batch_counts_growth(self):
        mat = DHBMatrix((10, 10))
        mat.insert_batch(np.arange(10), np.arange(10), np.ones(10), combine=None)
        grows = mat.reserve_batch(np.zeros(50, dtype=np.int64))
        assert grows >= 0  # growth counting is best-effort but non-negative
        assert mat.nnz == 10

    def test_scattered_path_after_bulk_build(self):
        dense = random_dense(30, 30, 0.2, seed=11)
        rows, cols = np.nonzero(dense)
        mat = DHBMatrix((30, 30))
        mat.insert_batch(rows, cols, dense[rows, cols], combine=PLUS_TIMES.plus)
        # a scattered follow-up batch (one entry per row)
        extra_rows = np.arange(30, dtype=np.int64)
        extra_cols = np.full(30, 2, dtype=np.int64)
        extra_vals = np.ones(30)
        mat.insert_batch(extra_rows, extra_cols, extra_vals, combine=PLUS_TIMES.plus)
        expected = dense.copy()
        expected[:, 2] += 1.0
        assert np.allclose(mat.to_dense(), expected)

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "overwrite"]),
                st.integers(0, 7),
                st.integers(0, 7),
                st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            ),
            min_size=0,
            max_size=60,
        )
    )
    def test_property_matches_dict_model(self, ops):
        """Arbitrary interleavings of point operations match a dict model."""
        mat = DHBMatrix((8, 8))
        model: dict[tuple[int, int], float] = {}
        for op, i, j, v in ops:
            if op == "insert":
                mat.insert(i, j, v, combine=PLUS_TIMES.plus)
                model[(i, j)] = model.get((i, j), 0.0) + v
            elif op == "overwrite":
                mat.insert(i, j, v, combine=None)
                model[(i, j)] = v
            else:
                mat.delete(i, j)
                model.pop((i, j), None)
        assert mat.nnz == len(model)
        for (i, j), v in model.items():
            assert mat.get(i, j) == pytest.approx(v)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), density=st.floats(0.05, 0.5))
    def test_property_bulk_build_equals_scattered_build(self, seed, density):
        dense = random_dense(15, 15, density, seed=seed)
        rows, cols = np.nonzero(dense)
        vals = dense[rows, cols]
        bulk = DHBMatrix((15, 15))
        bulk.insert_batch(rows, cols, vals, combine=PLUS_TIMES.plus)
        scattered = DHBMatrix((15, 15))
        for r, c, v in zip(rows, cols, vals):
            scattered.insert(int(r), int(c), v, combine=PLUS_TIMES.plus)
        assert bulk.nnz == scattered.nnz
        assert np.allclose(bulk.to_dense(), scattered.to_dense())


class TestDuplicateCombineSemantics:
    """The vectorised path must reproduce the per-element baseline for
    arbitrary combiners over duplicate (row, col) keys (it used to
    pre-fold duplicate groups, which computes ``combine(existing,
    fold(v1..vk))`` instead of ``fold(combine(existing, v1)..vk)``)."""

    @staticmethod
    def _run(strategy, combine):
        mat = DHBMatrix((4, 4))
        mat.insert_batch([1, 2], [1, 2], [10.0, 20.0])
        # three duplicates of (1, 1) plus a duplicate pair on a new key
        created = mat.insert_batch(
            [1, 1, 3, 1, 3],
            [1, 1, 0, 1, 0],
            [1.0, 2.0, 5.0, 3.0, 7.0],
            lambda a, b: a - 2.0 * b,
            strategy=strategy,
        )
        return mat, created

    def test_vectorized_matches_per_element_for_noncommutative_combine(self):
        ref, created_ref = self._run("per_element", lambda a, b: a - 2.0 * b)
        got, created_got = self._run("vectorized", lambda a, b: a - 2.0 * b)
        assert created_ref == created_got
        assert np.array_equal(ref.to_dense(), got.to_dense())
        # sequential fold: ((((10-2·1)-2·2)-2·3) = -2, (5-2·7) = -9
        assert ref.get(1, 1) == -2.0
        assert got.get(1, 1) == -2.0
        assert got.get(3, 0) == -9.0

    def test_arbitrary_combine_reroutes_to_per_element_loop(self):
        from repro.perf import PerfRecorder, use_recorder

        mat = DHBMatrix((4, 4))
        mat.insert_batch([0], [0], [1.0])
        rec = PerfRecorder()
        with use_recorder(rec):
            mat.insert_batch(
                [0, 0], [0, 0], [1.0, 2.0], lambda a, b: a - b, strategy="vectorized"
            )
        assert rec.counters.get("dhb.insert.path_combine_fallback") == 1
