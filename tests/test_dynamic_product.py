"""End-to-end tests for the high-level DynamicProduct API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicDistMatrix, DynamicProduct, ProcessGrid, SimMPI, UpdateBatch
from repro.semirings import MIN_PLUS, PLUS_TIMES, SemiringError

from tests.conftest import dist_from_dense, random_dense


def _batch_from_dense(shape, dense_update, p, semiring=PLUS_TIMES, kind="insert", seed=0):
    rows, cols = np.nonzero(~semiring.is_zero(dense_update))
    vals = dense_update[rows, cols]
    return UpdateBatch.from_global(
        shape, rows, cols, vals, p, kind=kind, semiring=semiring, seed=seed
    )


class TestDynamicProductAlgebraic:
    def test_repeated_insertions_stay_consistent(self, comm16, grid16):
        n = 20
        a0 = random_dense(n, n, 0.1, seed=1)
        b0 = random_dense(n, n, 0.2, seed=2)
        prod = DynamicProduct(
            comm16,
            grid16,
            dist_from_dense(comm16, grid16, a0),
            dist_from_dense(comm16, grid16, b0),
        )
        current_a, current_b = a0.copy(), b0.copy()
        for step in range(3):
            delta = random_dense(n, n, 0.04, seed=10 + step)
            outcome = prod.apply_updates(
                a_batch=_batch_from_dense((n, n), delta, 16, seed=step)
            )
            current_a = current_a + delta
            assert outcome.algorithm == "algebraic"
            assert np.allclose(prod.c.to_dense(), current_a @ current_b)
        assert prod.check_consistency()

    def test_updates_on_both_operands(self, comm16, grid16):
        n = 16
        a0 = random_dense(n, n, 0.15, seed=3)
        b0 = random_dense(n, n, 0.15, seed=4)
        prod = DynamicProduct(
            comm16,
            grid16,
            dist_from_dense(comm16, grid16, a0),
            dist_from_dense(comm16, grid16, b0),
        )
        delta_a = random_dense(n, n, 0.05, seed=5)
        delta_b = random_dense(n, n, 0.05, seed=6)
        prod.apply_updates(
            a_batch=_batch_from_dense((n, n), delta_a, 16, seed=7),
            b_batch=_batch_from_dense((n, n), delta_b, 16, seed=8),
        )
        assert np.allclose(prod.c.to_dense(), (a0 + delta_a) @ (b0 + delta_b))
        assert prod.check_consistency()

    def test_noop_and_empty_updates(self, comm16, grid16):
        n = 10
        prod = DynamicProduct(
            comm16,
            grid16,
            dist_from_dense(comm16, grid16, random_dense(n, n, 0.2, seed=9)),
            dist_from_dense(comm16, grid16, random_dense(n, n, 0.2, seed=10)),
        )
        before = prod.c.to_dense()
        outcome = prod.apply_updates()
        assert outcome.algorithm == "noop"
        assert np.allclose(prod.c.to_dense(), before)

    def test_algebraic_mode_rejects_deletions(self, comm16, grid16):
        n = 10
        prod = DynamicProduct(
            comm16,
            grid16,
            dist_from_dense(comm16, grid16, random_dense(n, n, 0.2, seed=11)),
            dist_from_dense(comm16, grid16, random_dense(n, n, 0.2, seed=12)),
        )
        batch = UpdateBatch.from_global(
            (n, n), np.array([0]), np.array([0]), np.array([1.0]), 16, kind="delete"
        )
        with pytest.raises(SemiringError):
            prod.apply_updates(a_batch=batch)

    def test_validation_errors(self, comm16, grid16):
        n = 10
        a = dist_from_dense(comm16, grid16, random_dense(n, n, 0.2, seed=13))
        b = dist_from_dense(comm16, grid16, random_dense(n, n, 0.2, seed=14))
        with pytest.raises(ValueError, match="distinct objects"):
            DynamicProduct(comm16, grid16, a, a)
        with pytest.raises(ValueError, match="mode"):
            DynamicProduct(comm16, grid16, a, b, mode="bogus")
        prod = DynamicProduct(comm16, grid16, a, b)
        bad_shape = UpdateBatch.from_global(
            (n + 1, n + 1), np.array([0]), np.array([0]), np.array([1.0]), 16
        )
        with pytest.raises(ValueError, match="shape"):
            prod.apply_updates(a_batch=bad_shape)
        bad_semiring = UpdateBatch.from_global(
            (n, n), np.array([0]), np.array([0]), np.array([1.0]), 16, semiring=MIN_PLUS
        )
        with pytest.raises(ValueError, match="semiring"):
            prod.apply_updates(a_batch=bad_semiring)

    def test_mismatched_inner_dimensions(self, comm16, grid16):
        a = DynamicDistMatrix.empty(comm16, grid16, (8, 9))
        b = DynamicDistMatrix.empty(comm16, grid16, (10, 8))
        with pytest.raises(ValueError, match="inner dimensions"):
            DynamicProduct(comm16, grid16, a, b)


class TestDynamicProductGeneral:
    def test_min_plus_update_and_delete_sequence(self, comm16, grid16):
        n = 18
        a0 = random_dense(n, n, 0.2, MIN_PLUS, seed=21)
        b0 = random_dense(n, n, 0.2, MIN_PLUS, seed=22)
        prod = DynamicProduct(
            comm16,
            grid16,
            dist_from_dense(comm16, grid16, a0, MIN_PLUS),
            dist_from_dense(comm16, grid16, b0, MIN_PLUS),
            semiring=MIN_PLUS,
            mode="general",
        )
        current = a0.copy()
        rng = np.random.default_rng(23)
        # weight increases (not expressible as min-additions)
        nz = np.argwhere(~np.isinf(current))
        sel = nz[rng.choice(len(nz), size=8, replace=False)]
        new_vals = rng.random(len(sel)) + 5.0
        batch = UpdateBatch.from_global(
            (n, n), sel[:, 0], sel[:, 1], new_vals, 16,
            kind="update", semiring=MIN_PLUS, seed=1,
        )
        prod.apply_updates(a_batch=batch)
        for (r, c), v in zip(sel, new_vals):
            current[r, c] = v
        assert np.allclose(
            prod.c.to_dense(), MIN_PLUS.dense_matmul(current, b0), equal_nan=True
        )
        # deletions
        nz = np.argwhere(~np.isinf(current))
        sel = nz[rng.choice(len(nz), size=6, replace=False)]
        batch = UpdateBatch.from_global(
            (n, n), sel[:, 0], sel[:, 1], np.zeros(len(sel)), 16,
            kind="delete", semiring=MIN_PLUS, seed=2,
        )
        outcome = prod.apply_updates(a_batch=batch)
        assert outcome.algorithm == "general"
        for r, c in sel:
            current[r, c] = np.inf
        assert np.allclose(
            prod.c.to_dense(), MIN_PLUS.dense_matmul(current, b0), equal_nan=True
        )
        assert prod.check_consistency()

    def test_general_updates_on_right_operand(self, comm16, grid16):
        n = 14
        a0 = random_dense(n, n, 0.25, MIN_PLUS, seed=31)
        b0 = random_dense(n, n, 0.25, MIN_PLUS, seed=32)
        prod = DynamicProduct(
            comm16,
            grid16,
            dist_from_dense(comm16, grid16, a0, MIN_PLUS),
            dist_from_dense(comm16, grid16, b0, MIN_PLUS),
            semiring=MIN_PLUS,
            mode="general",
        )
        rng = np.random.default_rng(33)
        nz = np.argwhere(~np.isinf(b0))
        sel = nz[rng.choice(len(nz), size=7, replace=False)]
        batch = UpdateBatch.from_global(
            (n, n), sel[:, 0], sel[:, 1], np.zeros(len(sel)), 16,
            kind="delete", semiring=MIN_PLUS, seed=3,
        )
        prod.apply_updates(b_batch=batch)
        current_b = b0.copy()
        for r, c in sel:
            current_b[r, c] = np.inf
        assert np.allclose(
            prod.c.to_dense(), MIN_PLUS.dense_matmul(a0, current_b), equal_nan=True
        )

    def test_result_coo_and_reference(self, comm16, grid16):
        n = 12
        a0 = random_dense(n, n, 0.2, seed=41)
        b0 = random_dense(n, n, 0.2, seed=42)
        prod = DynamicProduct(
            comm16,
            grid16,
            dist_from_dense(comm16, grid16, a0),
            dist_from_dense(comm16, grid16, b0),
        )
        assert np.allclose(prod.result_coo().to_dense(), a0 @ b0)
        assert np.allclose(prod.recompute_reference().to_dense(), a0 @ b0)
        assert prod.shape == (n, n)
