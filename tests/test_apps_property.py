"""Property, edge-case and determinism tests for the application layer.

Three groups, mirroring the SpGEMM property suite's oracle style:

* **Properties** — a random graph plus a random update sequence: the
  incremental :class:`DynamicTriangleCounter` must equal
  :func:`count_triangles_reference` after every batch, and
  :class:`DynamicMultiSourceShortestPaths` must equal the NetworkX Dijkstra
  reference (and, bit-for-bit, the dense min-plus reference) after every
  round — replayed through the scenario engine across all four local
  layouts.
* **Edge cases** — empty graphs, self-loops, duplicate edges within one
  batch, deleting absent edges and contraction with empty clusters, for
  each app entry point.
* **Determinism** — app global reductions must be byte-identical across
  world sizes: :func:`repro.apps.rank_ordered_sum` sums per-rank partials
  in canonical rank order, which the regression test pins against the
  process-grouped fold that *does* drift with the launch geometry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ProcessGrid, SimMPI
from repro.apps import (
    DynamicMultiSourceShortestPaths,
    DynamicTriangleCounter,
    contract_graph,
    count_triangles_reference,
    distances_to_tuples,
    rank_ordered_sum,
    sssp_minplus_reference,
    sssp_reference,
)
from repro.distributed import DynamicDistMatrix, UpdateBatch
from repro.graphs import erdos_renyi_edges
from repro.runtime import MPIBackend
from repro.runtime.loopback import run_spmd
from repro.scenarios import (
    REPLAY_LAYOUTS,
    road_churn_sssp,
    replay,
    social_triangle_stream,
)

N_RANKS = 4


def _comm_grid() -> tuple[SimMPI, ProcessGrid]:
    return SimMPI(N_RANKS), ProcessGrid(N_RANKS)


def _unique_undirected(n: int, count: int, rng) -> tuple[np.ndarray, np.ndarray]:
    src = rng.integers(0, n, size=4 * count)
    dst = rng.integers(0, n, size=4 * count)
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    _, first = np.unique(lo * n + hi, return_index=True)
    first.sort()
    return lo[first][:count].astype(np.int64), hi[first][:count].astype(np.int64)


# ----------------------------------------------------------------------
# properties: random graph + random update sequence vs the references
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 17, 29])
def test_triangle_counter_tracks_reference_over_random_stream(seed):
    comm, grid = _comm_grid()
    n = 24
    rng = np.random.default_rng(seed)
    rows, cols = _unique_undirected(n, 80, rng)
    counter = DynamicTriangleCounter(comm, grid, n, rows[:20], cols[:20], seed=seed)
    inserted_r, inserted_c = rows[:20], cols[:20]
    for b in range(4):
        sel = slice(20 + b * 15, 20 + (b + 1) * 15)
        counter.insert_edges(rows[sel], cols[sel], seed=seed + b)
        inserted_r = np.concatenate([inserted_r, rows[sel]])
        inserted_c = np.concatenate([inserted_c, cols[sel]])
        assert counter.triangle_count() == count_triangles_reference(
            n, inserted_r, inserted_c
        )
    assert counter.verify()


@pytest.mark.parametrize("seed", [5, 23])
def test_sssp_tracks_references_over_random_churn(seed):
    comm, grid = _comm_grid()
    n = 20
    rng = np.random.default_rng(seed)
    src, dst = erdos_renyi_edges(n, 120, seed=seed)
    weights = rng.uniform(1.0, 4.0, src.size)
    sources = np.array([0, n // 2])
    app = DynamicMultiSourceShortestPaths(comm, grid, n, src, dst, weights, sources)
    edges = {
        (int(i), int(j)): float(w) for i, j, w in zip(src, dst, weights)
    }
    for r in range(3):
        present = sorted(edges)
        idx = rng.choice(len(present), size=min(8, len(present)), replace=False)
        chosen = [present[i] for i in idx]
        new_w = rng.uniform(0.5, 8.0, len(chosen))
        for p, w in zip(chosen, new_w):
            edges[p] = float(w)
        arr = np.asarray(chosen, dtype=np.int64)
        app.update_edges(arr[:, 0], arr[:, 1], new_w, seed=seed + r)
        drop = [present[i] for i in rng.choice(len(present), size=4, replace=False)]
        for p in drop:
            edges.pop(p, None)
        arr = np.asarray(drop, dtype=np.int64)
        app.delete_edges(arr[:, 0], arr[:, 1], seed=seed + 10 + r)
        assert app.verify_one_hop()
        er = np.asarray([p[0] for p in sorted(edges)], dtype=np.int64)
        ec = np.asarray([p[1] for p in sorted(edges)], dtype=np.int64)
        ew = np.asarray([edges[p] for p in sorted(edges)])
        got = app.full_distances()
        # bit-compatible dense min-plus reference: exact match
        assert np.array_equal(
            np.nan_to_num(got, posinf=1e300),
            np.nan_to_num(
                sssp_minplus_reference(n, er, ec, ew, sources), posinf=1e300
            ),
        )
        # independent Dijkstra oracle: match up to float tolerance
        assert np.allclose(
            np.nan_to_num(got, posinf=1e18),
            np.nan_to_num(sssp_reference(n, er, ec, ew, sources), posinf=1e18),
            rtol=1e-9,
        )


@pytest.mark.parametrize("layout", REPLAY_LAYOUTS)
def test_app_scenarios_replay_identically_across_layouts(layout):
    """The app executor's query payloads do not depend on the layout knob."""
    for scenario_fn in (social_triangle_stream, road_churn_sssp):
        scenario = scenario_fn(seed=7)
        result = replay(scenario, backend="sim", n_ranks=N_RANKS, layout=layout)
        reference = replay(scenario, backend="sim", n_ranks=N_RANKS, layout="csr")
        assert result.truncated_at is None
        assert len(result.app_results) == len(reference.app_results) > 0
        for got, want in zip(result.app_results, reference.app_results):
            if isinstance(want.payload, tuple):
                for g, w in zip(got.payload, want.payload):
                    assert np.array_equal(g, w)
            else:
                assert got.payload == want.payload


def test_triangle_scenarios_reject_non_insert_steps_at_construction():
    """An invalid triangle trace fails fast, not mid-replay."""
    from repro.scenarios import AppSpec, DeleteBatch, InsertBatch, Scenario

    edge = (np.array([0]), np.array([1]), np.ones(1))
    with pytest.raises(ValueError, match="only insert steps"):
        Scenario(
            name="bad",
            shape=(4, 4),
            steps=[InsertBatch(*edge), DeleteBatch(*edge)],
            app=AppSpec(name="triangle"),
        )


def test_road_churn_generator_survives_small_vertex_counts():
    """The unique-pair pool of a small graph can undershoot the requested
    initial size; the generator must shrink the initial graph instead of
    emitting mismatched initial tuples (regression)."""
    for n in (6, 8):
        scenario = road_churn_sssp(n=n, seed=3)
        rows, cols, values = scenario.initial_tuples
        assert rows.size == cols.size == values.size
        result = replay(scenario, backend="sim", n_ranks=N_RANKS)
        assert result.truncated_at is None
        assert len(result.app_results) == 2


# ----------------------------------------------------------------------
# edge cases
# ----------------------------------------------------------------------
class TestTriangleEdgeCases:
    def test_empty_graph_counts_zero(self):
        comm, grid = _comm_grid()
        empty = np.empty(0, dtype=np.int64)
        counter = DynamicTriangleCounter(comm, grid, 8, empty, empty)
        assert counter.triangle_count() == 0
        assert counter.insert_edges(empty, empty) == 0
        assert counter.triangle_count() == 0

    def test_self_loops_are_dropped(self):
        comm, grid = _comm_grid()
        counter = DynamicTriangleCounter(
            comm, grid, 6, np.array([0, 1, 2]), np.array([0, 1, 2])
        )
        assert counter.adjacency.nnz() == 0
        inserted = counter.insert_edges(np.array([3, 4]), np.array([3, 4]))
        assert inserted == 0 and counter.triangle_count() == 0

    def test_duplicate_edges_in_batch_count_once(self):
        comm, grid = _comm_grid()
        empty = np.empty(0, dtype=np.int64)
        counter = DynamicTriangleCounter(comm, grid, 5, empty, empty)
        # the same triangle named twice, once with reversed orientation
        rows = np.array([0, 1, 2, 0, 1, 2])
        cols = np.array([1, 2, 0, 1, 2, 0])
        inserted = counter.insert_edges(rows, cols)
        assert inserted == 6  # 3 undirected edges = 6 directed non-zeros
        assert counter.triangle_count() == 1
        assert counter.verify()

    def test_reinserting_present_edges_is_a_noop(self):
        comm, grid = _comm_grid()
        counter = DynamicTriangleCounter(
            comm, grid, 5, np.array([0, 1, 2]), np.array([1, 2, 0])
        )
        assert counter.insert_edges(np.array([1, 0]), np.array([0, 1])) == 0
        assert counter.triangle_count() == 1


class TestSsspEdgeCases:
    def _app(self, n=10, sources=(0,)):
        comm, grid = _comm_grid()
        empty = np.empty(0, dtype=np.int64)
        return DynamicMultiSourceShortestPaths(
            comm, grid, n, empty, empty, np.empty(0), np.asarray(sources)
        )

    def test_empty_graph_reaches_only_sources(self):
        app = self._app(sources=(2, 5))
        src, vertex, dist = app.distance_tuples()
        assert src.tolist() == [0, 1]
        assert vertex.tolist() == [2, 5]
        assert dist.tolist() == [0.0, 0.0]

    def test_deleting_nonexistent_edge_is_noop(self):
        app = self._app()
        app.update_edges(np.array([0, 1]), np.array([1, 2]), np.array([1.0, 2.0]))
        before = distances_to_tuples(app.full_distances())
        app.delete_edges(np.array([5, 0]), np.array([6, 7]))
        assert app.adjacency.nnz() == 2
        after = distances_to_tuples(app.full_distances())
        for b, a in zip(before, after):
            assert np.array_equal(b, a)
        assert app.verify_one_hop()

    def test_duplicate_edges_in_batch_last_write_wins(self):
        app = self._app()
        app.update_edges(
            np.array([0, 0]), np.array([1, 1]), np.array([9.0, 2.0])
        )
        assert app.adjacency.nnz() == 1
        assert app.adjacency.get(0, 1) == 2.0

    def test_self_loop_does_not_change_distances(self):
        app = self._app()
        app.update_edges(np.array([0]), np.array([1]), np.array([3.0]))
        before = distances_to_tuples(app.full_distances())
        app.update_edges(np.array([1]), np.array([1]), np.array([7.0]))
        after = distances_to_tuples(app.full_distances())
        for b, a in zip(before, after):
            assert np.array_equal(b, a)


class TestContractionEdgeCases:
    def _adjacency(self, n, rows, cols, values=None):
        comm, grid = _comm_grid()
        values = values if values is not None else np.ones(len(rows))
        batch = UpdateBatch.from_global(
            (n, n),
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            N_RANKS,
            seed=1,
        )
        adjacency = DynamicDistMatrix.from_tuples(
            comm, grid, (n, n), batch.tuples_per_rank, combine="last"
        )
        return comm, grid, adjacency

    def test_empty_graph_contracts_to_empty(self):
        comm, grid, adjacency = self._adjacency(6, [], [])
        coarse = contract_graph(comm, grid, adjacency, np.zeros(6, dtype=np.int64))
        assert coarse.nnz == 0

    def test_empty_clusters_leave_empty_rows(self):
        # 4 vertices all in cluster 0 of 3 declared clusters: clusters 1, 2
        # exist but stay empty in the contracted graph
        comm, grid, adjacency = self._adjacency(4, [0, 1, 2], [1, 2, 3])
        coarse = contract_graph(
            comm, grid, adjacency, np.zeros(4, dtype=np.int64), n_clusters=3
        )
        assert coarse.shape == (3, 3)
        assert coarse.rows.tolist() == [0] and coarse.cols.tolist() == [0]
        assert coarse.values.tolist() == [3.0]

    def test_self_loops_can_be_dropped(self):
        comm, grid, adjacency = self._adjacency(4, [0, 1, 2], [1, 0, 3])
        clusters = np.array([0, 0, 1, 1])
        with_loops = contract_graph(comm, grid, adjacency, clusters)
        dropped = contract_graph(
            comm, grid, adjacency, clusters, drop_self_loops=True
        )
        assert with_loops.nnz == 2  # (0,0) weight 2 and (1,1) weight 1
        assert dropped.nnz == 0


# ----------------------------------------------------------------------
# determinism of app global reductions across world sizes
# ----------------------------------------------------------------------
class TestRankOrderedReduction:
    #: per-rank float partials whose process-grouped accumulation differs
    #: between world sizes (1e16 absorbs unit-scale addends one at a time,
    #: but not a pre-summed group of them)
    PARTIALS = {r: (1e16 if r % 2 == 0 else 1.5) for r in range(16)}

    def _grouped(self, world: int) -> float:
        """The naive fold: per-process sums, folded in process order."""
        total = 0.0
        for proc in range(world):
            local = 0.0
            for rank in range(proc, 16, world):
                local += self.PARTIALS[rank]
            total += local
        return total

    def test_process_grouped_fold_depends_on_world_size(self):
        """The bug class being guarded against actually exists."""
        assert self._grouped(2) != self._grouped(1)

    def test_rank_ordered_sum_is_byte_identical_across_worlds(self):
        reference = rank_ordered_sum(SimMPI(16), self.PARTIALS)
        assert reference == self._grouped(1)  # canonical rank order
        for world in (1, 2, 4):

            def program(comm_obj, world_rank):
                comm = MPIBackend(16, comm=comm_obj)
                local = {r: self.PARTIALS[r] for r in comm.owned_ranks()}
                return rank_ordered_sum(comm, local)

            for value in run_spmd(world, program):
                assert value == reference

    def test_triangle_wedge_weight_uses_rank_order(self):
        """End-to-end: the closed-wedge sum is identical across worlds."""
        rng = np.random.default_rng(11)
        rows, cols = _unique_undirected(12, 30, rng)

        def program(comm_obj, world_rank):
            comm = MPIBackend(N_RANKS, comm=comm_obj)
            grid = ProcessGrid(N_RANKS)
            counter = DynamicTriangleCounter(comm, grid, 12, rows, cols)
            return counter.closed_wedge_weight()

        reference = DynamicTriangleCounter(
            *_comm_grid(), 12, rows, cols
        ).closed_wedge_weight()
        for world in (1, 2, 4):
            for value in run_spmd(world, program):
                assert value == reference
