"""Unit tests for the scenario model, generator library and replay driver."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runtime import make_communicator
from repro.scenarios import (
    CompetitorExecutor,
    DeleteBatch,
    InsertBatch,
    Scenario,
    ScenarioCheckError,
    SnapshotCheck,
    SpGEMMStep,
    bursty_skewed_stream,
    grow_from_empty,
    library_scenarios,
    mixed_update_multiply,
    replay,
    sliding_window,
    steady_state_churn,
)
from repro.bench.workloads import (
    batched_operation_scenario,
    construction_scenario,
    prepare_instance,
    spawn_batch_seeds,
    spgemm_stream_scenario,
)


class TestModel:
    def test_step_validates_lengths(self):
        with pytest.raises(ValueError):
            InsertBatch(np.arange(3), np.arange(2), np.ones(3))

    def test_spgemm_step_validates_mode(self):
        with pytest.raises(ValueError):
            SpGEMMStep(np.arange(2), np.arange(2), np.ones(2), mode="bogus")

    def test_scenario_rejects_out_of_bounds_steps(self):
        step = InsertBatch(np.array([5]), np.array([1]), np.ones(1))
        with pytest.raises(ValueError):
            Scenario(name="bad", shape=(4, 4), steps=[step])

    def test_partition_seeds_are_assigned_and_deterministic(self):
        def build(seed):
            return Scenario(
                name="s",
                shape=(8, 8),
                steps=[
                    InsertBatch(np.array([1]), np.array([2]), np.ones(1)),
                    InsertBatch(np.array([3]), np.array([4]), np.ones(1)),
                ],
                seed=seed,
            )

        a, b, c = build(7), build(7), build(8)
        seeds_a = [s.partition_seed for s in a.steps]
        seeds_b = [s.partition_seed for s in b.steps]
        seeds_c = [s.partition_seed for s in c.steps]
        assert all(s is not None for s in seeds_a)
        assert seeds_a == seeds_b
        assert seeds_a != seeds_c
        assert a.construct_seed == b.construct_seed

    def test_explicit_partition_seed_is_kept(self):
        step = InsertBatch(np.array([1]), np.array([2]), np.ones(1), partition_seed=99)
        Scenario(name="s", shape=(8, 8), steps=[step], seed=0)
        assert step.partition_seed == 99

    def test_per_rank_matches_partitioning(self):
        step = InsertBatch(
            np.arange(10), np.arange(10), np.ones(10), partition_seed=5
        )
        Scenario(name="s", shape=(16, 16), steps=[step])
        split = step.per_rank(4)
        assert sorted(split) == [0, 1, 2, 3]
        total = sum(r.size for r, _c, _v in split.values())
        assert total == 10

    def test_describe_counts_steps(self):
        scenario = grow_from_empty(seed=1)
        described = scenario.describe()
        assert described["steps"]["insert"] > 0
        assert described["steps"]["snapshot"] > 0
        json.dumps(described)  # JSON-friendly


class TestGenerators:
    @pytest.mark.parametrize(
        "generator",
        [
            grow_from_empty,
            steady_state_churn,
            sliding_window,
            bursty_skewed_stream,
            mixed_update_multiply,
        ],
    )
    def test_same_seed_same_trace(self, generator):
        a, b = generator(seed=11), generator(seed=11)
        assert a.n_steps == b.n_steps
        for sa, sb in zip(a.update_steps(), b.update_steps()):
            assert np.array_equal(sa.rows, sb.rows)
            assert np.array_equal(sa.cols, sb.cols)
            assert np.array_equal(sa.values, sb.values)
            assert sa.partition_seed == sb.partition_seed

    def test_different_seeds_differ(self):
        a, b = grow_from_empty(seed=1), grow_from_empty(seed=2)
        first_a = next(iter(a.update_steps()))
        first_b = next(iter(b.update_steps()))
        assert not (
            np.array_equal(first_a.rows, first_b.rows)
            and np.array_equal(first_a.cols, first_b.cols)
        )

    def test_library_has_five_distinct_scenarios(self):
        scenarios = library_scenarios(seed=0)
        assert len(scenarios) >= 5
        assert len({s.name for s in scenarios}) == len(scenarios)

    def test_sliding_window_expires_batches(self):
        scenario = sliding_window(seed=3, window=2, n_batches=5, batch=20)
        result = replay(scenario, backend="sim", n_ranks=4)
        # only the last `window` insert batches survive
        assert result.final_a[0].size == 2 * scenario.metadata["batch"]

    def test_churn_keeps_size_stationary(self):
        scenario = steady_state_churn(seed=3)
        initial_nnz = scenario.initial_tuples[0].size
        result = replay(scenario, backend="sim", n_ranks=4)
        assert result.final_a[0].size == initial_nnz

    def test_mixed_update_multiply_verifies_product(self):
        scenario = mixed_update_multiply(seed=3)
        result = replay(scenario, backend="sim", n_ranks=4)
        assert result.final_c is not None
        assert result.final_c[0].size > 0


class TestReplay:
    def test_snapshot_mismatch_raises(self):
        steps = [
            InsertBatch(np.array([1, 2]), np.array([3, 4]), np.ones(2)),
            SnapshotCheck(expect_nnz=99, label="wrong"),
        ]
        scenario = Scenario(name="s", shape=(8, 8), steps=steps)
        with pytest.raises(ScenarioCheckError, match="wrong"):
            replay(scenario, backend="sim", n_ranks=4)

    def test_check_snapshots_false_skips_evaluation(self):
        steps = [
            InsertBatch(np.array([1, 2]), np.array([3, 4]), np.ones(2)),
            SnapshotCheck(expect_nnz=99),
        ]
        scenario = Scenario(name="s", shape=(8, 8), steps=steps)
        result = replay(scenario, backend="sim", n_ranks=4, check_snapshots=False)
        assert result.final_a[0].size == 2

    def test_invalid_layout_rejected(self):
        scenario = grow_from_empty(seed=0)
        with pytest.raises(ValueError, match="layout"):
            replay(scenario, backend="sim", n_ranks=4, layout="bogus")

    def test_native_and_ours_backend_agree(self):
        """The competitor wrapper of our own backend matches native replay."""
        scenario = sliding_window(seed=9)
        native = replay(scenario, backend="sim", n_ranks=4)
        ours = replay(
            scenario,
            backend="sim",
            n_ranks=4,
            executor_factory=CompetitorExecutor.factory("ours"),
        )
        assert np.array_equal(native.final_a[0], ours.final_a[0])
        assert np.array_equal(native.final_a[1], ours.final_a[1])
        assert np.allclose(native.final_a[2], ours.final_a[2])

    def test_unsupported_operation_truncates(self):
        """PETSc cannot delete: the replay truncates at the delete step."""
        steps = [
            InsertBatch(np.array([1, 2]), np.array([3, 4]), np.ones(2)),
            DeleteBatch(np.array([1]), np.array([3]), np.ones(1)),
            InsertBatch(np.array([5]), np.array([6]), np.ones(1)),
        ]
        scenario = Scenario(name="s", shape=(8, 8), steps=steps)
        result = replay(
            scenario,
            backend="sim",
            n_ranks=4,
            executor_factory=CompetitorExecutor.factory("petsc"),
            collect_final=False,
        )
        assert result.truncated_at == 1
        assert [s.supported for s in result.steps] == [True, False]
        assert len(result.measured_steps()) == 1

    def test_spgemm_requires_b_tuples(self):
        steps = [SpGEMMStep(np.array([1]), np.array([2]), np.ones(1))]
        scenario = Scenario(name="s", shape=(8, 8), steps=steps)
        with pytest.raises(ValueError, match="b_tuples"):
            replay(scenario, backend="sim", n_ranks=4)

    def test_result_as_dict_is_json_serialisable(self):
        result = replay(grow_from_empty(seed=0), backend="sim", n_ranks=4)
        payload = json.loads(json.dumps(result.as_dict(), default=float))
        assert payload["scenario"] == "grow_from_empty"
        assert payload["applied_counts"]["insert"] > 0

    def test_reused_communicator(self):
        """Replays can share one communicator; stats diffs stay per-replay."""
        comm = make_communicator("sim", n_ranks=4)
        first = replay(grow_from_empty(seed=0), comm=comm)
        second = replay(grow_from_empty(seed=0), comm=comm)
        assert first.comm_signature() == second.comm_signature()


class TestWorkloadScenarios:
    @pytest.fixture(scope="class")
    def workload(self):
        return prepare_instance("LiveJournal", scale_divisor=65536, seed=7)

    def test_spawn_batch_seeds_are_independent(self):
        a = [s.generate_state(1)[0] for s in spawn_batch_seeds(17, 3)]
        b = [s.generate_state(1)[0] for s in spawn_batch_seeds(18, 3)]
        assert len(set(a) | set(b)) == 6  # no shared streams across seeds

    def test_insert_scenario_preloads_half(self, workload):
        scenario = batched_operation_scenario(
            workload, "insert", n_batches=2, batch_total=16, seed=17
        )
        assert scenario.initial_tuples[0].size == workload.nnz // 2
        assert all(s.kind == "insert" for s in scenario.update_steps())

    def test_delete_scenario_draws_disjoint_batches(self, workload):
        scenario = batched_operation_scenario(
            workload, "delete", n_batches=3, batch_total=8, seed=17
        )
        seen: set[tuple[int, int]] = set()
        for step in scenario.update_steps():
            coords = {(int(i), int(j)) for i, j in zip(step.rows, step.cols)}
            assert not (coords & seen)
            seen |= coords

    def test_update_scenario_preloads_full_matrix(self, workload):
        scenario = batched_operation_scenario(
            workload, "update", n_batches=2, batch_total=8, seed=17
        )
        assert scenario.initial_tuples[0].size == workload.nnz
        assert all(s.kind == "update" for s in scenario.update_steps())

    def test_spgemm_scenario_modes(self, workload):
        algebraic = spgemm_stream_scenario(
            workload, n_batches=2, batch_total=8, mode="algebraic", seed=79
        )
        general = spgemm_stream_scenario(
            workload,
            n_batches=2,
            batch_total=8,
            mode="general",
            kind="update",
            semiring_name="min_plus",
            seed=101,
        )
        assert algebraic.has_spgemm and not algebraic.has_general_spgemm
        assert general.has_general_spgemm
        assert general.semiring_name == "min_plus"
        r = replay(general, backend="sim", n_ranks=4, collect_final=True)
        assert r.final_c is not None

    def test_construction_scenario_times_construction(self, workload):
        scenario = construction_scenario(
            "c", (workload.n, workload.n), workload.all_tuples(), seed=53
        )
        result = replay(scenario, backend="sim", n_ranks=4, collect_final=False)
        assert result.steps[0].kind == "construct"
        assert result.steps[0].seconds > 0
