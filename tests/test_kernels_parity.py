"""Parity and selection tests for the optional compiled kernel tier.

The compiled kernels in :mod:`repro.sparse.kernels` are designed to be
**byte-identical** to the pure-Python oracles they shadow — same tuples,
same bloom bitfields, same created-counts, same deterministic perf
counters (only the ``kernels.tier_*`` selection counters may differ).
This suite pins that contract:

* tier selection (``REPRO_KERNEL_TIER`` and per-call ``kernel_tier=``):
  typos raise :class:`ValueError` naming the allowed set, ``compiled``
  without numba raises :class:`RuntimeError`, an *explicit* ``auto``
  without numba warns exactly once, an unset environment stays silent;
* rowwise and masked SpGEMM parity across every standard semiring, all
  four local layouts and adversarial operand structures (empty rows,
  hotspot inner columns, negative zeros, fully empty operands);
* SPA bulk-load parity and DHB batch-insert parity (three-way against
  the per-element baseline, including non-commutative combiners);
* a scenario-differential leg replaying a generator-library scenario
  under ``REPRO_KERNEL_TIER=compiled`` on the sim and (emulated) mpi
  backends across loopback world sizes 1/2/4.

numba is not required: the tests monkeypatch
``repro.sparse.kernels.tier.numba_available`` so the compiled dispatch
path runs even when the jitted cores execute as plain Python through the
identity ``njit`` shim — the *code path* under test is the same either
way, only its speed differs.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sparse.kernels.tier as tiermod
from repro.perf import PerfRecorder, use_recorder
from repro.runtime import MPIBackend
from repro.runtime.loopback import run_spmd
from repro.scenarios import SCENARIO_GENERATORS, replay
from repro.semirings import (
    BOOLEAN,
    MAX_MIN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    PLUS_TIMES,
)
from repro.sparse import (
    CSRMatrix,
    DCSRMatrix,
    DHBMatrix,
    SparseAccumulator,
    pattern_row_index,
    spgemm_local,
    spgemm_local_masked,
)
from repro.sparse.kernels import (
    KERNEL_TIER_ENV_VAR,
    KERNEL_TIERS,
    resolve_kernel_tier,
)
from repro.sparse.kernels.spgemm import compiled_supported

from tests.conftest import random_dense

ALL_SEMIRINGS = [PLUS_TIMES, MIN_PLUS, MAX_PLUS, BOOLEAN, MAX_MIN, MAX_TIMES]
LAYOUTS = ["coo", "csr", "dcsr", "dhb"]

_MAKERS = {
    "coo": lambda d, s: CSRMatrix.from_dense(d, s).to_coo(),
    "csr": CSRMatrix.from_dense,
    "dcsr": DCSRMatrix.from_dense,
    "dhb": DHBMatrix.from_dense,
}


@pytest.fixture
def fake_numba(monkeypatch):
    """Pretend numba is importable so the compiled dispatch path runs.

    Without numba the jitted cores execute as plain Python via the
    identity ``njit`` shim; parity is unaffected.
    """
    monkeypatch.setattr(tiermod, "numba_available", lambda: True)
    monkeypatch.delenv(KERNEL_TIER_ENV_VAR, raising=False)


@pytest.fixture
def no_numba(monkeypatch):
    """Force the numba-absent view regardless of the host environment."""
    monkeypatch.setattr(tiermod, "numba_available", lambda: False)
    monkeypatch.setattr(tiermod, "_warned_auto_fallback", False)
    monkeypatch.delenv(KERNEL_TIER_ENV_VAR, raising=False)


# ----------------------------------------------------------------------
# tier selection (REPRO_KERNEL_TIER / kernel_tier=)
# ----------------------------------------------------------------------
class TestTierSelection:
    def test_valid_env_values_resolve(self, fake_numba, monkeypatch):
        for raw, expected in [
            ("python", "python"),
            ("compiled", "compiled"),
            ("auto", "compiled"),
        ]:
            monkeypatch.setenv(KERNEL_TIER_ENV_VAR, raw)
            assert resolve_kernel_tier() == expected

    def test_env_value_is_normalised(self, fake_numba, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "  Compiled\t")
        assert resolve_kernel_tier() == "compiled"

    def test_env_typo_raises_naming_allowed_set(self, fake_numba, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "fastest")
        with pytest.raises(ValueError, match=r"'python', 'compiled' or 'auto'"):
            resolve_kernel_tier()

    def test_override_typo_raises_naming_allowed_set(self, fake_numba):
        with pytest.raises(ValueError, match=r"kernel_tier='jit'"):
            resolve_kernel_tier("jit")

    def test_override_wins_over_env(self, fake_numba, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "python")
        assert resolve_kernel_tier("compiled") == "compiled"
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "compiled")
        assert resolve_kernel_tier("python") == "python"

    def test_compiled_without_numba_raises(self, no_numba, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "compiled")
        with pytest.raises(RuntimeError, match="requires numba"):
            resolve_kernel_tier()
        with pytest.raises(RuntimeError, match="requires numba"):
            resolve_kernel_tier("compiled")

    def test_unset_env_is_silent_auto(self, no_numba):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel_tier() == "python"

    def test_explicit_auto_without_numba_warns_once(self, no_numba, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "auto")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_kernel_tier() == "python"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel_tier() == "python"
            assert resolve_kernel_tier("auto") == "python"

    def test_kernel_tier_typo_raises_at_entry_points(self, fake_numba):
        a = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError, match="kernel_tier"):
            spgemm_local(a, a, PLUS_TIMES, use_scipy=False, kernel_tier="nope")
        with pytest.raises(ValueError, match="kernel_tier"):
            spgemm_local_masked(a, a, PLUS_TIMES, {}, kernel_tier="nope")
        with pytest.raises(ValueError, match="kernel_tier"):
            DHBMatrix((3, 3)).insert_batch(
                [0], [0], [1.0], strategy="vectorized", kernel_tier="native"
            )

    def test_selection_is_counted_per_site(self, fake_numba):
        a = CSRMatrix.from_dense(np.eye(4))
        rec = PerfRecorder()
        with use_recorder(rec):
            spgemm_local(a, a, PLUS_TIMES, use_scipy=False, kernel_tier="compiled")
            spgemm_local(a, a, PLUS_TIMES, use_scipy=False, kernel_tier="python")
        assert rec.counters["kernels.tier_compiled"] == 1
        assert rec.counters["kernels.tier_compiled.spgemm_rowwise"] == 1
        assert rec.counters["kernels.tier_python"] == 1
        assert rec.counters["kernels.tier_python.spgemm_rowwise"] == 1

    def test_tier_tuple_is_the_documented_set(self):
        assert KERNEL_TIERS == ("python", "compiled", "auto")


# ----------------------------------------------------------------------
# adversarial operand generators
# ----------------------------------------------------------------------
def _neg_zero_ok(semiring) -> bool:
    """Whether ``±0.0`` are storable values (not the structural zero)."""
    return not bool(np.asarray(semiring.is_zero(np.array([-0.0])))[0])


def _adversarial_dense(semiring, seed, kind, n, m):
    """Dense operand with the requested adversarial structure."""
    rng = np.random.default_rng(seed)
    if kind == "empty":
        return np.full((n, m), semiring.zero)
    mask = rng.random((n, m)) < 0.35
    if kind == "empty_rows":
        # knock out a third of the rows entirely
        mask[rng.choice(n, size=max(1, n // 3), replace=False), :] = False
    elif kind == "hotspot":
        # two dense inner columns force heavy ⊕-collisions per output
        mask[:, : min(2, m)] = True
    vals = rng.random((n, m)) + 0.1
    if semiring is BOOLEAN:
        vals = np.ones((n, m))
    elif kind == "neg_zero" and _neg_zero_ok(semiring):
        signed = np.where(rng.random((n, m)) < 0.5, -0.0, 0.0)
        vals = np.where(rng.random((n, m)) < 0.4, signed, vals)
    return np.where(mask, vals, semiring.zero)


ADVERSARIAL_KINDS = ["plain", "empty_rows", "hotspot", "neg_zero", "empty"]


def _assert_coo_identical(a, b, *, what: str) -> None:
    assert np.array_equal(a.rows, b.rows), f"{what}: rows differ"
    assert np.array_equal(a.cols, b.cols), f"{what}: cols differ"
    same = (a.values == b.values) | (np.isnan(a.values) & np.isnan(b.values))
    assert bool(np.all(same)), f"{what}: values differ"
    # ±0.0 must match bit-for-bit, not just by == (which treats them equal)
    assert np.array_equal(
        np.signbit(a.values), np.signbit(b.values)
    ), f"{what}: value signs differ"


def _assert_counters_match(rec_a: PerfRecorder, rec_b: PerfRecorder, *, what: str):
    """Deterministic counters must agree; tier-selection counters differ."""
    keep = lambda d: {k: v for k, v in d.items() if not k.startswith("kernels.")}
    assert keep(rec_a.counters) == keep(rec_b.counters), f"{what}: counters differ"


# ----------------------------------------------------------------------
# rowwise SpGEMM parity
# ----------------------------------------------------------------------
class TestSpgemmParity:
    def test_every_standard_semiring_has_a_compiled_core(self):
        for semiring in ALL_SEMIRINGS:
            assert compiled_supported(semiring), semiring.name

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_rowwise_byte_identical(self, fake_numba, semiring, layout):
        for kind in ADVERSARIAL_KINDS:
            for seed in (0, 1):
                a_d = _adversarial_dense(semiring, seed, kind, 13, 11)
                b_d = _adversarial_dense(semiring, seed + 100, kind, 11, 9)
                a = _MAKERS[layout](a_d, semiring)
                b = _MAKERS["dcsr" if kind == "hotspot" else "csr"](b_d, semiring)
                for compute_bloom in (False, True):
                    results, recs = [], []
                    for tier in ("python", "compiled"):
                        rec = PerfRecorder()
                        with use_recorder(rec):
                            out = spgemm_local(
                                a,
                                b,
                                semiring,
                                use_scipy=False,
                                compute_bloom=compute_bloom,
                                inner_offset=3 * seed,
                                kernel_tier=tier,
                            )
                        results.append(out)
                        recs.append(rec)
                    (r_py, bl_py), (r_c, bl_c) = results
                    what = f"{semiring.name}/{layout}/{kind}/bloom={compute_bloom}"
                    _assert_coo_identical(r_py, r_c, what=what)
                    assert bl_py == bl_c, f"{what}: bloom differs"
                    _assert_counters_match(recs[0], recs[1], what=what)

    @pytest.mark.parametrize(
        "semiring", [PLUS_TIMES, MIN_PLUS, BOOLEAN], ids=lambda s: s.name
    )
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_masked_byte_identical(self, fake_numba, semiring, layout):
        for seed in range(4):
            a_d = _adversarial_dense(semiring, seed, "hotspot", 12, 10)
            b_d = _adversarial_dense(semiring, seed + 50, "plain", 10, 9)
            mask_d = _adversarial_dense(semiring, seed + 99, "empty_rows", 12, 9)
            a = _MAKERS[layout](a_d, semiring)
            b = _MAKERS["csr"](b_d, semiring)
            mask_rows = pattern_row_index(CSRMatrix.from_dense(mask_d, semiring))
            results, recs = [], []
            for tier in ("python", "compiled"):
                rec = PerfRecorder()
                with use_recorder(rec):
                    out = spgemm_local_masked(
                        a,
                        b,
                        semiring,
                        mask_rows,
                        compute_bloom=True,
                        inner_offset=seed,
                        kernel_tier=tier,
                    )
                results.append(out)
                recs.append(rec)
            (r_py, bl_py), (r_c, bl_c) = results
            what = f"masked/{semiring.name}/{layout}/seed={seed}"
            _assert_coo_identical(r_py, r_c, what=what)
            assert bl_py == bl_c, f"{what}: bloom differs"
            _assert_counters_match(recs[0], recs[1], what=what)

    def test_compiled_tier_via_environment(self, fake_numba, monkeypatch):
        a_d = random_dense(10, 8, 0.3, PLUS_TIMES, seed=5)
        b_d = random_dense(8, 7, 0.3, PLUS_TIMES, seed=6)
        a, b = CSRMatrix.from_dense(a_d), CSRMatrix.from_dense(b_d)
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "python")
        ref, _ = spgemm_local(a, b, PLUS_TIMES, use_scipy=False)
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "compiled")
        rec = PerfRecorder()
        with use_recorder(rec):
            got, _ = spgemm_local(a, b, PLUS_TIMES, use_scipy=False)
        _assert_coo_identical(ref, got, what="env-selected compiled tier")
        assert rec.counters["kernels.tier_compiled.spgemm_rowwise"] == 1


# ----------------------------------------------------------------------
# scipy fast-path clamping (forced use_scipy=True must stay safe)
# ----------------------------------------------------------------------
class _DuckRows:
    """Row-layout duck type with no ``to_scipy``/``to_csr`` conversion."""

    def __init__(self, csr: CSRMatrix) -> None:
        self.shape = csr.shape
        self.nnz = csr.nnz
        self._csr = csr

    def iter_rows(self):
        return self._csr.iter_rows()

    def row_arrays(self, i: int):
        return self._csr.row_arrays(i)


class TestScipyClamp:
    def test_forced_scipy_with_empty_operand_falls_back(self):
        a = CSRMatrix.from_dense(np.zeros((4, 3)))
        b = CSRMatrix.from_dense(np.ones((3, 2)))
        rec = PerfRecorder()
        with use_recorder(rec):
            result, _ = spgemm_local(a, b, PLUS_TIMES, use_scipy=True)
        assert result.nnz == 0
        assert "spgemm.scipy_calls" not in rec.counters
        assert rec.counters["spgemm.rowwise_calls"] == 1

    def test_forced_scipy_with_unconvertible_layout_falls_back(self):
        a = _DuckRows(CSRMatrix.from_dense(random_dense(5, 4, 0.5, seed=1)))
        b = CSRMatrix.from_dense(random_dense(4, 3, 0.5, seed=2))
        rec = PerfRecorder()
        with use_recorder(rec):
            result, _ = spgemm_local(a, b, PLUS_TIMES, use_scipy=True)
        ref, _ = spgemm_local(a._csr, b, PLUS_TIMES, use_scipy=False)
        _assert_coo_identical(ref, result, what="duck layout fallback")
        assert "spgemm.scipy_calls" not in rec.counters

    def test_forced_scipy_still_used_when_applicable(self):
        a = CSRMatrix.from_dense(random_dense(5, 4, 0.5, seed=3))
        b = CSRMatrix.from_dense(random_dense(4, 3, 0.5, seed=4))
        rec = PerfRecorder()
        with use_recorder(rec):
            spgemm_local(a, b, PLUS_TIMES, use_scipy=True)
        assert rec.counters["spgemm.scipy_calls"] == 1


# ----------------------------------------------------------------------
# SPA bulk-load parity
# ----------------------------------------------------------------------
class TestSpaParity:
    @pytest.mark.parametrize(
        "semiring", [PLUS_TIMES, MIN_PLUS, MAX_MIN], ids=lambda s: s.name
    )
    def test_bulk_load_byte_identical(self, fake_numba, monkeypatch, semiring):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            # heavy duplication: 60 terms over only 9 distinct columns
            cols = rng.integers(0, 9, size=60)
            vals = rng.random(60) + 0.1
            emitted = []
            for tier in ("python", "compiled"):
                monkeypatch.setenv(KERNEL_TIER_ENV_VAR, tier)
                acc = SparseAccumulator(semiring)
                acc.accumulate_scaled_row(1.0, cols, vals, bloom_bit=1 << seed)
                emitted.append(acc.emit())
            (c_py, v_py, b_py), (c_c, v_c, b_c) = emitted
            assert np.array_equal(c_py, c_c)
            assert np.array_equal(v_py, v_c)
            assert np.array_equal(b_py, b_c)


# ----------------------------------------------------------------------
# DHB batch-insert parity (incl. duplicate-combine semantics)
# ----------------------------------------------------------------------
def _seeded_dhb(seed: int, shape=(16, 12)) -> DHBMatrix:
    mat = DHBMatrix(shape)
    rng = np.random.default_rng(1000 + seed)
    k = 30
    mat.insert_batch(
        rng.integers(0, shape[0], size=k),
        rng.integers(0, shape[1], size=k),
        rng.random(k) + 0.1,
    )
    return mat


def _dup_batch(seed: int, shape=(16, 12), size=50):
    """A batch with many duplicate (row, col) keys and hotspot rows."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, max(2, shape[0] // 4), size=size)
    cols = rng.integers(0, shape[1], size=size)
    vals = rng.random(size) + 0.1
    return rows, cols, vals


def _dhb_state(mat: DHBMatrix):
    """Adjacency-ordered state: list of (row, cols-tuple, vals-tuple)."""
    return [(i, tuple(c.tolist()), tuple(v.tolist())) for i, c, v in mat.iter_rows()]


def _dhb_canonical(mat: DHBMatrix):
    """(row, col)-sorted tuples — strategy-independent canonical state."""
    coo = mat.to_coo().sort()
    return (
        tuple(coo.rows.tolist()),
        tuple(coo.cols.tolist()),
        tuple(coo.values.tolist()),
    )


class TestDHBParity:
    @pytest.mark.parametrize("combine_kind", ["overwrite", "plus", "noncommutative"])
    def test_three_way_strategy_parity(self, fake_numba, combine_kind):
        for seed in range(4):
            rows, cols, vals = _dup_batch(seed)
            variants = {}
            counters = {}
            for key, kwargs in [
                ("per_element", dict(strategy="per_element")),
                ("python", dict(strategy="vectorized", kernel_tier="python")),
                ("compiled", dict(strategy="vectorized", kernel_tier="compiled")),
            ]:
                mat = _seeded_dhb(seed)
                combine = {
                    "overwrite": None,
                    "plus": mat.semiring.plus,
                    "noncommutative": lambda a, b: a - 2.0 * b,
                }[combine_kind]
                rec = PerfRecorder()
                with use_recorder(rec):
                    created = mat.insert_batch(rows, cols, vals, combine, **kwargs)
                variants[key] = (mat, created)
                counters[key] = rec

            mat_pe, created_pe = variants["per_element"]
            mat_py, created_py = variants["python"]
            mat_c, created_c = variants["compiled"]
            assert created_pe == created_py == created_c
            assert mat_pe.nnz == mat_py.nnz == mat_c.nnz

            # compiled vs python vectorised: byte-identical, adjacency
            # order included, and identical deterministic counters
            assert _dhb_state(mat_py) == _dhb_state(mat_c)
            _assert_counters_match(
                counters["python"], counters["compiled"], what=f"dhb seed={seed}"
            )

            # vectorised vs the per-element baseline: the adjacency order
            # legitimately differs (batch order vs sorted order), so the
            # comparison is over canonical sorted tuples — exact except
            # for ``plus``, whose segmented reduceat is a documented
            # reassociation of the sequential fold
            canon_pe, canon_py = _dhb_canonical(mat_pe), _dhb_canonical(mat_py)
            if combine_kind == "plus":
                assert canon_pe[:2] == canon_py[:2]
                assert np.allclose(canon_pe[2], canon_py[2])
            else:
                assert canon_pe == canon_py

    def test_compiled_tier_grows_existing_rows_and_updates_index(self, fake_numba):
        mat = DHBMatrix((4, 64))
        mat.insert_batch([0, 0, 1], [3, 7, 5], [1.0, 2.0, 3.0])
        # large second batch on existing rows forces reserve+append misses
        cols = np.arange(40, dtype=np.int64)
        created = mat.insert_batch(
            np.zeros(40, dtype=np.int64),
            cols,
            np.arange(40, dtype=np.float64),
            None,
            strategy="vectorized",
            kernel_tier="compiled",
        )
        assert created == 38  # cols 3 and 7 already present
        ref = DHBMatrix((4, 64))
        ref.insert_batch([0, 0, 1], [3, 7, 5], [1.0, 2.0, 3.0])
        ref.insert_batch(
            np.zeros(40, dtype=np.int64),
            cols,
            np.arange(40, dtype=np.float64),
            None,
            strategy="vectorized",
            kernel_tier="python",
        )
        assert _dhb_state(mat) == _dhb_state(ref)

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 5),
                st.integers(0, 5),
                st.floats(
                    min_value=-8.0, max_value=8.0, allow_nan=False, width=32
                ),
            ),
            min_size=1,
            max_size=40,
        ),
        combine_kind=st.sampled_from(["overwrite", "noncommutative"]),
    )
    def test_duplicate_combine_pinned_by_hypothesis(self, data, combine_kind):
        """Per-element ≡ vectorised(python) ≡ vectorised(compiled) for
        last-write-wins and a non-commutative, non-associative combiner on
        batches dense with duplicate ``(row, col)`` keys."""
        rows = np.array([r for r, _, _ in data], dtype=np.int64)
        cols = np.array([c for _, c, _ in data], dtype=np.int64)
        vals = np.array([v for _, _, v in data], dtype=np.float64)
        states, adjacency, createds = [], [], []
        # hypothesis forbids function-scoped monkeypatch; swap by hand
        orig = tiermod.numba_available
        tiermod.numba_available = lambda: True
        try:
            for kwargs in (
                dict(strategy="per_element"),
                dict(strategy="vectorized", kernel_tier="python"),
                dict(strategy="vectorized", kernel_tier="compiled"),
            ):
                mat = DHBMatrix((6, 6))
                mat.insert_batch([0, 5], [0, 5], [0.5, 0.25])
                combine = None if combine_kind == "overwrite" else (
                    lambda a, b: a - 2.0 * b
                )
                createds.append(mat.insert_batch(rows, cols, vals, combine, **kwargs))
                states.append(_dhb_canonical(mat))
                adjacency.append(_dhb_state(mat))
        finally:
            tiermod.numba_available = orig
        assert createds[0] == createds[1] == createds[2]
        # canonical content identical across all three paths ...
        assert states[0] == states[1] == states[2]
        # ... and the two vectorised tiers are byte-identical including
        # the adjacency order
        assert adjacency[1] == adjacency[2]


# ----------------------------------------------------------------------
# scenario differential under REPRO_KERNEL_TIER=compiled
# ----------------------------------------------------------------------
class TestScenarioDifferential:
    GENERATOR = "mixed_update_multiply"
    SEED = 2022
    N_RANKS = 4

    @pytest.fixture(scope="class")
    def python_reference(self):
        scenario = SCENARIO_GENERATORS[self.GENERATOR](seed=self.SEED)
        return replay(scenario, backend="sim", n_ranks=self.N_RANKS, layout="csr")

    def _assert_matches(self, ref, got, *, what: str) -> None:
        for name, r_t, g_t in [("A", ref.final_a, got.final_a), ("C", ref.final_c, got.final_c)]:
            assert (r_t is None) == (g_t is None)
            if r_t is not None:
                assert np.array_equal(r_t[0], g_t[0]), f"{what}: {name} rows"
                assert np.array_equal(r_t[1], g_t[1]), f"{what}: {name} cols"
                assert np.array_equal(r_t[2], g_t[2]), f"{what}: {name} values"
        assert got.applied_counts == ref.applied_counts, what
        assert got.comm_signature() == ref.comm_signature(), what

    @pytest.mark.parametrize("backend", ["sim", "mpi"])
    def test_compiled_tier_matches_python_reference(
        self, fake_numba, monkeypatch, python_reference, backend
    ):
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "compiled")
        scenario = SCENARIO_GENERATORS[self.GENERATOR](seed=self.SEED)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            got = replay(scenario, backend=backend, n_ranks=self.N_RANKS, layout="csr")
        self._assert_matches(
            python_reference, got, what=f"compiled@{backend}"
        )

    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_compiled_tier_matches_across_loopback_worlds(
        self, fake_numba, monkeypatch, python_reference, world
    ):
        monkeypatch.setenv(KERNEL_TIER_ENV_VAR, "compiled")
        scenario = SCENARIO_GENERATORS[self.GENERATOR](seed=self.SEED)

        def program(comm_obj, world_rank):
            comm = MPIBackend(self.N_RANKS, comm=comm_obj)
            return replay(scenario, comm=comm, layout="csr")

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for result in run_spmd(world, program):
                self._assert_matches(
                    python_reference, result, what=f"compiled@world={world}"
                )
