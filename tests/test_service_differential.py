"""The service's correctness oracle: service state ≡ cold replay of its log.

Every tenant's request log is a real :class:`~repro.scenarios.Scenario`;
this suite drives tenants through mixed ingestion (micro-batched inserts,
value updates, deletions) interleaved with consistent-snapshot queries and
asserts — at **sampled flush points mid-trace, not just at the end** —
that a cold ``replay()`` of the log-so-far reproduces the live tenant
byte-identically:

* canonical final tuples of the maintained matrix,
* application query payloads (triangle counts, SSSP distances,
  contraction tuples),
* applied-update counts,
* per-category communication volume (messages and bytes) — possible
  because mid-trace result sampling uses only the uncharged control plane.

Legs: ``sim`` and (emulated) ``mpi`` across all four layouts, application
tenants, and threaded loopback worlds of size 1, 2 and 4 where the service
and the cold replay share one persistent multi-process world.  Under
``mpiexec`` the world legs run on the genuine ``MPI.COMM_WORLD``.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.runtime import ServiceWorld, world_size
from repro.runtime.loopback import run_spmd
from repro.scenarios import (
    AppSpec,
    REPLAY_LAYOUTS,
    ReplayOptions,
    Scenario,
    ScenarioResult,
    replay,
)
from repro.service import GraphService, GraphTenant, ServiceConfig

N = 48
SEED = 2022
BACKENDS = ("sim", "mpi")
WORLD_SIZES = (1, 2, 4)


def _quiet_replay(log: Scenario, options: ReplayOptions, comm=None) -> ScenarioResult:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return replay(log, options=options, comm=comm)


def _service(backend: str, layout: str = "csr", **kwargs) -> GraphService:
    config = ServiceConfig(
        replay=ReplayOptions(n_ranks=4, layout=layout), flush_max_requests=3
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return GraphService(backend=backend, config=config, **kwargs)


def _log_snapshot(tenant: GraphTenant) -> Scenario:
    """Freeze the request log at the current flush boundary.

    The live log keeps growing; the cold replay must see exactly the steps
    applied so far.
    """
    return replace(tenant.log, steps=list(tenant.log.steps))


def _assert_tuples_identical(a, b, *, what: str) -> None:
    assert np.array_equal(a[0], b[0]), f"{what}: row structure differs"
    assert np.array_equal(a[1], b[1]), f"{what}: column structure differs"
    assert np.array_equal(a[2], b[2]), f"{what}: values differ"


def _assert_oracle_holds(
    live: ScenarioResult, cold: ScenarioResult, *, what: str
) -> None:
    """The full byte-identity contract between service and cold replay."""
    _assert_tuples_identical(live.final_a, cold.final_a, what=f"{what}: A")
    assert (live.final_c is None) == (cold.final_c is None)
    if live.final_c is not None:
        _assert_tuples_identical(live.final_c, cold.final_c, what=f"{what}: C")
    assert live.applied_counts == cold.applied_counts, f"{what}: applied counts"
    assert live.comm_signature() == cold.comm_signature(), f"{what}: comm volume"
    assert len(live.app_results) == len(cold.app_results), f"{what}: app queries"
    for got, want in zip(live.app_results, cold.app_results):
        assert (got.index, got.kind, got.label) == (want.index, want.kind, want.label)
        if isinstance(want.payload, tuple):
            _assert_tuples_identical(
                got.payload, want.payload, what=f"{what}: {got.label}"
            )
        else:
            assert got.payload == want.payload, f"{what}: {got.label}"


def _sample_oracle(tenant: GraphTenant, *, what: str) -> ScenarioResult:
    """One sampled flush point: live result vs cold replay of the log."""
    live = tenant.result()
    cold = _quiet_replay(_log_snapshot(tenant), tenant.replay_options())
    _assert_oracle_holds(live, cold, what=what)
    return live


def _mixed_workload(tenant: GraphTenant, *, seed: int, rounds: int = 4) -> None:
    """Deterministic mixed ingestion: inserts, value updates, deletions."""
    rng = np.random.default_rng(seed)
    for r in range(rounds):
        for i in range(4):
            rows = rng.integers(0, N, 6)
            cols = rng.integers(0, N, 6)
            tenant.insert(rows, cols, rng.random(6), label=f"ins{r}.{i}")
        rows = rng.integers(0, N, 4)
        cols = rng.integers(0, N, 4)
        tenant.update(rows, cols, rng.random(4) + 1.0, label=f"upd{r}")
        rows = rng.integers(0, N, 3)
        cols = rng.integers(0, N, 3)
        tenant.delete(rows, cols, label=f"del{r}")


# ---------------------------------------------------------------------------
# backend × layout sweep with mid-trace sampling
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layout", REPLAY_LAYOUTS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_service_matches_cold_replay(backend, layout):
    with _service(backend, layout) as service:
        tenant = service.create_tenant("oracle", (N, N), seed=SEED)
        what = f"{backend}/{layout}"
        # sampled flush points: after each workload phase, not only at the end
        _mixed_workload(tenant, seed=101, rounds=2)
        first = _sample_oracle(tenant, what=f"{what}@phase1")
        assert first.final_a[0].size > 0, "workload must leave a non-empty matrix"
        _mixed_workload(tenant, seed=202, rounds=2)
        tenant.contract(np.arange(N, dtype=np.int64) % 6, n_clusters=6)
        _sample_oracle(tenant, what=f"{what}@phase2")
        _mixed_workload(tenant, seed=303, rounds=1)
        final = _sample_oracle(tenant, what=f"{what}@final")
        assert len(final.app_results) == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_sssp_tenant_matches_cold_replay(backend):
    with _service(backend, "csr") as service:
        tenant = service.create_tenant(
            "roads",
            (N, N),
            seed=SEED,
            semiring_name="min_plus",
            app=AppSpec(name="sssp", sources=np.array([0, 3], dtype=np.int64)),
        )
        rng = np.random.default_rng(11)
        for r in range(3):
            for _ in range(3):
                tenant.insert(
                    rng.integers(0, N, 8),
                    rng.integers(0, N, 8),
                    rng.random(8) + 0.1,
                )
            tenant.shortest_paths(label=f"dist{r}")
            _sample_oracle(tenant, what=f"{backend}/sssp@round{r}")
        live = tenant.result()
        assert len(live.app_results) == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_triangle_tenant_matches_cold_replay(backend):
    with _service(backend, "dhb") as service:
        tenant = service.create_tenant(
            "social", (N, N), seed=SEED, app=AppSpec(name="triangle")
        )
        rng = np.random.default_rng(13)
        counts = []
        for r in range(3):
            for _ in range(3):
                rows = rng.integers(0, N, 10)
                cols = rng.integers(0, N, 10)
                keep = rows != cols
                tenant.insert(rows[keep], cols[keep])
            counts.append(tenant.triangle_count(label=f"tri{r}"))
            _sample_oracle(tenant, what=f"{backend}/triangle@round{r}")
        assert counts[-1] >= counts[0] >= 0  # triangles only accumulate


# ---------------------------------------------------------------------------
# persistent multi-process worlds (threaded loopback; COMM_WORLD under mpiexec)
# ---------------------------------------------------------------------------
def _world_program(comm_obj, world_rank):
    """One SPMD process of the service-vs-cold-replay differential."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        world = ServiceWorld("mpi", comm=comm_obj)
        config = ServiceConfig(
            replay=ReplayOptions(n_ranks=4, layout="csr"), flush_max_requests=3
        )
        with GraphService(world, config=config) as service:
            tenant = service.create_tenant("shared-world", (N, N), seed=SEED)
            _mixed_workload(tenant, seed=77, rounds=2)
            live = tenant.result()
            # the cold replay shares the same persistent world: a fresh
            # communicator minted over the very processes still serving
            cold = replay(
                _log_snapshot(tenant),
                options=tenant.replay_options(),
                comm=world.communicator(4),
            )
            _assert_oracle_holds(live, cold, what="loopback world")
            _mixed_workload(tenant, seed=88, rounds=1)
            live = tenant.result()
            cold = replay(
                _log_snapshot(tenant),
                options=tenant.replay_options(),
                comm=world.communicator(4),
            )
            _assert_oracle_holds(live, cold, what="loopback world@phase2")
        world.shutdown()
        return live.final_a, live.comm_signature()


@pytest.mark.parametrize("world", WORLD_SIZES)
def test_service_on_multiprocess_worlds(world):
    if world_size() > 1:
        pytest.skip("threaded loopback legs only run single-process")
    outcomes = run_spmd(world, _world_program)
    # every process of the world agrees, and the multi-process service
    # matches the single-process sim service on the same workload
    with _service("sim") as service:
        tenant = service.create_tenant("reference", (N, N), seed=SEED)
        _mixed_workload(tenant, seed=77, rounds=2)
        _mixed_workload(tenant, seed=88, rounds=1)
        reference = tenant.result()
    for final_a, signature in outcomes:
        _assert_tuples_identical(final_a, reference.final_a, what=f"world={world}")
    first_signature = outcomes[0][1]
    for _final_a, signature in outcomes[1:]:
        assert signature == first_signature


@pytest.mark.skipif(
    world_size() <= 1, reason="needs mpiexec with at least 2 processes"
)
def test_service_on_real_mpi_world():
    """Under ``mpiexec`` the service serves from the genuine COMM_WORLD."""
    from mpi4py import MPI

    final_a, signature = _world_program(MPI.COMM_WORLD, MPI.COMM_WORLD.Get_rank())
    assert final_a[0].size > 0
    assert signature
