"""Cross-backend differential harness for the scenario library.

Every generator-library scenario is replayed on the ``sim`` backend and on
the (emulated) ``mpi`` backend, across **all four** local layouts of the
static right-hand operand (COO, CSR, DCSR, DHB).  For each (scenario,
layout) pair the two backends must produce

* bit-identical final tuples of the maintained matrix ``A`` (and of the
  maintained product ``C`` where the scenario multiplies),
* identical applied-update counts per step,
* identical per-category communication volume (messages and bytes),
* byte-identical application query payloads (triangle counts, SSSP
  distance tuples, contracted-graph COO) for the app-scenario legs.

Layouts must additionally agree with each other on the final state
(structurally identical, values up to float round-off from different
accumulation orders).

Set ``REPRO_SCENARIO_STATS_DIR`` to a directory to dump one JSON file of
per-scenario comm statistics per (scenario, layout, backend) — the CI
matrix job uploads these as artifacts.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import MPIBackend, resolve_backend_name, world_rank, world_size
from repro.runtime.loopback import run_spmd
from repro.scenarios import (
    REPLAY_LAYOUTS,
    SCENARIO_GENERATORS,
    ScenarioResult,
    replay,
)

N_RANKS = 4
SEED = 2022
#: Both backends are always replayed; REPRO_BACKEND (via
#: resolve_backend_name) selects which one leads as the reference leg of
#: the cross-layout comparisons.
_PREFERRED = resolve_backend_name(None)
BACKENDS = (_PREFERRED, "mpi" if _PREFERRED == "sim" else "sim")
REFERENCE = BACKENDS[0]

#: loopback world sizes for the emulated multi-process differential leg
WORLD_SIZES = (1, 2, 4)


def _stats_dir() -> Path | None:
    stats_dir = os.environ.get("REPRO_SCENARIO_STATS_DIR", "")
    if not stats_dir:
        return None
    out = Path(stats_dir)
    rank = world_rank()
    # Under mpiexec every process replays and would race on the same file;
    # per-rank subdirectories keep the artifacts diffable across ranks.
    return out / f"world_rank{rank}" if rank else out


def _dump_stats(result: ScenarioResult) -> None:
    out = _stats_dir()
    if out is None:
        return
    out.mkdir(parents=True, exist_ok=True)
    name = f"{result.scenario}-{result.layout}-{result.backend}.json"
    (out / name).write_text(json.dumps(result.as_dict(), indent=2, default=float))


def _replay(generator_name: str, backend: str, layout: str) -> ScenarioResult:
    scenario = SCENARIO_GENERATORS[generator_name](seed=SEED)
    with warnings.catch_warnings():
        # the emulated-mpi backend warns once when mpi4py is absent
        warnings.simplefilter("ignore", RuntimeWarning)
        result = replay(scenario, backend=backend, n_ranks=N_RANKS, layout=layout)
    _dump_stats(result)
    return result


@pytest.fixture(scope="module")
def results() -> dict[tuple[str, str, str], ScenarioResult]:
    """Every (generator, backend, layout) replay, computed once."""
    out: dict[tuple[str, str, str], ScenarioResult] = {}
    for name in SCENARIO_GENERATORS:
        for backend in BACKENDS:
            for layout in REPLAY_LAYOUTS:
                out[(name, backend, layout)] = _replay(name, backend, layout)
    return out


def _assert_tuples_identical(a, b, *, what: str) -> None:
    assert np.array_equal(a[0], b[0]), f"{what}: row structure differs"
    assert np.array_equal(a[1], b[1]), f"{what}: column structure differs"
    assert np.array_equal(a[2], b[2]), f"{what}: values differ"


def _assert_app_results_identical(a, b, *, what: str) -> None:
    """Application query payloads must match byte for byte."""
    assert len(a) == len(b), f"{what}: app query counts differ"
    for got, want in zip(a, b):
        assert (got.index, got.kind, got.label) == (want.index, want.kind, want.label)
        if isinstance(want.payload, tuple):
            _assert_tuples_identical(
                got.payload, want.payload, what=f"{what}: {got.label}"
            )
        else:
            assert got.payload == want.payload, f"{what}: {got.label}"


@pytest.mark.parametrize("layout", REPLAY_LAYOUTS)
@pytest.mark.parametrize("generator_name", sorted(SCENARIO_GENERATORS))
class TestCrossBackend:
    def test_final_tuples_identical(self, results, generator_name, layout):
        sim = results[(generator_name, "sim", layout)]
        mpi = results[(generator_name, "mpi", layout)]
        assert sim.final_a[0].size > 0, "scenario must leave a non-empty matrix"
        _assert_tuples_identical(
            sim.final_a, mpi.final_a, what=f"{generator_name}/{layout}: A"
        )
        assert (sim.final_c is None) == (mpi.final_c is None)
        if sim.final_c is not None:
            _assert_tuples_identical(
                sim.final_c, mpi.final_c, what=f"{generator_name}/{layout}: C"
            )

    def test_applied_counts_identical(self, results, generator_name, layout):
        sim = results[(generator_name, "sim", layout)]
        mpi = results[(generator_name, "mpi", layout)]
        assert sim.truncated_at is None and mpi.truncated_at is None
        assert sim.applied_counts == mpi.applied_counts
        per_step_sim = [(s.kind, s.n_tuples, s.applied) for s in sim.steps]
        per_step_mpi = [(s.kind, s.n_tuples, s.applied) for s in mpi.steps]
        assert per_step_sim == per_step_mpi

    def test_comm_volume_identical(self, results, generator_name, layout):
        sim = results[(generator_name, "sim", layout)]
        mpi = results[(generator_name, "mpi", layout)]
        assert sim.comm_signature() == mpi.comm_signature()
        assert sim.total_comm_bytes() > 0, "scenarios must actually communicate"
        per_step_sim = [(s.comm_messages, s.comm_bytes) for s in sim.steps]
        per_step_mpi = [(s.comm_messages, s.comm_bytes) for s in mpi.steps]
        assert per_step_sim == per_step_mpi

    def test_app_query_results_identical(self, results, generator_name, layout):
        sim = results[(generator_name, "sim", layout)]
        mpi = results[(generator_name, "mpi", layout)]
        _assert_app_results_identical(
            sim.app_results,
            mpi.app_results,
            what=f"{generator_name}/{layout}",
        )


@pytest.mark.parametrize("generator_name", sorted(SCENARIO_GENERATORS))
class TestCrossLayout:
    def test_layouts_agree_on_final_state(self, results, generator_name):
        reference = results[(generator_name, REFERENCE, REPLAY_LAYOUTS[0])]
        for layout in REPLAY_LAYOUTS[1:]:
            other = results[(generator_name, REFERENCE, layout)]
            assert np.array_equal(reference.final_a[0], other.final_a[0])
            assert np.array_equal(reference.final_a[1], other.final_a[1])
            # different layouts may accumulate in different orders
            assert np.allclose(reference.final_a[2], other.final_a[2], rtol=1e-9)
            if reference.final_c is not None:
                assert other.final_c is not None
                assert np.array_equal(reference.final_c[0], other.final_c[0])
                assert np.array_equal(reference.final_c[1], other.final_c[1])
                assert np.allclose(
                    reference.final_c[2], other.final_c[2], rtol=1e-9
                )

    def test_applied_counts_agree_across_layouts(self, results, generator_name):
        reference = results[(generator_name, REFERENCE, REPLAY_LAYOUTS[0])]
        for layout in REPLAY_LAYOUTS[1:]:
            other = results[(generator_name, REFERENCE, layout)]
            assert reference.applied_counts == other.applied_counts

    def test_app_results_agree_across_layouts(self, results, generator_name):
        reference = results[(generator_name, REFERENCE, REPLAY_LAYOUTS[0])]
        for layout in REPLAY_LAYOUTS[1:]:
            other = results[(generator_name, REFERENCE, layout)]
            _assert_app_results_identical(
                reference.app_results,
                other.app_results,
                what=f"{generator_name}/{layout}",
            )


@pytest.mark.parametrize("world", WORLD_SIZES)
@pytest.mark.parametrize(
    "generator_name",
    (
        "grow_from_empty",
        "mixed_update_multiply",
        "social_triangle_stream",
        "road_churn_sssp",
        "multilevel_contraction",
    ),
)
def test_multiprocess_worlds_match_sim(results, generator_name, world):
    """Partial-mapping/ownership differential: the same scenario replayed
    on emulated multi-process worlds (loopback threads behind the mpi4py
    surface, payloads pickled) must match the simulator bit for bit —
    final tuples, applied counts, per-category comm volume and application
    query payloads (triangle counts, SSSP distance tuples, contracted-graph
    COO)."""
    ref = results[(generator_name, "sim", "csr")]
    scenario = SCENARIO_GENERATORS[generator_name](seed=SEED)

    def program(comm_obj, world_rank):
        comm = MPIBackend(N_RANKS, comm=comm_obj)
        return replay(scenario, comm=comm, layout="csr")

    for result in run_spmd(world, program):
        _assert_tuples_identical(
            ref.final_a, result.final_a, what=f"{generator_name}@world={world}: A"
        )
        assert (ref.final_c is None) == (result.final_c is None)
        if ref.final_c is not None:
            _assert_tuples_identical(
                ref.final_c, result.final_c, what=f"{generator_name}@world={world}: C"
            )
        assert result.applied_counts == ref.applied_counts
        assert result.comm_signature() == ref.comm_signature()
        _assert_app_results_identical(
            ref.app_results,
            result.app_results,
            what=f"{generator_name}@world={world}",
        )


@pytest.mark.skipif(
    world_size() < 2,
    reason="real multi-process leg runs under mpiexec -n p with mpi4py",
)
def test_real_mpi_world_attaches():
    """Under ``mpiexec -n p`` the default 'mpi' backend attaches to the
    real COMM_WORLD; the rest of this module then runs the differential
    matrix against genuine multi-process execution."""
    comm = MPIBackend(N_RANKS)
    assert comm.world_size > 1
    assert len(comm.owned_ranks()) < N_RANKS


def test_library_covers_at_least_five_generators():
    assert len(SCENARIO_GENERATORS) >= 5


def test_app_scenarios_record_query_results(results):
    """Every application scenario actually exercises its query steps."""
    expected = {
        "social_triangle_stream": "triangle_count",
        "road_churn_sssp": "shortest_path",
        "multilevel_contraction": "contract",
    }
    for name, kind in expected.items():
        result = results[(name, REFERENCE, "csr")]
        kinds = {r.kind for r in result.app_results}
        assert kind in kinds, name
        assert result.truncated_at is None


def test_snapshot_checks_ran(results):
    """Every library scenario carries active snapshot checks."""
    for name in SCENARIO_GENERATORS:
        result = results[(name, REFERENCE, "csr")]
        assert any(s.kind == "snapshot" for s in result.steps), name


def test_stats_dump_round_trip(tmp_path, monkeypatch):
    """The CI artifact dump produces valid JSON with the comm signature."""
    monkeypatch.setenv("REPRO_SCENARIO_STATS_DIR", str(tmp_path))
    result = _replay("grow_from_empty", "sim", "csr")
    path = _stats_dir() / "grow_from_empty-csr-sim.json"
    payload = json.loads(path.read_text())
    assert payload["scenario"] == "grow_from_empty"
    assert payload["comm_signature"]
    assert payload["final_nnz"] == int(result.final_a[0].size)
