"""Placement differential suite: every partitioner is byte-identical.

Placement is a purely physical decision, so replaying a scenario under any
registered :mod:`repro.runtime.partitioner` strategy must reproduce the
round-robin/simulator outcome bit for bit — final tuples, applied-update
counts and per-category logical communication volume.  The sweep mirrors
the backend/layout differential matrix (`tests/test_scenarios_differential.py`)
along a third axis:

* ``REPRO_PARTITIONER`` environment sweep across the ``sim`` and emulated
  ``mpi`` backends × all four layouts (the env var must be validated and
  honoured everywhere, including backends with no placement surface), and
* explicit ``replay(partitioner=...)`` sweeps across loopback worlds
  1/2/4, where placements genuinely differ between strategies.

Under ``mpiexec -n p`` the same module runs against the real
``COMM_WORLD`` (the loopback legs then exercise world size 1 per
process).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.runtime import MPIBackend, available_partitioners, make_partitioner
from repro.runtime.loopback import run_spmd
from repro.runtime.partitioner import PARTITIONER_ENV_VAR, verify_placement
from repro.scenarios import (
    REPLAY_LAYOUTS,
    SCENARIO_GENERATORS,
    ScenarioResult,
    replay,
)

N_RANKS = 4
SEED = 2022
WORLD_SIZES = (1, 2, 4)
BACKENDS = ("sim", "mpi")
PARTITIONERS = available_partitioners()

#: scenarios of the loopback sweep: the skew-prone bursty R-MAT stream is
#: where placements differ most; the multiply scenario adds product state
SWEEP_SCENARIOS = ("bursty_skewed_stream", "mixed_update_multiply")


def _reference(generator_name: str, layout: str) -> ScenarioResult:
    scenario = SCENARIO_GENERATORS[generator_name](seed=SEED)
    return replay(scenario, backend="sim", n_ranks=N_RANKS, layout=layout)


@pytest.fixture(scope="module")
def references() -> dict[tuple[str, str], ScenarioResult]:
    """Default-placement sim replays, one per (scenario, layout)."""
    return {
        (name, layout): _reference(name, layout)
        for name in SWEEP_SCENARIOS
        for layout in REPLAY_LAYOUTS
    }


def _assert_result_identical(result, ref, *, what: str) -> None:
    assert np.array_equal(result.final_a[0], ref.final_a[0]), f"{what}: rows"
    assert np.array_equal(result.final_a[1], ref.final_a[1]), f"{what}: cols"
    assert np.array_equal(result.final_a[2], ref.final_a[2]), f"{what}: values"
    assert (result.final_c is None) == (ref.final_c is None), what
    if ref.final_c is not None:
        assert np.array_equal(result.final_c[0], ref.final_c[0]), f"{what}: C rows"
        assert np.array_equal(result.final_c[2], ref.final_c[2]), f"{what}: C values"
    assert result.applied_counts == ref.applied_counts, what
    assert result.comm_signature() == ref.comm_signature(), what


# ----------------------------------------------------------------------
# REPRO_PARTITIONER environment sweep: backends × layouts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("layout", REPLAY_LAYOUTS)
@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_env_selected_partitioner_is_byte_identical(
    references, monkeypatch, backend, layout, partitioner
):
    monkeypatch.setenv(PARTITIONER_ENV_VAR, partitioner)
    scenario = SCENARIO_GENERATORS["bursty_skewed_stream"](seed=SEED)
    with warnings.catch_warnings():
        # the emulated-mpi backend warns once when mpi4py is absent
        warnings.simplefilter("ignore", RuntimeWarning)
        result = replay(scenario, backend=backend, n_ranks=N_RANKS, layout=layout)
    _assert_result_identical(
        result,
        references[("bursty_skewed_stream", layout)],
        what=f"{partitioner}/{backend}/{layout}",
    )


# ----------------------------------------------------------------------
# explicit-partitioner loopback worlds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("world", WORLD_SIZES)
@pytest.mark.parametrize("generator_name", SWEEP_SCENARIOS)
@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_loopback_worlds_are_byte_identical(
    references, generator_name, partitioner, world
):
    ref = references[(generator_name, "csr")]
    scenario = SCENARIO_GENERATORS[generator_name](seed=SEED)

    def program(comm_obj, world_rank):
        comm = MPIBackend(N_RANKS, comm=comm_obj)
        result = replay(scenario, comm=comm, layout="csr", partitioner=partitioner)
        return result, comm.placement()

    results = run_spmd(world, program)
    placements = [placement for _, placement in results]
    # every process must agree on one valid placement (nnz_aware derives
    # weights from the scenario prefix, so no uniform-weight oracle here)
    assert all(placement == placements[0] for placement in placements)
    verify_placement(placements[0], N_RANKS, world)
    for result, _ in results:
        _assert_result_identical(
            result, ref, what=f"{generator_name}/{partitioner}@world={world}"
        )


def test_env_var_reaches_loopback_backends(monkeypatch, references):
    """The environment path must install real placements on multi-process
    backends, not only validate the name: at world 2 the block-cyclic
    strategy produces a placement round-robin cannot (locality-aware
    coincides with round-robin on the 2x2 grid, so it proves nothing
    here)."""
    monkeypatch.setenv(PARTITIONER_ENV_VAR, "block_cyclic")
    scenario = SCENARIO_GENERATORS["bursty_skewed_stream"](seed=SEED)

    def program(comm_obj, world_rank):
        comm = MPIBackend(N_RANKS, comm=comm_obj)
        result = replay(scenario, comm=comm, layout="csr")
        return result, comm.placement()

    round_robin = make_partitioner("round_robin").placement(N_RANKS, 2)
    for result, placement in run_spmd(2, program):
        assert placement != round_robin
        _assert_result_identical(
            result,
            references[("bursty_skewed_stream", "csr")],
            what="env block_cyclic@world=2",
        )
