"""Unit tests for the always-on graph service.

Covers the micro-batch queue (flush-by-count, flush-by-deadline on the
logical clock, order-preserving coalescing), the :class:`ReplayOptions`
configuration bundle (back-compat with the historical keyword surface),
:class:`ServiceWorld` lifecycle (persistent minting, shutdown semantics)
and :class:`GraphService` tenancy — including the tenant-isolation
properties: identical seeded traces on one world produce identical
independent results, and a tenant's comm/stat accounting is unchanged by
other tenants sharing the world.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import ServiceWorld, SimMPI
from repro.scenarios import ReplayOptions, replay
from repro.scenarios.generators import steady_state_churn
from repro.service import (
    FlushPolicy,
    GraphService,
    IngestRequest,
    MicroBatchQueue,
    ServiceConfig,
    coalesce,
)

N = 40


def _req(kind: str = "insert", size: int = 3, label: str = "") -> IngestRequest:
    rng = np.random.default_rng(size)
    return IngestRequest.make(
        kind,
        rng.integers(0, N, size),
        rng.integers(0, N, size),
        rng.random(size),
        label=label,
    )


def _service(
    flush_max_requests: int = 4,
    flush_max_delay: float | None = None,
    **replay_kwargs,
) -> GraphService:
    replay_kwargs.setdefault("n_ranks", 4)
    return GraphService(
        backend="sim",
        config=ServiceConfig(
            replay=ReplayOptions(**replay_kwargs),
            flush_max_requests=flush_max_requests,
            flush_max_delay=flush_max_delay,
        ),
    )


def _churn(tenant, seed: int, n_requests: int = 9, size: int = 5) -> None:
    """A deterministic seeded request stream against one tenant."""
    rng = np.random.default_rng(seed)
    for i in range(n_requests):
        rows = rng.integers(0, N, size)
        cols = rng.integers(0, N, size)
        if i % 3 == 2:
            tenant.delete(rows, cols, label=f"del{i}")
        else:
            tenant.insert(rows, cols, rng.random(size), label=f"ins{i}")


# ---------------------------------------------------------------------------
# queue layer
# ---------------------------------------------------------------------------
class TestIngestRequest:
    def test_validates_kind(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            IngestRequest.make("upsert", [0], [1])

    def test_validates_lengths(self):
        with pytest.raises(ValueError, match="identical lengths"):
            IngestRequest.make("insert", [0, 1], [1], [0.5, 0.5])

    def test_values_default_to_ones(self):
        request = IngestRequest.make("insert", [0, 1], [1, 2])
        assert np.array_equal(request.values, np.ones(2))
        assert request.n_tuples == 2

    def test_normalises_dtypes(self):
        request = IngestRequest.make("update", [0.0, 1.0], [1, 2], [1, 2])
        assert request.rows.dtype == np.int64
        assert request.values.dtype == np.float64


class TestFlushPolicy:
    def test_rejects_zero_count(self):
        with pytest.raises(ValueError, match="at least 1"):
            FlushPolicy(max_requests=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="non-negative"):
            FlushPolicy(max_delay=-1.0)


class TestMicroBatchQueue:
    def test_count_policy_triggers_on_fill(self):
        queue = MicroBatchQueue(policy=FlushPolicy(max_requests=3))
        assert not queue.offer(_req())
        assert not queue.offer(_req())
        assert queue.offer(_req())
        assert len(queue) == 3

    def test_deadline_uses_logical_clock(self):
        queue = MicroBatchQueue(policy=FlushPolicy(max_requests=100, max_delay=2.0))
        assert not queue.due(10.0)  # empty queue is never due
        queue.offer(_req(), now=1.0)
        assert not queue.due(2.5)
        assert queue.due(3.0)

    def test_drain_resets_deadline(self):
        queue = MicroBatchQueue(policy=FlushPolicy(max_requests=100, max_delay=1.0))
        queue.offer(_req(), now=0.0)
        assert len(queue.drain()) == 1
        assert len(queue) == 0
        assert not queue.due(100.0)

    def test_pending_tuples(self):
        queue = MicroBatchQueue()
        queue.offer(_req(size=3))
        queue.offer(_req(size=5))
        assert queue.pending_tuples == 8


class TestCoalesce:
    def test_merges_same_kind_runs(self):
        groups = coalesce([_req("insert", 2), _req("insert", 3), _req("delete", 1)])
        assert [g.kind for g in groups] == ["insert", "delete"]
        assert groups[0].n_tuples == 5

    def test_preserves_order_across_kind_changes(self):
        stream = [_req("insert"), _req("delete"), _req("insert")]
        groups = coalesce(stream)
        # insert, delete, insert must stay three batches — collapsing to
        # two would change the applied state.
        assert [g.kind for g in groups] == ["insert", "delete", "insert"]

    def test_concatenation_order_is_submission_order(self):
        a = IngestRequest.make("insert", [1], [2], [10.0], label="a")
        b = IngestRequest.make("insert", [3], [4], [20.0], label="b")
        (merged,) = coalesce([a, b])
        assert np.array_equal(merged.rows, [1, 3])
        assert np.array_equal(merged.values, [10.0, 20.0])
        assert merged.label == "a+b"

    def test_empty_stream(self):
        assert coalesce([]) == []


# ---------------------------------------------------------------------------
# ReplayOptions — the consolidated replay configuration surface
# ---------------------------------------------------------------------------
class TestReplayOptions:
    def test_kwargs_and_options_are_equivalent(self):
        scenario = steady_state_churn(seed=5)
        by_kwargs = replay(scenario, backend="sim", n_ranks=4, layout="dcsr")
        by_options = replay(
            scenario, options=ReplayOptions(backend="sim", n_ranks=4, layout="dcsr")
        )
        assert by_kwargs.comm_signature() == by_options.comm_signature()
        assert np.array_equal(by_kwargs.final_a[0], by_options.final_a[0])
        assert np.array_equal(by_kwargs.final_a[2], by_options.final_a[2])

    def test_kwargs_override_options(self):
        merged = ReplayOptions(layout="csr", n_ranks=16).merged(layout="dhb")
        assert merged.layout == "dhb"
        assert merged.n_ranks == 16

    def test_unknown_kwargs_become_backend_kwargs(self):
        merged = ReplayOptions().merged(track_time=False, n_ranks=8)
        assert merged.backend_kwargs == {"track_time": False}
        assert merged.n_ranks == 8

    def test_merged_does_not_mutate_original(self):
        options = ReplayOptions()
        options.merged(layout="dhb", track_time=False)
        assert options.layout == "csr"
        assert options.backend_kwargs == {}

    def test_validate_rejects_bad_on_crash(self):
        with pytest.raises(ValueError, match="on_crash"):
            ReplayOptions(on_crash="panic").validate()

    def test_validate_rejects_negative_recoveries(self):
        with pytest.raises(ValueError, match="max_recoveries"):
            ReplayOptions(max_recoveries=-1).validate()


# ---------------------------------------------------------------------------
# ServiceWorld — persistent substrate
# ---------------------------------------------------------------------------
class TestServiceWorld:
    def test_sim_world_mints_independent_communicators(self):
        world = ServiceWorld("sim")
        a = world.communicator(4)
        b = world.communicator(8)
        assert isinstance(a, SimMPI) and a.p == 4 and b.p == 8
        assert world.minted == 2
        assert world.world_size == 1 and world.world_rank == 0

    def test_shutdown_stops_minting_and_is_idempotent(self):
        world = ServiceWorld("sim")
        world.shutdown()
        world.shutdown()
        assert world.closed
        with pytest.raises(RuntimeError, match="shut down"):
            world.communicator(2)

    def test_sim_rejects_low_level_comm(self):
        with pytest.raises(ValueError, match="single-process"):
            ServiceWorld("sim", comm=object())

    def test_rejects_unknown_backend(self):
        with pytest.raises(Exception):
            ServiceWorld("no-such-backend")

    def test_context_manager_shuts_down(self):
        with ServiceWorld("sim") as world:
            world.communicator(2)
        assert world.closed


# ---------------------------------------------------------------------------
# GraphService — tenancy and lifecycle
# ---------------------------------------------------------------------------
class TestServiceLifecycle:
    def test_one_world_serves_sequential_tenant_workloads(self):
        # The acceptance property: at least three tenant workloads over a
        # single world without tearing it down.
        with _service() as service:
            for i, name in enumerate(["first", "second", "third"]):
                tenant = service.create_tenant(name, (N, N), seed=i)
                _churn(tenant, seed=100 + i)
                result = tenant.result()
                assert result.final_a[0].size > 0
                service.drop_tenant(name)
            assert service.world.minted >= 3
            assert not service.world.closed
        assert service.closed and service.world.closed

    def test_duplicate_tenant_name_rejected(self):
        with _service() as service:
            service.create_tenant("a", (N, N))
            with pytest.raises(ValueError, match="already exists"):
                service.create_tenant("a", (N, N))

    def test_tenant_lookup_and_creation_order(self):
        with _service() as service:
            service.create_tenant("z", (N, N))
            service.create_tenant("a", (N, N))
            assert service.tenants == ("z", "a")
            assert service.tenant("z").name == "z"

    def test_shutdown_closes_tenants(self):
        service = _service()
        tenant = service.create_tenant("a", (N, N))
        service.shutdown()
        with pytest.raises(RuntimeError, match="closed|shut down"):
            tenant.insert([0], [1])
        with pytest.raises(RuntimeError, match="shut down"):
            service.create_tenant("b", (N, N))

    def test_external_world_survives_service_shutdown(self):
        world = ServiceWorld("sim")
        with GraphService(world) as service:
            service.create_tenant("a", (N, N), n_ranks=4)
        assert not world.closed
        world.shutdown()

    def test_closed_tenant_log_survives(self):
        with _service() as service:
            tenant = service.create_tenant("a", (N, N), seed=3)
            _churn(tenant, seed=3)
            tenant.result()
            log = tenant.log
            service.drop_tenant("a")
            # The request log is plain data and outlives its tenant.
            result = replay(log, options=tenant.replay_options())
            assert result.final_a[0].size > 0


class TestIngestion:
    def test_count_flush_applies_micro_batch(self):
        with _service(flush_max_requests=3) as service:
            tenant = service.create_tenant("a", (N, N))
            assert not tenant.insert([0], [1])
            assert not tenant.insert([1], [2])
            assert tenant.pending == 2 and tenant.n_steps == 0
            assert tenant.insert([2], [3])  # fills the batch → flush
            assert tenant.pending == 0
            assert tenant.n_steps == 1  # one coalesced step, not three

    def test_deadline_flush_via_advance_time(self):
        with _service(flush_max_requests=100, flush_max_delay=2.0) as service:
            tenant = service.create_tenant("a", (N, N))
            tenant.insert([0], [1])
            assert service.advance_time(1.0) == 0
            assert tenant.pending == 1
            assert service.advance_time(1.5) == 1
            assert tenant.pending == 0 and tenant.n_steps == 1

    def test_time_cannot_run_backwards(self):
        with _service() as service:
            with pytest.raises(ValueError, match="backwards"):
                service.advance_time(-1.0)

    def test_queries_flush_first(self):
        with _service(flush_max_requests=100) as service:
            tenant = service.create_tenant("a", (N, N))
            tenant.insert([0, 1, 2], [1, 2, 3])
            assert tenant.pending == 1
            contracted = tenant.contract(np.zeros(N, dtype=np.int64), n_clusters=1)
            assert tenant.pending == 0
            # the query saw the flushed insert: everything contracts to (0, 0)
            assert contracted[2].sum() == pytest.approx(3.0)

    def test_bounds_checked_at_submission(self):
        with _service() as service:
            tenant = service.create_tenant("a", (N, N))
            with pytest.raises(ValueError):
                tenant.insert([N + 1], [0])

    def test_triangle_tenant_rejects_deletions(self):
        from repro.scenarios import AppSpec

        with _service() as service:
            tenant = service.create_tenant(
                "tri", (N, N), app=AppSpec(name="triangle")
            )
            with pytest.raises(ValueError, match="insert only"):
                tenant.delete([0], [1])

    def test_flush_on_empty_queue_is_noop(self):
        with _service() as service:
            tenant = service.create_tenant("a", (N, N))
            assert tenant.flush() == 0
            assert service.flush_all() == 0


# ---------------------------------------------------------------------------
# tenant isolation
# ---------------------------------------------------------------------------
class TestTenantIsolation:
    def test_identical_traces_identical_results(self):
        # Two tenants fed the same seeded request stream on one world must
        # produce independent but identical results.
        with _service() as service:
            left = service.create_tenant("left", (N, N), seed=17)
            right = service.create_tenant("right", (N, N), seed=17)
            _churn(left, seed=42)
            _churn(right, seed=42)
            a = left.result()
            b = right.result()
            assert np.array_equal(a.final_a[0], b.final_a[0])
            assert np.array_equal(a.final_a[1], b.final_a[1])
            assert np.array_equal(a.final_a[2], b.final_a[2])
            assert a.comm_signature() == b.comm_signature()
            assert a.applied_counts == b.applied_counts

    def test_no_stat_leakage_between_tenants(self):
        # A tenant's comm accounting must be unchanged by other tenants
        # sharing the world: run A alone, then A interleaved with a noisy
        # B, and require byte-identical signatures for A.
        with _service() as service:
            alone = service.create_tenant("alone", (N, N), seed=23)
            _churn(alone, seed=7)
            reference = alone.result()

            shared = service.create_tenant("shared", (N, N), seed=23)
            noisy = service.create_tenant("noisy", (N, N), seed=99, n_ranks=8)
            rng = np.random.default_rng(7)
            other = np.random.default_rng(1234)
            for i in range(9):
                rows = rng.integers(0, N, 5)
                cols = rng.integers(0, N, 5)
                if i % 3 == 2:
                    shared.delete(rows, cols, label=f"del{i}")
                else:
                    shared.insert(rows, cols, rng.random(5), label=f"ins{i}")
                # interleave unrelated traffic on the other tenant
                noisy.insert(
                    other.integers(0, N, 11), other.integers(0, N, 11), other.random(11)
                )
                noisy.flush()
            interleaved = shared.result()
            assert interleaved.comm_signature() == reference.comm_signature()
            assert np.array_equal(interleaved.final_a[2], reference.final_a[2])

    def test_tenants_may_use_different_rank_namespaces(self):
        with _service() as service:
            small = service.create_tenant("small", (N, N), n_ranks=2)
            large = service.create_tenant("large", (N, N), n_ranks=8)
            _churn(small, seed=1)
            _churn(large, seed=1)
            a, b = small.result(), large.result()
            assert (small.comm.p, large.comm.p) == (2, 8)
            # same logical state regardless of the rank namespace
            assert np.array_equal(a.final_a[0], b.final_a[0])
            assert np.array_equal(a.final_a[2], b.final_a[2])
