"""Equivalence pins for the vectorised fast paths added with the perf work.

Every fast path keeps a slow oracle alongside it; these tests pin the two
to identical results:

* ``SparseAccumulator.accumulate_scaled_row`` — bulk load into an empty
  accumulator and NumPy-array masks vs. the per-element loop,
* ``DHBMatrix.insert_batch`` — ``strategy="vectorized"`` vs.
  ``strategy="per_element"`` (and the ``"auto"`` dispatch) across combine
  modes, including hash-index integrity after follow-up point operations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import CSRMatrix, DHBMatrix
from repro.sparse.spa import SparseAccumulator
from repro.sparse.spgemm_local import spgemm_local, spgemm_rowwise_spa


# ----------------------------------------------------------------------
# SparseAccumulator
# ----------------------------------------------------------------------
def _loop_oracle(semiring, scale, cols, vals, bloom_bit=0, allowed=None):
    """Per-element reference: the pre-fast-path accumulate loop."""
    spa = SparseAccumulator(semiring)
    scaled = semiring.times(scale, vals)
    for c, v in zip(cols.tolist(), scaled):
        if allowed is None or c in allowed:
            spa.accumulate(c, v, bloom_bit)
    return spa


@pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS])
def test_spa_bulk_load_matches_loop(semiring):
    rng = np.random.default_rng(3)
    cols = rng.integers(0, 40, 200)  # heavy duplication
    vals = rng.random(200)
    fast = SparseAccumulator(semiring)
    fast.accumulate_scaled_row(2.0, cols, vals, bloom_bit=4)
    oracle = _loop_oracle(semiring, 2.0, cols, vals, bloom_bit=4)
    fc, fv, fb = fast.emit()
    oc, ov, ob = oracle.emit()
    assert np.array_equal(fc, oc)
    # columns and bloom bits are exact; values may differ in the last bit
    # because ufunc.reduceat is free to reassociate the segment sum
    assert np.allclose(fv, ov, rtol=1e-12)
    assert np.array_equal(fb, ob)


def test_spa_array_mask_matches_set_mask():
    rng = np.random.default_rng(5)
    cols = rng.integers(0, 64, 120)
    vals = rng.random(120)
    allowed_arr = np.unique(rng.integers(0, 64, 20))
    via_array = SparseAccumulator(PLUS_TIMES)
    via_array.accumulate_scaled_row(1.5, cols, vals, allowed=allowed_arr)
    via_set = _loop_oracle(
        PLUS_TIMES, 1.5, cols, vals, allowed={int(c) for c in allowed_arr}
    )
    ac, av, _ = via_array.emit()
    sc, sv, _ = via_set.emit()
    assert np.array_equal(ac, sc)
    assert np.allclose(av, sv, rtol=1e-12)


def test_spa_accumulate_on_top_of_bulk_load():
    # The fast path must leave a consistent hash index behind: scattering a
    # second row on top of a bulk-loaded one exercises slot lookups.
    spa = SparseAccumulator(PLUS_TIMES)
    spa.accumulate_scaled_row(1.0, np.array([5, 1, 5]), np.array([1.0, 2.0, 3.0]))
    spa.accumulate_scaled_row(1.0, np.array([1, 9]), np.array([10.0, 20.0]))
    cols, vals, _ = spa.emit()
    assert cols.tolist() == [1, 5, 9]
    assert vals.tolist() == [12.0, 4.0, 20.0]
    assert spa.get(5) == 4.0
    assert spa.contains(9)


def test_spa_oracle_spgemm_still_matches_vectorised_kernel():
    rng = np.random.default_rng(11)
    a = (rng.random((12, 9)) < 0.3) * rng.random((12, 9))
    b = (rng.random((9, 14)) < 0.3) * rng.random((9, 14))
    a_csr = CSRMatrix.from_dense(a, PLUS_TIMES)
    b_csr = CSRMatrix.from_dense(b, PLUS_TIMES)
    fast, _ = spgemm_local(a_csr, b_csr, PLUS_TIMES, use_scipy=False)
    oracle = spgemm_rowwise_spa(a_csr, b_csr, PLUS_TIMES)
    assert np.array_equal(fast.sort().rows, oracle.sort().rows)
    assert np.array_equal(fast.sort().cols, oracle.sort().cols)
    assert np.allclose(fast.sort().values, oracle.sort().values)


# ----------------------------------------------------------------------
# DHB insert strategies
# ----------------------------------------------------------------------
def _random_batch(rng, n, size):
    return (
        rng.integers(0, n, size),
        rng.integers(0, n, size),
        rng.random(size),
    )


def _as_canonical(matrix: DHBMatrix):
    coo = matrix.to_coo()
    return coo.rows, coo.cols, coo.values


@pytest.mark.parametrize("combine_mode", ["add", "overwrite", "custom"])
@pytest.mark.parametrize("preload", [0, 300])
def test_dhb_strategies_equivalent(combine_mode, preload):
    n = 64
    semiring = PLUS_TIMES
    combine = {
        "add": semiring.plus,
        "overwrite": None,
        "custom": lambda old, new: old - new,
    }[combine_mode]
    results = {}
    for strategy in ("per_element", "vectorized", "auto"):
        rng = np.random.default_rng(7)
        matrix = DHBMatrix((n, n), semiring)
        if preload:
            matrix.insert_batch(*_random_batch(rng, n, preload), combine=semiring.plus)
        created = 0
        for _ in range(3):
            created += matrix.insert_batch(
                *_random_batch(rng, n, 150), combine=combine, strategy=strategy
            )
        results[strategy] = (created, matrix.nnz, _as_canonical(matrix))
    ref_created, ref_nnz, (ref_rows, ref_cols, ref_vals) = results["per_element"]
    for strategy in ("vectorized", "auto"):
        created, nnz, (rows, cols, vals) = results[strategy]
        assert created == ref_created
        assert nnz == ref_nnz
        assert np.array_equal(rows, ref_rows)
        assert np.array_equal(cols, ref_cols)
        # values may differ in the last bit: reduceat-based duplicate
        # merging is free to reassociate the segment sum
        assert np.allclose(vals, ref_vals, rtol=1e-12)


def test_dhb_vectorized_leaves_consistent_index():
    # Point operations after a vectorised batch exercise the per-row hash
    # index (lazy for bulk-loaded rows) and the swap-with-last deletion.
    rng = np.random.default_rng(13)
    matrix = DHBMatrix((32, 32))
    rows, cols, vals = _random_batch(rng, 32, 400)
    matrix.insert_batch(rows, cols, vals, combine=None, strategy="vectorized")
    reference = {}
    for i, j, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
        reference[(i, j)] = v  # last write wins
    assert matrix.nnz == len(reference)
    for (i, j), v in list(reference.items())[:50]:
        assert matrix.get(i, j) == v
    # delete half the entries, then reinsert some
    deleted = 0
    for (i, j) in list(reference)[::2]:
        assert matrix.delete(i, j)
        del reference[(i, j)]
        deleted += 1
    assert deleted > 0
    assert matrix.nnz == len(reference)
    assert matrix.insert(3, 3, 42.0) == ((3, 3) not in reference)
    assert matrix.get(3, 3) == 42.0


def test_dhb_strategy_argument_validated():
    matrix = DHBMatrix((4, 4))
    with pytest.raises(ValueError):
        matrix.insert_batch([0], [0], [1.0], strategy="warp-speed")


def test_dhb_vectorized_handles_empty_and_single():
    matrix = DHBMatrix((8, 8))
    assert matrix.insert_batch([], [], [], strategy="vectorized") == 0
    assert matrix.insert_batch([2], [3], [1.5], strategy="vectorized") == 1
    assert matrix.get(2, 3) == 1.5
