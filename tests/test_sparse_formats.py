"""Tests for the local sparse layouts: COO, CSR, DCSR and their conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import COOMatrix, CSRMatrix, DCSRMatrix

from tests.conftest import random_dense


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def coo_matrices(draw, max_dim: int = 12, semiring=PLUS_TIMES):
    n = draw(st.integers(min_value=1, max_value=max_dim))
    m = draw(st.integers(min_value=1, max_value=max_dim))
    nnz = draw(st.integers(min_value=0, max_value=n * m))
    rows = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix(
        shape=(n, m),
        rows=np.array(rows, dtype=np.int64),
        cols=np.array(cols, dtype=np.int64),
        values=np.array(vals),
        semiring=semiring,
    )


# ----------------------------------------------------------------------
# COO
# ----------------------------------------------------------------------
class TestCOO:
    def test_from_tuples_and_dense_round_trip(self):
        dense = random_dense(6, 8, 0.3, seed=1)
        coo = COOMatrix.from_dense(dense)
        assert np.allclose(coo.to_dense(), dense)
        assert coo.nnz == int((dense != 0).sum())

    def test_empty_matrix(self):
        coo = COOMatrix.empty((4, 5))
        assert coo.nnz == 0
        assert coo.to_dense().shape == (4, 5)
        assert np.all(coo.to_dense() == 0.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="identical lengths"):
            COOMatrix((3, 3), [0, 1], [0], [1.0, 2.0])

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError, match="out of bounds"):
            COOMatrix((3, 3), [5], [0], [1.0])
        with pytest.raises(ValueError, match="out of bounds"):
            COOMatrix((3, 3), [0], [-1], [1.0])

    def test_sum_duplicates_combines_with_semiring(self):
        coo = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0])
        out = coo.sum_duplicates()
        assert out.nnz == 2
        assert out.to_dict()[(0, 1)] == pytest.approx(5.0)

    def test_sum_duplicates_min_plus(self):
        coo = COOMatrix((2, 2), [0, 0], [1, 1], [5.0, 2.0], MIN_PLUS)
        assert coo.sum_duplicates().to_dict()[(0, 1)] == pytest.approx(2.0)

    def test_last_write_wins_keeps_latest(self):
        coo = COOMatrix((2, 2), [0, 0, 0], [1, 1, 1], [1.0, 2.0, 3.0])
        out = coo.last_write_wins()
        assert out.nnz == 1
        assert out.values[0] == pytest.approx(3.0)

    def test_add_is_elementwise_semiring_addition(self):
        a = random_dense(5, 5, 0.4, seed=2)
        b = random_dense(5, 5, 0.4, seed=3)
        out = COOMatrix.from_dense(a).add(COOMatrix.from_dense(b))
        assert np.allclose(out.to_dense(), a + b)

    def test_add_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            COOMatrix.empty((2, 2)).add(COOMatrix.empty((3, 3)))

    def test_add_semiring_mismatch_raises(self):
        with pytest.raises(ValueError, match="semiring mismatch"):
            COOMatrix.empty((2, 2)).add(COOMatrix.empty((2, 2), MIN_PLUS))

    def test_transpose(self):
        dense = random_dense(4, 7, 0.3, seed=5)
        out = COOMatrix.from_dense(dense).transpose()
        assert np.allclose(out.to_dense(), dense.T)

    def test_drop_zeros_removes_explicit_zeros(self):
        coo = COOMatrix((2, 2), [0, 1], [0, 1], [0.0, 2.0])
        assert coo.nnz == 2
        assert coo.drop_zeros().nnz == 1

    def test_nbytes_scales_with_nnz(self):
        small = COOMatrix.from_dense(random_dense(10, 10, 0.05, seed=7))
        large = COOMatrix.from_dense(random_dense(10, 10, 0.6, seed=7))
        assert large.nbytes > small.nbytes

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices())
    def test_property_dense_round_trip_via_scipy(self, coo):
        canon = coo.sum_duplicates()
        assert np.allclose(canon.to_dense(), canon.to_scipy().toarray())

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices())
    def test_property_sum_duplicates_idempotent(self, coo):
        once = coo.sum_duplicates()
        twice = once.sum_duplicates()
        assert np.array_equal(once.rows, twice.rows)
        assert np.array_equal(once.cols, twice.cols)
        assert np.allclose(once.values, twice.values)


# ----------------------------------------------------------------------
# CSR
# ----------------------------------------------------------------------
class TestCSR:
    def test_round_trip_with_coo_and_dense(self):
        dense = random_dense(7, 9, 0.3, seed=11)
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.to_dense(), dense)
        assert np.allclose(CSRMatrix.from_coo(csr.to_coo()).to_dense(), dense)

    def test_row_access(self):
        dense = random_dense(6, 6, 0.4, seed=13)
        csr = CSRMatrix.from_dense(dense)
        for i in range(6):
            cols, vals = csr.row(i)
            expected = np.nonzero(dense[i])[0]
            assert np.array_equal(np.sort(cols), expected)
            assert np.allclose(vals[np.argsort(cols)], dense[i][expected])

    def test_row_out_of_range_raises(self):
        csr = CSRMatrix.empty((3, 3))
        with pytest.raises(IndexError):
            csr.row(3)

    def test_get_and_contains(self):
        csr = CSRMatrix.from_dense(np.array([[0.0, 2.0], [0.0, 0.0]]))
        assert csr.get(0, 1) == pytest.approx(2.0)
        assert csr.get(1, 0) == 0.0
        assert csr.contains(0, 1)
        assert not csr.contains(1, 1)

    def test_invalid_indptr_raises(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])  # indptr too short
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])  # decreasing

    def test_transpose(self):
        dense = random_dense(5, 8, 0.3, seed=17)
        assert np.allclose(CSRMatrix.from_dense(dense).transpose().to_dense(), dense.T)

    def test_extract_rows(self):
        dense = random_dense(6, 6, 0.5, seed=19)
        csr = CSRMatrix.from_dense(dense)
        sub = csr.extract_rows(np.array([1, 3]))
        expected = np.zeros_like(dense)
        expected[[1, 3]] = dense[[1, 3]]
        assert np.allclose(sub.to_dense(), expected)

    def test_nonzero_rows_and_row_nnz(self):
        dense = np.zeros((4, 4))
        dense[1, 2] = 1.0
        dense[3, 0] = 2.0
        dense[3, 3] = 3.0
        csr = CSRMatrix.from_dense(dense)
        assert list(csr.nonzero_rows()) == [1, 3]
        assert list(csr.row_nnz()) == [0, 1, 0, 2]

    def test_equal(self):
        dense = random_dense(5, 5, 0.4, seed=23)
        a = CSRMatrix.from_dense(dense)
        b = CSRMatrix.from_dense(dense)
        c = CSRMatrix.from_dense(random_dense(5, 5, 0.4, seed=29))
        assert a.equal(b)
        assert not a.equal(c)

    def test_scipy_round_trip(self):
        dense = random_dense(6, 4, 0.5, seed=31)
        csr = CSRMatrix.from_dense(dense)
        back = CSRMatrix.from_scipy(csr.to_scipy())
        assert csr.equal(back)

    def test_scale_values(self):
        dense = random_dense(4, 4, 0.5, seed=37)
        scaled = CSRMatrix.from_dense(dense).scale_values(2.0)
        assert np.allclose(scaled.to_dense(), dense * 2.0)


# ----------------------------------------------------------------------
# DCSR
# ----------------------------------------------------------------------
class TestDCSR:
    def test_round_trip(self):
        dense = random_dense(10, 10, 0.1, seed=41)
        dcsr = DCSRMatrix.from_dense(dense)
        assert np.allclose(dcsr.to_dense(), dense)
        assert np.allclose(dcsr.to_csr().to_dense(), dense)
        assert np.allclose(DCSRMatrix.from_csr(dcsr.to_csr()).to_dense(), dense)

    def test_only_nonempty_rows_are_stored(self):
        dense = np.zeros((100, 5))
        dense[3, 1] = 1.0
        dense[77, 4] = 2.0
        dcsr = DCSRMatrix.from_dense(dense)
        assert dcsr.n_nonzero_rows == 2
        assert list(dcsr.nz_rows) == [3, 77]

    def test_hypersparse_memory_advantage_over_csr(self):
        # 1 non-zero in a matrix with many rows: DCSR must be much smaller.
        dense = np.zeros((5000, 50))
        dense[4321, 7] = 1.0
        dcsr = DCSRMatrix.from_dense(dense)
        csr = CSRMatrix.from_dense(dense)
        assert dcsr.nbytes < csr.nbytes / 10

    def test_iter_rows(self):
        dense = random_dense(8, 8, 0.2, seed=43)
        dcsr = DCSRMatrix.from_dense(dense)
        seen = {}
        for row, cols, vals in dcsr.iter_rows():
            seen[row] = dict(zip(cols.tolist(), vals.tolist()))
        for i in range(8):
            expected = {j: dense[i, j] for j in np.nonzero(dense[i])[0]}
            assert seen.get(i, {}) == pytest.approx(expected)

    def test_row_by_position(self):
        dense = np.zeros((6, 6))
        dense[2, [1, 4]] = [1.0, 2.0]
        dcsr = DCSRMatrix.from_dense(dense)
        row, cols, vals = dcsr.row_by_position(0)
        assert row == 2
        assert set(cols.tolist()) == {1, 4}
        with pytest.raises(IndexError):
            dcsr.row_by_position(1)

    def test_transpose(self):
        dense = random_dense(9, 4, 0.2, seed=47)
        assert np.allclose(DCSRMatrix.from_dense(dense).transpose().to_dense(), dense.T)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DCSRMatrix((3, 3), [0, 0], [0, 1, 2], [0, 1], [1.0])  # repeated nz row

    def test_empty(self):
        dcsr = DCSRMatrix.empty((5, 5))
        assert dcsr.nnz == 0
        assert dcsr.n_nonzero_rows == 0
        assert list(dcsr.iter_rows()) == []

    @settings(max_examples=25, deadline=None)
    @given(coo=coo_matrices(max_dim=10))
    def test_property_csr_dcsr_equivalence(self, coo):
        csr = CSRMatrix.from_coo(coo)
        dcsr = DCSRMatrix.from_coo(coo)
        assert np.allclose(csr.to_dense(), dcsr.to_dense())
        assert csr.nnz == dcsr.nnz
