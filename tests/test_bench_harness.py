"""Tests for the benchmark harness: reporting, profiles and experiment drivers.

The drivers are exercised with a deliberately tiny profile so these tests
stay fast; the actual measurement campaign lives under ``benchmarks/``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import ablations, experiments_spgemm, experiments_updates, get_profile
from repro.bench.config import BenchProfile, PROFILES, paper_regime_machine
from repro.bench.reporting import ExperimentResult, format_table, print_result
from repro.bench.workloads import draw_batch, prepare_instance, split_batches
from repro.runtime import StatCategory


TINY = BenchProfile(
    name="tiny",
    n_ranks=4,
    scale_divisor=65536,
    instances=("LiveJournal",),
    update_batch_sizes=(8, 16),
    spgemm_batch_sizes=(4,),
    spgemm_general_batch_sizes=(4,),
    batches_per_config=1,
    scaling_ranks=(1, 4),
    weak_scaling_batch=32,
    spgemm_scaling_nnz_per_rank=32,
    rmat_strong_total_log2=10,
    rmat_weak_per_rank_log2=8,
)


class TestReporting:
    def test_experiment_result_round_trip(self):
        result = ExperimentResult("figure_x", "demo", ["a", "b"])
        result.add_row(1, 2.0)
        result.add_row(3, 4.0)
        assert result.column("a") == [1, 3]
        assert result.filtered(a=3) == [[3, 4.0]]
        payload = json.loads(result.to_json())
        assert payload["columns"] == ["a", "b"]
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_format_table_and_print(self, capsys):
        result = ExperimentResult("figure_x", "demo", ["name", "value"], metadata={"k": 1})
        result.add_row("x", 0.5)
        print_result(result)
        out = capsys.readouterr().out
        assert "figure_x" in out and "name" in out and "0.5" in out
        assert format_table(["c"], []).count("\n") == 1

    def test_save(self, tmp_path):
        result = ExperimentResult("figure_x", "demo", ["v"])
        result.add_row(np.int64(7))
        path = tmp_path / "out.json"
        result.save(str(path))
        assert json.loads(path.read_text())["rows"] == [[7]]


class TestProfiles:
    def test_profiles_exist_and_resolve(self, monkeypatch):
        assert set(PROFILES) == {"smoke", "default", "large"}
        assert get_profile("smoke").name == "smoke"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "default")
        assert get_profile().name == "default"
        with pytest.raises(KeyError):
            get_profile("bogus")

    def test_paper_regime_machine_is_slower_network(self):
        assert paper_regime_machine().beta > get_profile("smoke").machine.beta


class TestWorkloads:
    def test_prepare_instance_and_pools(self):
        workload = prepare_instance("LiveJournal", scale_divisor=65536, seed=1)
        assert workload.nnz > 0
        first, second = workload.split_half(seed=2)
        assert first[0].size + second[0].size == workload.nnz
        batch = draw_batch(second, 10, seed=3)
        assert batch[0].size == 10
        batches = split_batches(second, 3, 5, seed=4)
        assert len(batches) == 3 and all(b[0].size == 5 for b in batches)
        per_rank = workload.all_tuples_per_rank(4)
        assert sum(v[0].size for v in per_rank.values()) == workload.nnz


class TestDrivers:
    def test_table1(self):
        result = experiments_updates.run_table1(TINY)
        assert len(result.rows) == 12
        assert "LiveJournal" in result.column("instance")

    def test_construction_driver(self):
        result = experiments_updates.run_construction(TINY, backends=("ours", "combblas"))
        assert set(result.column("backend")) == {"ours", "combblas"}
        assert all(t > 0 for t in result.column("time_ms"))

    def test_insertion_driver(self):
        result = experiments_updates.run_insertions(TINY, backends=("ours", "combblas"))
        assert set(result.column("batch_per_rank")) == {8, 16}
        assert all(t > 0 for t in result.column("mean_time_ms"))

    def test_update_and_deletion_drivers(self):
        upd = experiments_updates.run_updates_deletions(
            TINY, backends=("ours",), operation="update"
        )
        assert upd.experiment == "figure_5a"
        dele = experiments_updates.run_updates_deletions(
            TINY, backends=("ours", "petsc"), operation="delete"
        )
        # PETSc does not support deletions and must be absent
        assert set(dele.column("backend")) == {"ours"}
        with pytest.raises(ValueError):
            experiments_updates.run_updates_deletions(TINY, operation="bogus")

    def test_weak_scaling_and_breakdown_drivers(self):
        scaling = experiments_updates.run_insert_weak_scaling(TINY)
        assert scaling.column("n_ranks") == [1, 4]
        breakdown = experiments_updates.run_insert_breakdown(TINY)
        phases = set(breakdown.column("phase"))
        assert phases == set(StatCategory.INSERTION_BREAKDOWN)

    def test_rmat_scaling_driver(self):
        result = experiments_updates.run_rmat_scaling(TINY)
        modes = set(result.column("mode"))
        assert modes == {"strong", "weak"}

    def test_spgemm_algebraic_driver(self):
        result = experiments_spgemm.run_spgemm_algebraic(
            TINY, backends=("ours", "combblas")
        )
        assert set(result.column("backend")) == {"ours", "combblas"}
        assert all(t > 0 for t in result.column("mean_time_ms"))

    def test_spgemm_general_driver(self):
        result = experiments_spgemm.run_spgemm_general(TINY, backends=("ours", "combblas"))
        assert set(result.column("backend")) == {"ours", "combblas"}

    def test_spgemm_scaling_and_breakdown_drivers(self):
        scaling = experiments_spgemm.run_spgemm_weak_scaling(TINY)
        assert scaling.column("n_ranks") == [1, 4]
        breakdown = experiments_spgemm.run_spgemm_breakdown(TINY)
        assert set(breakdown.column("phase")) == set(StatCategory.SPGEMM_BREAKDOWN)

    def test_ablation_drivers(self):
        redist = ablations.run_redistribution_ablation(TINY)
        assert {"two_phase", "single_phase"} == set(redist.column("strategy"))
        storage = ablations.run_dynamic_storage_ablation(TINY)
        assert {"dhb_dynamic", "static_rebuild"} == set(storage.column("storage"))
        crossover = ablations.run_summa_crossover_ablation(TINY)
        assert all(nnz > 0 for nnz in crossover.column("update_nnz"))
