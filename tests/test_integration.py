"""Integration tests: full pipelines across grid sizes and workloads.

These tests stitch the whole stack together — graph generation, random
permutation, distributed construction, batches of mixed updates, both
dynamic SpGEMM algorithms and the competitor baselines — and check the
end state against sequential recomputation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DynamicDistMatrix,
    DynamicProduct,
    ProcessGrid,
    SimMPI,
    StaticDistMatrix,
    UpdateBatch,
    partition_tuples_round_robin,
    summa_spgemm,
)
from repro.competitors import get_backend
from repro.graphs import generate_instance, rmat_edges
from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.distributed import IndexPermutation

from tests.conftest import dist_from_dense, random_dense


@pytest.mark.parametrize("p", [1, 4, 9, 16])
def test_full_pipeline_on_surrogate_instance(p):
    """Construct a Table-I surrogate, stream insertions, verify the product."""
    comm, grid = SimMPI(p), ProcessGrid(p)
    n, rows, cols, vals = generate_instance("LiveJournal", scale_divisor=65536, seed=p)
    perm = IndexPermutation(n, seed=p)
    rows, cols = perm.apply(rows), perm.apply(cols)

    # split: 60% initial adjacency for B, A' grows from the rest
    rng = np.random.default_rng(p)
    order = rng.permutation(rows.size)
    cut = int(rows.size * 0.6)
    b_sel, a_pool = order[:cut], order[cut:]

    b = DynamicDistMatrix.from_tuples(
        comm,
        grid,
        (n, n),
        partition_tuples_round_robin(rows[b_sel], cols[b_sel], vals[b_sel], p, seed=1),
        combine="last",
    )
    a = DynamicDistMatrix.empty(comm, grid, (n, n))
    product = DynamicProduct(comm, grid, a, b, mode="algebraic")

    batch_size = max(4, a_pool.size // 3)
    for step in range(3):
        sel = a_pool[step * batch_size : (step + 1) * batch_size]
        if sel.size == 0:
            break
        batch = UpdateBatch.from_global(
            (n, n), rows[sel], cols[sel], vals[sel], p, kind="insert", seed=step
        )
        product.apply_updates(a_batch=batch)
    assert product.check_consistency()
    # modelled time advanced and communication was recorded
    assert comm.elapsed() > 0
    assert comm.stats.total_bytes() > 0


@pytest.mark.parametrize("p", [4, 16])
def test_dynamic_vs_static_recomputation_agree_on_rmat(p):
    """Dynamic SpGEMM result equals a SUMMA recomputation on R-MAT data."""
    comm, grid = SimMPI(p), ProcessGrid(p)
    n, src, dst = rmat_edges(7, 4, seed=p, remove_self_loops=True, deduplicate=True)
    weights = np.random.default_rng(p).random(src.size)
    half = src.size // 2
    b = DynamicDistMatrix.from_tuples(
        comm,
        grid,
        (n, n),
        partition_tuples_round_robin(src, dst, weights, p, seed=2),
        combine="last",
    )
    a = DynamicDistMatrix.empty(comm, grid, (n, n))
    product = DynamicProduct(comm, grid, a, b, mode="algebraic")
    batch = UpdateBatch.from_global(
        (n, n), src[:half], dst[:half], weights[:half], p, kind="insert", seed=3
    )
    product.apply_updates(a_batch=batch)

    static_result, _ = summa_spgemm(comm, grid, product.a, b, output="static")
    assert np.allclose(product.c.to_dense(), static_result.to_dense())


def test_min_plus_lifecycle_with_mixed_update_kinds():
    """General-mode product survives interleaved inserts, updates, deletes."""
    p = 9
    comm, grid = SimMPI(p), ProcessGrid(p)
    n = 21
    a0 = random_dense(n, n, 0.2, MIN_PLUS, seed=1)
    b0 = random_dense(n, n, 0.2, MIN_PLUS, seed=2)
    product = DynamicProduct(
        comm,
        grid,
        dist_from_dense(comm, grid, a0, MIN_PLUS),
        dist_from_dense(comm, grid, b0, MIN_PLUS),
        semiring=MIN_PLUS,
        mode="general",
    )
    model = a0.copy()
    rng = np.random.default_rng(3)
    for step in range(3):
        # overwrite a few weights (possibly increasing them)
        nz = np.argwhere(~np.isinf(model))
        sel = nz[rng.choice(len(nz), size=5, replace=False)]
        new_vals = rng.uniform(0.5, 9.0, len(sel))
        product.apply_updates(
            a_batch=UpdateBatch.from_global(
                (n, n), sel[:, 0], sel[:, 1], new_vals, p,
                kind="update", semiring=MIN_PLUS, seed=10 + step,
            )
        )
        for (r, c), v in zip(sel, new_vals):
            model[r, c] = v
        # delete a few entries
        nz = np.argwhere(~np.isinf(model))
        sel = nz[rng.choice(len(nz), size=4, replace=False)]
        product.apply_updates(
            a_batch=UpdateBatch.from_global(
                (n, n), sel[:, 0], sel[:, 1], np.zeros(len(sel)), p,
                kind="delete", semiring=MIN_PLUS, seed=20 + step,
            )
        )
        for r, c in sel:
            model[r, c] = np.inf
        expected = MIN_PLUS.dense_matmul(model, b0)
        assert np.allclose(product.c.to_dense(), expected, equal_nan=True)


def test_backends_and_dynamic_structure_agree_on_streaming_workload():
    """All backends end with the same matrix after the same update stream."""
    p = 16
    grid = ProcessGrid(p)
    n, rows, cols, vals = generate_instance("orkut", scale_divisor=65536, seed=7)
    rng = np.random.default_rng(7)
    insert_extra = (
        rng.integers(0, n, 64),
        rng.integers(0, n, 64),
        rng.random(64) + 0.5,
    )
    delete_sel = rng.choice(rows.size, size=32, replace=False)
    finals = {}
    for backend_name in ("ours", "combblas", "ctf"):
        comm = SimMPI(p)
        backend = get_backend(backend_name)(comm, grid, (n, n))
        backend.construct(partition_tuples_round_robin(rows, cols, vals, p, seed=1))
        backend.insert_batch(partition_tuples_round_robin(*insert_extra, p, seed=2))
        backend.delete_batch(
            partition_tuples_round_robin(
                rows[delete_sel], cols[delete_sel], np.zeros(32), p, seed=3
            )
        )
        finals[backend_name] = backend.to_coo_global().to_dense()
    assert np.allclose(finals["combblas"], finals["ours"])
    assert np.allclose(finals["ctf"], finals["ours"])


def test_hypersparse_update_matrices_use_less_bandwidth_than_operands():
    """The central claim: update-driven communication ≪ operand size."""
    p = 16
    comm, grid = SimMPI(p), ProcessGrid(p)
    n, rows, cols, vals = generate_instance("LiveJournal", scale_divisor=32768, seed=11)
    b = StaticDistMatrix.from_tuples(
        comm, grid, (n, n),
        partition_tuples_round_robin(rows, cols, vals, p, seed=1),
        PLUS_TIMES, layout="csr",
    )
    a = DynamicDistMatrix.empty(comm, grid, (n, n))
    c = DynamicDistMatrix.empty(comm, grid, (n, n))
    from repro import build_update_matrix, dynamic_spgemm_algebraic

    sel = np.random.default_rng(2).choice(rows.size, size=max(16, rows.size // 50), replace=False)
    per_rank = partition_tuples_round_robin(rows[sel], cols[sel], vals[sel], p, seed=3)

    snap_dyn = comm.stats.snapshot()
    a_star = build_update_matrix(comm, grid, a.dist, per_rank, PLUS_TIMES)
    dynamic_spgemm_algebraic(comm, grid, a, b, a_star, None, c)
    dyn_bytes = comm.stats.diff(snap_dyn).total_bytes()

    snap_summa = comm.stats.snapshot()
    summa_spgemm(comm, grid, a_star, b, output="static")
    summa_bytes = comm.stats.diff(snap_summa).total_bytes()

    # Algorithm 1 avoids broadcasting B, so it must move (much) less data
    # than SUMMA on the same inputs.
    assert dyn_bytes < summa_bytes
