"""Property tests for the layout-agnostic local SpGEMM kernels.

The vectorised :func:`spgemm_local` kernel is pitted against the
loop-based :func:`spgemm_rowwise_spa` sparse-accumulator oracle on randomly
generated operands, across every standard semiring and every combination of
the four local matrix layouts (COO, CSR, DCSR, DHB) — exercising the
uniform ``iter_rows()`` / ``row_arrays()`` row-access protocol that replaced
the old per-layout ``isinstance`` dispatch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.semirings import get_semiring
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    DCSRMatrix,
    DHBMatrix,
    register_row_layout,
    row_reader,
    spgemm_local,
    spgemm_rowwise_spa,
)

SEMIRINGS = ["plus_times", "min_plus", "max_plus", "max_min", "max_times", "boolean"]

LAYOUTS = {
    "coo": lambda coo: coo,
    "csr": CSRMatrix.from_coo,
    "dcsr": DCSRMatrix.from_coo,
    "dhb": DHBMatrix.from_coo,
}


def random_coo(shape, semiring, rng, density=0.15) -> COOMatrix:
    """A random deduplicated COO matrix with semiring-friendly values."""
    n, m = shape
    nnz = max(1, int(n * m * density))
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, m, size=nnz)
    values = rng.integers(1, 5, size=nnz).astype(np.float64)
    return COOMatrix(
        shape=shape,
        rows=rows,
        cols=cols,
        values=semiring.coerce(values),
        semiring=semiring,
    ).sum_duplicates()


def assert_same_result(result: COOMatrix, oracle: COOMatrix) -> None:
    dense_result = result.sum_duplicates().to_dense()
    dense_oracle = oracle.sum_duplicates().to_dense()
    assert dense_result.shape == dense_oracle.shape
    assert np.allclose(
        np.asarray(dense_result, dtype=np.float64),
        np.asarray(dense_oracle, dtype=np.float64),
        equal_nan=True,
    )


@pytest.mark.parametrize("semiring_name", SEMIRINGS)
@pytest.mark.parametrize("layout_name", sorted(LAYOUTS))
@pytest.mark.parametrize("seed", [3, 17])
def test_spgemm_local_matches_spa_oracle(semiring_name, layout_name, seed):
    semiring = get_semiring(semiring_name)
    rng = np.random.default_rng(seed)
    a_coo = random_coo((13, 9), semiring, rng)
    b_coo = random_coo((9, 11), semiring, rng)
    convert = LAYOUTS[layout_name]
    a, b = convert(a_coo), convert(b_coo)

    result, bloom = spgemm_local(a, b, semiring, use_scipy=False)
    oracle = spgemm_rowwise_spa(a_coo, b_coo, semiring)
    assert bloom is None
    assert_same_result(result, oracle)


@pytest.mark.parametrize("left", sorted(LAYOUTS))
@pytest.mark.parametrize("right", sorted(LAYOUTS))
def test_spgemm_local_mixed_layout_operands(left, right):
    semiring = get_semiring("min_plus")
    rng = np.random.default_rng(41)
    a_coo = random_coo((8, 10), semiring, rng)
    b_coo = random_coo((10, 6), semiring, rng)
    a, b = LAYOUTS[left](a_coo), LAYOUTS[right](b_coo)

    result, _ = spgemm_local(a, b, semiring, use_scipy=False)
    oracle = spgemm_rowwise_spa(a_coo, b_coo, semiring)
    assert_same_result(result, oracle)


def test_scipy_fast_path_agrees_with_kernel():
    semiring = get_semiring("plus_times")
    rng = np.random.default_rng(7)
    a = random_coo((12, 12), semiring, rng)
    b = random_coo((12, 12), semiring, rng)
    fast, _ = spgemm_local(a, b, semiring, use_scipy=True)
    slow, _ = spgemm_local(a, b, semiring, use_scipy=False)
    assert_same_result(fast, slow)


class TestRowAccessCaches:
    def test_dcsr_row_index_is_built_once(self):
        semiring = get_semiring("plus_times")
        rng = np.random.default_rng(5)
        mat = DCSRMatrix.from_coo(random_coo((50, 8), semiring, rng, density=0.05))
        assert mat._row_index is None
        cols, vals = mat.row_arrays(int(mat.nz_rows[0]))
        assert cols.size == vals.size > 0
        index = mat._row_index
        assert index is not None
        mat.row_arrays(3)
        assert mat._row_index is index

    def test_coo_views_are_cached(self):
        semiring = get_semiring("plus_times")
        rng = np.random.default_rng(6)
        mat = random_coo((10, 10), semiring, rng)
        list(mat.iter_rows())
        first_dcsr = mat._dcsr_view
        list(mat.iter_rows())
        assert mat._dcsr_view is first_dcsr
        mat.row_arrays(0)
        first_csr = mat._csr_view
        mat.row_arrays(5)
        assert mat._csr_view is first_csr

    def test_empty_rows_return_empty_arrays(self):
        semiring = get_semiring("plus_times")
        mat = DCSRMatrix.from_coo(
            COOMatrix.from_tuples((6, 6), [(0, 1, 2.0)], semiring)
        )
        cols, vals = mat.row_arrays(4)
        assert cols.size == 0 and vals.size == 0


class TestRowReaderRegistry:
    def test_builtin_layouts_resolve(self):
        semiring = get_semiring("plus_times")
        rng = np.random.default_rng(9)
        coo = random_coo((5, 5), semiring, rng)
        for convert in LAYOUTS.values():
            reader = row_reader(convert(coo))
            rows = list(reader.iter_rows())
            assert rows
            cols, vals = reader.row_arrays(rows[0][0])
            assert cols.size == vals.size

    def test_duck_typed_layout_is_accepted(self):
        class MiniLayout:
            shape = (2, 2)
            semiring = get_semiring("plus_times")

            def iter_rows(self):
                yield 0, np.array([1], dtype=np.int64), np.array([3.0])

            def row_arrays(self, i):
                if i == 0:
                    return np.array([1], dtype=np.int64), np.array([3.0])
                return np.empty(0, dtype=np.int64), np.empty(0)

        result, _ = spgemm_local(
            MiniLayout(), MiniLayout(), MiniLayout.semiring, use_scipy=False
        )
        # A's only entry is (0, 1) and B's row 1 is empty, so C is empty.
        assert result.nnz == 0

    def test_registered_adapter_is_preferred(self):
        class Wrapped:
            def __init__(self, inner):
                self.inner = inner
                self.shape = inner.shape

        register_row_layout(Wrapped, lambda w: w.inner)
        semiring = get_semiring("plus_times")
        rng = np.random.default_rng(11)
        coo = random_coo((6, 6), semiring, rng)
        a = Wrapped(CSRMatrix.from_coo(coo))
        result, _ = spgemm_local(a, CSRMatrix.from_coo(coo), semiring, use_scipy=False)
        oracle = spgemm_rowwise_spa(coo, coo, semiring)
        assert_same_result(result, oracle)

    def test_unsupported_layout_raises_type_error(self):
        with pytest.raises(TypeError, match="unsupported operand layout"):
            row_reader(object())
