"""Tests for the distributed layer: distribution, redistribution, matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BlockDistribution,
    DynamicDistMatrix,
    IndexPermutation,
    ProcessGrid,
    SimMPI,
    StaticDistMatrix,
    UpdateBatch,
    build_update_matrix,
    partition_tuples_round_robin,
)
from repro.distributed import (
    redistribute_tuples,
    redistribute_tuples_single_phase,
)
from repro.distributed.redistribution import group_by_buckets
from repro.semirings import MIN_PLUS, PLUS_TIMES

from tests.conftest import dist_from_dense, random_dense, static_from_dense


class TestBlockDistribution:
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_block_shapes_cover_matrix(self, p):
        grid = ProcessGrid(p)
        dist = BlockDistribution(37, 23, grid)
        total = sum(
            dist.block_shape(i, j)[0] * dist.block_shape(i, j)[1]
            for i in range(grid.q)
            for j in range(grid.q)
        )
        assert total == 37 * 23

    def test_owner_and_local_round_trip(self):
        grid = ProcessGrid(9)
        dist = BlockDistribution(20, 20, grid)
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, 50)
        cols = rng.integers(0, 20, 50)
        owners = dist.owner_of(rows, cols)
        for rank in np.unique(owners):
            sel = owners == rank
            lr, lc = dist.to_local(int(rank), rows[sel], cols[sel])
            gr, gc = dist.to_global(int(rank), lr, lc)
            assert np.array_equal(gr, rows[sel])
            assert np.array_equal(gc, cols[sel])

    def test_out_of_bounds(self):
        grid = ProcessGrid(4)
        dist = BlockDistribution(10, 10, grid)
        with pytest.raises(IndexError):
            dist.block_row_of(np.array([10]))
        with pytest.raises(IndexError):
            dist.to_local(0, np.array([9]), np.array([9]))  # owned by rank 3

    def test_degenerate_shapes_reject_all_coordinates(self):
        """Regression: the bounds guards used ``max(n_rows, 1)``, so a
        zero-row (or zero-column) distribution silently accepted coordinate
        0 and mapped it into a block that does not exist."""
        grid = ProcessGrid(4)
        zero_rows = BlockDistribution(0, 10, grid)
        with pytest.raises(IndexError):
            zero_rows.block_row_of(np.array([0]))
        assert zero_rows.block_col_of(np.array([5])).tolist() == [1]
        zero_cols = BlockDistribution(10, 0, grid)
        with pytest.raises(IndexError):
            zero_cols.block_col_of(np.array([0]))
        with pytest.raises(IndexError):
            zero_cols.owner_of(np.array([0]), np.array([0]))
        # empty queries remain valid on fully degenerate shapes
        empty = np.array([], dtype=np.int64)
        assert BlockDistribution(0, 0, grid).owner_of(empty, empty).size == 0

    def test_permutation_round_trip(self):
        perm = IndexPermutation(100, seed=3)
        idx = np.arange(100)
        assert np.array_equal(perm.undo(perm.apply(idx)), idx)
        assert sorted(perm.apply(idx).tolist()) == list(range(100))
        ident = IndexPermutation.identity(10)
        assert np.array_equal(ident.apply(np.arange(10)), np.arange(10))
        with pytest.raises(IndexError):
            perm.apply(np.array([100]))


class TestRedistribution:
    @staticmethod
    def _make_tuples(n, p, count, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, n, count)
        cols = rng.integers(0, n, count)
        vals = rng.random(count)
        return partition_tuples_round_robin(rows, cols, vals, p, seed=seed), (rows, cols, vals)

    @pytest.mark.parametrize("p", [1, 4, 16])
    @pytest.mark.parametrize("strategy", ["two_phase", "single_phase"])
    def test_no_tuple_lost_and_all_land_on_owner(self, p, strategy):
        n = 40
        comm = SimMPI(p)
        grid = ProcessGrid(p)
        dist = BlockDistribution(n, n, grid)
        per_rank, (rows, cols, vals) = self._make_tuples(n, p, 300, seed=p)
        fn = redistribute_tuples if strategy == "two_phase" else redistribute_tuples_single_phase
        routed = fn(comm, grid, dist, per_rank)
        got = []
        for rank, (r, c, v) in routed.items():
            owners = dist.owner_of(r, c) if r.size else r
            assert np.all(owners == rank)
            got.extend(zip(r.tolist(), c.tolist(), v.tolist()))
        expected = sorted(zip(rows.tolist(), cols.tolist(), vals.tolist()))
        assert sorted(got) == expected

    def test_two_phase_equals_single_phase_content(self):
        n, p = 30, 16
        comm = SimMPI(p)
        grid = ProcessGrid(p)
        dist = BlockDistribution(n, n, grid)
        per_rank, _ = self._make_tuples(n, p, 500, seed=7)
        a = redistribute_tuples(comm, grid, dist, per_rank)
        b = redistribute_tuples_single_phase(comm, grid, dist, per_rank)
        for rank in range(p):
            ta = sorted(zip(*[arr.tolist() for arr in a[rank]]))
            tb = sorted(zip(*[arr.tolist() for arr in b[rank]]))
            assert ta == tb

    def test_group_by_buckets_counting_and_comparison(self):
        rows = np.array([5, 1, 3, 1])
        cols = np.array([0, 2, 1, 1])
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        buckets = np.array([1, 0, 1, 0])
        (r, c, v), offsets = group_by_buckets(rows, cols, vals, buckets, 2, mode="counting")
        assert list(offsets) == [0, 2, 4]
        assert set(zip(r[:2].tolist(), c[:2].tolist())) == {(1, 2), (1, 1)}
        (r2, _c2, _v2), offsets2 = group_by_buckets(
            rows, cols, vals, buckets, 2, mode="comparison"
        )
        assert list(offsets2) == [0, 2, 4]
        assert list(r2[:2]) == [1, 1]  # fully sorted within bucket
        with pytest.raises(ValueError):
            group_by_buckets(rows, cols, vals, buckets, 2, mode="bogus")
        with pytest.raises(ValueError):
            group_by_buckets(rows, cols, vals, np.array([0, 0, 5, 0]), 2)

    def test_empty_input(self):
        p = 4
        comm = SimMPI(p)
        grid = ProcessGrid(p)
        dist = BlockDistribution(10, 10, grid)
        routed = redistribute_tuples(comm, grid, dist, {})
        assert all(r[0].size == 0 for r in routed.values())

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000), count=st.integers(0, 200))
    def test_property_redistribution_is_a_permutation_routing(self, seed, count):
        n, p = 25, 9
        comm = SimMPI(p)
        grid = ProcessGrid(p)
        dist = BlockDistribution(n, n, grid)
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, n, count)
        cols = rng.integers(0, n, count)
        vals = rng.random(count)
        per_rank = partition_tuples_round_robin(rows, cols, vals, p, seed=seed)
        routed = redistribute_tuples(comm, grid, dist, per_rank)
        total = sum(r[0].size for r in routed.values())
        assert total == count


class TestDistMatrices:
    def test_dynamic_from_tuples_matches_dense(self, any_grid):
        comm, grid = any_grid
        dense = random_dense(22, 22, 0.2, seed=grid.n_ranks)
        mat = dist_from_dense(comm, grid, dense)
        assert np.allclose(mat.to_dense(), dense)
        assert mat.nnz() == int((dense != 0).sum())
        assert sum(mat.block_nnz().values()) == mat.nnz()

    def test_static_from_tuples_matches_dense(self, any_grid):
        comm, grid = any_grid
        dense = random_dense(18, 25, 0.2, seed=grid.n_ranks + 1)
        for layout in ("csr", "dcsr"):
            mat = static_from_dense(comm, grid, dense, layout=layout)
            assert np.allclose(mat.to_dense(), dense)
            assert mat.layout == layout

    def test_get_routes_to_owner(self, comm16, grid16):
        dense = random_dense(20, 20, 0.3, seed=5)
        mat = dist_from_dense(comm16, grid16, dense)
        for i, j in [(0, 0), (7, 13), (19, 19)]:
            assert mat.get(i, j) == pytest.approx(dense[i, j])

    def test_add_merge_mask_updates_are_local_and_correct(self, comm16, grid16):
        dense = random_dense(24, 24, 0.25, seed=9)
        mat = dist_from_dense(comm16, grid16, dense)
        update_dense = random_dense(24, 24, 0.05, seed=11)
        rows, cols = np.nonzero(update_dense)
        vals = update_dense[rows, cols]
        batch = UpdateBatch.from_global((24, 24), rows, cols, vals, 16, seed=13)
        update = build_update_matrix(comm16, grid16, mat.dist, batch)
        comm_bytes_before = comm16.stats.total_bytes()
        mat.add_update(update)
        # add/merge/mask are purely local: no new communication
        assert comm16.stats.total_bytes() == comm_bytes_before
        assert np.allclose(mat.to_dense(), dense + update_dense)

        mat.merge_update(update)
        expected = dense + update_dense
        expected[rows, cols] = vals
        assert np.allclose(mat.to_dense(), expected)

        mat.mask_update(update)
        expected[rows, cols] = 0.0
        assert np.allclose(mat.to_dense(), expected)

    def test_update_validation_errors(self, comm16, grid16):
        mat = DynamicDistMatrix.empty(comm16, grid16, (10, 10))
        wrong_shape = StaticDistMatrix.empty(comm16, grid16, (11, 11))
        with pytest.raises(ValueError):
            mat.add_update(wrong_shape)
        wrong_sr = StaticDistMatrix.empty(comm16, grid16, (10, 10), MIN_PLUS)
        with pytest.raises(ValueError):
            mat.add_update(wrong_sr)
        with pytest.raises(ValueError):
            mat.insert_tuples({}, combine="bogus")
        with pytest.raises(ValueError):
            mat.insert_tuples({}, redistribution="bogus")

    def test_static_dynamic_round_trip(self, comm16, grid16):
        dense = random_dense(16, 16, 0.3, seed=17)
        dyn = dist_from_dense(comm16, grid16, dense)
        static = dyn.to_static(layout="dcsr")
        assert np.allclose(static.to_dense(), dense)
        back = static.to_dynamic()
        assert np.allclose(back.to_dense(), dense)

    def test_copy_is_independent(self, comm16, grid16):
        dense = random_dense(12, 12, 0.3, seed=19)
        mat = dist_from_dense(comm16, grid16, dense)
        clone = mat.copy()
        clone.insert_tuples({0: (np.array([0]), np.array([0]), np.array([99.0]))}, combine="last")
        assert mat.get(0, 0) == pytest.approx(dense[0, 0])
        assert clone.get(0, 0) == pytest.approx(99.0)

    def test_update_batch_validation(self):
        with pytest.raises(ValueError, match="kind"):
            UpdateBatch((5, 5), {}, kind="bogus")
        with pytest.raises(ValueError, match="outside"):
            UpdateBatch((5, 5), {0: (np.array([7]), np.array([0]), np.array([1.0]))})
        with pytest.raises(ValueError, match="identical lengths"):
            UpdateBatch((5, 5), {0: (np.array([1]), np.array([0, 1]), np.array([1.0]))})

    def test_update_batch_round_trip_and_counts(self):
        rows = np.array([0, 1, 2, 3])
        cols = np.array([1, 2, 3, 4])
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        batch = UpdateBatch.from_global((5, 5), rows, cols, vals, 4, seed=2)
        assert batch.total_tuples == 4
        assert batch.to_global_coo().nnz == 4
        empty_rank = batch.tuples_of(99)
        assert empty_rank[0].size == 0

    def test_partition_round_robin_covers_all(self):
        rows = np.arange(10)
        parts = partition_tuples_round_robin(rows, rows, rows.astype(float), 3, seed=1)
        total = sum(p[0].size for p in parts.values())
        assert total == 10
        with pytest.raises(ValueError):
            partition_tuples_round_robin(rows, rows, rows, 0)
        with pytest.raises(ValueError):
            partition_tuples_round_robin(rows, rows[:5], rows.astype(float), 2)

    def test_build_update_matrix_min_plus_merge(self, comm16, grid16):
        dense = random_dense(12, 12, 0.2, MIN_PLUS, seed=23)
        mat = dist_from_dense(comm16, grid16, dense, MIN_PLUS)
        batch = UpdateBatch.from_global(
            (12, 12), np.array([0, 0]), np.array([1, 1]), np.array([5.0, 2.0]),
            16, kind="update", semiring=MIN_PLUS, seed=1,
        )
        update = build_update_matrix(
            comm16, grid16, mat.dist, batch, MIN_PLUS, combine="last"
        )
        mat.merge_update(update)
        # MERGE overwrites with one of the batch values (the batch carries
        # two writes to the same coordinate; which one is "last" depends on
        # the routing order, but the old value must be gone)
        assert mat.get(0, 1) in (pytest.approx(5.0), pytest.approx(2.0))
