"""Kill-and-recover drill matrix: byte-identical continuation after crashes.

The centrepiece of the fault-tolerance contract: for every scenario
generator, both in-process backends and all four local layouts, a run that
is killed at a chosen step and restored from its last checkpoint must be
**byte-identical** to the uninterrupted run — final tuples of ``A`` (and
``C`` where maintained), application query payloads, and per-category
communication volume, with all recovery traffic confined to the dedicated
``recovery`` category.

Kill points are parametrised over the interesting positions:

* the very first step (nothing checkpointed yet → full retry);
* mid-stream (the common case, restored from the checkpoint);
* immediately after a dynamic-SpGEMM multiply (product + filter state);
* immediately after an online repartition migration (placement state).

Loopback (emulated multi-process) worlds of size 1, 2 and 4 run the same
drills through :func:`repro.scenarios.run_with_recovery`, sharing one
durable :class:`~repro.scenarios.CheckpointStore` and one fault injector
across world restarts — the same shape as the ``mpiexec`` CI leg.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.scenarios as S
from repro.runtime import MPIBackend
from repro.runtime.faults import FaultInjector, FaultPlan, faults_from_env
from repro.runtime.loopback import run_spmd
from repro.runtime.partitioner import REPARTITION_ENV_VAR

N_RANKS = 4
SEED = 2022
CHECKPOINT_AT = 3
CRASH_AT = 5
BACKENDS = ("sim", "mpi")
#: loopback world sizes for the multi-process drill leg
WORLD_SIZES = (1, 2, 4)
#: generators for the loopback leg (the in-process matrix sweeps them all)
LOOPBACK_GENERATORS = (
    "grow_from_empty",
    "mixed_update_multiply",
    "social_triangle_stream",
    "dhb_bucket_collision_stream",
)


def _scenario(generator_name: str) -> S.Scenario:
    return S.SCENARIO_GENERATORS[generator_name](seed=SEED)


def _base_trace(generator_name: str) -> S.Scenario:
    """The checkpointed trace both the reference and the drill replay."""
    return S.with_checkpoint(_scenario(generator_name), at=CHECKPOINT_AT)


def _replay(scenario: S.Scenario, backend: str, layout: str, **kwargs):
    with warnings.catch_warnings():
        # the emulated-mpi backend warns once when mpi4py is absent
        warnings.simplefilter("ignore", RuntimeWarning)
        return S.replay(
            scenario, backend=backend, n_ranks=N_RANKS, layout=layout, **kwargs
        )


def _assert_continuation_identical(reference, recovered, *, what: str) -> None:
    """Tuples, app payloads and non-recovery comm volume must all match."""
    for name, a, b in zip("rcv", reference.final_a, recovered.final_a):
        assert np.array_equal(a, b), f"{what}: final A ({name}) differs"
    assert (reference.final_c is None) == (recovered.final_c is None)
    if reference.final_c is not None:
        for name, a, b in zip("rcv", reference.final_c, recovered.final_c):
            assert np.array_equal(a, b), f"{what}: final C ({name}) differs"
    assert len(reference.app_results) == len(recovered.app_results), what
    for want, got in zip(reference.app_results, recovered.app_results):
        assert (want.kind, want.label) == (got.kind, got.label), what
        if isinstance(want.payload, tuple):
            for a, b in zip(want.payload, got.payload):
                assert np.array_equal(a, b), f"{what}: {want.label} payload"
        else:
            assert want.payload == got.payload, f"{what}: {want.label} payload"
    signature = dict(recovered.comm_signature())
    signature.pop("recovery", None)
    assert signature == dict(reference.comm_signature()), (
        f"{what}: non-recovery comm volume differs"
    )


@pytest.fixture(scope="module")
def references() -> dict:
    """Uninterrupted reference runs, computed once per (gen, backend, layout)."""
    return {}


def _reference(references: dict, generator_name: str, backend: str, layout: str):
    key = (generator_name, backend, layout)
    if key not in references:
        references[key] = _replay(_base_trace(generator_name), backend, layout)
    return references[key]


# ----------------------------------------------------------------------
# the in-process crash matrix: every generator × backend × layout
# ----------------------------------------------------------------------
@pytest.mark.parametrize("layout", S.REPLAY_LAYOUTS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("generator_name", sorted(S.SCENARIO_GENERATORS))
def test_crash_and_restore_matches_uninterrupted_run(
    references, generator_name, backend, layout
):
    reference = _reference(references, generator_name, backend, layout)
    drill = S.with_crash(_base_trace(generator_name), at=CRASH_AT)
    recovered = _replay(
        drill,
        backend,
        layout,
        checkpoint_store=S.CheckpointStore(),
        faults=FaultInjector(FaultPlan()),
        on_crash="restore",
    )
    _assert_continuation_identical(
        reference,
        recovered,
        what=f"{generator_name}/{backend}/{layout}",
    )
    recovery = dict(recovered.comm_signature()).get("recovery")
    assert recovery is not None and recovery[1] > 0, (
        "restore must ship snapshot blocks through the recovery category"
    )


# ----------------------------------------------------------------------
# kill-point parametrisation (in-process)
# ----------------------------------------------------------------------
def test_kill_at_first_step_retries_from_scratch(references):
    """Nothing is checkpointed yet: recovery is a full, identical rerun."""
    scenario = _scenario("grow_from_empty")
    reference = _replay(scenario, "sim", "dhb")
    drill = S.with_crash(scenario, at=0)
    recovered = _replay(
        drill,
        "sim",
        "dhb",
        faults=FaultInjector(FaultPlan()),
        on_crash="retry",
    )
    _assert_continuation_identical(reference, recovered, what="kill@first-step")
    # a pure retry ships no snapshot blocks
    assert "recovery" not in dict(recovered.comm_signature())


def test_kill_immediately_after_multiply(references):
    """Crash right after a dynamic-SpGEMM round: the maintained product and
    the per-step accounting must continue from the checkpoint, not from a
    recompute."""
    scenario = _scenario("mixed_update_multiply")
    base = S.with_checkpoint(scenario, at=3)
    reference = _replay(base, "sim", "dhb")
    # base steps: [SpGEMM, SpGEMM, Snap, CP, SpGEMM, SpGEMM, Snap];
    # index 5 is the step right after the post-checkpoint multiply
    assert isinstance(base.steps[4], S.SpGEMMStep)
    drill = S.with_crash(base, at=5)
    recovered = _replay(
        drill,
        "sim",
        "dhb",
        checkpoint_store=S.CheckpointStore(),
        faults=FaultInjector(FaultPlan()),
        on_crash="restore",
    )
    _assert_continuation_identical(reference, recovered, what="kill@after-multiply")


@pytest.mark.parametrize("crash_at", (1, 4, 6))
def test_env_selected_kills_recover_identically(references, monkeypatch, crash_at):
    """`REPRO_FAULTS=kill@k` drives the same drill without a CrashStep."""
    base = _base_trace("grow_from_empty")
    reference = _reference(references, "grow_from_empty", "sim", "csr")
    monkeypatch.setenv("REPRO_FAULTS", f"kill@{crash_at};seed=1")
    policy = "retry" if crash_at <= CHECKPOINT_AT else "restore"
    recovered = _replay(
        base,
        "sim",
        "csr",
        checkpoint_store=S.CheckpointStore(),
        on_crash=policy,
    )
    _assert_continuation_identical(
        reference, recovered, what=f"REPRO_FAULTS kill@{crash_at}"
    )


# ----------------------------------------------------------------------
# loopback worlds: kill the whole world, restart, resume from the store
# ----------------------------------------------------------------------
def _loopback_reference(scenario: S.Scenario, world: int, *, layout: str = "csr"):
    def program(comm_obj, world_rank):
        comm = MPIBackend(N_RANKS, comm=comm_obj)
        return S.replay(scenario, comm=comm, layout=layout)

    return run_spmd(world, program)


def _loopback_drill(
    scenario: S.Scenario,
    world: int,
    *,
    injector: FaultInjector,
    store: S.CheckpointStore | None = None,
    layout: str = "csr",
):
    store = store if store is not None else S.CheckpointStore()

    def program(comm_obj, world_rank):
        comm = MPIBackend(N_RANKS, comm=comm_obj)
        return S.replay(
            scenario,
            comm=comm,
            layout=layout,
            checkpoint_store=store,
            resume_from=store.latest(world_rank),
            faults=injector,
            on_crash="raise",
        )

    return S.run_with_recovery(world, program)


@pytest.mark.parametrize("world", WORLD_SIZES)
@pytest.mark.parametrize("generator_name", LOOPBACK_GENERATORS)
def test_loopback_world_crash_and_restore(generator_name, world):
    base = _base_trace(generator_name)
    refs = _loopback_reference(base, world)
    drill = S.with_crash(base, at=CRASH_AT)
    results = _loopback_drill(drill, world, injector=FaultInjector(FaultPlan()))
    assert len(results) == world
    for rank, (reference, recovered) in enumerate(zip(refs, results)):
        _assert_continuation_identical(
            reference,
            recovered,
            what=f"{generator_name}@world={world} rank {rank}",
        )


@pytest.mark.parametrize("world", (2, 4))
def test_loopback_process_specific_kill(world):
    """Killing a single process still tears down (and recovers) the world."""
    base = _base_trace("grow_from_empty")
    refs = _loopback_reference(base, world)
    drill = S.with_crash(base, at=CRASH_AT, process=1)
    results = _loopback_drill(drill, world, injector=FaultInjector(FaultPlan()))
    for reference, recovered in zip(refs, results):
        _assert_continuation_identical(
            reference, recovered, what=f"proc-kill@world={world}"
        )


@pytest.mark.parametrize("world", (2, 4))
def test_loopback_env_plan_kill(world):
    """A ``REPRO_FAULTS`` plan shared across the world drives the drill."""
    base = _base_trace("grow_from_empty")
    refs = _loopback_reference(base, world)
    plan = faults_from_env({"REPRO_FAULTS": f"kill@{CRASH_AT}:proc=0;seed=2"})
    results = _loopback_drill(base, world, injector=FaultInjector(plan))
    for reference, recovered in zip(refs, results):
        _assert_continuation_identical(
            reference, recovered, what=f"env-kill@world={world}"
        )


@pytest.mark.parametrize("world", (2, 4))
def test_kill_after_online_repartition_migration(monkeypatch, world):
    """Crash after a mid-stream ownership migration: the snapshot carries
    the placement map, so the restored world re-installs it and the
    continuation (including later migrations) replays byte-identically."""
    monkeypatch.setenv(REPARTITION_ENV_VAR, "1.01")
    # 9 logical ranks over 2/4 processes: enough blocks per process that an
    # nnz-aware placement can actually lower the maximum load and migrate
    n_ranks = 9
    base = S.with_checkpoint(
        S.SCENARIO_GENERATORS["bursty_skewed_stream"](seed=SEED), at=3
    )

    def reference_program(comm_obj, world_rank):
        comm = MPIBackend(n_ranks, comm=comm_obj)
        result = S.replay(base, comm=comm, layout="csr")
        return result, comm.placement()

    refs = run_spmd(world, reference_program)
    # the aggressive threshold must actually migrate ownership
    from repro.runtime.partitioner import RoundRobinPartitioner

    start = RoundRobinPartitioner().placement(n_ranks, world)
    assert any(placement != start for _, placement in refs)

    drill = S.with_crash(base, at=6)
    store = S.CheckpointStore()
    injector = FaultInjector(FaultPlan())

    def drill_program(comm_obj, world_rank):
        comm = MPIBackend(n_ranks, comm=comm_obj)
        result = S.replay(
            drill,
            comm=comm,
            layout="csr",
            checkpoint_store=store,
            resume_from=store.latest(world_rank),
            faults=injector,
            on_crash="raise",
        )
        return result, comm.placement()

    results = S.run_with_recovery(world, drill_program)
    for (reference, ref_placement), (recovered, got_placement) in zip(refs, results):
        _assert_continuation_identical(
            reference, recovered, what=f"kill@after-migration world={world}"
        )
        assert got_placement == ref_placement


# ----------------------------------------------------------------------
# drop/delay faults under loopback: results and signature untouched
# ----------------------------------------------------------------------
@pytest.mark.parametrize("world", (2,))
def test_loopback_message_drops_stay_in_recovery(world):
    base = _scenario("grow_from_empty")
    refs = _loopback_reference(base, world)
    injector = FaultInjector(FaultPlan.parse("drop=1/25;seed=5"))

    def program(comm_obj, world_rank):
        comm = MPIBackend(N_RANKS, comm=comm_obj)
        return S.replay(base, comm=comm, layout="csr", faults=injector)

    results = run_spmd(world, program)
    dropped_any = False
    for reference, faulty in zip(refs, results):
        signature = dict(faulty.comm_signature())
        recovery = signature.pop("recovery", None)
        dropped_any |= recovery is not None
        assert signature == dict(reference.comm_signature())
        for a, b in zip(reference.final_a, faulty.final_a):
            assert np.array_equal(a, b)
    assert dropped_any, "a 1/25 drop rate must hit at least one message"
