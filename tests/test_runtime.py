"""Tests for the simulated MPI runtime (machine model, grid, communicator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    MachineModel,
    NODE_CONFIGS,
    ProcessGrid,
    SimMPI,
    StatCategory,
    ranks_for_nodes,
)
from repro.runtime.simmpi import payload_nbytes
from repro.sparse import CSRMatrix


class TestMachineModel:
    def test_defaults_are_valid(self):
        model = MachineModel()
        assert model.local_speedup > 1.0
        assert model.compute_time(1.0) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(alpha=-1.0)
        with pytest.raises(ValueError):
            MachineModel(threads_per_rank=0)
        with pytest.raises(ValueError):
            MachineModel(omp_efficiency=0.0)
        with pytest.raises(ValueError):
            MachineModel(compute_scale=0.0)
        with pytest.raises(ValueError):
            MachineModel(ranks_per_node=0)

    def test_message_cost_intra_vs_inter_node(self):
        model = MachineModel(ranks_per_node=4)
        intra = model.message_cost(0, 1, 1000)  # same node
        inter = model.message_cost(0, 5, 1000)  # different node
        assert intra < inter
        assert model.message_cost(3, 3, 1000) == 0.0
        with pytest.raises(ValueError):
            model.message_cost(0, 1, -5)

    def test_node_configs(self):
        assert NODE_CONFIGS == {"1x4": 4, "4x4": 16, "16x4": 64}
        assert ranks_for_nodes(16) == 64
        with pytest.raises(ValueError):
            ranks_for_nodes(0)

    def test_with_helpers(self):
        model = MachineModel()
        assert model.with_threads(12).threads_per_rank == 12
        assert model.with_ranks_per_node(1).ranks_per_node == 1


class TestProcessGrid:
    def test_square_requirement(self):
        with pytest.raises(ValueError, match="square"):
            ProcessGrid(6)
        with pytest.raises(ValueError):
            ProcessGrid(0)

    @pytest.mark.parametrize("p", [1, 4, 9, 16, 64])
    def test_rank_coordinate_round_trip(self, p):
        grid = ProcessGrid(p)
        assert grid.q * grid.q == p
        for rank in range(p):
            row, col = grid.coords_of(rank)
            assert grid.rank_of(row, col) == rank
        assert len(grid.all_ranks()) == p

    def test_row_and_col_groups_partition_the_grid(self):
        grid = ProcessGrid(16)
        all_from_rows = sorted(r for i in range(4) for r in grid.row_group(i))
        all_from_cols = sorted(r for j in range(4) for r in grid.col_group(j))
        assert all_from_rows == list(range(16))
        assert all_from_cols == list(range(16))
        # every row group and column group intersect in exactly one rank
        for i in range(4):
            for j in range(4):
                common = set(grid.row_group(i)) & set(grid.col_group(j))
                assert len(common) == 1

    def test_transpose_rank_is_involution(self):
        grid = ProcessGrid(9)
        for rank in range(9):
            assert grid.transpose_rank(grid.transpose_rank(rank)) == rank

    def test_out_of_range_errors(self):
        grid = ProcessGrid(4)
        with pytest.raises(IndexError):
            grid.coords_of(4)
        with pytest.raises(IndexError):
            grid.rank_of(2, 0)
        with pytest.raises(IndexError):
            grid.row_group(2)


class TestPayloadNbytes:
    def test_arrays_scalars_and_containers(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(3) == 8
        assert payload_nbytes((np.zeros(2), np.zeros(3))) == 40
        assert payload_nbytes({"a": np.zeros(4)}) > 32

    def test_sparse_matrices_report_their_nbytes(self):
        csr = CSRMatrix.from_dense(np.eye(5))
        assert payload_nbytes(csr) == csr.nbytes


class TestSimMPI:
    def test_clock_and_barrier(self):
        comm = SimMPI(4)
        assert comm.elapsed() == 0.0
        comm.run_local(2, lambda: sum(range(1000)))
        assert comm.clock[2] > 0.0
        assert comm.clock[0] == 0.0
        comm.barrier()
        assert np.all(comm.clock == comm.clock[2])
        comm.reset()
        assert comm.elapsed() == 0.0
        assert comm.stats.categories == {}

    def test_invalid_rank_raises(self):
        comm = SimMPI(2)
        with pytest.raises(IndexError):
            comm.run_local(5, lambda: None)
        with pytest.raises(ValueError):
            comm.bcast(0, None, group=[])

    def test_run_local_records_stats(self):
        comm = SimMPI(2)
        result = comm.run_local(0, lambda x: x * 2, 21, category="custom")
        assert result == 42
        assert comm.stats.categories["custom"].operations == 1
        assert comm.stats.categories["custom"].modeled_seconds > 0

    def test_map_local(self):
        comm = SimMPI(4)
        results = comm.map_local(lambda r: r * r, {rank: (rank,) for rank in range(4)})
        assert results == {0: 0, 1: 1, 2: 4, 3: 9}
        with pytest.raises(ValueError):
            comm.map_local(lambda r: r, [(0,)], group=[0, 1])

    def test_exchange_delivers_messages_and_costs_time(self):
        comm = SimMPI(4)
        inbox = comm.exchange([(0, 3, np.zeros(100)), (1, 3, np.zeros(50))])
        assert sorted(src for src, _ in inbox[3]) == [0, 1]
        assert comm.clock[3] > 0
        assert comm.stats.categories[StatCategory.SEND_RECV].messages == 2

    def test_sendrecv_pairwise(self):
        comm = SimMPI(4)
        recv_a, recv_b = comm.sendrecv(0, 1, "to_b", "to_a")
        assert recv_a == "to_a" and recv_b == "to_b"

    def test_alltoallv_routes_payloads(self):
        comm = SimMPI(4)
        send = {src: {dst: (src, dst) for dst in range(4)} for src in range(4)}
        recv = comm.alltoallv(send)
        for dst in range(4):
            for src in range(4):
                assert recv[dst][src] == (src, dst)
        assert comm.stats.categories[StatCategory.ALLTOALL].messages == 12

    def test_alltoallv_outside_group_raises(self):
        comm = SimMPI(4)
        with pytest.raises(ValueError):
            comm.alltoallv({0: {3: "x"}}, group=[0, 1])

    def test_bcast_and_group_sync(self):
        comm = SimMPI(9)
        group = [0, 1, 2]
        received = comm.bcast(1, {"x": 1}, group=group)
        assert set(received) == set(group)
        assert all(received[r] == {"x": 1} for r in group)
        assert np.allclose(comm.clock[group], comm.clock[group][0])
        assert comm.clock[5] == 0.0
        with pytest.raises(ValueError):
            comm.bcast(7, None, group=group)

    def test_gather_scatter(self):
        comm = SimMPI(4)
        gathered = comm.gather(0, {r: r * 10 for r in range(4)})
        assert gathered == {0: 0, 1: 10, 2: 20, 3: 30}
        scattered = comm.scatter(0, {r: r + 1 for r in range(4)})
        assert scattered == {0: 1, 1: 2, 2: 3, 3: 4}
        with pytest.raises(ValueError):
            comm.gather(9, {}, group=[0, 1])

    def test_allgather(self):
        comm = SimMPI(4)
        out = comm.allgather({r: r for r in range(4)})
        for r in range(4):
            assert out[r] == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_reduce_and_allreduce(self):
        comm = SimMPI(8)
        payloads = {r: r for r in range(8)}
        total = comm.reduce(3, payloads, lambda a, b: a + b)
        assert total == sum(range(8))
        out = comm.allreduce(payloads, lambda a, b: a + b, group=[0, 1, 2])
        assert out == {0: 3, 1: 3, 2: 3}
        with pytest.raises(ValueError):
            comm.reduce(7, payloads, lambda a, b: a + b, group=[0, 1])

    def test_reduce_is_order_insensitive_for_commutative_ops(self):
        comm = SimMPI(4)
        payloads = {r: np.full(3, float(r)) for r in range(4)}
        out = comm.reduce(0, payloads, np.maximum)
        assert np.allclose(out, 3.0)

    def test_timer_measures_modeled_time(self):
        comm = SimMPI(4)
        with comm.timer() as t:
            comm.bcast(0, np.zeros(1000))
        assert t.seconds > 0

    def test_stats_snapshot_and_diff(self):
        comm = SimMPI(4)
        comm.bcast(0, np.zeros(10))
        snap = comm.stats.snapshot()
        comm.bcast(0, np.zeros(10))
        diff = comm.stats.diff(snap)
        assert diff.categories[StatCategory.BCAST].operations == 1
        assert comm.stats.categories[StatCategory.BCAST].operations == 2

    def test_stats_breakdown_and_totals(self):
        comm = SimMPI(4)
        comm.exchange([(0, 1, np.zeros(10))])
        comm.bcast(0, np.zeros(10))
        breakdown = comm.stats.breakdown(StatCategory.SPGEMM_BREAKDOWN)
        assert set(breakdown) == set(StatCategory.SPGEMM_BREAKDOWN)
        assert comm.stats.total_bytes() > 0
        assert comm.stats.total_messages() >= 2
        assert comm.stats.total_modeled_seconds() > 0
