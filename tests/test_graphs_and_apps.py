"""Tests for the graph substrate and the applications built on the API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ProcessGrid, SimMPI
from repro.graphs import (
    GRAPH500_PARAMS,
    TABLE1_INSTANCES,
    edges_to_networkx,
    erdos_renyi_edges,
    generate_instance,
    get_instance,
    list_instances,
    networkx_to_edges,
    ring_of_cliques_edges,
    rmat_edges,
)
from repro.apps import (
    DynamicMultiSourceShortestPaths,
    DynamicTriangleCounter,
    contract_graph,
    contraction_matrix,
    count_triangles_reference,
    sssp_reference,
)
from repro.distributed import UpdateBatch, DynamicDistMatrix

from tests.conftest import dist_from_dense, random_dense


class TestRMAT:
    def test_sizes_and_bounds(self):
        n, src, dst = rmat_edges(8, 4, seed=1)
        assert n == 256
        assert src.size == dst.size == 256 * 4
        assert src.min() >= 0 and src.max() < n
        assert dst.min() >= 0 and dst.max() < n

    def test_determinism(self):
        _, s1, d1 = rmat_edges(7, 3, seed=5)
        _, s2, d2 = rmat_edges(7, 3, seed=5)
        assert np.array_equal(s1, s2) and np.array_equal(d1, d2)
        _, s3, _ = rmat_edges(7, 3, seed=6)
        assert not np.array_equal(s1, s3)

    def test_skew_of_graph500_parameters(self):
        n, src, _dst = rmat_edges(10, 8, seed=2, noise=0.0)
        degrees = np.bincount(src, minlength=n)
        # the Graph500 parameters produce a heavy-tailed degree distribution
        assert degrees.max() > 10 * max(1.0, np.median(degrees[degrees > 0]))

    def test_options(self):
        n, src, dst = rmat_edges(6, 4, seed=3, remove_self_loops=True, deduplicate=True)
        assert np.all(src != dst)
        keys = src * n + dst
        assert len(np.unique(keys)) == len(keys)
        with pytest.raises(ValueError):
            rmat_edges(5, 4, params=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            rmat_edges(-1, 4)
        assert sum(GRAPH500_PARAMS) == pytest.approx(1.0)


class TestInstances:
    def test_catalogue_matches_table1(self):
        assert len(TABLE1_INSTANCES) == 12
        assert list_instances()[0] == "LiveJournal"
        lj = get_instance("LiveJournal")
        assert lj.n_full == 4_000_000 and lj.nnz_full == 86_000_000
        friendster = get_instance("friendster")
        assert friendster.nnz_full == 3_612_000_000
        with pytest.raises(KeyError):
            get_instance("unknown-graph")

    def test_surrogate_generation(self):
        n, rows, cols, vals = generate_instance("orkut", scale_divisor=32768, seed=1)
        assert rows.size == cols.size == vals.size
        assert rows.max() < n and cols.max() < n
        # symmetric (read as undirected) and no self loops
        keys = set(zip(rows.tolist(), cols.tolist()))
        assert all((c, r) in keys for r, c in keys)
        assert all(r != c for r, c in keys)
        assert np.all(vals > 0)

    def test_surrogate_preserves_relative_ordering(self):
        sizes = {}
        for name in ("LiveJournal", "twitter"):
            _n, rows, _c, _v = generate_instance(name, scale_divisor=65536)
            sizes[name] = rows.size
        assert sizes["twitter"] > sizes["LiveJournal"]

    def test_weight_modes(self):
        _n, _r, _c, ones = generate_instance("LiveJournal", scale_divisor=65536, weights="ones")
        assert np.all(ones == 1.0)
        with pytest.raises(ValueError):
            generate_instance("LiveJournal", weights="bogus")


class TestRandomGraphsAndNX:
    def test_erdos_renyi(self):
        src, dst = erdos_renyi_edges(50, 200, seed=1)
        assert src.size <= 200
        assert np.all(src != dst)
        with pytest.raises(ValueError):
            erdos_renyi_edges(0, 10)

    def test_ring_of_cliques(self):
        src, dst = ring_of_cliques_edges(4, 3)
        # each clique: 3*2 = 6 directed edges, plus 2 bridge edges per clique
        assert src.size == 4 * 6 + 4 * 2
        with pytest.raises(ValueError):
            ring_of_cliques_edges(0, 3)

    def test_networkx_round_trip(self):
        src, dst = erdos_renyi_edges(20, 60, seed=2)
        weights = np.random.default_rng(2).random(src.size)
        graph = edges_to_networkx(20, src, dst, weights)
        n, r, c, w = networkx_to_edges(graph)
        assert n == 20
        original = dict(zip(zip(src.tolist(), dst.tolist()), weights.tolist()))
        back = dict(zip(zip(r.tolist(), c.tolist()), w.tolist()))
        assert back == pytest.approx(original)

    def test_networkx_undirected_symmetrizes(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.0)
        _n, r, c, _w = networkx_to_edges(graph)
        assert {(0, 1), (1, 0)} == set(zip(r.tolist(), c.tolist()))
        graph_bad = nx.Graph()
        graph_bad.add_edge("a", "b")
        with pytest.raises(ValueError):
            networkx_to_edges(graph_bad)


class TestApplications:
    def test_triangle_counter_matches_reference(self):
        p = 4
        comm, grid = SimMPI(p), ProcessGrid(p)
        src, dst = ring_of_cliques_edges(3, 5)
        directed = src < dst
        counter = DynamicTriangleCounter(comm, grid, 15, src[directed], dst[directed])
        assert counter.triangle_count() == count_triangles_reference(15, src, dst)
        # insert new edges and re-check
        new_src = np.array([0, 1])
        new_dst = np.array([7, 12])
        counter.insert_edges(new_src, new_dst, seed=1)
        adj = counter.adjacency.to_coo_global()
        assert counter.triangle_count() == count_triangles_reference(15, adj.rows, adj.cols)
        assert counter.verify()

    def test_triangle_counter_skips_existing_edges(self):
        p = 4
        comm, grid = SimMPI(p), ProcessGrid(p)
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        counter = DynamicTriangleCounter(comm, grid, 5, src, dst)
        assert counter.triangle_count() == 1
        inserted = counter.insert_edges(np.array([0]), np.array([1]), seed=2)
        assert inserted == 0
        assert counter.triangle_count() == 1

    def test_sssp_matches_networkx_after_updates(self):
        p = 4
        comm, grid = SimMPI(p), ProcessGrid(p)
        n = 30
        src, dst = erdos_renyi_edges(n, 200, seed=5)
        rng = np.random.default_rng(5)
        weights = rng.uniform(1.0, 5.0, src.size)
        sources = np.array([0, 3])
        app = DynamicMultiSourceShortestPaths(comm, grid, n, src, dst, weights, sources)
        assert app.verify_one_hop()
        # change weights and delete some edges
        sel = rng.choice(src.size, size=10, replace=False)
        app.update_edges(src[sel], dst[sel], weights[sel] * 4.0, seed=1)
        deleted = rng.choice(src.size, size=5, replace=False)
        app.delete_edges(src[deleted], dst[deleted], seed=2)
        assert app.verify_one_hop()
        adj = app.adjacency.to_coo_global()
        reference = sssp_reference(n, adj.rows, adj.cols, adj.values, sources)
        dist = app.full_distances()
        assert np.allclose(
            np.nan_to_num(dist, posinf=1e18),
            np.nan_to_num(reference, posinf=1e18),
            rtol=1e-9,
        )

    def test_contraction_of_ring_of_cliques(self):
        p = 4
        comm, grid = SimMPI(p), ProcessGrid(p)
        n_cliques, size = 5, 4
        src, dst = ring_of_cliques_edges(n_cliques, size)
        n = n_cliques * size
        batch = UpdateBatch.from_global((n, n), src, dst, np.ones(src.size), p, seed=1)
        adjacency = DynamicDistMatrix.from_tuples(
            comm, grid, (n, n), batch.tuples_per_rank, combine="last"
        )
        clusters = np.arange(n) // size
        coarse = contract_graph(comm, grid, adjacency, clusters, drop_self_loops=True)
        assert coarse.shape == (n_cliques, n_cliques)
        assert coarse.nnz == 2 * n_cliques  # the ring, both directions
        assert np.allclose(coarse.values, 1.0)

    def test_contraction_matrix_validation(self):
        p = 4
        comm, grid = SimMPI(p), ProcessGrid(p)
        with pytest.raises(ValueError):
            contraction_matrix(comm, grid, np.array([0, 1, 5]), n_clusters=2)
        adjacency = DynamicDistMatrix.empty(comm, grid, (4, 4))
        with pytest.raises(ValueError):
            contract_graph(comm, grid, adjacency, np.array([0, 1]))
