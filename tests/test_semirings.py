"""Unit and property tests for the semiring substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import (
    BOOLEAN,
    MAX_MIN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    PLUS_TIMES,
    REGISTRY,
    Semiring,
    SemiringError,
    get_semiring,
    list_semirings,
)

ALL_SEMIRINGS = [PLUS_TIMES, MIN_PLUS, MAX_PLUS, BOOLEAN, MAX_MIN, MAX_TIMES]


def _elements(semiring: Semiring):
    """A hypothesis strategy of valid, finite-ish semiring elements."""
    if semiring.name == "boolean":
        return st.sampled_from([0.0, 1.0])
    return st.floats(min_value=0.001, max_value=100.0, allow_nan=False)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_contains_all_standard_semirings():
    assert set(list_semirings()) == {sr.name for sr in ALL_SEMIRINGS}
    for sr in ALL_SEMIRINGS:
        assert get_semiring(sr.name) is sr


def test_get_semiring_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown semiring"):
        get_semiring("does_not_exist")


def test_registry_is_consistent_with_module_constant():
    assert REGISTRY == {sr.name: sr for sr in ALL_SEMIRINGS}


# ----------------------------------------------------------------------
# axioms (property-based)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_additive_identity_and_commutativity(semiring, data):
    a = data.draw(_elements(semiring))
    b = data.draw(_elements(semiring))
    assert semiring.plus(a, semiring.zero) == pytest.approx(a)
    assert semiring.plus(semiring.zero, a) == pytest.approx(a)
    assert semiring.plus(a, b) == pytest.approx(semiring.plus(b, a))


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_multiplicative_identity_and_annihilation(semiring, data):
    a = data.draw(_elements(semiring))
    assert semiring.times(a, semiring.one) == pytest.approx(a)
    assert semiring.times(semiring.one, a) == pytest.approx(a)
    zero_prod = semiring.times(a, semiring.zero)
    assert semiring.is_zero(zero_prod)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_distributivity(semiring, data):
    a = data.draw(_elements(semiring))
    b = data.draw(_elements(semiring))
    c = data.draw(_elements(semiring))
    lhs = semiring.times(a, semiring.plus(b, c))
    rhs = semiring.plus(semiring.times(a, b), semiring.times(a, c))
    assert lhs == pytest.approx(rhs)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_associativity(semiring, data):
    a = data.draw(_elements(semiring))
    b = data.draw(_elements(semiring))
    c = data.draw(_elements(semiring))
    assert semiring.plus(semiring.plus(a, b), c) == pytest.approx(
        semiring.plus(a, semiring.plus(b, c))
    )
    assert semiring.times(semiring.times(a, b), c) == pytest.approx(
        semiring.times(a, semiring.times(b, c))
    )


@pytest.mark.parametrize(
    "semiring", [sr for sr in ALL_SEMIRINGS if sr.is_idempotent], ids=lambda s: s.name
)
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_idempotent_addition(semiring, data):
    a = data.draw(_elements(semiring))
    assert semiring.plus(a, a) == pytest.approx(a)


# ----------------------------------------------------------------------
# vectorised helpers
# ----------------------------------------------------------------------
def test_is_zero_handles_infinite_zeros():
    assert MIN_PLUS.is_zero(np.inf)
    assert not MIN_PLUS.is_zero(-np.inf)
    assert not MIN_PLUS.is_zero(3.0)
    assert MAX_PLUS.is_zero(-np.inf)
    assert PLUS_TIMES.is_zero(0.0)
    assert not PLUS_TIMES.is_zero(1e-12) or True  # structural, not numeric


def test_zeros_and_ones_arrays():
    z = MIN_PLUS.zeros(4)
    assert np.all(np.isinf(z)) and z.shape == (4,)
    o = MIN_PLUS.ones(3)
    assert np.all(o == 0.0)


def test_additive_inverse_only_in_rings():
    assert PLUS_TIMES.additive_inverse(3.0) == -3.0
    with pytest.raises(SemiringError):
        MIN_PLUS.additive_inverse(3.0)
    with pytest.raises(SemiringError):
        BOOLEAN.additive_inverse(1.0)


def test_add_reduce_empty_returns_zero():
    assert PLUS_TIMES.add_reduce(np.array([])) == 0.0
    assert np.isinf(MIN_PLUS.add_reduce(np.array([])))


def test_add_reduce_matches_numpy():
    values = np.array([1.0, 5.0, 2.0])
    assert PLUS_TIMES.add_reduce(values) == pytest.approx(8.0)
    assert MIN_PLUS.add_reduce(values) == pytest.approx(1.0)
    assert MAX_PLUS.add_reduce(values) == pytest.approx(5.0)


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=20), min_size=0, max_size=60),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_sum_duplicates_matches_dict_model(keys, seed):
    rng = np.random.default_rng(seed)
    keys_arr = np.asarray(keys, dtype=np.int64)
    values = rng.random(len(keys))
    out_keys, out_vals = PLUS_TIMES.sum_duplicates(keys_arr, values)
    model: dict[int, float] = {}
    for k, v in zip(keys, values):
        model[k] = model.get(k, 0.0) + v
    assert list(out_keys) == sorted(model)
    for k, v in zip(out_keys, out_vals):
        assert v == pytest.approx(model[int(k)])


def test_sum_duplicates_min_plus_takes_minimum():
    keys = np.array([3, 3, 1, 3])
    values = np.array([5.0, 2.0, 7.0, 9.0])
    out_keys, out_vals = MIN_PLUS.sum_duplicates(keys, values)
    assert list(out_keys) == [1, 3]
    assert list(out_vals) == [7.0, 2.0]


# ----------------------------------------------------------------------
# dense reference kernels
# ----------------------------------------------------------------------
def test_dense_matmul_plus_times_matches_numpy():
    rng = np.random.default_rng(1)
    a = rng.random((5, 7))
    b = rng.random((7, 3))
    assert np.allclose(PLUS_TIMES.dense_matmul(a, b), a @ b)


def test_dense_matmul_min_plus_is_shortest_one_hop():
    inf = np.inf
    a = np.array([[0.0, 2.0, inf], [inf, 0.0, 1.0], [inf, inf, 0.0]])
    out = MIN_PLUS.dense_matmul(a, a)
    # path 0 -> 1 -> 2 of length 3 appears in the square
    assert out[0, 2] == pytest.approx(3.0)
    assert out[0, 1] == pytest.approx(2.0)


def test_dense_matmul_shape_mismatch_raises():
    with pytest.raises(ValueError, match="shape mismatch"):
        PLUS_TIMES.dense_matmul(np.zeros((2, 3)), np.zeros((4, 2)))


def test_coerce_returns_contiguous_float_array():
    out = PLUS_TIMES.coerce([1, 2, 3])
    assert out.dtype == np.float64
    assert out.flags["C_CONTIGUOUS"]
