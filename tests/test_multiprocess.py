"""Multi-process (world > 1) execution of the MPI backend.

The loopback world (``repro.runtime.loopback``) runs each MPI process on a
thread behind the mpi4py communicator surface, with every payload pickled
across the "wire" — so these tests exercise the real multi-process code
paths (partial block mappings, cross-process collective merges, idle
processes) without an MPI installation, and double as a serialisation
check for every payload type the orchestration layer communicates.

When mpi4py *is* installed and the suite runs under ``mpiexec -n p``, the
same assertions additionally run against the genuine ``COMM_WORLD`` (see
``tests/test_scenarios_differential.py`` for the full differential matrix).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import DynamicProduct, compute_cstar, summa_spgemm
from repro.core.collectives import bloom_reduce_to_root, sparse_reduce_to_root
from repro.distributed import DynamicDistMatrix, StaticDistMatrix, UpdateBatch
from repro.runtime import MPIBackend, ProcessGrid, SimMPI, available_partitioners
from repro.runtime.loopback import LoopbackWorld, run_spmd
from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import BloomFilterMatrix, COOMatrix

# world 6 oversubscribes the 4 logical ranks: two processes idle, which is
# exactly the configuration the leg exists to exercise (the construction
# warning is expected; the filter must be installed at collection level —
# warnings.catch_warnings is not safe inside the loopback worker threads)
pytestmark = pytest.mark.filterwarnings(
    "ignore:MPI world of 6 processes:RuntimeWarning"
)

WORLD_SIZES = (1, 2, 4, 6)


def _comm_volume(comm) -> dict[str, tuple[int, int]]:
    """Global per-category (messages, bytes) of a communicator's stats."""
    stats = comm.host_fold(comm.stats, lambda a, b: a.merge(b))
    return {
        name: (tot.messages, tot.bytes)
        for name, tot in sorted(stats.categories.items())
        if tot.messages or tot.bytes
    }


def _spmd(world_size: int, program):
    """Run ``program(backend_comm)`` on every process of a loopback world."""

    def _wrapped(comm_obj, world_rank):
        return program(MPIBackend(4, comm=comm_obj))

    return run_spmd(world_size, _wrapped)


def _random_tuples(n: int, nnz: int, seed: int, n_ranks: int = 4):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.uniform(0.5, 2.0, nnz)
    return {r: (rows[r::n_ranks], cols[r::n_ranks], vals[r::n_ranks]) for r in range(n_ranks)}


# ----------------------------------------------------------------------
# ownership & control plane
# ----------------------------------------------------------------------
class TestOwnership:
    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_round_robin_ownership_partitions_ranks(self, world):
        def program(comm):
            return comm.owned_ranks()

        results = _spmd(world, program)
        seen = sorted(r for owned in results for r in owned)
        assert seen == list(range(4))  # disjoint + complete
        for world_rank, owned in enumerate(results):
            assert owned == [r for r in range(4) if r % world == world_rank]

    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_host_merge_unions_partial_mappings(self, world):
        def program(comm):
            partial = {r: r * 10 for r in comm.owned_ranks()}
            return comm.host_merge(partial)

        for merged in _spmd(world, program):
            assert merged == {0: 0, 1: 10, 2: 20, 3: 30}

    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_host_fold_sums_across_processes(self, world):
        def program(comm):
            return comm.host_fold(len(comm.owned_ranks()), lambda x, y: x + y)

        assert all(total == 4 for total in _spmd(world, program))

    @pytest.mark.parametrize("world", (2, 4, 6))
    @pytest.mark.parametrize("name", available_partitioners())
    def test_every_partitioner_excludes_idle_processes(self, world, name):
        """Satellite of the placement work: whatever the strategy, the
        owned-rank sets must partition the logical ranks and surplus
        processes of an oversubscribed world must own nothing."""

        def wrapped(comm_obj, world_rank):
            comm = MPIBackend(4, comm=comm_obj, partitioner=name)
            owned = comm.owned_ranks()
            assert owned == comm.owned_ranks(list(range(4)))
            return world_rank, owned, comm.placement()

        results = run_spmd(world, wrapped)
        seen = sorted(r for _, owned, _ in results for r in owned)
        assert seen == list(range(4))  # disjoint + complete
        active = min(world, 4)
        reference = results[0][2]
        for world_rank, owned, placement in results:
            assert placement == reference  # SPMD agreement
            assert all(0 <= proc < active for proc in placement.values())
            if world_rank >= active:
                assert owned == []

    def test_simulator_owns_everything(self):
        comm = SimMPI(4)
        assert comm.owned_ranks() == [0, 1, 2, 3]
        assert comm.owned_ranks([2, 0]) == [2, 0]
        assert comm.host_merge({1: "x"}) == {1: "x"}
        assert comm.host_fold(7, lambda x, y: x + y) == 7


# ----------------------------------------------------------------------
# collectives with partial per-process mappings
# ----------------------------------------------------------------------
class TestPartialCollectives:
    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_alltoallv_merges_partial_sendbufs(self, world):
        def program(comm):
            sendbufs = {
                src: {dst: np.full(4, 10 * src + dst) for dst in range(4)}
                for src in comm.owned_ranks()
            }
            recv = comm.alltoallv(sendbufs)
            return {
                dst: {src: arr.tolist() for src, arr in inner.items()}
                for dst, inner in recv.items()
            }, _comm_volume(comm)

        ref_recv, ref_volume = None, None
        for recv, volume in _spmd(world, program):
            merged_keys = sorted(recv)
            for dst in merged_keys:
                assert recv[dst] == {
                    src: [10 * src + dst] * 4 for src in range(4)
                }
            if ref_volume is None:
                ref_volume = volume
            assert volume == ref_volume
        # volume identical to the simulator's
        sim = SimMPI(4)
        sim.alltoallv(
            {src: {dst: np.full(4, 10 * src + dst) for dst in range(4)} for src in range(4)}
        )
        assert ref_volume == _comm_volume(sim)

    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_bcast_gather_exchange_volume_matches_simulator(self, world):
        def script(comm):
            comm.bcast(2, np.arange(8))
            comm.gather(1, {r: np.full(r + 1, r) for r in comm.owned_ranks()})
            comm.exchange(
                [
                    (src, (src + 1) % 4, np.full(3, src))
                    for src in comm.owned_ranks()
                ]
            )
            comm.allgather({r: np.arange(2) for r in comm.owned_ranks()})
            return _comm_volume(comm)

        sim = SimMPI(4)
        sim_volume = script(sim)
        for volume in _spmd(world, script):
            assert volume == sim_volume

    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_allreduce_partial_payloads(self, world):
        def program(comm):
            payloads = {r: np.uint64(1 << r) for r in comm.owned_ranks()}
            out = comm.allreduce(payloads, lambda x, y: x | y)
            return int(out[comm.owned_ranks()[0]]) if comm.owned_ranks() else None

        results = _spmd(world, program)
        # idle processes of an oversubscribed world own nothing -> None
        values = [v for v in results if v is not None]
        assert len(values) == min(world, 4)
        assert all(v == 0b1111 for v in values)


# ----------------------------------------------------------------------
# sparse reduction collectives (explicit-shape regression + partial maps)
# ----------------------------------------------------------------------
class TestSparseReducePartial:
    def test_empty_contributions_keep_declared_shape(self):
        """Regression: an empty contributions mapping used to silently
        produce a (0, 0)-shaped result — a live bug with partial mappings,
        where a process may own no contributing rank."""
        comm = SimMPI(4)
        out = sparse_reduce_to_root(
            comm, [0, 1, 2, 3], 0, {}, PLUS_TIMES, shape=(9, 7)
        )
        assert out.shape == (9, 7)
        assert out.nnz == 0
        bloom = bloom_reduce_to_root(comm, [0, 1], 1, {}, shape=(9, 7))
        assert bloom.shape == (9, 7)

    def test_contribution_shape_mismatch_raises(self):
        comm = SimMPI(4)
        wrong = {0: COOMatrix.empty((3, 3), PLUS_TIMES)}
        with pytest.raises(ValueError, match="declared block shape"):
            sparse_reduce_to_root(comm, [0, 1], 0, wrong, PLUS_TIMES, shape=(4, 4))

    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_partial_contributions_reduce_identically(self, world):
        shape = (12, 10)
        rng = np.random.default_rng(3)
        dense = {r: rng.uniform(size=shape) * (rng.uniform(size=shape) < 0.3) for r in range(4)}

        def program(comm):
            contributions = {
                r: COOMatrix.from_dense(dense[r]) for r in comm.owned_ranks()
            }
            out = sparse_reduce_to_root(
                comm, [0, 1, 2, 3], 2, contributions, PLUS_TIMES, shape=shape
            )
            if out is None:
                assert not comm.owns(2)
                return None
            return out.to_dense()

        expected = sum(dense.values())
        for result in _spmd(world, program):
            if result is not None:
                assert np.allclose(result, expected)

    @pytest.mark.parametrize("world", (2, 4))
    def test_bloom_reduce_partial_contributions(self, world):
        shape = (8, 8)

        def program(comm):
            contribs = {}
            for r in comm.owned_ranks():
                bloom = BloomFilterMatrix(shape)
                bloom.set_bits(r, r, 1 << r)
                contribs[r] = bloom
            out = bloom_reduce_to_root(comm, [0, 1, 2, 3], 0, contribs, shape=shape)
            return None if out is None else [(i, j, b) for (i, j), b in sorted(out.items())]

        expected = [(r, r, 1 << r) for r in range(4)]
        for result in _spmd(world, program):
            if result is not None:
                assert result == expected


# ----------------------------------------------------------------------
# whole-algorithm differential runs
# ----------------------------------------------------------------------
class TestAlgorithmsAcrossWorlds:
    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_summa_product_identical(self, world):
        n = 20
        tuples = _random_tuples(n, 120, seed=11)

        def program(comm):
            grid = ProcessGrid(4)
            a = DynamicDistMatrix.from_tuples(comm, grid, (n, n), tuples, PLUS_TIMES)
            b = DynamicDistMatrix.from_tuples(comm, grid, (n, n), tuples, PLUS_TIMES)
            c, _ = summa_spgemm(comm, grid, a, b)
            coo = c.to_coo_global().drop_zeros().sort()
            return coo.rows, coo.cols, coo.values, _comm_volume(comm)

        sim = SimMPI(4)
        ref = program(sim)
        for rows, cols, vals, volume in _spmd(world, program):
            assert np.array_equal(rows, ref[0])
            assert np.array_equal(cols, ref[1])
            assert np.array_equal(vals, ref[2])
            assert volume == ref[3]

    @pytest.mark.parametrize("world", WORLD_SIZES)
    def test_dynamic_product_general_updates_identical(self, world):
        n = 24
        tuples = _random_tuples(n, 150, seed=7)
        all_rows = np.concatenate([t[0] for t in tuples.values()])
        all_cols = np.concatenate([t[1] for t in tuples.values()])
        all_vals = np.concatenate([t[2] for t in tuples.values()])

        def program(comm):
            grid = ProcessGrid(4)
            shape = (n, n)
            a = DynamicDistMatrix.from_tuples(
                comm, grid, shape, tuples, MIN_PLUS, combine="last"
            )
            b = DynamicDistMatrix.from_tuples(
                comm, grid, shape, tuples, MIN_PLUS, combine="last"
            )
            prod = DynamicProduct(comm, grid, a, b, semiring=MIN_PLUS, mode="general")
            deletes = UpdateBatch.from_global(
                shape, all_rows[:25], all_cols[:25], all_vals[:25],
                4, kind="delete", semiring=MIN_PLUS, seed=5,
            )
            r1 = prod.apply_updates(a_batch=deletes)
            updates = UpdateBatch.from_global(
                shape, all_rows[25:50], all_cols[25:50], all_vals[25:50] * 0.25,
                4, kind="update", semiring=MIN_PLUS, seed=6,
            )
            r2 = prod.apply_updates(a_batch=updates)
            assert prod.check_consistency()
            coo = prod.result_coo().drop_zeros().sort()
            return (
                r1.touched_outputs,
                r2.touched_outputs,
                coo.rows,
                coo.cols,
                coo.values,
                _comm_volume(comm),
            )

        ref = program(SimMPI(4))
        for result in _spmd(world, program):
            assert result[0] == ref[0] and result[1] == ref[1]
            assert np.array_equal(result[2], ref[2])
            assert np.array_equal(result[3], ref[3])
            assert np.array_equal(result[4], ref[4])
            assert result[5] == ref[5]

    @pytest.mark.parametrize("world", (2, 4))
    def test_static_dist_matrix_from_tuples_identical(self, world):
        n = 16
        tuples = _random_tuples(n, 90, seed=21)

        def program(comm):
            grid = ProcessGrid(4)
            mat = StaticDistMatrix.from_tuples(
                comm, grid, (n, n), tuples, PLUS_TIMES, layout="dcsr"
            )
            assert set(mat.blocks) == set(comm.owned_ranks())
            coo = mat.to_coo_global().sort()
            return mat.nnz(), coo.rows, coo.cols, coo.values

        ref = program(SimMPI(4))
        for nnz, rows, cols, vals in _spmd(world, program):
            assert nnz == ref[0]
            assert np.array_equal(rows, ref[1])
            assert np.array_equal(cols, ref[2])
            assert np.array_equal(vals, ref[3])


# ----------------------------------------------------------------------
# empty-broadcast elision (hypersparse updates must not broadcast zeros)
# ----------------------------------------------------------------------
class TestEmptyBroadcastElision:
    def _cstar_bcast_stats(self, update_rows, update_cols):
        comm = SimMPI(4)
        grid = ProcessGrid(4)
        n = 16
        base = _random_tuples(n, 100, seed=31)
        a = DynamicDistMatrix.from_tuples(comm, grid, (n, n), base, PLUS_TIMES)
        b = DynamicDistMatrix.from_tuples(comm, grid, (n, n), base, PLUS_TIMES)
        vals = np.ones(len(update_rows))
        a_star = StaticDistMatrix.from_tuples(
            comm,
            grid,
            (n, n),
            {0: (np.asarray(update_rows), np.asarray(update_cols), vals)},
            PLUS_TIMES,
            layout="dcsr",
        )
        comm.stats.reset()
        compute_cstar(comm, grid, a, b, a_star, None)
        bucket = comm.stats.categories.get("bcast")
        return (bucket.messages, bucket.bytes) if bucket else (0, 0)

    def test_empty_astar_blocks_are_never_broadcast(self):
        """A* confined to one block must broadcast exactly that block:
        1 root × (√p - 1) receivers, instead of firing the whole row of
        broadcast roots once any round block is non-empty."""
        # all update entries inside block (0, 0) of the 2x2 grid (n=16 → 8x8 blocks)
        msgs_sparse, bytes_sparse = self._cstar_bcast_stats([0, 1, 2], [0, 1, 2])
        assert msgs_sparse == 1  # one non-empty root, one receiver (q-1 = 1)
        # entries in every block column → every round broadcasts
        msgs_dense, bytes_dense = self._cstar_bcast_stats(
            [0, 1, 8, 9], [0, 9, 1, 8]
        )
        assert msgs_dense > msgs_sparse
        assert bytes_dense > bytes_sparse

    @pytest.mark.parametrize("world", (2, 4))
    def test_elision_is_identical_across_world_sizes(self, world):
        n = 16
        base = _random_tuples(n, 100, seed=31)
        star = {0: (np.array([0, 1, 2]), np.array([0, 1, 2]), np.ones(3))}

        def program(comm):
            grid = ProcessGrid(4)
            a = DynamicDistMatrix.from_tuples(comm, grid, (n, n), base, PLUS_TIMES)
            b = DynamicDistMatrix.from_tuples(comm, grid, (n, n), base, PLUS_TIMES)
            a_star = StaticDistMatrix.from_tuples(
                comm, grid, (n, n), star, PLUS_TIMES, layout="dcsr"
            )
            comm.stats.reset()
            cstar, _ = compute_cstar(comm, grid, a, b, a_star, None)
            merged = comm.host_merge(
                {r: (blk.rows.tolist(), blk.values.tolist()) for r, blk in cstar.items()}
            )
            return merged, _comm_volume(comm)

        ref = program(SimMPI(4))
        for merged, volume in _spmd(world, program):
            assert merged == ref[0]
            assert volume == ref[1]
            assert volume.get("bcast", (0, 0))[0] == 1


# ----------------------------------------------------------------------
# non-square worlds: grid fitting and idle processes
# ----------------------------------------------------------------------
class TestNonSquareWorlds:
    def test_grid_fit_warns_and_trims(self):
        with pytest.warns(RuntimeWarning, match="surplus ranks"):
            grid = ProcessGrid.fit(6)
        assert grid.n_ranks == 4 and grid.q == 2
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ProcessGrid.fit(4).n_ranks == 4
            assert ProcessGrid.fit(1).n_ranks == 1

    def test_strict_constructor_still_rejects(self):
        with pytest.raises(ValueError, match="square"):
            ProcessGrid(6)

    def test_replay_on_six_ranks_uses_subgrid(self):
        from repro.scenarios import SCENARIO_GENERATORS, replay

        scenario = SCENARIO_GENERATORS["grow_from_empty"](seed=2022)
        with pytest.warns(RuntimeWarning, match="surplus ranks"):
            six = replay(scenario, backend="sim", n_ranks=6, layout="csr")
        four = replay(scenario, backend="sim", n_ranks=4, layout="csr")
        assert np.array_equal(six.final_a[0], four.final_a[0])
        assert np.array_equal(six.final_a[2], four.final_a[2])
        assert six.comm_signature() == four.comm_signature()

    # the filter must be installed once at test level: warnings.catch_warnings
    # mutates process-global state and is not safe inside the worker threads
    @pytest.mark.filterwarnings("ignore:MPI world of 3 processes:RuntimeWarning")
    def test_oversubscribed_world_idles_extra_processes(self):
        """world=3 processes, 2 logical ranks: process 2 owns nothing but
        participates in the collectives without deadlocking."""

        def wrapped(comm_obj, world_rank):
            comm = MPIBackend(2, comm=comm_obj)
            assert comm.world_size == 3
            if world_rank == 2:
                assert comm.owned_ranks() == []
            received = comm.bcast(1, "hello" if comm.owns(1) else None)
            total = comm.host_fold(len(comm.owned_ranks()), lambda x, y: x + y)
            return received[0], total

        for received, total in run_spmd(3, wrapped):
            assert received == "hello"
            assert total == 2
