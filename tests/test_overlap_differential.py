"""Differential oracle for the compute/comm-overlap pipelines.

The nonblocking schedules behind ``REPRO_OVERLAP=on`` (double-buffered
SUMMA, pipelined ``A^R``/``C*`` broadcasts, overlapped two-phase
redistribution) must be *pure re-schedulings*: for every scenario,
backend, layout and world size the final tuples, applied-update counts
and per-category communication volume must be byte-identical to the
synchronous schedule (``REPRO_OVERLAP=off``).  Only charged time may
differ.  This module replays a pipeline-heavy subset of the scenario
library under both settings across

* both single-process backends (``sim`` and the emulated ``mpi``),
* all four local layouts of the static operand,
* emulated multi-process loopback worlds of size 1, 2 and 4,

and asserts the equivalences.  Together with the cross-backend suite
(``test_scenarios_differential.py``, which runs whole-library under the
default overlap setting) this pins the optimisation down from both
sides.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.runtime import OVERLAP_ENV_VAR, MPIBackend
from repro.runtime.loopback import run_spmd
from repro.scenarios import (
    REPLAY_LAYOUTS,
    SCENARIO_GENERATORS,
    ScenarioResult,
    replay,
)

N_RANKS = 4
SEED = 2022
MODES = ("off", "on")
BACKENDS = ("sim", "mpi")
WORLD_SIZES = (1, 2, 4)

#: the subset that exercises every overlapped pipeline: redistribution
#: (bulk growth), the general-mode A^R broadcasts (mixed updates with
#: multiplies) and an application stream on top of the algebraic product
GENERATORS = (
    "grow_from_empty",
    "mixed_update_multiply",
    "social_triangle_stream",
)


def _replay(generator_name: str, backend: str, layout: str, mode: str) -> ScenarioResult:
    scenario = SCENARIO_GENERATORS[generator_name](seed=SEED)
    with warnings.catch_warnings():
        # the emulated-mpi backend warns once when mpi4py is absent
        warnings.simplefilter("ignore", RuntimeWarning)
        return replay(scenario, backend=backend, n_ranks=N_RANKS, layout=layout)


@pytest.fixture(scope="module")
def results(request) -> dict[tuple[str, str, str, str], ScenarioResult]:
    """Every (generator, backend, layout, overlap-mode) replay, once."""
    out: dict[tuple[str, str, str, str], ScenarioResult] = {}
    monkeypatch = pytest.MonkeyPatch()
    request.addfinalizer(monkeypatch.undo)
    for mode in MODES:
        monkeypatch.setenv(OVERLAP_ENV_VAR, mode)
        for name in GENERATORS:
            for backend in BACKENDS:
                for layout in REPLAY_LAYOUTS:
                    out[(name, backend, layout, mode)] = _replay(
                        name, backend, layout, mode
                    )
    monkeypatch.setenv(OVERLAP_ENV_VAR, "on")
    return out


def _assert_tuples_identical(a, b, *, what: str) -> None:
    assert np.array_equal(a[0], b[0]), f"{what}: row structure differs"
    assert np.array_equal(a[1], b[1]), f"{what}: column structure differs"
    assert np.array_equal(a[2], b[2]), f"{what}: values differ"


def _assert_equivalent(off: ScenarioResult, on: ScenarioResult, *, what: str) -> None:
    _assert_tuples_identical(off.final_a, on.final_a, what=f"{what}: A")
    assert (off.final_c is None) == (on.final_c is None)
    if off.final_c is not None:
        _assert_tuples_identical(off.final_c, on.final_c, what=f"{what}: C")
    assert off.applied_counts == on.applied_counts, what
    assert off.comm_signature() == on.comm_signature(), what


@pytest.mark.parametrize("layout", REPLAY_LAYOUTS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("generator_name", GENERATORS)
def test_overlap_is_a_pure_rescheduling(results, generator_name, backend, layout):
    """on vs off: identical tuples, counts and per-category comm volume."""
    off = results[(generator_name, backend, layout, "off")]
    on = results[(generator_name, backend, layout, "on")]
    assert off.total_comm_bytes() > 0, "scenario must actually communicate"
    _assert_equivalent(off, on, what=f"{generator_name}/{backend}/{layout}")


@pytest.mark.parametrize("generator_name", GENERATORS)
def test_overlap_matches_across_backends(results, generator_name):
    """With overlap on, sim and emulated mpi still agree bit for bit."""
    sim = results[(generator_name, "sim", "csr", "on")]
    mpi = results[(generator_name, "mpi", "csr", "on")]
    _assert_equivalent(sim, mpi, what=f"{generator_name}: sim vs mpi (overlap on)")


@pytest.mark.parametrize("world", WORLD_SIZES)
@pytest.mark.parametrize("generator_name", GENERATORS)
def test_overlapped_loopback_worlds_match_sync_sim(
    results, generator_name, world, monkeypatch
):
    """Overlapped multi-process replay vs the synchronous simulator.

    The loopback worlds route the pipelines' ``isend``/``irecv`` pairs
    through real thread mailboxes with pickled payloads — the strictest
    exercise of the cross-process matching — and must still reproduce
    the synchronous single-process schedule byte for byte.
    """
    reference = results[(generator_name, "sim", "csr", "off")]
    scenario = SCENARIO_GENERATORS[generator_name](seed=SEED)
    monkeypatch.setenv(OVERLAP_ENV_VAR, "on")

    def program(comm_obj, world_rank):
        comm = MPIBackend(N_RANKS, comm=comm_obj)
        return replay(scenario, comm=comm, layout="csr")

    for result in run_spmd(world, program):
        _assert_equivalent(
            reference, result, what=f"{generator_name}@world={world} (overlap on)"
        )
