"""Tests for SUMMA, the sparse reduce collectives and both dynamic algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DynamicDistMatrix,
    ProcessGrid,
    SimMPI,
    StaticDistMatrix,
    UpdateBatch,
    build_update_matrix,
    dynamic_spgemm_algebraic,
    dynamic_spgemm_general,
    compute_cstar,
    summa_spgemm,
    transpose_dist,
)
from repro.core.collectives import bloom_reduce_to_root, sparse_reduce_to_root
from repro.core.dynamic_general import filter_by_row_bloom
from repro.semirings import BOOLEAN, MIN_PLUS, PLUS_TIMES
from repro.sparse import BLOOM_BITS, BloomFilterMatrix, COOMatrix, CSRMatrix

from tests.conftest import dist_from_dense, random_dense, static_from_dense


# ----------------------------------------------------------------------
# sparse reduction collectives
# ----------------------------------------------------------------------
class TestSparseReduce:
    def test_reduce_matches_direct_sum(self):
        comm = SimMPI(16)
        group = [1, 5, 9, 13]
        shape = (12, 10)
        rng = np.random.default_rng(0)
        denses = {r: random_dense(*shape, 0.3, seed=r) for r in group}
        contributions = {r: COOMatrix.from_dense(d) for r, d in denses.items()}
        out = sparse_reduce_to_root(
            comm, group, 9, contributions, PLUS_TIMES, shape=shape
        )
        assert np.allclose(out.to_dense(), sum(denses.values()))
        # communication happened (reduce-scatter + gather)
        assert comm.stats.total_bytes() > 0

    def test_reduce_with_missing_and_empty_contributions(self):
        comm = SimMPI(4)
        shape = (6, 6)
        contributions = {0: COOMatrix.empty(shape)}
        out = sparse_reduce_to_root(
            comm, [0, 1, 2, 3], 0, contributions, PLUS_TIMES, shape=shape
        )
        assert out.nnz == 0
        assert out.shape == shape

    def test_reduce_root_not_in_group_raises(self):
        comm = SimMPI(4)
        with pytest.raises(ValueError):
            sparse_reduce_to_root(comm, [0, 1], 3, {}, PLUS_TIMES, shape=(2, 2))

    def test_min_plus_reduction(self):
        comm = SimMPI(4)
        shape = (5, 5)
        a = random_dense(*shape, 0.5, MIN_PLUS, seed=1)
        b = random_dense(*shape, 0.5, MIN_PLUS, seed=2)
        out = sparse_reduce_to_root(
            comm,
            [0, 1],
            0,
            {0: COOMatrix.from_dense(a, MIN_PLUS), 1: COOMatrix.from_dense(b, MIN_PLUS)},
            MIN_PLUS,
            shape=shape,
        )
        assert np.allclose(out.to_dense(), np.minimum(a, b), equal_nan=True)

    def test_bloom_reduce_is_bitwise_or(self):
        comm = SimMPI(4)
        shape = (6, 6)
        a = BloomFilterMatrix.from_entries(shape, [(0, 0, 1), (2, 3, 4)])
        b = BloomFilterMatrix.from_entries(shape, [(0, 0, 2), (5, 5, 8)])
        out = bloom_reduce_to_root(comm, [0, 1, 2], 2, {0: a, 1: b}, shape=shape)
        assert out.get(0, 0) == 3
        assert out.get(2, 3) == 4
        assert out.get(5, 5) == 8


# ----------------------------------------------------------------------
# SUMMA
# ----------------------------------------------------------------------
class TestSUMMA:
    @pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS], ids=lambda s: s.name)
    def test_summa_matches_dense(self, any_grid, semiring):
        comm, grid = any_grid
        a = random_dense(20, 15, 0.25, semiring, seed=1)
        b = random_dense(15, 18, 0.25, semiring, seed=2)
        da = dist_from_dense(comm, grid, a, semiring)
        db = dist_from_dense(comm, grid, b, semiring)
        c, blooms = summa_spgemm(comm, grid, da, db, output="dynamic")
        assert blooms is None
        assert np.allclose(c.to_dense(), semiring.dense_matmul(a, b), equal_nan=True)

    def test_summa_static_output_and_bloom(self, comm16, grid16):
        a = random_dense(16, 16, 0.2, seed=3)
        b = random_dense(16, 16, 0.2, seed=4)
        da = dist_from_dense(comm16, grid16, a)
        db = dist_from_dense(comm16, grid16, b)
        c, blooms = summa_spgemm(
            comm16, grid16, da, db, output="static", compute_bloom=True
        )
        assert np.allclose(c.to_dense(), a @ b)
        assert blooms is not None
        # bloom bits: verify no false negatives for a few global entries
        coo = c.to_coo_global()
        for i, j in list(zip(coo.rows, coo.cols))[:20]:
            rank = int(c.dist.owner_of(np.array([i]), np.array([j]))[0])
            li, lj = c.dist.to_local(rank, np.array([i]), np.array([j]))
            bits = blooms[rank].get(int(li[0]), int(lj[0]))
            contributing = [k for k in range(16) if a[i, k] != 0 and b[k, j] != 0]
            for k in contributing:
                assert (bits >> (k % BLOOM_BITS)) & 1 == 1

    def test_summa_shape_mismatch_raises(self, comm16, grid16):
        a = DynamicDistMatrix.empty(comm16, grid16, (8, 9))
        b = DynamicDistMatrix.empty(comm16, grid16, (10, 8))
        with pytest.raises(ValueError, match="inner dimensions"):
            summa_spgemm(comm16, grid16, a, b)

    def test_summa_bad_output_layout(self, comm16, grid16):
        a = DynamicDistMatrix.empty(comm16, grid16, (8, 8))
        b = DynamicDistMatrix.empty(comm16, grid16, (8, 8))
        with pytest.raises(ValueError, match="output layout"):
            summa_spgemm(comm16, grid16, a, b, output="bogus")


# ----------------------------------------------------------------------
# distributed transpose
# ----------------------------------------------------------------------
class TestTranspose:
    @pytest.mark.parametrize("layout", ["csr", "dcsr"])
    def test_transpose_matches_dense(self, comm16, grid16, layout):
        dense = random_dense(18, 11, 0.3, seed=5)
        mat = dist_from_dense(comm16, grid16, dense)
        t = transpose_dist(mat, layout=layout)
        assert t.shape == (11, 18)
        assert np.allclose(t.to_dense(), dense.T)

    def test_double_transpose_is_identity(self, comm16, grid16):
        dense = random_dense(14, 14, 0.3, seed=7)
        mat = dist_from_dense(comm16, grid16, dense)
        assert np.allclose(transpose_dist(transpose_dist(mat)).to_dense(), dense)


# ----------------------------------------------------------------------
# Algorithm 1 (algebraic updates)
# ----------------------------------------------------------------------
class TestDynamicAlgebraic:
    def _updates_from_dense(self, shape, dense_update, p, semiring=PLUS_TIMES, seed=0):
        rows, cols = np.nonzero(~semiring.is_zero(dense_update))
        vals = dense_update[rows, cols]
        return UpdateBatch.from_global(
            shape, rows, cols, vals, p, semiring=semiring, seed=seed
        )

    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_left_side_updates_match_recomputation(self, p):
        comm, grid = SimMPI(p), ProcessGrid(p)
        n = 20
        a0 = random_dense(n, n, 0.1, seed=1)
        b = random_dense(n, n, 0.2, seed=2)
        da = dist_from_dense(comm, grid, a0)
        db = static_from_dense(comm, grid, b)
        c, _ = summa_spgemm(comm, grid, da, db, output="dynamic")
        current = a0.copy()
        for step in range(3):
            delta = random_dense(n, n, 0.05, seed=10 + step)
            batch = self._updates_from_dense((n, n), delta, p, seed=step)
            a_star = build_update_matrix(comm, grid, da.dist, batch)
            touched = dynamic_spgemm_algebraic(comm, grid, da, db, a_star, None, c)
            da.add_update(a_star)
            current = current + delta
            assert np.allclose(c.to_dense(), current @ b)
            assert np.allclose(da.to_dense(), current)
            assert touched >= 0

    def test_both_sides_updates(self, comm16, grid16):
        n = 18
        a0 = random_dense(n, n, 0.15, seed=3)
        b0 = random_dense(n, n, 0.15, seed=4)
        da = dist_from_dense(comm16, grid16, a0)
        db = dist_from_dense(comm16, grid16, b0)
        c, _ = summa_spgemm(comm16, grid16, da, db, output="dynamic")
        delta_a = random_dense(n, n, 0.05, seed=5)
        delta_b = random_dense(n, n, 0.05, seed=6)
        a_star = build_update_matrix(
            comm16, grid16, da.dist, self._updates_from_dense((n, n), delta_a, 16, seed=7)
        )
        b_star = build_update_matrix(
            comm16, grid16, db.dist, self._updates_from_dense((n, n), delta_b, 16, seed=8)
        )
        # B must be updated to B' before the dynamic multiplication.
        db.add_update(b_star)
        dynamic_spgemm_algebraic(comm16, grid16, da, db, a_star, b_star, c)
        da.add_update(a_star)
        expected = (a0 + delta_a) @ (b0 + delta_b)
        assert np.allclose(c.to_dense(), expected)

    def test_empty_update_is_a_noop(self, comm16, grid16):
        n = 12
        a0 = random_dense(n, n, 0.2, seed=9)
        b = random_dense(n, n, 0.2, seed=10)
        da = dist_from_dense(comm16, grid16, a0)
        db = static_from_dense(comm16, grid16, b)
        c, _ = summa_spgemm(comm16, grid16, da, db, output="dynamic")
        empty = StaticDistMatrix.empty(comm16, grid16, (n, n), layout="dcsr")
        empty.dist = da.dist
        touched = dynamic_spgemm_algebraic(comm16, grid16, da, db, empty, None, c)
        assert touched == 0
        assert np.allclose(c.to_dense(), a0 @ b)

    def test_shape_mismatch_raises(self, comm16, grid16):
        da = DynamicDistMatrix.empty(comm16, grid16, (8, 8))
        db = DynamicDistMatrix.empty(comm16, grid16, (8, 8))
        c = DynamicDistMatrix.empty(comm16, grid16, (9, 9))
        a_star = StaticDistMatrix.empty(comm16, grid16, (8, 8), layout="dcsr")
        with pytest.raises(ValueError, match="result shape"):
            dynamic_spgemm_algebraic(comm16, grid16, da, db, a_star, None, c)

    def test_compute_cstar_pattern_and_bloom(self, comm16, grid16):
        n = 16
        a = random_dense(n, n, 0.15, seed=11)
        b = random_dense(n, n, 0.15, seed=12)
        delta = random_dense(n, n, 0.05, seed=13)
        da = dist_from_dense(comm16, grid16, a)
        db = static_from_dense(comm16, grid16, b)
        a_star = build_update_matrix(
            comm16, grid16, da.dist, self._updates_from_dense((n, n), delta, 16, seed=14)
        )
        cstar_blocks, blooms = compute_cstar(
            comm16, grid16, da, db, a_star, None, compute_bloom=True
        )
        # assemble C* globally and compare with delta @ b
        pieces = []
        dist = da.dist
        out_dist = None
        for rank, coo in cstar_blocks.items():
            if coo.nnz == 0:
                continue
            from repro.distributed import BlockDistribution

            out_dist = out_dist or BlockDistribution(n, n, grid16)
            gr, gc = out_dist.to_global(rank, coo.rows, coo.cols)
            pieces.append((gr, gc, coo.values))
        dense_cstar = np.zeros((n, n))
        for gr, gc, vals in pieces:
            np.add.at(dense_cstar, (gr, gc), vals)
        assert np.allclose(dense_cstar, delta @ b)
        assert blooms is not None
        assert sum(bl.nnz for bl in blooms.values()) >= 0


# ----------------------------------------------------------------------
# Algorithm 2 (general updates)
# ----------------------------------------------------------------------
class TestDynamicGeneral:
    def test_filter_by_row_bloom_superset(self):
        dense = random_dense(8, 8, 0.4, MIN_PLUS, seed=20)
        block = CSRMatrix.from_dense(dense, MIN_PLUS)
        bits = np.zeros(8, dtype=np.uint64)
        bits[2] = np.uint64(1) << np.uint64(3)  # row 2, admit columns ≡ 3 (mod 64)
        filtered = filter_by_row_bloom(block, bits, 0, MIN_PLUS)
        for row, cols, _vals in filtered.iter_rows():
            assert row == 2
            assert all(c % BLOOM_BITS == 3 for c in cols)

    @pytest.mark.parametrize("p", [4, 16])
    def test_deletions_match_recomputation(self, p):
        comm, grid = SimMPI(p), ProcessGrid(p)
        n = 16
        a = random_dense(n, n, 0.25, MIN_PLUS, seed=21)
        b = random_dense(n, n, 0.25, MIN_PLUS, seed=22)
        da = dist_from_dense(comm, grid, a, MIN_PLUS)
        db = dist_from_dense(comm, grid, b, MIN_PLUS)
        c, blooms = summa_spgemm(comm, grid, da, db, output="dynamic", compute_bloom=True)
        current = a.copy()
        rng = np.random.default_rng(23)
        for step in range(2):
            nz = np.argwhere(~np.isinf(current))
            sel = nz[rng.choice(len(nz), size=min(6, len(nz)), replace=False)]
            batch = UpdateBatch.from_global(
                (n, n), sel[:, 0], sel[:, 1], np.ones(len(sel)), p,
                kind="delete", semiring=MIN_PLUS, seed=step,
            )
            a_star = build_update_matrix(
                comm, grid, da.dist, batch, MIN_PLUS, combine="last"
            )
            for block in a_star.blocks.values():
                block.values[:] = MIN_PLUS.one
            da.mask_update(a_star)
            for r, cc in sel:
                current[r, cc] = np.inf
            dynamic_spgemm_general(
                comm, grid, da, da, db, a_star, None, c, blooms, semiring=MIN_PLUS
            )
            expected = MIN_PLUS.dense_matmul(current, b)
            assert np.allclose(c.to_dense(), expected, equal_nan=True)

    def test_boolean_semiring_deletion(self, comm16, grid16):
        n = 12
        rng = np.random.default_rng(31)
        a = (rng.random((n, n)) < 0.3).astype(np.float64)
        b = (rng.random((n, n)) < 0.3).astype(np.float64)
        da = dist_from_dense(comm16, grid16, a, BOOLEAN)
        db = dist_from_dense(comm16, grid16, b, BOOLEAN)
        c, blooms = summa_spgemm(
            comm16, grid16, da, db, output="dynamic", compute_bloom=True
        )
        nz = np.argwhere(a > 0)
        sel = nz[rng.choice(len(nz), size=min(5, len(nz)), replace=False)]
        batch = UpdateBatch.from_global(
            (n, n), sel[:, 0], sel[:, 1], np.ones(len(sel)), 16,
            kind="delete", semiring=BOOLEAN, seed=3,
        )
        a_star = build_update_matrix(
            comm16, grid16, da.dist, batch, BOOLEAN, combine="last"
        )
        for block in a_star.blocks.values():
            block.values[:] = BOOLEAN.one
        da.mask_update(a_star)
        a_new = a.copy()
        for r, cc in sel:
            a_new[r, cc] = 0.0
        dynamic_spgemm_general(
            comm16, grid16, da, da, db, a_star, None, c, blooms, semiring=BOOLEAN
        )
        expected = BOOLEAN.dense_matmul(a_new, b)
        assert np.allclose(c.to_dense(), expected)
