"""Tests for Bloom-filter matrices and element-wise static kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import (
    BLOOM_BITS,
    BloomFilterMatrix,
    COOMatrix,
    add_coo,
    mask_pattern,
    merge_pattern,
    pattern_row_index,
)
from repro.sparse.bloom import bits_for_inner_indices

from tests.conftest import random_dense


class TestBloomFilterMatrix:
    def test_set_get_and_or_accumulation(self):
        bloom = BloomFilterMatrix((4, 4))
        bloom.set_bits(1, 2, 0b101)
        bloom.set_bits(1, 2, 0b010)
        assert bloom.get(1, 2) == 0b111
        assert bloom.get(0, 0) == 0
        assert bloom.nnz == 1

    def test_zero_bits_do_not_create_entries(self):
        bloom = BloomFilterMatrix((4, 4))
        bloom.set_bits(0, 0, 0)
        assert bloom.nnz == 0

    def test_out_of_bounds_raises(self):
        bloom = BloomFilterMatrix((2, 2))
        with pytest.raises(IndexError):
            bloom.set_bits(2, 0, 1)
        with pytest.raises(IndexError):
            bloom.overwrite(0, 5, 1)

    def test_overwrite_and_delete(self):
        bloom = BloomFilterMatrix((3, 3))
        bloom.set_bits(0, 1, 0b11)
        bloom.overwrite(0, 1, 0b100)
        assert bloom.get(0, 1) == 0b100
        bloom.overwrite(0, 1, 0)
        assert bloom.nnz == 0
        bloom.set_bits(1, 1, 1)
        assert bloom.delete(1, 1)
        assert not bloom.delete(1, 1)

    def test_or_with_and_masked_by(self):
        a = BloomFilterMatrix.from_entries((3, 3), [(0, 0, 1), (1, 1, 2)])
        b = BloomFilterMatrix.from_entries((3, 3), [(0, 0, 4), (2, 2, 8)])
        combined = a.or_with(b)
        assert combined.get(0, 0) == 5
        assert combined.get(2, 2) == 8
        masked = combined.masked_by([(0, 0), (1, 2)])
        assert masked.get(0, 0) == 5
        assert masked.nnz == 1

    def test_or_with_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            BloomFilterMatrix((2, 2)).or_with(BloomFilterMatrix((3, 3)))

    def test_reduce_rows_or(self):
        bloom = BloomFilterMatrix.from_entries(
            (3, 4), [(0, 0, 1), (0, 3, 2), (2, 1, 8)]
        )
        reduced = bloom.reduce_rows_or()
        assert reduced == {0: 3, 2: 8}

    def test_candidate_inner_indices_superset_property(self):
        bloom = BloomFilterMatrix((2, 2))
        true_ks = [3, 64 + 3, 17]  # 3 and 67 collide mod 64
        for k in true_ks:
            bloom.set_bits(0, 0, 1 << (k % BLOOM_BITS))
        admitted = set(bloom.candidate_inner_indices(0, 0, 200).tolist())
        assert set(true_ks).issubset(admitted)
        # no admitted index outside the folded classes
        assert all((k % BLOOM_BITS) in {3, 17} for k in admitted)
        assert bloom.candidate_inner_indices(1, 1, 100).size == 0

    def test_to_arrays_and_equality(self):
        bloom = BloomFilterMatrix.from_entries((3, 3), [(2, 1, 4), (0, 0, 1)])
        rows, cols, bits = bloom.to_arrays()
        assert list(rows) == [0, 2]
        assert list(cols) == [0, 1]
        assert list(bits) == [1, 4]
        assert bloom == bloom.copy()
        assert bloom != BloomFilterMatrix((3, 3))

    def test_from_arrays_round_trip(self):
        rows = np.array([0, 1])
        cols = np.array([1, 2])
        bits = np.array([3, 9], dtype=np.uint64)
        bloom = BloomFilterMatrix.from_arrays((3, 3), rows, cols, bits)
        r, c, b = bloom.to_arrays()
        assert np.array_equal(r, rows) and np.array_equal(c, cols)
        assert np.array_equal(b, bits)

    @settings(max_examples=30, deadline=None)
    @given(inner=st.lists(st.integers(0, 500), min_size=0, max_size=40))
    def test_property_bits_for_inner_indices_no_false_negatives(self, inner):
        bits = bits_for_inner_indices(np.array(inner, dtype=np.int64))
        combined = int(np.bitwise_or.reduce(bits)) if len(inner) else 0
        for k in inner:
            assert (combined >> (k % BLOOM_BITS)) & 1 == 1


class TestElementwise:
    def test_add_coo(self):
        a = random_dense(6, 6, 0.4, seed=1)
        b = random_dense(6, 6, 0.4, seed=2)
        out = add_coo(COOMatrix.from_dense(a), COOMatrix.from_dense(b))
        assert np.allclose(out.to_dense(), a + b)

    def test_add_coo_min_plus(self):
        a = random_dense(6, 6, 0.4, MIN_PLUS, seed=3)
        b = random_dense(6, 6, 0.4, MIN_PLUS, seed=4)
        out = add_coo(
            COOMatrix.from_dense(a, MIN_PLUS), COOMatrix.from_dense(b, MIN_PLUS)
        )
        assert np.allclose(out.to_dense(), np.minimum(a, b), equal_nan=True)

    def test_merge_pattern_overwrites_and_inserts(self):
        base = COOMatrix((3, 3), [0, 1], [0, 1], [1.0, 2.0])
        update = COOMatrix((3, 3), [0, 2], [0, 2], [9.0, 7.0])
        out = merge_pattern(base, update).to_dict()
        assert out[(0, 0)] == pytest.approx(9.0)  # overwritten
        assert out[(1, 1)] == pytest.approx(2.0)  # untouched
        assert out[(2, 2)] == pytest.approx(7.0)  # inserted

    def test_mask_pattern_deletes(self):
        base = COOMatrix((3, 3), [0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0])
        update = COOMatrix((3, 3), [1, 2], [1, 2], [0.0, 0.0])
        out = mask_pattern(base, update).to_dict()
        assert set(out) == {(0, 0)}

    def test_merge_mask_empty_update_is_identity(self):
        base = COOMatrix.from_dense(random_dense(5, 5, 0.4, seed=9))
        empty = COOMatrix.empty((5, 5))
        assert np.allclose(merge_pattern(base, empty).to_dense(), base.to_dense())
        assert np.allclose(mask_pattern(base, empty).to_dense(), base.to_dense())

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            merge_pattern(COOMatrix.empty((2, 2)), COOMatrix.empty((3, 3)))
        with pytest.raises(ValueError):
            mask_pattern(COOMatrix.empty((2, 2)), COOMatrix.empty((3, 3)))

    def test_pattern_row_index(self):
        dense = np.zeros((4, 4))
        dense[1, [0, 3]] = 1.0
        dense[3, 2] = 1.0
        idx = pattern_row_index(COOMatrix.from_dense(dense))
        assert set(idx) == {1, 3}
        assert list(idx[1]) == [0, 3]
        assert list(idx[3]) == [2]
        assert pattern_row_index(COOMatrix.empty((4, 4))) == {}

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_merge_then_mask_removes_update_entries(self, seed):
        base = COOMatrix.from_dense(random_dense(8, 8, 0.3, seed=seed))
        update = COOMatrix.from_dense(random_dense(8, 8, 0.2, seed=seed + 1))
        merged = merge_pattern(base, update)
        masked = mask_pattern(merged, update)
        masked_keys = set(masked.to_dict())
        update_keys = set(update.to_dict())
        assert masked_keys.isdisjoint(update_keys)
