"""Backend-conformance suite.

Runs the same collective-semantics checks against every communicator
backend: the :class:`SimMPI` simulator and the :class:`MPIBackend` pinned to
its single-rank emulator (mpi4py absent).  The orchestration algorithms rely
on these exact semantics — payload routing, return shapes, error behaviour
and logical byte/message accounting — so any backend drift shows up here
before it corrupts an experiment.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.perf import PerfRecorder, use_recorder
from repro.runtime import (
    Communicator,
    MachineModel,
    MPIBackend,
    SimMPI,
    available_backends,
    make_communicator,
    payload_nbytes,
    register_backend,
)
from repro.runtime.mpi_backend import EmulatedComm


def _sim(p: int) -> Communicator:
    return SimMPI(p)


def _mpi_emulated(p: int) -> Communicator:
    return MPIBackend(p, force_emulator=True)


BACKENDS = [
    pytest.param(_sim, id="sim"),
    pytest.param(_mpi_emulated, id="mpi-emulated"),
]


@pytest.mark.parametrize("factory", BACKENDS)
class TestConformance:
    def test_satisfies_protocol(self, factory):
        comm = factory(4)
        assert isinstance(comm, Communicator)
        assert comm.p == comm.n_ranks == 4

    def test_bcast_reaches_every_rank(self, factory):
        comm = factory(4)
        payload = np.arange(8)
        received = comm.bcast(1, payload)
        assert set(received) == {0, 1, 2, 3}
        for value in received.values():
            assert np.array_equal(value, payload)

    def test_bcast_group_and_root_validation(self, factory):
        comm = factory(4)
        received = comm.bcast(2, "x", group=[2, 3])
        assert set(received) == {2, 3}
        with pytest.raises(ValueError):
            comm.bcast(0, "x", group=[2, 3])
        with pytest.raises(IndexError):
            comm.bcast(7, "x", group=[7])
        with pytest.raises(ValueError):
            comm.bcast(0, "x", group=[])

    def test_allgather_returns_independent_dicts(self, factory):
        comm = factory(3)
        payloads = {r: r * 10 for r in range(3)}
        gathered = comm.allgather(payloads)
        assert set(gathered) == {0, 1, 2}
        for r in range(3):
            assert gathered[r] == {0: 0, 1: 10, 2: 20}
        gathered[0][1] = -1
        assert gathered[1][1] == 10

    def test_alltoallv_routes_personalised_payloads(self, factory):
        comm = factory(3)
        sendbufs = {
            0: {1: "a", 2: "b"},
            1: {0: "c"},
            2: {2: "d"},
        }
        recv = comm.alltoallv(sendbufs)
        assert recv[1][0] == "a"
        assert recv[2][0] == "b"
        assert recv[0][1] == "c"
        assert recv[2][2] == "d"
        assert recv[0].keys() == {1}

    def test_alltoallv_group_membership_checks(self, factory):
        comm = factory(4)
        with pytest.raises(ValueError):
            comm.alltoallv({3: {0: "x"}}, group=[0, 1])
        with pytest.raises(ValueError):
            comm.alltoallv({0: {3: "x"}}, group=[0, 1])

    def test_exchange_and_sendrecv(self, factory):
        comm = factory(4)
        inbox = comm.exchange([(0, 1, "m01"), (2, 1, "m21"), (3, 3, "m33")])
        assert [src for src, _ in inbox[1]] == [0, 2]
        assert inbox[3] == [(3, "m33")]
        a_got, b_got = comm.sendrecv(0, 2, "ab", "ba")
        assert (a_got, b_got) == ("ba", "ab")

    def test_gather_scatter_round_trip(self, factory):
        comm = factory(4)
        payloads = {r: np.full(2, r) for r in range(4)}
        gathered = comm.gather(0, payloads)
        assert set(gathered) == {0, 1, 2, 3}
        scattered = comm.scatter(0, gathered)
        for r in range(4):
            assert np.array_equal(scattered[r], payloads[r])

    def test_reduce_and_allreduce(self, factory):
        comm = factory(5)
        payloads = {r: np.array([r, 1.0]) for r in range(5)}
        total = comm.reduce(2, payloads, lambda a, b: a + b)
        assert np.allclose(total, [0 + 1 + 2 + 3 + 4, 5.0])
        results = comm.allreduce(payloads, lambda a, b: a + b)
        assert set(results) == set(range(5))
        for value in results.values():
            assert np.allclose(value, [10.0, 5.0])
        with pytest.raises(ValueError):
            comm.reduce(4, payloads, lambda a, b: a + b, group=[0, 1])

    def test_run_local_and_map_local(self, factory):
        comm = factory(3)
        assert comm.run_local(1, lambda x: x * 2, 21) == 42
        with pytest.raises(IndexError):
            comm.run_local(5, lambda: None)
        by_seq = comm.map_local(lambda x: x + 1, [(10,), (20,), (30,)])
        assert by_seq == {0: 11, 1: 21, 2: 31}
        by_map = comm.map_local(lambda x: -x, {2: (5,)})
        assert by_map == {2: -5}
        with pytest.raises(ValueError):
            comm.map_local(lambda x: x, [(1,)], group=[0, 1])

    def test_timer_and_clock_reset(self, factory):
        comm = factory(2)
        with comm.timer() as t:
            comm.bcast(0, np.zeros(1024))
        assert t.seconds >= 0.0
        assert comm.elapsed() >= 0.0
        comm.reset()
        assert not comm.stats.categories

    def test_ownership_surface(self, factory):
        """Single-process backends own every rank; the accessors are the
        contract the locality-aware call sites in core/ and distributed/
        are written against."""
        comm = factory(4)
        assert comm.owned_ranks() == [0, 1, 2, 3]
        assert comm.owned_ranks([3, 1]) == [3, 1]
        assert all(comm.owns(r) for r in range(4))
        assert all(comm.owner_of(r) == 0 for r in range(4))
        with pytest.raises(IndexError):
            comm.owns(9)
        with pytest.raises(ValueError):
            comm.owned_ranks([])

    def test_host_control_plane_is_uncharged(self, factory):
        comm = factory(4)
        merged = comm.host_merge({r: r * r for r in comm.owned_ranks()})
        assert merged == {0: 0, 1: 1, 2: 4, 3: 9}
        assert comm.host_fold(5, lambda x, y: x + y) == 5
        # control-plane traffic must not appear in the paper-level stats
        assert not comm.stats.categories

    def test_collectives_accept_partial_contribution_mappings(self, factory):
        """Missing ranks in a payload mapping mean 'no contribution' —
        the semantics multi-process partial mappings rely on."""
        comm = factory(4)
        gathered = comm.gather(0, {1: "only"})
        assert gathered == {0: None, 1: "only", 2: None, 3: None}
        recv = comm.alltoallv({2: {0: "x"}})
        assert recv[0] == {2: "x"}
        assert all(recv[r] == {} for r in (1, 2, 3))

    def test_barrier_accepts_groups(self, factory):
        comm = factory(4)
        comm.barrier()
        comm.barrier(group=[1, 3])
        with pytest.raises(ValueError):
            comm.barrier(group=[])

    # -- nonblocking primitives ---------------------------------------
    def test_isend_irecv_matches_fifo_posting_order(self, factory):
        comm = factory(3)
        first = comm.isend(0, 1, "a")
        second = comm.isend(0, 1, "b")
        assert comm.wait(comm.irecv(0, 1)) == "a"
        assert comm.wait(comm.irecv(0, 1)) == "b"
        comm.waitall([first, second])

    def test_isend_to_self_delivers(self, factory):
        comm = factory(2)
        send = comm.isend(1, 1, np.arange(4))
        received = comm.wait(comm.irecv(1, 1))
        assert np.array_equal(received, np.arange(4))
        comm.wait(send)
        # self-messages follow the exchange convention: bytes, no message
        assert comm.stats.categories["send_recv"].messages == 0
        assert comm.stats.categories["send_recv"].bytes > 0

    def test_ibcast_matches_blocking_bcast(self, factory):
        blocking, nonblocking = factory(4), factory(4)
        payload = np.arange(16)
        want = blocking.bcast(1, payload, group=[1, 2, 3])
        got = nonblocking.wait(nonblocking.ibcast(1, payload, group=[1, 2, 3]))
        assert set(got) == set(want)
        for rank in want:
            assert np.array_equal(got[rank], want[rank])
        for name, totals in blocking.stats.categories.items():
            other = nonblocking.stats.categories[name]
            assert (totals.bytes, totals.messages) == (other.bytes, other.messages)

    def test_iallgather_matches_blocking_allgather(self, factory):
        blocking, nonblocking = factory(3), factory(3)
        payloads = {r: r * 10 for r in range(3)}
        want = blocking.allgather(payloads)
        got = nonblocking.wait(nonblocking.iallgather(payloads))
        assert got == want
        for name, totals in blocking.stats.categories.items():
            other = nonblocking.stats.categories[name]
            assert (totals.bytes, totals.messages) == (other.bytes, other.messages)

    def test_request_wait_is_idempotent(self, factory):
        comm = factory(2)
        request = comm.ibcast(0, np.ones(8))
        assert not request.done
        first = comm.wait(request)
        assert request.done
        assert comm.wait(request) is first
        # accounting happened exactly once despite the repeated wait
        assert comm.stats.categories["bcast"].operations == 1

    def test_waitall_returns_results_in_posting_order(self, factory):
        comm = factory(4)
        requests = [
            comm.ibcast(0, "root0"),
            comm.iallgather({r: r for r in range(4)}),
            comm.ibcast(2, "root2"),
        ]
        results = comm.waitall(requests)
        assert results[0][3] == "root0"
        assert results[1][0] == {r: r for r in range(4)}
        assert results[2][1] == "root2"
        assert all(request.done for request in requests)


def _collective_script(comm: Communicator) -> None:
    payload = {r: np.arange(4) + r for r in range(comm.n_ranks)}
    comm.bcast(0, np.ones(16))
    comm.allgather(payload)
    comm.alltoallv(
        {0: {0: np.zeros(16), 1: np.zeros(8)}, 1: {0: np.zeros(4)}},
        group=[0, 1],
    )
    comm.exchange([(0, 1, np.zeros(2)), (1, 0, np.zeros(2)), (2, 2, np.zeros(32))])
    comm.gather(0, payload)
    comm.scatter(0, payload)
    # nonblocking legs: accounting must match the blocking collectives'
    send = comm.isend(0, 1, np.zeros(6))
    comm.waitall([comm.ibcast(1, np.ones(32)), comm.iallgather(payload)])
    comm.wait(comm.irecv(0, 1))
    comm.wait(send)


def test_logical_traffic_accounting_matches_simulator():
    """Emulated MPIBackend records the same logical bytes/messages as SimMPI."""
    sim, mpi = SimMPI(4), MPIBackend(4, force_emulator=True)
    _collective_script(sim)
    _collective_script(mpi)
    assert set(sim.stats.categories) == set(mpi.stats.categories)
    for name, totals in sim.stats.categories.items():
        other = mpi.stats.categories[name]
        assert totals.bytes == other.bytes, name
        assert totals.messages == other.messages, name
        assert totals.operations == other.operations, name


class TestSimMPIOverlapModel:
    """Deterministic clock accounting of the nonblocking cost model.

    Every test pins the machine parameters, so the expected simulated
    times are exact closed forms of the alpha/beta model — no tolerance
    for measured noise is needed beyond float round-off.
    """

    @staticmethod
    def _machine(beta: float = 0.0) -> MachineModel:
        # equal intra/inter parameters: the expected costs below do not
        # depend on which node the model places a rank on
        return MachineModel(
            alpha=1e-3, beta=beta, intra_node_alpha=1e-3, intra_node_beta=beta
        )

    def test_outstanding_ibcasts_share_the_overlap_window(self):
        """Two broadcasts posted back to back cost max, not sum."""
        payload = np.zeros(64)
        blocking = SimMPI(4, self._machine())
        blocking.bcast(0, payload)
        blocking.bcast(0, payload)
        serial = blocking.elapsed()
        assert serial == pytest.approx(4e-3)  # 2 bcasts x 2 rounds x alpha

        overlapped = SimMPI(4, self._machine())
        overlapped.waitall([overlapped.ibcast(0, payload), overlapped.ibcast(0, payload)])
        assert overlapped.elapsed() == pytest.approx(serial / 2)

    def test_exposed_and_hidden_seconds_are_attributed(self):
        """The overlap counters split the full transfer cost exactly."""
        payload = np.zeros(64)
        recorder = PerfRecorder()
        with use_recorder(recorder):
            comm = SimMPI(4, self._machine())
            comm.waitall([comm.ibcast(0, payload), comm.ibcast(0, payload)])
        assert recorder.counters["overlap.exposed_seconds"] == pytest.approx(2e-3)
        assert recorder.counters["overlap.hidden_seconds"] == pytest.approx(2e-3)
        assert recorder.counters["overlap.requests"] == 2

    def test_isend_irecv_charges_the_link_cost_once(self):
        machine = self._machine(beta=1e-6)
        comm = SimMPI(2, machine)
        payload = np.zeros(1000)
        send = comm.isend(0, 1, payload)
        received = comm.wait(comm.irecv(0, 1))
        comm.wait(send)
        assert np.array_equal(received, payload)
        assert comm.elapsed() == pytest.approx(
            machine.message_cost(0, 1, payload.nbytes)
        )

    def test_self_message_is_free_in_simulated_time(self):
        comm = SimMPI(2, self._machine(beta=1e-6))
        send = comm.isend(1, 1, np.zeros(1000))
        comm.wait(comm.irecv(1, 1))
        comm.wait(send)
        assert comm.elapsed() == 0.0


class TestMPIBackendSpecifics:
    def test_emulated_world_owns_every_rank(self):
        comm = MPIBackend(6, force_emulator=True)
        assert not comm.is_real_mpi
        assert comm.world_size == 1
        assert all(comm.owns(r) for r in range(6))

    def test_world_larger_than_ranks_idles_surplus_processes(self):
        """``mpiexec -n 6`` with 4 logical ranks degrades gracefully: the
        surplus processes own nothing and a warning records the waste."""

        class FakeComm(EmulatedComm):
            def Get_size(self):
                return 4

        with pytest.warns(RuntimeWarning, match="will idle"):
            comm = MPIBackend(2, comm=FakeComm())
        assert comm.world_size == 4
        assert comm.owned_ranks() == [0]  # this process is world rank 0
        assert comm.owner_of(1) == 1

    def test_multi_process_world_is_accepted(self):
        """Multi-process worlds construct; ownership is round-robin."""

        class TwoProcComm(EmulatedComm):
            def Get_size(self):
                return 2

        comm = MPIBackend(4, comm=TwoProcComm())
        assert comm.world_size == 2
        assert comm.owned_ranks() == [0, 2]
        assert not comm.owns(1) and comm.owns(2)

    def test_emulated_comm_is_single_rank(self):
        comm = EmulatedComm()
        assert comm.Get_size() == 1 and comm.Get_rank() == 0
        assert comm.bcast("x") == "x"
        assert comm.allgather("y") == ["y"]
        assert comm.alltoall(["z"]) == ["z"]
        with pytest.raises(ValueError):
            comm.bcast("x", root=1)
        with pytest.raises(ValueError):
            comm.scatter(["a", "b"])


class TestFactory:
    def test_default_is_simulator(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        comm = make_communicator(n_ranks=4)
        assert isinstance(comm, SimMPI)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "mpi")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            comm = make_communicator(n_ranks=4)
        assert isinstance(comm, MPIBackend)

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "mpi")
        comm = make_communicator("sim", n_ranks=2)
        assert isinstance(comm, SimMPI)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown communicator backend"):
            make_communicator("no-such-backend", n_ranks=2)

    def test_register_custom_backend(self):
        created = {}

        def factory(n_ranks=1, machine=None, **kwargs):
            comm = SimMPI(n_ranks, machine)
            created["comm"] = comm
            return comm

        register_backend("test-custom", factory)
        assert "test-custom" in available_backends()
        comm = make_communicator("test-custom", n_ranks=3)
        assert comm is created["comm"]
        assert comm.n_ranks == 3


class TestPayloadNbytes:
    def test_unknown_type_warns_once_per_type(self):
        class Opaque:
            pass

        with pytest.warns(RuntimeWarning, match="unknown payload type"):
            assert payload_nbytes(Opaque()) == 64
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert payload_nbytes(Opaque()) == 64

    def test_known_types_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            payload_nbytes(np.zeros(4))
            payload_nbytes({"a": [1, 2.5, None, b"xy"]})
            payload_nbytes("text")
