"""Tests for the simulated competitor backends and SpGEMM baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicDistMatrix, ProcessGrid, SimMPI, partition_tuples_round_robin
from repro.competitors import (
    CombBLASBackend,
    CTFBackend,
    OurBackend,
    PETScBackend,
    UnsupportedOperation,
    get_backend,
    list_backends,
    static_spgemm_combblas,
    static_spgemm_ctf,
    static_spgemm_petsc_1d,
)
from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import CSRMatrix, COOMatrix

from tests.conftest import random_dense, static_from_dense

ALL_BACKENDS = ["ours", "combblas", "ctf", "petsc"]


def _tuples_from_dense(dense, p, seed=0):
    rows, cols = np.nonzero(dense)
    return partition_tuples_round_robin(rows, cols, dense[rows, cols], p, seed=seed)


class TestBackendRegistry:
    def test_registry(self):
        assert set(list_backends()) == set(ALL_BACKENDS)
        assert get_backend("ours") is OurBackend
        assert get_backend("combblas") is CombBLASBackend
        assert get_backend("ctf") is CTFBackend
        assert get_backend("petsc") is PETScBackend
        with pytest.raises(KeyError):
            get_backend("nope")

    def test_capability_flags_match_paper(self):
        assert OurBackend.supports_deletions
        assert CombBLASBackend.supports_deletions
        assert CTFBackend.supports_deletions
        assert not PETScBackend.supports_deletions
        assert not PETScBackend.supports_semirings


class TestBackendSemantics:
    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_construct_matches_reference(self, backend_name, comm16, grid16):
        n = 24
        dense = random_dense(n, n, 0.2, seed=1)
        backend = get_backend(backend_name)(comm16, grid16, (n, n))
        backend.construct(_tuples_from_dense(dense, 16, seed=2))
        assert np.allclose(backend.to_coo_global().to_dense(), dense)
        assert backend.nnz() == int((dense != 0).sum())
        assert backend.describe()["name"] == backend.name

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_insert_batch_adds_values(self, backend_name, comm16, grid16):
        n = 20
        dense = random_dense(n, n, 0.2, seed=3)
        extra = random_dense(n, n, 0.05, seed=4)
        backend = get_backend(backend_name)(comm16, grid16, (n, n))
        backend.construct(_tuples_from_dense(dense, 16, seed=5))
        backend.insert_batch(_tuples_from_dense(extra, 16, seed=6))
        assert np.allclose(backend.to_coo_global().to_dense(), dense + extra)

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_update_batch_overwrites_values(self, backend_name, comm16, grid16):
        n = 20
        dense = random_dense(n, n, 0.25, seed=7)
        backend = get_backend(backend_name)(comm16, grid16, (n, n))
        backend.construct(_tuples_from_dense(dense, 16, seed=8))
        rows, cols = np.nonzero(dense)
        sel = np.random.default_rng(9).choice(rows.size, size=10, replace=False)
        new_vals = np.full(10, 99.0)
        per_rank = partition_tuples_round_robin(rows[sel], cols[sel], new_vals, 16, seed=10)
        backend.update_batch(per_rank)
        result = backend.to_coo_global().to_dict()
        for r, c in zip(rows[sel], cols[sel]):
            assert result[(int(r), int(c))] == pytest.approx(99.0)

    @pytest.mark.parametrize("backend_name", ["ours", "combblas", "ctf"])
    def test_delete_batch_removes_entries(self, backend_name, comm16, grid16):
        n = 20
        dense = random_dense(n, n, 0.25, seed=11)
        backend = get_backend(backend_name)(comm16, grid16, (n, n))
        backend.construct(_tuples_from_dense(dense, 16, seed=12))
        rows, cols = np.nonzero(dense)
        sel = np.random.default_rng(13).choice(rows.size, size=12, replace=False)
        per_rank = partition_tuples_round_robin(
            rows[sel], cols[sel], np.zeros(12), 16, seed=14
        )
        backend.delete_batch(per_rank)
        expected = dense.copy()
        expected[rows[sel], cols[sel]] = 0.0
        assert np.allclose(backend.to_coo_global().to_dense(), expected)

    def test_petsc_rejects_deletions_and_other_semirings(self, comm16, grid16):
        backend = PETScBackend(comm16, grid16, (10, 10))
        with pytest.raises(UnsupportedOperation):
            backend.delete_batch({})
        with pytest.raises(UnsupportedOperation):
            PETScBackend(comm16, grid16, (10, 10), MIN_PLUS)

    def test_petsc_uses_fewer_ranks(self, comm16, grid16):
        backend = PETScBackend(comm16, grid16, (10, 10))
        assert backend.n_ranks == 16 // comm16.machine.ranks_per_node

    def test_our_backend_static_storage_variant(self, comm16, grid16):
        n = 16
        dense = random_dense(n, n, 0.2, seed=15)
        backend = OurBackend(comm16, grid16, (n, n), dynamic_storage=False)
        backend.construct(_tuples_from_dense(dense, 16, seed=16))
        assert np.allclose(backend.to_coo_global().to_dense(), dense)

    def test_all_backends_agree_after_mixed_workload(self, grid16):
        n = 22
        dense = random_dense(n, n, 0.25, seed=17)
        extra = random_dense(n, n, 0.05, seed=18)
        rows, cols = np.nonzero(dense)
        sel = np.random.default_rng(19).choice(rows.size, size=8, replace=False)
        results = {}
        for backend_name in ("ours", "combblas", "ctf"):
            comm = SimMPI(16)
            backend = get_backend(backend_name)(comm, grid16, (n, n))
            backend.construct(_tuples_from_dense(dense, 16, seed=20))
            backend.insert_batch(_tuples_from_dense(extra, 16, seed=21))
            backend.delete_batch(
                partition_tuples_round_robin(rows[sel], cols[sel], np.zeros(8), 16, seed=22)
            )
            results[backend_name] = backend.to_coo_global().to_dense()
        for backend_name, dense_result in results.items():
            assert np.allclose(dense_result, results["ours"]), backend_name


class TestSpGEMMBaselines:
    def test_combblas_and_ctf_baselines_match_dense(self, comm16, grid16):
        n = 16
        a = random_dense(n, n, 0.15, seed=23)
        b = random_dense(n, n, 0.15, seed=24)
        da = static_from_dense(comm16, grid16, a, layout="dcsr")
        db = static_from_dense(comm16, grid16, b, layout="csr")
        c_accum = DynamicDistMatrix.empty(comm16, grid16, (n, n))
        product = static_spgemm_combblas(comm16, grid16, da, db, accumulate_into=c_accum)
        assert np.allclose(product.to_dense(), a @ b)
        assert np.allclose(c_accum.to_dense(), a @ b)
        product_ctf = static_spgemm_ctf(comm16, grid16, da, db)
        assert np.allclose(product_ctf.to_dense(), a @ b)

    def test_ctf_baseline_charges_more_communication(self, grid16):
        n = 16
        a = random_dense(n, n, 0.15, seed=25)
        b = random_dense(n, n, 0.15, seed=26)
        comm_cb = SimMPI(16)
        static_spgemm_combblas(
            comm_cb, grid16,
            static_from_dense(comm_cb, grid16, a),
            static_from_dense(comm_cb, grid16, b),
        )
        comm_ctf = SimMPI(16)
        static_spgemm_ctf(
            comm_ctf, grid16,
            static_from_dense(comm_ctf, grid16, a),
            static_from_dense(comm_ctf, grid16, b),
        )
        assert comm_ctf.stats.total_bytes() > comm_cb.stats.total_bytes()

    def test_petsc_1d_baseline_matches_dense(self):
        n, n_ranks = 20, 4
        comm = SimMPI(n_ranks)
        a = random_dense(n, n, 0.2, seed=27)
        b = random_dense(n, n, 0.2, seed=28)
        offsets = np.array([0, 5, 10, 15, 20], dtype=np.int64)
        a_rows = {}
        for rank in range(n_ranks):
            lo, hi = offsets[rank], offsets[rank + 1]
            a_rows[rank] = CSRMatrix.from_dense(a[lo:hi, :])
        results = static_spgemm_petsc_1d(
            comm,
            a_rows,
            offsets,
            CSRMatrix.from_dense(b),
            semiring=PLUS_TIMES,
            n_ranks=n_ranks,
        )
        assembled = np.zeros((n, n))
        for rank, coo in results.items():
            lo = offsets[rank]
            dense_local = coo.to_dense()
            assembled[lo : lo + dense_local.shape[0], :] = dense_local
        assert np.allclose(assembled, a @ b)
