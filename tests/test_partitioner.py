"""Unit tests for the pluggable logical-rank→process placement layer.

Covers the strategy algebra (``repro.runtime.partitioner``), placement
validation, the environment/argument resolution chain, block migration and
the online repartitioning hook, plus the ``--expect-reduction`` mode of
``repro.perf.compare`` that gates the placement benchmark in CI.  The
cross-world byte-identity sweeps live in
``tests/test_partitioner_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.compare import compare_documents, parse_expect_reduction
from repro.perf.schema import bench_document, bench_run_entry
from repro.runtime import MPIBackend, ProcessGrid, run_spmd
from repro.runtime.partitioner import (
    PARTITIONER_ENV_VAR,
    REPARTITION_ENV_VAR,
    BlockCyclicPartitioner,
    LocalityAwarePartitioner,
    NnzAwarePartitioner,
    RoundRobinPartitioner,
    available_partitioners,
    make_partitioner,
    repartition_threshold,
    resolve_partitioner_name,
    verify_placement,
)
from repro.scenarios import SCENARIO_GENERATORS
from repro.scenarios.replay import replay


# ----------------------------------------------------------------------
# strategy algebra
# ----------------------------------------------------------------------
class TestStrategies:
    def test_round_robin_matches_historical_modulo(self):
        placement = RoundRobinPartitioner().placement(9, 4)
        assert placement == {r: r % 4 for r in range(9)}

    def test_block_cyclic_deals_contiguous_runs(self):
        placement = BlockCyclicPartitioner(block_size=2).placement(8, 2)
        assert placement == {0: 0, 1: 0, 2: 1, 3: 1, 4: 0, 5: 0, 6: 1, 7: 1}
        with pytest.raises(ValueError, match="block_size"):
            BlockCyclicPartitioner(block_size=0)

    def test_nnz_aware_lpt_balances_skewed_weights(self):
        weights = {0: 100.0, 1: 10.0, 2: 10.0, 3: 80.0}
        placement = NnzAwarePartitioner().placement(4, 2, weights=weights)
        loads = [0.0, 0.0]
        for rank, proc in placement.items():
            loads[proc] += weights[rank]
        assert sorted(loads) == [100.0, 100.0]

    def test_nnz_aware_uniform_weights_reproduce_round_robin(self):
        for n_ranks, world in ((9, 2), (9, 4), (16, 4), (4, 6)):
            uniform = NnzAwarePartitioner().placement(n_ranks, world)
            assert uniform == RoundRobinPartitioner().placement(n_ranks, world)

    def test_nnz_aware_degenerate_weights_fall_back_to_uniform(self):
        zeros = NnzAwarePartitioner().placement(6, 3, weights=[0.0] * 6)
        assert zeros == RoundRobinPartitioner().placement(6, 3)
        with pytest.raises(ValueError, match="cover all"):
            NnzAwarePartitioner().placement(6, 3, weights=[1.0, 2.0])

    def test_nnz_aware_is_deterministic(self):
        weights = {r: float((r * 7) % 5) for r in range(9)}
        first = NnzAwarePartitioner().placement(9, 4, weights=weights)
        assert first == NnzAwarePartitioner().placement(9, 4, weights=weights)

    def test_locality_aware_bands_keep_grid_columns_together(self):
        """On a 3x3 grid at world 2 the factorisation is 1x2: two column
        bands, so every grid column (the phase-1 redistribution group) is
        intra-process."""
        grid = ProcessGrid(9)
        placement = LocalityAwarePartitioner().placement(9, 2, grid=grid)
        for col in range(3):
            owners = {placement[row * 3 + col] for row in range(3)}
            assert len(owners) == 1
        assert set(placement.values()) == {0, 1}

    def test_locality_aware_square_world_is_block_partition(self):
        grid = ProcessGrid(16)
        placement = LocalityAwarePartitioner().placement(16, 4, grid=grid)
        # 2x2 bands of the 4x4 grid: each process owns one contiguous tile
        for rank, proc in placement.items():
            row, col = divmod(rank, 4)
            assert proc == (row // 2) * 2 + (col // 2)

    def test_locality_aware_prime_world_falls_back_to_chunks(self):
        grid = ProcessGrid(9)
        placement = LocalityAwarePartitioner().placement(9, 5, grid=grid)
        verify_placement(placement, 9, 5)
        # contiguous row-major chunks: owners are non-decreasing
        owners = [placement[r] for r in range(9)]
        assert owners == sorted(owners)
        assert set(owners) == set(range(5))

    def test_locality_aware_surplus_ranks_deal_round_robin(self):
        # 6 logical ranks on a fitted 2x2 grid: ranks 4, 5 are outside q²
        grid = ProcessGrid(4)
        placement = LocalityAwarePartitioner().placement(6, 2, grid=grid)
        verify_placement(placement, 6, 2)
        assert placement[4] == 0 and placement[5] == 1

    @pytest.mark.parametrize("name", available_partitioners())
    @pytest.mark.parametrize("n_ranks,world", [(1, 1), (4, 6), (9, 2), (16, 3)])
    def test_every_strategy_produces_valid_placements(self, name, n_ranks, world):
        placement = make_partitioner(name).placement(n_ranks, world)
        verify_placement(placement, n_ranks, world)
        active = min(world, n_ranks)
        assert set(placement.values()) <= set(range(active))


# ----------------------------------------------------------------------
# placement validation
# ----------------------------------------------------------------------
class TestVerifyPlacement:
    def test_missing_and_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError, match="exactly once"):
            verify_placement({0: 0, 2: 0}, 3, 2)
        with pytest.raises(ValueError, match="exactly once"):
            verify_placement({0: 0}, 2, 2)

    def test_idle_process_targets_rejected(self):
        # world 6 over 4 ranks: active domain is [0, 4)
        with pytest.raises(ValueError, match="active process domain"):
            verify_placement({0: 0, 1: 1, 2: 2, 3: 5}, 4, 6)
        with pytest.raises(ValueError, match="active process domain"):
            verify_placement({0: -1, 1: 0}, 2, 2)

    def test_valid_placement_passes(self):
        verify_placement({0: 1, 1: 0, 2: 1}, 3, 2)


# ----------------------------------------------------------------------
# resolution: argument -> environment -> default
# ----------------------------------------------------------------------
class TestResolution:
    def test_default_is_round_robin(self, monkeypatch):
        monkeypatch.delenv(PARTITIONER_ENV_VAR, raising=False)
        assert resolve_partitioner_name() == "round_robin"
        assert isinstance(make_partitioner(), RoundRobinPartitioner)

    def test_env_var_selects_strategy(self, monkeypatch):
        monkeypatch.setenv(PARTITIONER_ENV_VAR, "locality_aware")
        assert isinstance(make_partitioner(), LocalityAwarePartitioner)

    def test_typos_raise_from_argument_and_environment(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown partitioner"):
            resolve_partitioner_name("nnz_awre")
        monkeypatch.setenv(PARTITIONER_ENV_VAR, "roundrobin")
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner()

    def test_instance_passthrough(self):
        instance = BlockCyclicPartitioner(block_size=3)
        assert make_partitioner(instance) is instance

    def test_replay_validates_env_even_on_sim(self, monkeypatch):
        scenario = SCENARIO_GENERATORS["grow_from_empty"](seed=2022)
        monkeypatch.setenv(PARTITIONER_ENV_VAR, "no_such_strategy")
        with pytest.raises(ValueError, match="unknown partitioner"):
            replay(scenario, backend="sim", n_ranks=4, layout="csr")


# ----------------------------------------------------------------------
# REPRO_REPARTITION parsing
# ----------------------------------------------------------------------
class TestRepartitionThreshold:
    @pytest.mark.parametrize("raw", ["", "off", "0", "none", "false", "OFF"])
    def test_disabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(REPARTITION_ENV_VAR, raw)
        assert repartition_threshold() is None

    def test_unset_is_disabled(self, monkeypatch):
        monkeypatch.delenv(REPARTITION_ENV_VAR, raising=False)
        assert repartition_threshold() is None

    def test_valid_ratio(self, monkeypatch):
        monkeypatch.setenv(REPARTITION_ENV_VAR, "1.5")
        assert repartition_threshold() == 1.5

    @pytest.mark.parametrize("raw", ["1.0", "0.5", "-2"])
    def test_ratio_at_or_below_one_raises(self, monkeypatch, raw):
        monkeypatch.setenv(REPARTITION_ENV_VAR, raw)
        with pytest.raises(ValueError, match="strictly greater than 1"):
            repartition_threshold()

    def test_junk_raises(self, monkeypatch):
        monkeypatch.setenv(REPARTITION_ENV_VAR, "sometimes")
        with pytest.raises(ValueError, match="ratio > 1 or 'off'"):
            repartition_threshold()


# ----------------------------------------------------------------------
# migration and the online repartitioning hook
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings("ignore:MPI world of 3 processes:RuntimeWarning")
class TestMigration:
    def test_migrate_ownership_moves_blocks(self):
        def wrapped(comm_obj, world_rank):
            comm = MPIBackend(4, comm=comm_obj)
            blocks = {rank: f"block-{rank}" for rank in comm.owned_ranks()}
            # round-robin start: process 0 owns {0, 2}, process 1 owns
            # {1, 3}; this map swaps every block to the other process
            new_placement = {0: 1, 1: 0, 2: 1, 3: 0}
            moved = comm.migrate_ownership(new_placement, [blocks])
            return world_rank, moved, blocks, comm.placement()

        for world_rank, moved, blocks, placement in run_spmd(2, wrapped):
            assert placement == {0: 1, 1: 0, 2: 1, 3: 0}
            assert moved == 2  # this process shipped both of its blocks
            owned = {r for r, p in placement.items() if p == world_rank}
            assert set(blocks) == owned
            assert all(blocks[r] == f"block-{r}" for r in owned)

    def test_migration_is_charged_as_interprocess_traffic(self):
        def wrapped(comm_obj, world_rank):
            comm = MPIBackend(4, comm=comm_obj)
            blocks = {rank: np.arange(100) for rank in comm.owned_ranks()}
            before = comm.global_interprocess_comm()
            comm.migrate_ownership({0: 1, 1: 0, 2: 0, 3: 1}, [blocks])
            return before, comm.global_interprocess_comm()

        for before, after in run_spmd(2, wrapped):
            assert after["bytes"] > before["bytes"]
            assert after["messages"] > before["messages"]

    def test_repartition_hook_preserves_results(self, monkeypatch):
        """An aggressively low threshold forces mid-replay migrations; the
        scenario outcome must stay byte-identical to the simulator's."""
        scenario = SCENARIO_GENERATORS["bursty_skewed_stream"](seed=2022)
        reference = replay(scenario, backend="sim", n_ranks=9, layout="csr")
        monkeypatch.setenv(REPARTITION_ENV_VAR, "1.01")

        def wrapped(comm_obj, world_rank):
            comm = MPIBackend(9, comm=comm_obj)
            result = replay(scenario, comm=comm, layout="csr")
            return result, comm.placement()

        results = run_spmd(2, wrapped)
        start = RoundRobinPartitioner().placement(9, 2)
        assert any(placement != start for _, placement in results)
        for result, _ in results:
            assert np.array_equal(result.final_a[0], reference.final_a[0])
            assert np.array_equal(result.final_a[1], reference.final_a[1])
            assert np.array_equal(result.final_a[2], reference.final_a[2])
            assert result.applied_counts == reference.applied_counts
            # migrations add redistribution traffic by design; every other
            # communication category must stay byte-identical
            signature = dict(result.comm_signature())
            expected = dict(reference.comm_signature())
            moved_extra = signature.pop("redist_comm")
            assert moved_extra > expected.pop("redist_comm")
            assert signature == expected

    def test_oversubscribed_world_keeps_surplus_idle_after_migration(self):
        def wrapped(comm_obj, world_rank):
            comm = MPIBackend(2, comm=comm_obj)
            blocks = {rank: rank for rank in comm.owned_ranks()}
            comm.migrate_ownership({0: 1, 1: 0}, [blocks])
            return world_rank, sorted(blocks)

        for world_rank, owned in run_spmd(3, wrapped):
            if world_rank == 2:
                assert owned == []


# ----------------------------------------------------------------------
# compare --expect-reduction (the CI partition gate)
# ----------------------------------------------------------------------
def _doc(bytes_: float, share: float) -> dict:
    run = bench_run_entry(
        backend="mpi",
        layout="csr",
        repeats=1,
        elapsed_seconds_median=1.0,
        phase_seconds_median={},
        phase_calls={},
        counters={"partition.max_nnz_share": share},
        comm={"messages": 10.0, "bytes": bytes_},
    )
    return bench_document(
        figure="partition",
        title="test",
        seed=0,
        profile="test",
        n_ranks=9,
        runs=[run],
        sha="deadbeef",
    )


class TestExpectReduction:
    def test_met_reduction_passes_and_checks_only_requested_metrics(self):
        # bytes drop 50%; nnz share got *worse* but is not requested
        report = compare_documents(
            _doc(1000.0, 0.4),
            _doc(500.0, 0.9),
            expect_reduction={"comm.bytes": 0.2},
        )
        assert not report.regressed
        assert report.compared_metrics == 1

    def test_unmet_reduction_fails(self):
        report = compare_documents(
            _doc(1000.0, 0.4),
            _doc(900.0, 0.4),
            expect_reduction={"comm.bytes": 0.2},
        )
        assert report.regressed
        assert "comm.bytes" in report.regressions[0].metric

    def test_counter_metric_path(self):
        report = compare_documents(
            _doc(1000.0, 0.6),
            _doc(2000.0, 0.3),
            expect_reduction={"counters.partition.max_nnz_share": 0.25},
        )
        assert not report.regressed

    def test_unknown_counter_raises(self):
        with pytest.raises(ValueError, match="no counter"):
            compare_documents(
                _doc(1.0, 0.5),
                _doc(1.0, 0.5),
                expect_reduction={"counters.nope": 0.1},
            )

    def test_bad_fractions_and_mode_mixing_rejected(self):
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            compare_documents(
                _doc(1.0, 0.5), _doc(1.0, 0.5), expect_reduction={"comm.bytes": 1.5}
            )
        with pytest.raises(ValueError, match="exclusive"):
            compare_documents(
                _doc(1.0, 0.5),
                _doc(1.0, 0.5),
                expect_speedup=0.2,
                expect_reduction={"comm.bytes": 0.2},
            )

    def test_cli_spec_parsing(self):
        assert parse_expect_reduction(None) is None
        assert parse_expect_reduction(["comm.bytes=0.2", "counters.x=0.5"]) == {
            "comm.bytes": 0.2,
            "counters.x": 0.5,
        }
        with pytest.raises(ValueError, match="METRIC=FRACTION"):
            parse_expect_reduction(["comm.bytes"])
