"""Tests for the perf instrumentation subsystem (`repro.perf`).

Covers: nested-timer correctness, counter/phase merge across per-rank
recorders, the backend accounting funnel, BENCH schema round-trips and the
compare gate's pass/fail thresholds — plus the instrumentation contract of
the replay driver (phases show up, comm volume is attributed).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.perf import (
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    PerfRecorder,
    bench_document,
    bench_run_entry,
    compare_documents,
    get_recorder,
    perf_count,
    perf_phase,
    use_recorder,
    validate_bench,
)
from repro.runtime import SimMPI, make_communicator
from repro.scenarios import grow_from_empty, replay


# ----------------------------------------------------------------------
# recorder: nested timers
# ----------------------------------------------------------------------
class FakeClock:
    """Deterministic clock: each read advances by `step` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def test_nested_phases_accumulate_under_paths():
    rec = PerfRecorder()
    with rec.phase("outer"):
        with rec.phase("inner"):
            pass
        with rec.phase("inner"):
            pass
    assert rec.phases["outer"].calls == 1
    assert rec.phases["outer/inner"].calls == 2
    assert "inner" not in rec.phases  # nested path, not a sibling root


def test_nested_phase_timing_is_inclusive_and_exclusive_derives():
    # Each clock read advances 1s: outer spans reads (0, 5) = 5s inclusive;
    # the two inner phases span (1, 2) and (3, 4) = 1s each.
    rec = PerfRecorder(clock=FakeClock())
    with rec.phase("outer"):
        with rec.phase("inner"):
            pass
        with rec.phase("inner"):
            pass
    assert rec.phase_seconds("outer") == pytest.approx(5.0)
    assert rec.phase_seconds("outer/inner") == pytest.approx(2.0)
    assert rec.exclusive_seconds("outer") == pytest.approx(3.0)
    # exclusive only subtracts *direct* children
    assert rec.exclusive_seconds("outer/inner") == pytest.approx(2.0)


def test_phase_stack_restored_on_exception():
    rec = PerfRecorder()
    with pytest.raises(RuntimeError):
        with rec.phase("outer"):
            with rec.phase("inner"):
                raise RuntimeError("boom")
    assert rec.current_path() == ""
    assert rec.phases["outer"].calls == 1
    assert rec.phases["outer/inner"].calls == 1


def test_phase_name_validation():
    rec = PerfRecorder()
    with pytest.raises(ValueError):
        with rec.phase("bad/name"):
            pass
    with pytest.raises(ValueError):
        with rec.phase(""):
            pass


# ----------------------------------------------------------------------
# recorder: counters, comm, merge
# ----------------------------------------------------------------------
def test_counters_and_comm_attribution():
    rec = PerfRecorder()
    with rec.phase("work"):
        rec.count("widgets", 3)
        rec.record_comm("bcast", messages=4, nbytes=100, seconds=0.5)
    rec.record_comm("bcast", messages=1, nbytes=10, seconds=0.1)  # outside phase
    assert rec.counters["widgets"] == 3
    assert rec.comm["bcast"] == {
        "events": 2,
        "messages": 5,
        "bytes": 110,
        "seconds": pytest.approx(0.6),
    }
    # only the in-phase share lands on the phase
    assert rec.phases["work"].messages == 4
    assert rec.phases["work"].bytes == 100
    assert rec.total_comm() == {"messages": 5, "bytes": 110}


def test_merge_across_ranks_sums_everything():
    ranks = []
    for rank in range(3):
        rec = PerfRecorder()
        with rec.phase("step"):
            rec.count("entries", 10 * (rank + 1))
            rec.record_comm("alltoall", messages=2, nbytes=rank + 1)
        ranks.append(rec)
    merged = PerfRecorder()
    for rec in ranks:
        merged.merge(rec)
    assert merged.counters["entries"] == 60
    assert merged.phases["step"].calls == 3
    assert merged.comm["alltoall"]["messages"] == 6
    assert merged.comm["alltoall"]["bytes"] == 6
    assert merged.phases["step"].bytes == 6


def test_module_probes_noop_without_active_recorder():
    assert get_recorder() is None
    with perf_phase("anything"):
        perf_count("nothing")  # must not raise


def test_use_recorder_nests_and_restores():
    outer, inner = PerfRecorder(), PerfRecorder()
    with use_recorder(outer):
        assert get_recorder() is outer
        with use_recorder(inner):
            assert get_recorder() is inner
            perf_count("x")
        assert get_recorder() is outer
    assert get_recorder() is None
    assert inner.counters == {"x": 1}
    assert outer.counters == {}


def test_backend_funnel_records_into_stats_and_recorder():
    rec = PerfRecorder()
    with use_recorder(rec):
        comm = SimMPI(4)
        with rec.phase("exchange"):
            comm.exchange([(0, 1, np.zeros(8)), (2, 3, np.zeros(4))])
    # CommStats side (unchanged semantics)
    assert comm.stats.categories["send_recv"].messages == 2
    assert comm.stats.categories["send_recv"].bytes == 96
    # recorder side, attributed to the open phase
    assert rec.comm["send_recv"]["messages"] == 2
    assert rec.phases["exchange"].bytes == 96


def test_replay_populates_phases_and_comm():
    scenario = grow_from_empty(n=48, n_batches=2, batch=64, seed=5)
    rec = PerfRecorder()
    with use_recorder(rec):
        replay(scenario, n_ranks=4, collect_final=False)
    assert rec.phases["replay_construct"].calls == 1
    assert rec.phases["replay_insert"].calls == 2
    assert rec.phase_seconds("replay_insert/redistribute") > 0.0
    assert rec.phases["replay_insert"].bytes > 0
    assert rec.counters["dhb.insert.entries"] > 0


# ----------------------------------------------------------------------
# schema round-trip
# ----------------------------------------------------------------------
def _sample_run(**overrides):
    entry = bench_run_entry(
        backend="sim",
        layout="csr",
        repeats=3,
        elapsed_seconds_median=0.25,
        phase_seconds_median={"replay_insert": 0.1, "replay_insert/redistribute": 0.04},
        phase_calls={"replay_insert": 4},
        counters={"dhb.insert.entries": 4096},
        comm={"messages": 480, "bytes": 123456},
        comm_categories={"alltoall": {"messages": 480, "bytes": 123456}},
    )
    entry.update(overrides)
    return entry


def _sample_document(**overrides):
    doc = bench_document(
        figure="fig04",
        title="sample",
        seed=0,
        profile="smoke",
        n_ranks=16,
        runs=[_sample_run()],
        extras={"note": "test"},
        sha="deadbeef",
    )
    doc.update(overrides)
    return doc


def test_bench_document_round_trips_through_json():
    doc = _sample_document()
    validate_bench(doc)
    restored = json.loads(json.dumps(doc))
    validate_bench(restored)
    assert restored == doc
    assert restored["schema_version"] == BENCH_SCHEMA_VERSION
    assert restored["git_sha"] == "deadbeef"


@pytest.mark.parametrize(
    "corrupt",
    [
        {"schema_version": 99},
        {"runs": [{"backend": "sim"}]},
        {"seed": "zero"},
        {"n_ranks": 0},
        {"runs": [_sample_run(elapsed_seconds_median=-1.0)]},
        {"runs": [_sample_run(comm={"messages": 1})]},
    ],
)
def test_schema_rejects_corrupt_documents(corrupt):
    doc = _sample_document(**corrupt)
    with pytest.raises(BenchSchemaError):
        validate_bench(doc)


def test_schema_rejects_missing_required_key():
    doc = _sample_document()
    del doc["git_sha"]
    with pytest.raises(BenchSchemaError):
        validate_bench(doc)


# ----------------------------------------------------------------------
# compare gate
# ----------------------------------------------------------------------
def test_compare_identical_documents_passes():
    doc = _sample_document()
    report = compare_documents(doc, doc, threshold=0.25)
    assert not report.regressed
    assert report.compared_metrics > 0


def test_compare_flags_injected_2x_slowdown():
    base = _sample_document()
    slow = _sample_document()
    slow["runs"][0]["phase_seconds_median"]["replay_insert"] *= 2.0
    report = compare_documents(base, slow, threshold=0.25)
    assert report.regressed
    (regression,) = report.regressions
    assert regression.metric == "phase:replay_insert"
    assert regression.ratio == pytest.approx(2.0)


def test_compare_tolerates_drift_below_threshold():
    base = _sample_document()
    near = _sample_document()
    near["runs"][0]["elapsed_seconds_median"] *= 1.2  # under the 25% gate
    assert not compare_documents(base, near, threshold=0.25).regressed


def test_compare_absolute_floor_ignores_micro_phases():
    base = _sample_document()
    noisy = _sample_document()
    noisy["runs"][0]["phase_seconds_median"]["replay_insert/redistribute"] = 0.0402
    base["runs"][0]["phase_seconds_median"]["replay_insert/redistribute"] = 0.0200
    # 2x ratio but only +20ms; with a large floor it must pass, with the
    # default floor it must fail
    assert not compare_documents(base, noisy, min_seconds=0.05).regressed
    assert compare_documents(base, noisy, min_seconds=5e-4).regressed


def test_compare_comm_volume_has_no_timing_floor():
    base = _sample_document()
    bloated = _sample_document()
    bloated["runs"][0]["comm"]["bytes"] *= 2
    report = compare_documents(base, bloated, min_seconds=1e9)
    assert report.regressed
    assert report.regressions[0].metric == "comm.bytes"


def test_compare_refuses_cross_figure_documents():
    base = _sample_document()
    other = _sample_document(figure="fig08")
    with pytest.raises(BenchSchemaError):
        compare_documents(base, other)


def test_compare_reports_unmatched_runs():
    base = _sample_document()
    wider = _sample_document()
    wider["runs"] = [_sample_run(), _sample_run(layout="dhb")]
    report = compare_documents(base, wider)
    assert report.unmatched_runs == ["sim/dhb"]
    assert not report.regressed


def test_compare_expect_speedup_requires_faster_current():
    base = _sample_document()
    fast = _sample_document()
    fast["runs"][0]["elapsed_seconds_median"] *= 0.7  # 30% faster
    assert not compare_documents(base, fast, expect_speedup=0.2).regressed
    # 30% is not a 40% speedup
    report = compare_documents(base, fast, expect_speedup=0.4)
    assert report.regressed
    assert "expected >= 40% speedup" in report.regressions[0].metric
    # equal timings are a failure too: no speedup at all
    assert compare_documents(base, base, expect_speedup=0.2).regressed


def test_compare_expect_speedup_skips_phases_but_keeps_volume():
    base = _sample_document()
    current = _sample_document()
    current["runs"][0]["elapsed_seconds_median"] *= 0.5
    # phases may shift freely between modes...
    current["runs"][0]["phase_seconds_median"]["replay_insert"] *= 10.0
    assert not compare_documents(base, current, expect_speedup=0.2).regressed
    # ...but the communication volume must not grow
    current["runs"][0]["comm"]["bytes"] *= 2
    report = compare_documents(base, current, expect_speedup=0.2)
    assert report.regressed
    assert report.regressions[0].metric == "comm.bytes"


def test_compare_expect_speedup_validates_fraction():
    base = _sample_document()
    with pytest.raises(ValueError):
        compare_documents(base, base, expect_speedup=1.5)


def test_compare_cli_round_trip(tmp_path):
    from repro.perf.compare import main

    base_path = tmp_path / "base.json"
    slow_path = tmp_path / "slow.json"
    base = _sample_document()
    slow = _sample_document()
    slow["runs"][0]["elapsed_seconds_median"] *= 2.0
    base_path.write_text(json.dumps(base))
    slow_path.write_text(json.dumps(slow))
    assert main([str(base_path), str(base_path)]) == 0
    assert main([str(base_path), str(slow_path)]) == 1
    assert main([str(base_path), str(tmp_path / "missing.json")]) == 2
    # --expect-speedup flips the gate: baseline-vs-half-time passes,
    # self-comparison (no speedup) fails
    assert main([str(slow_path), str(base_path), "--expect-speedup", "0.2"]) == 0
    assert main([str(base_path), str(base_path), "--expect-speedup", "0.2"]) == 1
    assert main([str(base_path), str(base_path), "--expect-speedup", "2"]) == 2


# ----------------------------------------------------------------------
# the suite runner end to end (one tiny cell)
# ----------------------------------------------------------------------
def test_run_suite_emits_valid_documents(tmp_path):
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "run_suite.py"
    spec = importlib.util.spec_from_file_location("run_suite", path)
    run_suite_mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(run_suite_mod)
    written = run_suite_mod.run_suite(
        profile_name="smoke",
        figs=("fig08",),
        backends=("sim",),
        layouts=("csr",),
        repeats=1,
        out_dir=str(tmp_path),
    )
    assert written == [str(tmp_path / "BENCH_fig08.json")]
    with open(written[0], "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_bench(document)
    assert document["figure"] == "fig08"
    (run,) = document["runs"]
    assert (run["backend"], run["layout"]) == ("sim", "csr")
    assert run["phase_seconds_median"]["replay_construct"] > 0.0
    assert not compare_documents(document, document).regressed


def test_run_suite_apps_figure_emits_scenario_tagged_runs(tmp_path):
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "run_suite.py"
    spec = importlib.util.spec_from_file_location("run_suite", path)
    run_suite_mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(run_suite_mod)
    written = run_suite_mod.run_suite(
        profile_name="smoke",
        figs=("apps",),
        backends=("sim",),
        repeats=1,
        out_dir=str(tmp_path),
    )
    assert written == [str(tmp_path / "BENCH_apps.json")]
    with open(written[0], "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_bench(document)
    assert document["figure"] == "apps"
    scenarios = [run["scenario"] for run in document["runs"]]
    assert scenarios == document["extras"]["scenarios"]
    assert set(scenarios) == {
        "social_triangle_stream",
        "road_churn_sssp",
        "multilevel_contraction",
    }
    # the app phases recorded by the instrumented applications are present
    phases = {p for run in document["runs"] for p in run["phase_seconds_median"]}
    assert any("app_triangle_count" in p for p in phases)
    assert any("app_sssp_query" in p for p in phases)
    assert any("app_contract" in p for p in phases)
    assert not compare_documents(document, document).regressed


def test_compare_distinguishes_scenario_tagged_runs():
    """Same-layout runs of different scenarios must not collapse onto one
    comparison key — a regression in the *first* scenario run is caught."""

    def doc(first_elapsed):
        runs = []
        for name, elapsed in (("alpha", first_elapsed), ("beta", 1.0)):
            run = bench_run_entry(
                backend="sim",
                layout="csr",
                repeats=1,
                elapsed_seconds_median=elapsed,
                phase_seconds_median={},
                phase_calls={},
                counters={},
                comm={"messages": 1, "bytes": 100},
            )
            run["scenario"] = name
            runs.append(run)
        return bench_document(
            figure="apps",
            title="t",
            seed=0,
            profile="smoke",
            n_ranks=4,
            runs=runs,
            sha="x",
        )

    report = compare_documents(doc(1.0), doc(10.0))
    assert report.regressed
    assert not report.unmatched_runs
    assert any("alpha" in r.run for r in report.regressions)


# ----------------------------------------------------------------------
# cross-backend determinism of the funnel
# ----------------------------------------------------------------------
def test_comm_volume_identical_across_backends():
    scenario = grow_from_empty(n=48, n_batches=2, batch=64, seed=5)
    volumes = {}
    for backend in ("sim", "mpi"):
        rec = PerfRecorder()
        comm = make_communicator(backend, n_ranks=4, force_emulator=True) \
            if backend == "mpi" else make_communicator(backend, n_ranks=4)
        with use_recorder(rec):
            replay(scenario, comm=comm, collect_final=False)
        volumes[backend] = rec.total_comm()
    assert volumes["sim"] == volumes["mpi"]
