"""Tests for the local SpGEMM kernels (plain, masked, Bloom, SPA oracle)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import BOOLEAN, MAX_PLUS, MIN_PLUS, PLUS_TIMES
from repro.sparse import (
    BLOOM_BITS,
    CSRMatrix,
    DCSRMatrix,
    DHBMatrix,
    pattern_row_index,
    spgemm_local,
    spgemm_local_masked,
    spgemm_rowwise_spa,
)

from tests.conftest import random_dense

SEMIRINGS = [PLUS_TIMES, MIN_PLUS, MAX_PLUS, BOOLEAN]


def _dense_pair(semiring, seed, n=14, k=11, m=9, density=0.3):
    a = random_dense(n, k, density, semiring, seed=seed)
    b = random_dense(k, m, density, semiring, seed=seed + 1)
    if semiring is BOOLEAN:
        a = np.where(a != 0.0, 1.0, 0.0)
        b = np.where(b != 0.0, 1.0, 0.0)
    return a, b


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_spgemm_matches_dense_reference(semiring, seed):
    a, b = _dense_pair(semiring, seed)
    result, _ = spgemm_local(
        CSRMatrix.from_dense(a, semiring),
        CSRMatrix.from_dense(b, semiring),
        semiring,
        use_scipy=False,
    )
    expected = semiring.dense_matmul(a, b)
    assert np.allclose(result.to_dense(), expected, equal_nan=True)


def test_scipy_fast_path_matches_generic_path():
    a, b = _dense_pair(PLUS_TIMES, 7)
    fast, _ = spgemm_local(
        CSRMatrix.from_dense(a), CSRMatrix.from_dense(b), PLUS_TIMES, use_scipy=True
    )
    slow, _ = spgemm_local(
        CSRMatrix.from_dense(a), CSRMatrix.from_dense(b), PLUS_TIMES, use_scipy=False
    )
    assert np.allclose(fast.to_dense(), slow.to_dense())


@pytest.mark.parametrize("left_layout", ["csr", "dcsr", "dhb", "coo"])
@pytest.mark.parametrize("right_layout", ["csr", "dcsr", "dhb"])
def test_all_operand_layout_combinations(left_layout, right_layout):
    a, b = _dense_pair(PLUS_TIMES, 3)
    makers = {
        "csr": CSRMatrix.from_dense,
        "dcsr": DCSRMatrix.from_dense,
        "dhb": DHBMatrix.from_dense,
        "coo": lambda d: CSRMatrix.from_dense(d).to_coo(),
    }
    result, _ = spgemm_local(
        makers[left_layout](a), makers[right_layout](b), PLUS_TIMES, use_scipy=False
    )
    assert np.allclose(result.to_dense(), a @ b)


def test_shape_mismatch_raises():
    a = CSRMatrix.from_dense(np.ones((3, 4)))
    b = CSRMatrix.from_dense(np.ones((5, 2)))
    with pytest.raises(ValueError, match="inner dimensions"):
        spgemm_local(a, b, PLUS_TIMES)


def test_empty_operands_give_empty_result():
    a = CSRMatrix.empty((4, 5))
    b = CSRMatrix.from_dense(np.ones((5, 3)))
    result, _ = spgemm_local(a, b, PLUS_TIMES, use_scipy=False)
    assert result.nnz == 0
    assert result.shape == (4, 3)


@pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS], ids=lambda s: s.name)
def test_spa_reference_agrees_with_vectorised_kernel(semiring):
    a, b = _dense_pair(semiring, 13)
    vec, _ = spgemm_local(
        CSRMatrix.from_dense(a, semiring),
        CSRMatrix.from_dense(b, semiring),
        semiring,
        use_scipy=False,
    )
    spa = spgemm_rowwise_spa(
        CSRMatrix.from_dense(a, semiring), CSRMatrix.from_dense(b, semiring), semiring
    )
    assert np.allclose(vec.to_dense(), spa.to_dense(), equal_nan=True)


# ----------------------------------------------------------------------
# Bloom filters
# ----------------------------------------------------------------------
def test_bloom_bits_cover_all_contributing_inner_indices():
    a, b = _dense_pair(PLUS_TIMES, 17, n=10, k=10, m=10, density=0.35)
    result, bloom = spgemm_local(
        CSRMatrix.from_dense(a), CSRMatrix.from_dense(b), PLUS_TIMES, compute_bloom=True
    )
    assert bloom is not None
    # for every output entry, every truly contributing k must be admitted
    for i, j in zip(result.rows, result.cols):
        contributing = [k for k in range(10) if a[i, k] != 0 and b[k, j] != 0]
        bits = bloom.get(int(i), int(j))
        for k in contributing:
            assert (bits >> (k % BLOOM_BITS)) & 1 == 1
        admitted = bloom.candidate_inner_indices(int(i), int(j), 10)
        assert set(contributing).issubset(set(admitted.tolist()))


def test_bloom_inner_offset_shifts_bits():
    a = np.zeros((2, 2))
    b = np.zeros((2, 2))
    a[0, 1] = 1.0
    b[1, 0] = 1.0
    _result, bloom0 = spgemm_local(
        CSRMatrix.from_dense(a), CSRMatrix.from_dense(b), PLUS_TIMES, compute_bloom=True
    )
    _result, bloom5 = spgemm_local(
        CSRMatrix.from_dense(a),
        CSRMatrix.from_dense(b),
        PLUS_TIMES,
        compute_bloom=True,
        inner_offset=5,
    )
    assert bloom0.get(0, 0) == 1 << 1
    assert bloom5.get(0, 0) == 1 << 6


# ----------------------------------------------------------------------
# masked SpGEMM
# ----------------------------------------------------------------------
def test_masked_spgemm_only_produces_entries_inside_mask():
    a, b = _dense_pair(MIN_PLUS, 19)
    full, _ = spgemm_local(
        CSRMatrix.from_dense(a, MIN_PLUS), CSRMatrix.from_dense(b, MIN_PLUS), MIN_PLUS
    )
    # mask: a subset of the true output pattern plus some never-produced spots
    rng = np.random.default_rng(19)
    keep = rng.random(full.nnz) < 0.5
    mask_rows = {}
    for i, j in zip(full.rows[keep], full.cols[keep]):
        mask_rows.setdefault(int(i), []).append(int(j))
    mask_rows = {i: np.array(sorted(js)) for i, js in mask_rows.items()}
    masked, bloom = spgemm_local_masked(
        CSRMatrix.from_dense(a, MIN_PLUS),
        CSRMatrix.from_dense(b, MIN_PLUS),
        MIN_PLUS,
        mask_rows,
    )
    assert bloom is not None
    full_dict = full.to_dict()
    masked_dict = masked.to_dict()
    allowed = {(i, int(j)) for i, js in mask_rows.items() for j in js}
    assert set(masked_dict).issubset(allowed)
    # every masked position that has contributions must be produced with the
    # same value as the unmasked product
    for key in allowed:
        if key in full_dict:
            assert masked_dict[key] == pytest.approx(full_dict[key])


def test_masked_spgemm_empty_mask_gives_empty_result():
    a, b = _dense_pair(PLUS_TIMES, 23)
    masked, _ = spgemm_local_masked(
        CSRMatrix.from_dense(a), CSRMatrix.from_dense(b), PLUS_TIMES, {}
    )
    assert masked.nnz == 0


def test_masked_spgemm_agrees_with_spa_oracle():
    a, b = _dense_pair(PLUS_TIMES, 29)
    full, _ = spgemm_local(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b), PLUS_TIMES)
    mask_rows = pattern_row_index(full)
    masked, _ = spgemm_local_masked(
        CSRMatrix.from_dense(a), CSRMatrix.from_dense(b), PLUS_TIMES, mask_rows
    )
    spa = spgemm_rowwise_spa(
        CSRMatrix.from_dense(a), CSRMatrix.from_dense(b), PLUS_TIMES, mask_rows=mask_rows
    )
    assert np.allclose(masked.to_dense(), spa.to_dense())
    # with the full pattern as mask, the masked product equals the product
    assert np.allclose(masked.to_dense(), full.to_dense())


# ----------------------------------------------------------------------
# property-based: random sparse operands vs. dense reference
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    density=st.floats(0.05, 0.5),
    semiring_idx=st.integers(0, len(SEMIRINGS) - 1),
)
def test_property_spgemm_matches_dense(seed, density, semiring_idx):
    semiring = SEMIRINGS[semiring_idx]
    rng = np.random.default_rng(seed)
    n, k, m = rng.integers(1, 12, size=3)
    a = random_dense(int(n), int(k), density, semiring, seed=seed)
    b = random_dense(int(k), int(m), density, semiring, seed=seed + 1)
    result, _ = spgemm_local(
        CSRMatrix.from_dense(a, semiring),
        CSRMatrix.from_dense(b, semiring),
        semiring,
        use_scipy=False,
    )
    assert np.allclose(
        result.to_dense(), semiring.dense_matmul(a, b), equal_nan=True
    )
