"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DynamicDistMatrix,
    ProcessGrid,
    SimMPI,
    StaticDistMatrix,
    UpdateBatch,
)
from repro.semirings import MIN_PLUS, PLUS_TIMES, Semiring


def random_dense(
    n: int,
    m: int,
    density: float,
    semiring: Semiring = PLUS_TIMES,
    seed: int = 0,
) -> np.ndarray:
    """Random dense matrix with structural zeros at the semiring zero."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, m)) < density
    values = rng.random((n, m)) + 0.1
    return np.where(mask, values, semiring.zero)


def dist_from_dense(
    comm: SimMPI,
    grid: ProcessGrid,
    dense: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
    *,
    seed: int = 0,
) -> DynamicDistMatrix:
    """Build a dynamic distributed matrix holding ``dense``."""
    rows, cols = np.nonzero(~semiring.is_zero(dense))
    values = dense[rows, cols]
    batch = UpdateBatch.from_global(
        dense.shape, rows, cols, values, grid.n_ranks, semiring=semiring, seed=seed
    )
    return DynamicDistMatrix.from_tuples(
        comm, grid, dense.shape, batch.tuples_per_rank, semiring, combine="last"
    )


def static_from_dense(
    comm: SimMPI,
    grid: ProcessGrid,
    dense: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
    *,
    layout: str = "csr",
    seed: int = 0,
) -> StaticDistMatrix:
    rows, cols = np.nonzero(~semiring.is_zero(dense))
    values = dense[rows, cols]
    batch = UpdateBatch.from_global(
        dense.shape, rows, cols, values, grid.n_ranks, semiring=semiring, seed=seed
    )
    return StaticDistMatrix.from_tuples(
        comm,
        grid,
        dense.shape,
        batch.tuples_per_rank,
        semiring,
        layout=layout,
        combine="last",
    )


@pytest.fixture
def comm16() -> SimMPI:
    return SimMPI(16)


@pytest.fixture
def grid16() -> ProcessGrid:
    return ProcessGrid(16)


@pytest.fixture(params=[1, 4, 9, 16])
def any_grid(request) -> tuple[SimMPI, ProcessGrid]:
    p = request.param
    return SimMPI(p), ProcessGrid(p)


@pytest.fixture(params=[PLUS_TIMES, MIN_PLUS], ids=["plus_times", "min_plus"])
def semiring(request) -> Semiring:
    return request.param
