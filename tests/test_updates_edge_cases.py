"""Edge-case coverage: update batches, permutations, partitioning, SPA.

Satellite suite accompanying the scenario-engine PR:

* ``UpdateBatch`` / ``build_update_matrix`` corner cases — empty batches,
  batches already owned locally, duplicate coordinates under ADD / MERGE /
  MASK semantics;
* ``IndexPermutation`` round trips and ``partition_tuples_round_robin``
  determinism (including more ranks than tuples);
* the masked (``allowed``) path of ``SparseAccumulator``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BlockDistribution,
    DynamicDistMatrix,
    IndexPermutation,
    ProcessGrid,
    SimMPI,
    UpdateBatch,
    build_update_matrix,
    partition_tuples_round_robin,
)
from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import SparseAccumulator


@pytest.fixture
def comm4():
    return SimMPI(4)


@pytest.fixture
def grid4():
    return ProcessGrid(4)


# ----------------------------------------------------------------------
# UpdateBatch / build_update_matrix
# ----------------------------------------------------------------------
class TestUpdateBatchEdgeCases:
    def test_empty_batch_builds_empty_update_matrix(self, comm4, grid4):
        dist = BlockDistribution(8, 8, grid4)
        batch = UpdateBatch(shape=(8, 8), tuples_per_rank={})
        update = build_update_matrix(comm4, grid4, dist, batch)
        assert update.nnz() == 0
        assert all(update.blocks[r].nnz == 0 for r in range(4))
        empty = np.empty(0)
        batch2 = UpdateBatch(
            shape=(8, 8),
            tuples_per_rank={r: (empty, empty, empty) for r in range(4)},
        )
        update2 = build_update_matrix(comm4, grid4, dist, batch2)
        assert update2.nnz() == 0

    def test_empty_batch_applies_as_noop(self, comm4, grid4):
        mat = DynamicDistMatrix.empty(comm4, grid4, (8, 8))
        mat.insert_tuples({0: (np.array([1]), np.array([1]), np.array([2.0]))})
        update = build_update_matrix(
            comm4, grid4, mat.dist, UpdateBatch(shape=(8, 8))
        )
        assert mat.add_update(update) == 0
        assert mat.merge_update(update) == 0
        assert mat.mask_update(update) == 0
        assert mat.nnz() == 1

    def test_all_tuples_owned_locally(self, comm4, grid4):
        """Each rank submits only coordinates of its own block."""
        dist = BlockDistribution(8, 8, grid4)
        tuples_per_rank = {}
        for rank in range(4):
            lrows = np.array([0, 1])
            lcols = np.array([0, 2])
            grows, gcols = dist.to_global(rank, lrows, lcols)
            assert np.all(dist.owner_of(grows, gcols) == rank)
            tuples_per_rank[rank] = (grows, gcols, np.full(2, rank + 1.0))
        update = build_update_matrix(comm4, grid4, dist, tuples_per_rank)
        assert update.nnz() == 8
        for rank in range(4):
            block = update.blocks[rank]
            assert block.nnz == 2
            assert np.allclose(block.to_coo().values, rank + 1.0)

    def test_duplicate_tuples_add_semantics(self, comm4, grid4):
        """ADD: duplicate coordinates within one batch are ⊕-combined."""
        dist = BlockDistribution(8, 8, grid4)
        rows = np.array([2, 2, 2])
        cols = np.array([3, 3, 3])
        vals = np.array([1.0, 2.0, 4.0])
        update = build_update_matrix(
            comm4, grid4, dist, {0: (rows, cols, vals)}, combine="add"
        )
        mat = DynamicDistMatrix.empty(comm4, grid4, (8, 8))
        assert mat.add_update(update) == 1
        assert mat.get(2, 3) == pytest.approx(7.0)

    def test_duplicate_tuples_merge_semantics(self, comm4, grid4):
        """MERGE: the last duplicate wins (last-write-wins)."""
        dist = BlockDistribution(8, 8, grid4)
        mat = DynamicDistMatrix.empty(comm4, grid4, (8, 8))
        mat.insert_tuples({0: (np.array([2]), np.array([3]), np.array([100.0]))})
        batch = UpdateBatch(
            shape=(8, 8),
            tuples_per_rank={
                0: (np.array([2, 2]), np.array([3, 3]), np.array([5.0, 9.0]))
            },
            kind="update",
        )
        update = build_update_matrix(comm4, grid4, dist, batch)
        mat.merge_update(update)
        assert mat.get(2, 3) == pytest.approx(9.0)
        assert mat.nnz() == 1

    def test_duplicate_tuples_mask_semantics(self, comm4, grid4):
        """MASK: duplicated deletion markers delete the entry exactly once."""
        dist = BlockDistribution(8, 8, grid4)
        mat = DynamicDistMatrix.empty(comm4, grid4, (8, 8))
        mat.insert_tuples(
            {0: (np.array([2, 4]), np.array([3, 5]), np.array([1.0, 1.0]))}
        )
        batch = UpdateBatch(
            shape=(8, 8),
            tuples_per_rank={
                0: (np.array([2, 2]), np.array([3, 3]), np.ones(2)),
                1: (np.array([2]), np.array([3]), np.ones(1)),
            },
            kind="delete",
        )
        update = build_update_matrix(comm4, grid4, dist, batch, combine="last")
        deleted = mat.mask_update(update)
        assert deleted == 1
        assert mat.nnz() == 1
        assert mat.get(4, 5) == pytest.approx(1.0)

    def test_min_plus_add_semantics(self, comm4, grid4):
        """Over (min, +), ADD of duplicates keeps the minimum."""
        dist = BlockDistribution(8, 8, grid4)
        update = build_update_matrix(
            comm4,
            grid4,
            dist,
            {0: (np.array([1, 1]), np.array([1, 1]), np.array([7.0, 3.0]))},
            MIN_PLUS,
            combine="add",
        )
        mat = DynamicDistMatrix.empty(comm4, grid4, (8, 8), MIN_PLUS)
        mat.add_update(update)
        assert mat.get(1, 1) == pytest.approx(3.0)

    def test_batch_shape_mismatch_raises(self, comm4, grid4):
        dist = BlockDistribution(8, 8, grid4)
        batch = UpdateBatch(shape=(4, 4))
        with pytest.raises(ValueError, match="shape"):
            build_update_matrix(comm4, grid4, dist, batch)


# ----------------------------------------------------------------------
# IndexPermutation / partition_tuples_round_robin
# ----------------------------------------------------------------------
class TestPermutationAndPartitioning:
    @pytest.mark.parametrize("n", [0, 1, 17, 256])
    def test_permutation_round_trip(self, n):
        perm = IndexPermutation(n, seed=3)
        indices = np.arange(n, dtype=np.int64)
        assert np.array_equal(perm.undo(perm.apply(indices)), indices)
        assert np.array_equal(perm.apply(perm.undo(indices)), indices)

    def test_permutation_identity(self):
        perm = IndexPermutation.identity(9)
        indices = np.arange(9)
        assert np.array_equal(perm.apply(indices), indices)

    def test_permutation_rejects_out_of_domain(self):
        perm = IndexPermutation(4, seed=0)
        with pytest.raises(IndexError):
            perm.apply(np.array([4]))
        with pytest.raises(IndexError):
            perm.undo(np.array([-1]))

    def test_partition_deterministic_under_fixed_seed(self):
        rows = np.arange(23, dtype=np.int64)
        cols = (rows * 3) % 23
        vals = rows.astype(np.float64)
        a = partition_tuples_round_robin(rows, cols, vals, 4, seed=11)
        b = partition_tuples_round_robin(rows, cols, vals, 4, seed=11)
        c = partition_tuples_round_robin(rows, cols, vals, 4, seed=12)
        for rank in range(4):
            assert np.array_equal(a[rank][0], b[rank][0])
            assert np.array_equal(a[rank][1], b[rank][1])
            assert np.array_equal(a[rank][2], b[rank][2])
        assert any(
            not np.array_equal(a[rank][0], c[rank][0]) for rank in range(4)
        )

    def test_partition_covers_every_tuple_exactly_once(self):
        rows = np.arange(10, dtype=np.int64)
        cols = rows[::-1].copy()
        vals = np.ones(10)
        split = partition_tuples_round_robin(rows, cols, vals, 3, seed=5)
        gathered = np.sort(np.concatenate([split[r][0] for r in range(3)]))
        assert np.array_equal(gathered, rows)

    def test_more_ranks_than_tuples(self):
        """The ``n_ranks > nnz`` corner: every rank present, extras empty."""
        rows = np.array([3, 5], dtype=np.int64)
        cols = np.array([1, 2], dtype=np.int64)
        vals = np.array([0.5, 1.5])
        split = partition_tuples_round_robin(rows, cols, vals, 8, seed=7)
        assert sorted(split) == list(range(8))
        sizes = [split[r][0].size for r in range(8)]
        assert sum(sizes) == 2
        assert sizes.count(0) == 6
        assert all(max(s, 0) in (0, 1) for s in sizes)

    def test_default_seed_still_shuffles(self):
        """Regression: ``seed=None`` used to skip the shuffle entirely,
        dealing tuples in generation order — which correlates generator
        burst skew with rank assignment.  The default seed is now derived
        from the batch geometry, so the shuffle is unconditional *and*
        reproducible."""
        rows = np.arange(40, dtype=np.int64)
        cols = rows.copy()
        vals = rows.astype(np.float64)
        a = partition_tuples_round_robin(rows, cols, vals, 4)
        b = partition_tuples_round_robin(rows, cols, vals, 4)
        for rank in range(4):
            assert np.array_equal(a[rank][0], b[rank][0])  # deterministic
        # generation order would give rank 0 exactly 0, 4, 8, ...
        in_order = all(
            np.array_equal(a[rank][0], rows[rank::4]) for rank in range(4)
        )
        assert not in_order
        gathered = np.sort(np.concatenate([a[rank][0] for rank in range(4)]))
        assert np.array_equal(gathered, rows)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="identical lengths"):
            partition_tuples_round_robin(
                np.arange(3), np.arange(2), np.arange(3), 2
            )
        with pytest.raises(ValueError, match="n_ranks"):
            partition_tuples_round_robin(
                np.arange(3), np.arange(3), np.arange(3), 0
            )


# ----------------------------------------------------------------------
# SparseAccumulator masked path
# ----------------------------------------------------------------------
class TestSparseAccumulatorMasked:
    def test_allowed_filters_output_columns(self):
        spa = SparseAccumulator(PLUS_TIMES)
        cols = np.array([0, 2, 4, 6], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        spa.accumulate_scaled_row(2.0, cols, vals, allowed={2, 6})
        out_cols, out_vals, _bits = spa.emit()
        assert np.array_equal(out_cols, [2, 6])
        assert np.allclose(out_vals, [4.0, 8.0])

    def test_allowed_combines_duplicates_inside_mask(self):
        spa = SparseAccumulator(PLUS_TIMES)
        spa.accumulate_scaled_row(
            1.0, np.array([1, 1, 3]), np.array([2.0, 3.0, 9.0]), allowed={1}
        )
        assert spa.n_entries == 1
        assert spa.get(1) == pytest.approx(5.0)
        assert not spa.contains(3)

    def test_allowed_with_non_int64_columns(self):
        """The single-pass conversion accepts any integer dtype."""
        spa = SparseAccumulator(MIN_PLUS)
        cols32 = np.array([4, 8], dtype=np.int32)
        spa.accumulate_scaled_row(1.0, cols32, np.array([5.0, 6.0]), allowed={8})
        out_cols, out_vals, _ = spa.emit()
        assert out_cols.dtype == np.int64
        assert np.array_equal(out_cols, [8])
        assert np.allclose(out_vals, [7.0])  # (min, +): 1.0 ⊗ 6.0 = 7.0

    def test_empty_allowed_set_produces_nothing(self):
        spa = SparseAccumulator(PLUS_TIMES)
        spa.accumulate_scaled_row(
            1.0, np.array([0, 1]), np.array([1.0, 1.0]), allowed=set()
        )
        assert spa.is_empty()

    def test_unmasked_path_unchanged(self):
        spa = SparseAccumulator(PLUS_TIMES)
        spa.accumulate_scaled_row(3.0, np.array([5, 5, 2]), np.array([1.0, 1.0, 2.0]))
        out_cols, out_vals, _ = spa.emit()
        assert np.array_equal(out_cols, [2, 5])
        assert np.allclose(out_vals, [6.0, 6.0])
