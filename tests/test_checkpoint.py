"""Checkpoint/restore subsystem: codecs, snapshot files and fault plans.

Covers the serialisation layer the fault drills rest on:

* property-based round trips of the block codec for **all four** layouts —
  a decoded block must be indistinguishable from the original, including
  DHB adjacency order, per-row capacities, grow counters and hash-index
  content (the state a canonicalising codec would silently discard);
* snapshot build / save / load round trips, version and schema rejection,
  and resume-fingerprint validation;
* the ``REPRO_FAULTS`` grammar and the determinism contract of the fault
  injector (same spec + seed → identical kill points and identical
  discrete recovery traffic);
* regression pins for state that was not derivable from
  ``(snapshot, trace suffix)`` — notably the construction scatter seed.

The kill-and-recover drill matrix itself lives in
``tests/test_fault_drills.py``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.scenarios as S
from repro.distributed import (
    BlockCodecError,
    decode_block,
    decode_bloom,
    encode_block,
    encode_bloom,
)
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    SimulatedCrash,
    faults_from_env,
)
from repro.sparse import (
    BloomFilterMatrix,
    COOMatrix,
    CSRMatrix,
    DCSRMatrix,
    DHBMatrix,
)

SEED = 2022

_LAYOUT_BUILDERS = {
    "coo": lambda coo: coo,
    "csr": CSRMatrix.from_coo,
    "dcsr": DCSRMatrix.from_coo,
    "dhb": DHBMatrix.from_coo,
}


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _random_coo(seed: int, *, n: int = 16, nnz: int = 40) -> COOMatrix:
    rng = np.random.default_rng(seed)
    nnz = min(nnz, n * n)
    flat = rng.choice(n * n, size=nnz, replace=False)
    rows, cols = (flat // n).astype(np.int64), (flat % n).astype(np.int64)
    return COOMatrix((n, n), rows, cols, rng.random(nnz) + 0.25)


def _as_coo(block) -> COOMatrix:
    return block if isinstance(block, COOMatrix) else block.to_coo()


def _assert_tuples_equal(a: COOMatrix, b: COOMatrix) -> None:
    ca, cb = a.sort(), b.sort()
    assert np.array_equal(ca.rows, cb.rows)
    assert np.array_equal(ca.cols, cb.cols)
    assert np.array_equal(ca.values, cb.values)


def _assert_dhb_identical(a: DHBMatrix, b: DHBMatrix) -> None:
    """Full structural identity, not just equal tuples."""
    assert a.shape == b.shape
    assert a.nnz == b.nnz
    assert a.nbytes == b.nbytes
    assert list(a._rows) == list(b._rows), "row insertion order differs"
    for i, ra in a._rows.items():
        rb = b._rows[i]
        assert ra.size == rb.size
        assert ra.capacity() == rb.capacity(), f"row {i}: capacity differs"
        assert ra.grow_count == rb.grow_count, f"row {i}: grow_count differs"
        assert np.array_equal(ra.cols[: ra.size], rb.cols[: rb.size]), (
            f"row {i}: adjacency order differs"
        )
        assert np.array_equal(ra.vals[: ra.size], rb.vals[: rb.size])
        assert ra.ensure_index() == rb.ensure_index()


# ----------------------------------------------------------------------
# block codec round trips (property-based)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), layout=st.sampled_from(S.REPLAY_LAYOUTS))
def test_codec_round_trips_all_layouts(seed: int, layout: str) -> None:
    coo = _random_coo(seed)
    block = _LAYOUT_BUILDERS[layout](coo)
    decoded = decode_block(encode_block(block))
    assert type(decoded) is type(block)
    assert decoded.nnz == block.nnz
    assert decoded.semiring.name == block.semiring.name
    _assert_tuples_equal(_as_coo(decoded), _as_coo(block))
    if layout == "csr":
        assert np.array_equal(decoded.indptr, block.indptr)
        assert np.array_equal(decoded.indices, block.indices)
    if layout == "dcsr":
        assert np.array_equal(decoded.nz_rows, block.nz_rows)
    if layout == "dhb":
        _assert_dhb_identical(block, decoded)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_ops=st.integers(1, 120),
)
def test_dhb_codec_preserves_update_history(seed: int, n_ops: int) -> None:
    """A DHB block that lived through inserts *and* deletes round-trips.

    Deletions swap with the last adjacency entry and reallocation history
    accumulates in ``grow_count`` — state that is invisible in the tuple
    set but observable downstream, so the codec must carry it.
    """
    n = 12
    rng = np.random.default_rng(seed)
    mat = DHBMatrix((n, n))
    live: list[tuple[int, int]] = []
    for _ in range(n_ops):
        if live and rng.random() < 0.35:
            i, j = live.pop(int(rng.integers(len(live))))
            mat.delete(i, j)
        else:
            i, j = int(rng.integers(n)), int(rng.integers(n))
            if mat.insert(i, j, float(rng.random() + 0.25)):
                live.append((i, j))
    decoded = decode_block(encode_block(mat))
    _assert_dhb_identical(mat, decoded)
    # and the decoded block keeps behaving identically under further updates
    i, j = int(rng.integers(n)), int(rng.integers(n))
    assert mat.insert(i, j, 1.5) == decoded.insert(i, j, 1.5)
    _assert_dhb_identical(mat, decoded)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_bloom_codec_preserves_insertion_order(seed: int) -> None:
    rng = np.random.default_rng(seed)
    bloom = BloomFilterMatrix((8, 8))
    for _ in range(int(rng.integers(1, 40))):
        bloom.set_bits(
            int(rng.integers(8)), int(rng.integers(8)), int(rng.integers(1, 16))
        )
    decoded = decode_bloom(encode_bloom(bloom))
    assert decoded.shape == bloom.shape
    assert list(decoded._bits.items()) == list(bloom._bits.items())
    assert decoded.nbytes == bloom.nbytes


def test_codec_rejects_unknown_layouts() -> None:
    with pytest.raises(BlockCodecError):
        encode_block(object())
    with pytest.raises(BlockCodecError):
        decode_block({"layout": "sparsity_map", "shape": (2, 2), "semiring": "plus_times"})
    with pytest.raises(BlockCodecError):
        decode_block({"shape": (2, 2)})
    with pytest.raises(BlockCodecError):
        decode_bloom({"layout": "coo"})


# ----------------------------------------------------------------------
# snapshot files: save / load round trip and schema rejection
# ----------------------------------------------------------------------
def _deep_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and np.array_equal(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return list(a) == list(b) and all(_deep_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_deep_equal(x, y) for x, y in zip(a, b))
    return a == b


def _checkpointed_drill(tmp_path, *, layout: str = "dhb"):
    """One crashed-and-restored drill with a durable store; returns both legs."""
    base = S.with_checkpoint(S.grow_from_empty(seed=SEED), at=3)
    reference = S.replay(base, backend="sim", n_ranks=4, layout=layout)
    drill = S.with_crash(base, at=5)
    store = S.CheckpointStore(tmp_path)
    recovered = S.replay(
        drill,
        backend="sim",
        n_ranks=4,
        layout=layout,
        checkpoint_store=store,
        faults=FaultInjector(FaultPlan()),
        on_crash="restore",
    )
    return reference, recovered, store


def test_snapshot_file_round_trip(tmp_path) -> None:
    _, _, store = _checkpointed_drill(tmp_path)
    in_memory = store.load("default", 0)
    from_file = S.load_snapshot(store._path("default", 0))
    assert _deep_equal(in_memory, from_file)
    assert from_file["version"] == S.SNAPSHOT_VERSION
    assert from_file["scenario"] == "grow_from_empty"


@pytest.mark.parametrize("layout", S.REPLAY_LAYOUTS)
def test_restore_from_snapshot_file_is_byte_identical(tmp_path, layout) -> None:
    """Resuming from the durable ``.npz`` matches the uninterrupted run."""
    reference, _, store = _checkpointed_drill(tmp_path, layout=layout)
    drill = S.with_crash(S.with_checkpoint(S.grow_from_empty(seed=SEED), at=3), at=5)
    resumed = S.replay(
        drill,
        backend="sim",
        n_ranks=4,
        layout=layout,
        resume_from=store._path("default", 0),
    )
    for a, b in zip(reference.final_a, resumed.final_a):
        assert np.array_equal(a, b)
    got = dict(resumed.comm_signature())
    got.pop("recovery", None)
    assert got == dict(reference.comm_signature())


def test_load_snapshot_rejects_garbage(tmp_path) -> None:
    path = tmp_path / "not_a_snapshot.npz"
    path.write_bytes(b"definitely not a zip archive")
    with pytest.raises(S.SnapshotFormatError):
        S.load_snapshot(path)
    np.savez(tmp_path / "no_meta.npz", data=np.arange(3))
    with pytest.raises(S.SnapshotFormatError, match="no metadata"):
        S.load_snapshot(tmp_path / "no_meta.npz")


def test_load_snapshot_rejects_future_versions(tmp_path) -> None:
    _, _, store = _checkpointed_drill(tmp_path)
    snapshot = dict(store.load("default", 0))
    snapshot["version"] = S.SNAPSHOT_VERSION + 1
    path = tmp_path / "future.npz"
    with pytest.raises(S.SnapshotFormatError, match="version"):
        S.save_snapshot(path, snapshot)


def test_check_snapshot_rejects_schema_violations(tmp_path) -> None:
    _, _, store = _checkpointed_drill(tmp_path)
    good = store.load("default", 0)
    for key in ("version", "fingerprint", "state", "progress", "cursor"):
        bad = {k: v for k, v in good.items() if k != key}
        with pytest.raises(S.SnapshotFormatError):
            S.check_snapshot(bad)
    bad = dict(good)
    bad["state"] = {"kind": "hologram"}
    with pytest.raises(S.SnapshotFormatError):
        S.check_snapshot(bad)


def test_resume_rejects_mismatched_scenarios(tmp_path) -> None:
    """A snapshot only resumes the trace it fingerprints."""
    _, _, store = _checkpointed_drill(tmp_path)
    other = S.with_crash(
        S.with_checkpoint(S.grow_from_empty(seed=SEED + 1), at=3), at=5
    )
    with pytest.raises(S.SnapshotFormatError, match="fingerprint"):
        S.replay(
            other,
            backend="sim",
            n_ranks=4,
            layout="dhb",
            resume_from=store.load("default", 0),
        )


def test_scenario_fingerprint_is_stable_and_sensitive() -> None:
    a = S.grow_from_empty(seed=SEED)
    b = S.grow_from_empty(seed=SEED)
    assert S.scenario_fingerprint(a) == S.scenario_fingerprint(b)
    assert S.scenario_fingerprint(a) != S.scenario_fingerprint(
        S.grow_from_empty(seed=SEED + 1)
    )
    assert S.scenario_fingerprint(a) != S.scenario_fingerprint(
        S.with_checkpoint(a, at=1)
    )


def test_checkpoint_then_immediate_restore_is_a_no_op() -> None:
    """checkpoint@k directly followed by restore@k+1 changes nothing."""
    base = S.grow_from_empty(seed=SEED)
    reference = S.replay(base, backend="sim", n_ranks=4, layout="dhb")
    steps = list(base.steps)
    steps.insert(3, S.RestoreStep(label="restore@3"))
    paired = S.with_checkpoint(
        dataclasses.replace(base, steps=steps), at=3
    )
    result = S.replay(paired, backend="sim", n_ranks=4, layout="dhb")
    for a, b in zip(reference.final_a, result.final_a):
        assert np.array_equal(a, b)
    got = dict(result.comm_signature())
    recovery = got.pop("recovery", None)
    assert recovery is not None and recovery[1] > 0
    assert got == dict(reference.comm_signature())


# ----------------------------------------------------------------------
# REPRO_FAULTS grammar and injector determinism
# ----------------------------------------------------------------------
def test_fault_plan_grammar_round_trips() -> None:
    spec = "kill@3;kill@7:proc=1;drop=1/50;delay=1/20:0.002;seed=9"
    plan = FaultPlan.parse(spec)
    assert plan.kills == ((3, None), (7, 1))
    assert plan.drop_one_in == 50
    assert plan.delay_one_in == 20
    assert plan.delay_seconds == 0.002
    assert plan.seed == 9
    assert FaultPlan.parse(plan.describe()) == plan


@pytest.mark.parametrize(
    "spec",
    [
        "kill@",
        "kill@3:node=1",
        "drop=50",
        "drop=1/0",
        "delay=1/4",
        "explode=now",
    ],
)
def test_fault_plan_rejects_malformed_specs(spec: str) -> None:
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(spec)


def test_faults_from_env_reads_the_variable() -> None:
    assert faults_from_env({}) is None
    plan = faults_from_env({"REPRO_FAULTS": "kill@2;seed=4"})
    assert plan == FaultPlan(kills=((2, None),), seed=4)


def test_kill_points_fire_exactly_once() -> None:
    injector = FaultInjector(FaultPlan(kills=((3, None),)))
    injector.check_step(2)
    with pytest.raises(SimulatedCrash) as excinfo:
        injector.check_step(3)
    assert excinfo.value.step_index == 3
    injector.check_step(3)  # recovered runs replay the step without refiring
    injector.reset_kills()
    with pytest.raises(SimulatedCrash):
        injector.check_step(3)


def test_fault_injection_is_deterministic() -> None:
    """Same spec + seed → identical kill points and recovery traffic.

    Wall-clock-derived seconds are excluded: determinism is over the
    discrete quantities (operations, messages, bytes) per category.
    """

    def drill():
        base = S.with_checkpoint(S.grow_from_empty(seed=SEED), at=3)
        return S.replay(
            S.with_crash(base, at=5),
            backend="sim",
            n_ranks=4,
            layout="dhb",
            checkpoint_store=S.CheckpointStore(),
            faults=FaultInjector(FaultPlan.parse("drop=1/20;seed=13")),
            on_crash="restore",
        )

    first, second = drill(), drill()
    assert dict(first.comm_signature()) == dict(second.comm_signature())
    discrete = lambda r: {  # noqa: E731
        k: (v["operations"], v["messages"], v["bytes"])
        for k, v in r.comm_stats.items()
    }
    assert discrete(first) == discrete(second)
    assert "recovery" in first.comm_stats


def test_dropped_messages_only_charge_recovery() -> None:
    """Drop faults retransmit: non-recovery categories stay byte-identical."""
    scenario = S.grow_from_empty(seed=SEED)
    reference = S.replay(scenario, backend="sim", n_ranks=4, layout="csr")
    faulty = S.replay(
        scenario,
        backend="sim",
        n_ranks=4,
        layout="csr",
        faults=FaultInjector(FaultPlan.parse("drop=1/10;seed=9")),
    )
    got = dict(faulty.comm_signature())
    recovery = got.pop("recovery", None)
    assert recovery is not None and recovery[0] > 0
    assert got == dict(reference.comm_signature())
    for a, b in zip(reference.final_a, faulty.final_a):
        assert np.array_equal(a, b)


def test_delayed_messages_add_modeled_time_only() -> None:
    scenario = S.grow_from_empty(seed=SEED)
    reference = S.replay(scenario, backend="sim", n_ranks=4, layout="csr")
    delayed = S.replay(
        scenario,
        backend="sim",
        n_ranks=4,
        layout="csr",
        faults=FaultInjector(FaultPlan.parse("delay=1/5:0.001;seed=9")),
    )
    assert dict(delayed.comm_signature()) == dict(reference.comm_signature())
    assert delayed.comm_stats["recovery"]["modeled_seconds"] > 0.0
    assert delayed.comm_stats["recovery"]["messages"] == 0
    assert delayed.comm_stats["recovery"]["bytes"] == 0
    for a, b in zip(reference.final_a, delayed.final_a):
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# regression pins: state must be derivable from (snapshot, trace suffix)
# ----------------------------------------------------------------------
def test_construct_seed_independent_of_missing_partition_seeds() -> None:
    """Regression: the construct seed must not ride the partition pool.

    It used to be derived as the *last* child of the partition-seed spawn,
    so a scenario rebuilt from fully-seeded steps (exactly what the
    checkpoint path does) derived a different scatter order than the
    original — state that was not reproducible from the trace alone.
    """
    original = S.grow_from_empty(seed=SEED)
    # rebuild with every partition seed already assigned: __post_init__ has
    # no missing steps, but must still derive the identical construct seed
    rebuilt = dataclasses.replace(original, construct_seed=None)
    assert all(
        s.partition_seed is not None
        for s in rebuilt.steps
        if isinstance(s, S.ScenarioStep)
    )
    assert rebuilt.construct_seed == original.construct_seed


def test_general_mode_bloom_state_survives_restore() -> None:
    """The incremental filter state ``F`` is part of the snapshot.

    ``mode="general"`` dynamic SpGEMM keeps a bloom-filter matrix per
    block; losing it across restore would change later multiplication
    pruning and with it the comm signature of the continuation.
    """
    scenario = S.mixed_update_multiply(seed=SEED)
    general_steps = [
        dataclasses.replace(s, mode="general")
        if isinstance(s, S.SpGEMMStep)
        else s
        for s in scenario.steps
    ]
    general = dataclasses.replace(scenario, name="general_mum", steps=general_steps)
    base = S.with_checkpoint(general, at=3)
    reference = S.replay(base, backend="sim", n_ranks=4, layout="dhb")
    recovered = S.replay(
        S.with_crash(base, at=4),
        backend="sim",
        n_ranks=4,
        layout="dhb",
        checkpoint_store=S.CheckpointStore(),
        faults=FaultInjector(FaultPlan()),
        on_crash="restore",
    )
    for a, b in zip(reference.final_a, recovered.final_a):
        assert np.array_equal(a, b)
    for a, b in zip(reference.final_c, recovered.final_c):
        assert np.array_equal(a, b)
    got = dict(recovered.comm_signature())
    got.pop("recovery", None)
    assert got == dict(reference.comm_signature())
