#!/usr/bin/env python3
"""Dynamic multi-source shortest paths on an evolving road-like network.

The ``(min, +)`` semiring turns SpGEMM into shortest-path relaxation.  This
example maintains the one-hop distance product ``S·A`` of a time-dependent
mobility network while edge weights change and edges disappear — the
workload class the paper's introduction motivates and the reason the
*general* dynamic SpGEMM (Algorithm 2, Bloom-filter-driven masked
recomputation) exists: weight increases and deletions cannot be expressed
as ``min``-additions.

Run with ``python examples/dynamic_shortest_paths.py``.
"""

from __future__ import annotations

import numpy as np

from repro import ProcessGrid, make_communicator
from repro.apps import DynamicMultiSourceShortestPaths, sssp_reference
from repro.graphs import erdos_renyi_edges


def main() -> None:
    n_ranks = 16
    comm = make_communicator(n_ranks=n_ranks)
    grid = ProcessGrid(n_ranks)

    # A sparse directed "road network" with travel times as weights.
    n = 300
    rows, cols = erdos_renyi_edges(n, 2500, seed=11)
    rng = np.random.default_rng(11)
    weights = rng.uniform(1.0, 10.0, rows.size)
    sources = np.array([0, 17, 42, 99], dtype=np.int64)

    app = DynamicMultiSourceShortestPaths(
        comm, grid, n, rows, cols, weights, sources
    )
    print(f"network: {n} junctions, {rows.size} road segments, {len(sources)} sources")
    print(f"maintained one-hop product has {app.one_hop_distances().nnz} entries")

    # Rush hour: travel times on a subset of segments increase (a general
    # update: min-plus cannot "undo" the old, smaller values).
    congested = rng.choice(rows.size, size=60, replace=False)
    app.update_edges(
        rows[congested], cols[congested], weights[congested] * 3.0, seed=1
    )
    print("applied congestion update (60 segments slowed down 3x)")
    print(f"  one-hop product still consistent: {app.verify_one_hop()}")

    # Road closures: some segments disappear entirely (deletions).
    closed = rng.choice(rows.size, size=25, replace=False)
    app.delete_edges(rows[closed], cols[closed], seed=2)
    print("applied road closures (25 segments deleted)")
    print(f"  one-hop product still consistent: {app.verify_one_hop()}")

    # Full shortest-path distances from the maintained adjacency matrix,
    # validated against NetworkX Dijkstra on the same (updated) network.
    dist = app.full_distances()
    adj = app.adjacency.to_coo_global()
    reference = sssp_reference(n, adj.rows, adj.cols, adj.values, sources)
    max_err = np.nanmax(
        np.abs(np.nan_to_num(dist, posinf=0.0) - np.nan_to_num(reference, posinf=0.0))
    )
    reachable = np.isfinite(dist).sum(axis=1)
    for si, s in enumerate(sources):
        print(
            f"  source {int(s):3d}: {int(reachable[si])} reachable junctions, "
            f"mean travel time {np.nanmean(dist[si][np.isfinite(dist[si])]):.2f}"
        )
    print(f"max deviation from NetworkX Dijkstra: {max_err:.2e}")
    print(f"modelled parallel time: {comm.elapsed() * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
