#!/usr/bin/env python3
"""Graph contraction (coarsening) with distributed SpGEMM.

Contracting a graph along a clustering is the triple product ``Sᵀ·A·S``
(one of the SpGEMM applications the paper cites).  This example clusters a
ring-of-cliques graph, contracts it with two distributed SUMMA products and
checks that the coarse graph is exactly the ring connecting the cliques.

Run with ``python examples/graph_contraction.py``.
"""

from __future__ import annotations

import numpy as np

from repro import DynamicDistMatrix, ProcessGrid, UpdateBatch, make_communicator
from repro.apps import contract_graph
from repro.graphs import ring_of_cliques_edges


def main() -> None:
    n_ranks = 16
    comm = make_communicator(n_ranks=n_ranks)
    grid = ProcessGrid(n_ranks)

    n_cliques, clique_size = 12, 8
    rows, cols = ring_of_cliques_edges(n_cliques, clique_size)
    n = n_cliques * clique_size
    weights = np.ones(rows.size)
    print(f"fine graph: {n} vertices, {rows.size} directed edges "
          f"({n_cliques} cliques of size {clique_size} joined in a ring)")

    batch = UpdateBatch.from_global((n, n), rows, cols, weights, n_ranks, seed=5)
    adjacency = DynamicDistMatrix.from_tuples(
        comm, grid, (n, n), batch.tuples_per_rank, combine="last"
    )

    # The natural clustering: each clique becomes one coarse vertex.
    clusters = np.arange(n, dtype=np.int64) // clique_size
    coarse = contract_graph(
        comm, grid, adjacency, clusters, n_clusters=n_cliques, drop_self_loops=True
    )

    print(f"coarse graph: {n_cliques} vertices, {coarse.nnz} directed edges")
    expected_ring_edges = 2 * n_cliques  # one bridge in each direction
    print(f"expected ring edges: {expected_ring_edges}, got: {coarse.nnz}")
    # Each coarse edge weight equals the number of fine edges between the
    # two cliques (1 bridge each way in this topology).
    weights_ok = np.allclose(coarse.values, 1.0)
    print(f"coarse edge weights all equal to the bridge multiplicity: {weights_ok}")

    # Self-loop weights (intra-cluster edges) are the clique sizes squared
    # minus the diagonal; recompute with self loops kept to show them.
    with_loops = contract_graph(
        comm, grid, adjacency, clusters, n_clusters=n_cliques, drop_self_loops=False
    )
    loop_weight = clique_size * (clique_size - 1)
    diag = [
        v
        for i, j, v in zip(with_loops.rows, with_loops.cols, with_loops.values)
        if i == j
    ]
    print(
        f"intra-clique edge mass per coarse vertex: expected {loop_weight}, "
        f"measured {sorted(set(round(float(d), 6) for d in diag))}"
    )
    print(f"modelled parallel time: {comm.elapsed() * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
