#!/usr/bin/env python3
"""Regenerate every table and figure of the paper and print the series.

This is the command-line entry point of the benchmark harness (the
``benchmarks/`` directory wraps the same drivers for ``pytest-benchmark``).

Usage::

    python examples/reproduce_figures.py                 # smoke profile
    python examples/reproduce_figures.py --profile default
    python examples/reproduce_figures.py --only figure_4 figure_9
    python examples/reproduce_figures.py --json results/ # also dump JSON
"""

from __future__ import annotations

import argparse
import os

from repro.bench import ablations, experiments_spgemm, experiments_updates, get_profile
from repro.bench.reporting import print_result

DRIVERS = {
    "table_1": lambda prof: experiments_updates.run_table1(prof),
    "figure_3": lambda prof: experiments_updates.run_construction(prof),
    "figure_4": lambda prof: experiments_updates.run_insertions(prof),
    "figure_5a": lambda prof: experiments_updates.run_updates_deletions(prof, operation="update"),
    "figure_5b": lambda prof: experiments_updates.run_updates_deletions(prof, operation="delete"),
    "figure_6": lambda prof: experiments_updates.run_insert_weak_scaling(prof),
    "figure_7": lambda prof: experiments_updates.run_insert_breakdown(prof),
    "figure_8": lambda prof: experiments_updates.run_rmat_scaling(prof),
    "figure_9": lambda prof: experiments_spgemm.run_spgemm_algebraic(prof),
    "figure_10": lambda prof: experiments_spgemm.run_spgemm_general(prof),
    "figure_11": lambda prof: experiments_spgemm.run_spgemm_weak_scaling(prof),
    "figure_12": lambda prof: experiments_spgemm.run_spgemm_breakdown(prof),
    "ablation_redistribution": lambda prof: ablations.run_redistribution_ablation(prof),
    "ablation_summa_crossover": lambda prof: ablations.run_summa_crossover_ablation(prof),
    "ablation_dynamic_storage": lambda prof: ablations.run_dynamic_storage_ablation(prof),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default=None, help="smoke | default | large")
    parser.add_argument(
        "--only", nargs="*", default=None, help="subset of experiments to run"
    )
    parser.add_argument("--json", default=None, help="directory to dump JSON results")
    args = parser.parse_args()

    profile = get_profile(args.profile)
    selected = args.only or list(DRIVERS)
    unknown = [name for name in selected if name not in DRIVERS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {sorted(DRIVERS)}")

    print(f"running {len(selected)} experiments with profile {profile.name!r}")
    for name in selected:
        result = DRIVERS[name](profile)
        print_result(result)
        if args.json:
            os.makedirs(args.json, exist_ok=True)
            result.save(os.path.join(args.json, f"{name}.json"))


if __name__ == "__main__":
    main()
