#!/usr/bin/env python3
"""Streaming triangle counting on a growing social network.

Triangle counting is the classic algebraic graph kernel (``sum(A² ∘ A)/6``).
As new friendships arrive in batches, recomputing ``A²`` from scratch is
wasteful; the maintained product of :class:`repro.core.DynamicProduct`
updates it with Algorithm 1 (both operands receive the same hypersparse
update), so the triangle count can be refreshed after every batch.

Run with ``python examples/streaming_triangle_count.py``.
"""

from __future__ import annotations

import numpy as np

from repro import ProcessGrid, make_communicator
from repro.apps import DynamicTriangleCounter, count_triangles_reference
from repro.graphs import generate_instance


def main() -> None:
    n_ranks = 16
    comm = make_communicator(n_ranks=n_ranks)
    grid = ProcessGrid(n_ranks)

    # A scaled-down surrogate of the paper's LiveJournal social network.
    n, rows, cols, _values = generate_instance(
        "LiveJournal", scale_divisor=65536, seed=3
    )
    # Start with 70% of the friendships; the rest arrives as a stream.
    rng = np.random.default_rng(3)
    directed = rows < cols  # one direction per undirected edge
    rows_u, cols_u = rows[directed], cols[directed]
    order = rng.permutation(rows_u.size)
    split = int(rows_u.size * 0.7)
    initial, stream = order[:split], order[split:]

    counter = DynamicTriangleCounter(comm, grid, n, rows_u[initial], cols_u[initial])
    print(f"social network surrogate: {n} users, {rows_u.size} friendships total")
    print(f"initial triangles: {counter.triangle_count()}")

    batch_size = max(1, stream.size // 3)
    for step in range(3):
        sel = stream[step * batch_size : (step + 1) * batch_size]
        if sel.size == 0:
            break
        inserted = counter.insert_edges(rows_u[sel], cols_u[sel], seed=step)
        print(
            f"batch {step}: {sel.size} new friendships ({inserted} directed "
            f"non-zeros inserted), triangles now {counter.triangle_count()}"
        )

    # Validate against a direct (scipy-based) recount on the full edge set.
    adj = counter.adjacency.to_coo_global()
    reference = count_triangles_reference(n, adj.rows, adj.cols)
    maintained = counter.triangle_count()
    print(f"reference recount: {reference}  maintained count: {maintained}")
    print(f"maintained A^2 consistent with recomputation: {counter.verify()}")
    print(f"modelled parallel time: {comm.elapsed() * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
