#!/usr/bin/env python3
"""Quickstart: maintain a distributed sparse product under batch updates.

This walks through the core workflow of the library:

1. create a simulated MPI communicator and a square process grid,
2. build distributed dynamic matrices from scattered update tuples,
3. maintain ``C = A·B`` with the dynamic SpGEMM (Algorithm 1) while batches
   of insertions arrive,
4. inspect the communication statistics the simulator collected.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    DynamicDistMatrix,
    DynamicProduct,
    ProcessGrid,
    make_communicator,
    UpdateBatch,
)
from repro.graphs import erdos_renyi_edges


def main() -> None:
    # 16 simulated MPI ranks arranged in a 4x4 grid (as CombBLAS would).
    n_ranks = 16
    comm = make_communicator(n_ranks=n_ranks)
    grid = ProcessGrid(n_ranks)

    # A small random graph: B is its (static) adjacency matrix, A starts
    # empty and will grow by batches of insertions.
    n = 500
    rows, cols = erdos_renyi_edges(n, 4000, seed=7)
    weights = np.random.default_rng(7).random(rows.size)

    b = DynamicDistMatrix.empty(comm, grid, (n, n))
    b_batch = UpdateBatch.from_global((n, n), rows, cols, weights, n_ranks, seed=1)
    b.insert_tuples(b_batch.tuples_per_rank, combine="last")

    a = DynamicDistMatrix.empty(comm, grid, (n, n))
    product = DynamicProduct(comm, grid, a, b, mode="algebraic")
    print(f"initial product: nnz(C) = {product.c.nnz()}")

    # Apply three batches of insertions into A; each batch triggers
    # Algorithm 1 (C += A* · B) instead of a full recomputation.
    rng = np.random.default_rng(42)
    for step in range(3):
        m = 300
        batch = UpdateBatch.from_global(
            (n, n),
            rng.integers(0, n, m),
            rng.integers(0, n, m),
            rng.random(m),
            n_ranks,
            kind="insert",
            seed=step,
        )
        outcome = product.apply_updates(a_batch=batch)
        print(
            f"batch {step}: {outcome.a_updates} updates applied with the "
            f"{outcome.algorithm} algorithm, {outcome.touched_outputs} output "
            f"entries touched, nnz(C) = {product.c.nnz()}"
        )

    # The maintained C matches a from-scratch recomputation.
    print(f"maintained product consistent with recomputation: {product.check_consistency()}")

    # The simulator tracked modelled time and per-category communication.
    print(f"\nmodelled parallel time: {comm.elapsed() * 1e3:.3f} ms")
    print("communication / computation breakdown (modelled milliseconds):")
    for category, totals in sorted(comm.stats.as_dict().items()):
        if totals["modeled_seconds"] > 0:
            print(
                f"  {category:18s} {totals['modeled_seconds'] * 1e3:9.3f} ms"
                f"   {int(totals['bytes']):>12d} bytes"
            )


if __name__ == "__main__":
    main()
