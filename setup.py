"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(offline PEP 660 editable installs need it), via ``python setup.py develop``
or ``pip install -e . --no-build-isolation``.
"""
from setuptools import setup

setup()
