"""Coordinate-format sparse matrices.

COO is the interchange format of the repository: update tuples ``(i, j, x)``
arrive as COO triplets, redistribution moves COO arrays between ranks, and
every other layout (CSR, DCSR, DHB) can be built from / exported to COO.
Duplicate coordinates are combined with the semiring's addition (or by
"last write wins" for merge semantics), mirroring how the paper builds
update matrices from batches of updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse.layout import register_row_layout

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate (triplet) format.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)`` of the matrix.
    rows, cols:
        ``int64`` coordinate arrays of equal length.
    values:
        value array aligned with the coordinates (semiring dtype).
    semiring:
        The semiring giving meaning to structural zeros and duplicate
        combination.
    """

    shape: tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    semiring: Semiring = PLUS_TIMES

    def __post_init__(self) -> None:
        self.rows = np.ascontiguousarray(np.asarray(self.rows, dtype=np.int64))
        self.cols = np.ascontiguousarray(np.asarray(self.cols, dtype=np.int64))
        self.values = self.semiring.coerce(self.values)
        if not (len(self.rows) == len(self.cols) == len(self.values)):
            raise ValueError(
                "rows, cols and values must have identical lengths "
                f"(got {len(self.rows)}, {len(self.cols)}, {len(self.values)})"
            )
        n, m = self.shape
        if n < 0 or m < 0:
            raise ValueError(f"invalid shape {self.shape}")
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= n:
                raise ValueError("row index out of bounds for shape")
            if self.cols.min() < 0 or self.cols.max() >= m:
                raise ValueError("column index out of bounds for shape")
        # Lazily built row-access views (the triplet arrays are never
        # mutated in place, so these cannot go stale).
        self._dcsr_view = None
        self._csr_view = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int], semiring: Semiring = PLUS_TIMES) -> "COOMatrix":
        """An all-structurally-zero matrix of the given shape."""
        return cls(
            shape=shape,
            rows=np.empty(0, dtype=np.int64),
            cols=np.empty(0, dtype=np.int64),
            values=semiring.zeros(0),
            semiring=semiring,
        )

    @classmethod
    def from_tuples(
        cls,
        shape: tuple[int, int],
        tuples,
        semiring: Semiring = PLUS_TIMES,
        *,
        dedup: bool = True,
    ) -> "COOMatrix":
        """Build from an iterable of ``(i, j, value)`` tuples."""
        tuples = list(tuples)
        if not tuples:
            return cls.empty(shape, semiring)
        rows = np.array([t[0] for t in tuples], dtype=np.int64)
        cols = np.array([t[1] for t in tuples], dtype=np.int64)
        vals = semiring.coerce([t[2] for t in tuples])
        mat = cls(shape=shape, rows=rows, cols=cols, values=vals, semiring=semiring)
        return mat.sum_duplicates() if dedup else mat

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, semiring: Semiring = PLUS_TIMES
    ) -> "COOMatrix":
        """Build from a dense array; entries equal to the semiring zero are
        treated as structural zeros."""
        dense = np.asarray(dense, dtype=semiring.dtype)
        nonzero = ~semiring.is_zero(dense)
        rows, cols = np.nonzero(nonzero)
        return cls(
            shape=dense.shape,
            rows=rows.astype(np.int64),
            cols=cols.astype(np.int64),
            values=dense[rows, cols],
            semiring=semiring,
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of structural non-zeros."""
        return int(self.rows.size)

    @property
    def nbytes(self) -> int:
        """Bytes required to communicate this matrix (triplet layout)."""
        return int(self.rows.nbytes + self.cols.nbytes + self.values.nbytes)

    def copy(self) -> "COOMatrix":
        return COOMatrix(
            shape=self.shape,
            rows=self.rows.copy(),
            cols=self.cols.copy(),
            values=self.values.copy(),
            semiring=self.semiring,
        )

    # ------------------------------------------------------------------
    # canonicalisation
    # ------------------------------------------------------------------
    def _sort_key(self) -> np.ndarray:
        return self.rows * np.int64(self.shape[1]) + self.cols

    def sort(self) -> "COOMatrix":
        """Return a copy sorted by (row, col); duplicates are kept."""
        order = np.argsort(self._sort_key(), kind="stable")
        return COOMatrix(
            shape=self.shape,
            rows=self.rows[order],
            cols=self.cols[order],
            values=self.values[order],
            semiring=self.semiring,
        )

    def sum_duplicates(self) -> "COOMatrix":
        """Combine duplicate coordinates with semiring addition."""
        if self.nnz == 0:
            return self.copy()
        keys, combined = self.semiring.sum_duplicates(self._sort_key(), self.values)
        m = np.int64(self.shape[1])
        return COOMatrix(
            shape=self.shape,
            rows=(keys // m).astype(np.int64),
            cols=(keys % m).astype(np.int64),
            values=combined,
            semiring=self.semiring,
        )

    def last_write_wins(self) -> "COOMatrix":
        """Deduplicate keeping, for each coordinate, the *last* value.

        This is the combination rule for MERGE-style update matrices, where
        later updates overwrite earlier ones instead of being ⊕-combined.
        """
        if self.nnz == 0:
            return self.copy()
        keys = self._sort_key()
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        # last occurrence of each key wins
        boundary = np.empty(keys_sorted.size, dtype=bool)
        boundary[-1] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=boundary[:-1])
        keep = order[np.flatnonzero(boundary)]
        keep.sort()
        out = COOMatrix(
            shape=self.shape,
            rows=self.rows[keep],
            cols=self.cols[keep],
            values=self.values[keep],
            semiring=self.semiring,
        )
        return out.sort()

    def drop_zeros(self) -> "COOMatrix":
        """Remove entries whose value equals the semiring zero."""
        keep = ~self.semiring.is_zero(self.values)
        return COOMatrix(
            shape=self.shape,
            rows=self.rows[keep],
            cols=self.cols[keep],
            values=self.values[keep],
            semiring=self.semiring,
        )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def concatenate(self, other: "COOMatrix") -> "COOMatrix":
        """Stack the triplets of two COO matrices (no dedup)."""
        self._check_compatible(other)
        return COOMatrix(
            shape=self.shape,
            rows=np.concatenate([self.rows, other.rows]),
            cols=np.concatenate([self.cols, other.cols]),
            values=np.concatenate([self.values, other.values]),
            semiring=self.semiring,
        )

    def add(self, other: "COOMatrix") -> "COOMatrix":
        """Element-wise semiring addition."""
        return self.concatenate(other).sum_duplicates()

    def transpose(self) -> "COOMatrix":
        out = COOMatrix(
            shape=(self.shape[1], self.shape[0]),
            rows=self.cols.copy(),
            cols=self.rows.copy(),
            values=self.values.copy(),
            semiring=self.semiring,
        )
        return out.sort()

    # ------------------------------------------------------------------
    # row access (uniform layout protocol)
    # ------------------------------------------------------------------
    def iter_rows(self):
        """Yield ``(row, cols, vals)`` per non-empty row (duplicates kept).

        Backed by a lazily built, cached DCSR view so that repeated kernel
        invocations on the same operand pay the conversion only once.
        """
        from repro.sparse.dcsr import DCSRMatrix

        if self._dcsr_view is None:
            self._dcsr_view = DCSRMatrix.from_coo(self, dedup=False)
        return self._dcsr_view.iter_rows()

    def row_arrays(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of row ``i`` via a cached CSR view."""
        from repro.sparse.csr import CSRMatrix

        if self._csr_view is None:
            self._csr_view = CSRMatrix.from_coo(self, dedup=False)
        return self._csr_view.row(i)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Dense array with structural zeros mapped to the semiring zero."""
        dense = np.full(self.shape, self.semiring.zero, dtype=self.semiring.dtype)
        canon = self.sum_duplicates()
        dense[canon.rows, canon.cols] = canon.values
        return dense

    def to_scipy(self):
        """Convert to ``scipy.sparse.coo_matrix`` (numeric semirings only)."""
        import scipy.sparse as sp

        return sp.coo_matrix(
            (self.values, (self.rows, self.cols)), shape=self.shape
        )

    def to_dict(self) -> dict[tuple[int, int], float]:
        """Dict view ``(i, j) -> value`` (duplicates ⊕-combined)."""
        canon = self.sum_duplicates()
        return {
            (int(i), int(j)): float(v)
            for i, j, v in zip(canon.rows, canon.cols, canon.values)
        }

    # ------------------------------------------------------------------
    def _check_compatible(self, other: "COOMatrix") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if self.semiring.name != other.semiring.name:
            raise ValueError(
                f"semiring mismatch: {self.semiring.name} vs {other.semiring.name}"
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"semiring={self.semiring.name!r})"
        )


register_row_layout(COOMatrix)
