"""Local (within one rank) SpGEMM kernels.

The distributed algorithms reduce to repeated *local* multiplications of a
(usually hypersparse) left operand with a local block of the right operand.
Three kernels are provided:

* :func:`spgemm_local` — Gustavson's row-wise algorithm, vectorised with
  NumPy (concatenate the scaled ``B`` rows selected by each ``A`` row, then
  sort + ``reduceat`` to ⊕-combine duplicate output columns).  Optionally
  produces the Bloom-filter bits of Section V-B and falls back to a
  ``scipy.sparse`` fast path for the ``(+, ·)`` semiring.
* :func:`spgemm_local_masked` — the masked variant used by the
  general-update algorithm: only output positions present in the mask are
  produced (Section VI-B builds a hash table of the mask; here the mask is a
  row → sorted-columns index and membership is tested with ``np.isin``).
* :func:`spgemm_rowwise_spa` — a literal sparse-accumulator implementation
  (slow, loop-based) kept as an independent oracle for tests.
"""

from __future__ import annotations

import numpy as np

from repro.perf.recorder import perf_count, perf_phase
from repro.semirings import Semiring
from repro.sparse.bloom import BLOOM_BITS, BloomFilterMatrix
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels.spgemm import (
    compiled_supported,
    spgemm_rowwise_compiled,
    spgemm_rowwise_masked_compiled,
)
from repro.sparse.kernels.tier import count_tier, resolve_kernel_tier
from repro.sparse.layout import row_reader
from repro.sparse.spa import SparseAccumulator

__all__ = ["spgemm_local", "spgemm_local_masked", "spgemm_rowwise_spa"]


def _check_shapes(a_shape: tuple[int, int], b_shape: tuple[int, int]) -> tuple[int, int]:
    n, k = a_shape
    k2, m = b_shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_shape} x {b_shape}")
    return n, m


def _dedup_row(
    cols: np.ndarray,
    vals: np.ndarray,
    bits: np.ndarray | None,
    semiring: Semiring,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """⊕-combine duplicate columns of one output row (bits OR-combined)."""
    if cols.size == 0:
        return cols, vals, bits
    order = np.argsort(cols, kind="stable")
    cols_sorted = cols[order]
    vals_sorted = vals[order]
    boundary = np.empty(cols_sorted.size, dtype=bool)
    boundary[0] = True
    np.not_equal(cols_sorted[1:], cols_sorted[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    out_cols = cols_sorted[starts]
    out_vals = semiring.add.reduceat(vals_sorted, starts)
    out_bits = None
    if bits is not None:
        bits_sorted = bits[order]
        out_bits = np.bitwise_or.reduceat(bits_sorted, starts)
    return out_cols, out_vals, out_bits


def _scipy_convertible(mat) -> bool:
    """Whether the scipy fast path can convert ``mat`` at all."""
    return hasattr(mat, "to_scipy") or hasattr(mat, "to_csr")


def _scipy_fast_path(a, b, semiring: Semiring) -> COOMatrix:
    """``(+, ·)`` fast path via scipy.sparse CSR multiplication."""

    def to_scipy(mat):
        if hasattr(mat, "to_scipy"):
            return mat.to_scipy()
        if hasattr(mat, "to_csr"):
            return mat.to_csr().to_scipy()
        raise TypeError(type(mat).__name__)

    sa = to_scipy(a).astype(np.float64)
    sb = to_scipy(b).astype(np.float64)
    sc = (sa @ sb).tocoo()
    return COOMatrix(
        shape=(a.shape[0], b.shape[1]),
        rows=sc.row.astype(np.int64),
        cols=sc.col.astype(np.int64),
        values=semiring.coerce(sc.data),
        semiring=semiring,
    ).sort()


# ----------------------------------------------------------------------
# main kernels
# ----------------------------------------------------------------------
def spgemm_local(
    a,
    b,
    semiring: Semiring,
    *,
    compute_bloom: bool = False,
    use_scipy: bool | None = None,
    inner_offset: int = 0,
    kernel_tier: str | None = None,
) -> tuple[COOMatrix, BloomFilterMatrix | None]:
    """Local SpGEMM ``C = A ⊗.⊕ B`` returning ``(C as COO, bloom or None)``.

    Parameters
    ----------
    a, b:
        Left / right operand in any of the local layouts (COO, CSR, DCSR,
        DHB).  The right operand needs row access and is converted to CSR
        when given as COO.
    semiring:
        Semiring used for ⊗ and ⊕.
    compute_bloom:
        When ``True``, also return a :class:`BloomFilterMatrix` with bit
        ``k mod 64`` set in entry ``(i, j)`` whenever the term
        ``a_{i,k} ⊗ b_{k,j}`` contributed to ``c_{i,j}``.
    use_scipy:
        Force (``True``) or forbid (``False``) the scipy fast path; the
        default picks it automatically for the ``(+, ·)`` semiring when no
        Bloom filter is requested.
    inner_offset:
        Added to the local inner index ``k`` before folding it into the
        Bloom bitfield.  Distributed callers pass the global column offset
        of the left operand's block so that bits refer to *global* inner
        indices.
    kernel_tier:
        Per-call override of the kernel tier (``'python'``, ``'compiled'``
        or ``'auto'``); ``None`` defers to ``REPRO_KERNEL_TIER``.  The
        compiled tier only applies to the rowwise path and falls back to
        Python for semirings its cores cannot represent exactly.
    """
    n, m = _check_shapes(a.shape, b.shape)
    eligible = semiring.name == "plus_times" and not compute_bloom
    # scipy is applicable only when the semiring/Bloom request permit it,
    # both operands are non-empty, and both are convertible — a *forced*
    # request is clamped on all three (an empty operand or a duck-typed
    # layout without to_scipy()/to_csr() used to slip past the clamp and
    # raise TypeError inside the fast path).
    can_scipy = (
        eligible
        and getattr(a, "nnz", 0) > 0
        and getattr(b, "nnz", 0) > 0
        and _scipy_convertible(a)
        and _scipy_convertible(b)
    )
    use_scipy = can_scipy if use_scipy is None else (use_scipy and can_scipy)
    if use_scipy:
        with perf_phase("spgemm_local"):
            result = _scipy_fast_path(a, b, semiring)
        perf_count("spgemm.scipy_calls")
        perf_count("spgemm.output_nnz", result.nnz)
        return result, None

    perf_count("spgemm.rowwise_calls")
    tier = resolve_kernel_tier(kernel_tier)
    if tier == "compiled" and compiled_supported(semiring):
        count_tier("spgemm_rowwise", "compiled")
        with perf_phase("spgemm_local"):
            result, bloom, n_terms, n_rows = spgemm_rowwise_compiled(
                a,
                b,
                semiring,
                (n, m),
                compute_bloom=compute_bloom,
                inner_offset=inner_offset,
            )
        perf_count("spgemm.terms", n_terms)
        perf_count("spgemm.rows", n_rows)
        perf_count("spgemm.output_nnz", result.nnz)
        return result, bloom
    count_tier("spgemm_rowwise", "python")
    with perf_phase("spgemm_local"):
        return _spgemm_rowwise(
            a,
            b,
            semiring,
            (n, m),
            compute_bloom=compute_bloom,
            inner_offset=inner_offset,
        )


def _spgemm_rowwise(
    a,
    b,
    semiring: Semiring,
    shape: tuple[int, int],
    *,
    compute_bloom: bool,
    inner_offset: int,
) -> tuple[COOMatrix, BloomFilterMatrix | None]:
    """The vectorised Gustavson loop shared by the scipy-free path."""
    n, m = shape
    b_row = row_reader(b).row_arrays
    out_rows: list[np.ndarray] = []
    out_cols: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    bloom_entries: list[tuple[int, np.ndarray, np.ndarray]] = []
    n_terms = 0

    for i, a_cols, a_vals in row_reader(a).iter_rows():
        chunks_c: list[np.ndarray] = []
        chunks_v: list[np.ndarray] = []
        chunks_b: list[np.ndarray] = []
        for k, a_ik in zip(a_cols, a_vals):
            b_cols, b_vals = b_row(int(k))
            if b_cols.size == 0:
                continue
            chunks_c.append(b_cols)
            chunks_v.append(semiring.times(a_ik, b_vals))
            if compute_bloom:
                bit = np.uint64(1) << np.uint64((int(k) + inner_offset) % BLOOM_BITS)
                chunks_b.append(np.full(b_cols.size, bit, dtype=np.uint64))
        if not chunks_c:
            continue
        cols = np.concatenate(chunks_c)
        vals = np.concatenate(chunks_v)
        bits = np.concatenate(chunks_b) if compute_bloom else None
        n_terms += cols.size
        cols, vals, bits = _dedup_row(cols, vals, bits, semiring)
        out_rows.append(np.full(cols.size, i, dtype=np.int64))
        out_cols.append(cols)
        out_vals.append(vals)
        if compute_bloom:
            bloom_entries.append((i, cols, bits))

    perf_count("spgemm.terms", n_terms)
    perf_count("spgemm.rows", len(out_rows))

    if not out_rows:
        result = COOMatrix.empty((n, m), semiring)
    else:
        result = COOMatrix(
            shape=(n, m),
            rows=np.concatenate(out_rows),
            cols=np.concatenate(out_cols),
            values=np.concatenate(out_vals),
            semiring=semiring,
        )
    bloom = None
    if compute_bloom:
        bloom = BloomFilterMatrix((n, m))
        for i, cols, bits in bloom_entries:
            for j, bitfield in zip(cols, bits):
                bloom.set_bits(int(i), int(j), int(bitfield))
    perf_count("spgemm.output_nnz", result.nnz)
    return result, bloom


def spgemm_local_masked(
    a,
    b,
    semiring: Semiring,
    mask_rows: dict[int, np.ndarray],
    *,
    compute_bloom: bool = True,
    inner_offset: int = 0,
    kernel_tier: str | None = None,
) -> tuple[COOMatrix, BloomFilterMatrix | None]:
    """Masked local SpGEMM: only output positions present in the mask.

    ``mask_rows`` maps an output row to the sorted array of allowed output
    columns (as produced by
    :func:`repro.sparse.elementwise.pattern_row_index`); rows absent from
    the mapping produce no output.  This is the kernel of Algorithm 2's
    local step ``Z, H ← A^R_{k,i} B'_{i,j} masked at C*_{k,j}``.
    ``kernel_tier`` overrides ``REPRO_KERNEL_TIER`` per call.
    """
    tier = resolve_kernel_tier(kernel_tier)
    if tier == "compiled" and compiled_supported(semiring):
        count_tier("spgemm_masked", "compiled")
        shape = _check_shapes(a.shape, b.shape)
        with perf_phase("spgemm_local_masked"):
            result, bloom, n_terms, n_rows = spgemm_rowwise_masked_compiled(
                a,
                b,
                semiring,
                mask_rows,
                shape,
                compute_bloom=compute_bloom,
                inner_offset=inner_offset,
            )
        perf_count("spgemm.masked_terms", n_terms)
        perf_count("spgemm.masked_rows", n_rows)
        return result, bloom
    count_tier("spgemm_masked", "python")
    with perf_phase("spgemm_local_masked"):
        return _spgemm_rowwise_masked(
            a,
            b,
            semiring,
            mask_rows,
            compute_bloom=compute_bloom,
            inner_offset=inner_offset,
        )


def _spgemm_rowwise_masked(
    a,
    b,
    semiring: Semiring,
    mask_rows: dict[int, np.ndarray],
    *,
    compute_bloom: bool,
    inner_offset: int,
) -> tuple[COOMatrix, BloomFilterMatrix | None]:
    """Row-wise masked Gustavson loop behind :func:`spgemm_local_masked`."""
    n, m = _check_shapes(a.shape, b.shape)
    b_row = row_reader(b).row_arrays
    out_rows: list[np.ndarray] = []
    out_cols: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    bloom_entries: list[tuple[int, np.ndarray, np.ndarray]] = []
    n_terms = 0

    for i, a_cols, a_vals in row_reader(a).iter_rows():
        allowed = mask_rows.get(int(i))
        if allowed is None or allowed.size == 0:
            continue
        chunks_c: list[np.ndarray] = []
        chunks_v: list[np.ndarray] = []
        chunks_b: list[np.ndarray] = []
        for k, a_ik in zip(a_cols, a_vals):
            b_cols, b_vals = b_row(int(k))
            if b_cols.size == 0:
                continue
            chunks_c.append(b_cols)
            chunks_v.append(semiring.times(a_ik, b_vals))
            if compute_bloom:
                bit = np.uint64(1) << np.uint64((int(k) + inner_offset) % BLOOM_BITS)
                chunks_b.append(np.full(b_cols.size, bit, dtype=np.uint64))
        if not chunks_c:
            continue
        cols = np.concatenate(chunks_c)
        vals = np.concatenate(chunks_v)
        bits = np.concatenate(chunks_b) if compute_bloom else None
        n_terms += cols.size
        # One mask intersection for the whole output row (filtering commutes
        # with the concatenation), instead of one ``np.isin`` per (row, k)
        # term as the loop used to do.
        keep = np.isin(cols, allowed)
        if not np.any(keep):
            continue
        cols = cols[keep]
        vals = vals[keep]
        if bits is not None:
            bits = bits[keep]
        cols, vals, bits = _dedup_row(cols, vals, bits, semiring)
        out_rows.append(np.full(cols.size, i, dtype=np.int64))
        out_cols.append(cols)
        out_vals.append(vals)
        if compute_bloom:
            bloom_entries.append((i, cols, bits))

    perf_count("spgemm.masked_terms", n_terms)
    perf_count("spgemm.masked_rows", len(out_rows))

    if not out_rows:
        result = COOMatrix.empty((n, m), semiring)
    else:
        result = COOMatrix(
            shape=(n, m),
            rows=np.concatenate(out_rows),
            cols=np.concatenate(out_cols),
            values=np.concatenate(out_vals),
            semiring=semiring,
        )
    bloom = None
    if compute_bloom:
        bloom = BloomFilterMatrix((n, m))
        for i, cols, bits in bloom_entries:
            for j, bitfield in zip(cols, bits):
                bloom.set_bits(int(i), int(j), int(bitfield))
    return result, bloom


def spgemm_rowwise_spa(
    a,
    b,
    semiring: Semiring,
    *,
    mask_rows: dict[int, np.ndarray] | None = None,
) -> COOMatrix:
    """Reference Gustavson SpGEMM using an explicit sparse accumulator.

    Slow but simple; used by the test-suite as an independent oracle for
    both the plain and the masked vectorised kernels.
    """
    with perf_phase("spgemm_spa"):
        return _spgemm_rowwise_spa(a, b, semiring, mask_rows=mask_rows)


def _spgemm_rowwise_spa(
    a,
    b,
    semiring: Semiring,
    *,
    mask_rows: dict[int, np.ndarray] | None = None,
) -> COOMatrix:
    """Accumulator loop behind :func:`spgemm_rowwise_spa`."""
    n, m = _check_shapes(a.shape, b.shape)
    b_row = row_reader(b).row_arrays
    spa = SparseAccumulator(semiring)
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    vals_out: list[np.ndarray] = []
    for i, a_cols, a_vals in row_reader(a).iter_rows():
        allowed: set[int] | None = None
        if mask_rows is not None:
            allowed_arr = mask_rows.get(int(i))
            if allowed_arr is None or allowed_arr.size == 0:
                continue
            allowed = {int(c) for c in allowed_arr}
        spa.clear()
        for k, a_ik in zip(a_cols, a_vals):
            b_cols, b_vals = b_row(int(k))
            if b_cols.size == 0:
                continue
            spa.accumulate_scaled_row(a_ik, b_cols, b_vals, allowed=allowed)
        if spa.is_empty():
            continue
        cols, vals, _bits = spa.emit()
        rows_out.append(np.full(cols.size, i, dtype=np.int64))
        cols_out.append(cols)
        vals_out.append(vals)
    if not rows_out:
        return COOMatrix.empty((n, m), semiring)
    return COOMatrix(
        shape=(n, m),
        rows=np.concatenate(rows_out),
        cols=np.concatenate(cols_out),
        values=np.concatenate(vals_out),
        semiring=semiring,
    )
