"""Kernel-tier selection: pure-Python oracles vs optional compiled kernels.

Three hot kernels (rowwise SpGEMM, the SPA bulk scatter/merge, and the DHB
whole-batch sorted insert) exist in two implementations: the pure-Python
(NumPy-orchestrated) originals, which are pinned as correctness oracles,
and numba-compiled cores in this package.  This module owns the choice
between them:

* :data:`KERNEL_TIER_ENV_VAR` (``REPRO_KERNEL_TIER``) selects globally —
  ``python`` forces the oracles, ``compiled`` requires numba (raising a
  clear :class:`RuntimeError` when it is missing rather than silently
  degrading), and ``auto`` uses the compiled tier when numba is importable
  and falls back to Python otherwise.  An *explicitly requested* ``auto``
  that has to fall back emits a one-time :class:`RuntimeWarning`; leaving
  the variable unset keeps the silent ``auto`` default.  Any other value
  raises :class:`ValueError` naming the allowed set, matching the repo's
  "typos raise everywhere" convention for environment switches.
* Kernel entry points take a ``kernel_tier=`` keyword that overrides the
  environment per call, validated the same way.

Selection is observable: call sites count ``kernels.tier_compiled`` /
``kernels.tier_python`` (plus a per-site suffix) through
:func:`count_tier`, so bench documents record which tier actually ran.
"""

from __future__ import annotations

import os
import warnings

from repro.perf.recorder import perf_count
from repro.sparse.kernels import _numba

__all__ = [
    "KERNEL_TIER_ENV_VAR",
    "KERNEL_TIERS",
    "count_tier",
    "numba_available",
    "resolve_kernel_tier",
]

#: Environment variable selecting the kernel tier globally; see the module
#: docstring for the semantics of ``python`` / ``compiled`` / ``auto``.
KERNEL_TIER_ENV_VAR = "REPRO_KERNEL_TIER"

#: The recognised tier names.
KERNEL_TIERS = ("python", "compiled", "auto")

#: One-time-warning latch for an explicit ``auto`` falling back to Python
#: (the ``payload_nbytes`` pattern); tests reset it via monkeypatch.
_warned_auto_fallback = False


def numba_available() -> bool:
    """Whether the numba JIT is importable (monkeypatchable for tests)."""
    return _numba.NUMBA_AVAILABLE


def _invalid_tier_error(source: str, raw: str) -> ValueError:
    """The shared "typos raise" error for an unrecognised tier name."""
    return ValueError(
        f"{source}={raw!r} is not a recognised kernel tier "
        "(use 'python', 'compiled' or 'auto')"
    )


def _env_kernel_tier() -> str | None:
    """The validated ``REPRO_KERNEL_TIER`` setting, ``None`` when unset."""
    raw = os.environ.get(KERNEL_TIER_ENV_VAR, "").strip().lower()
    if raw == "":
        return None
    if raw in KERNEL_TIERS:
        return raw
    raise _invalid_tier_error(KERNEL_TIER_ENV_VAR, raw)


def _warn_auto_fallback() -> None:
    """Warn once that an explicit ``auto`` request fell back to Python."""
    global _warned_auto_fallback
    if _warned_auto_fallback:
        return
    _warned_auto_fallback = True
    warnings.warn(
        f"{KERNEL_TIER_ENV_VAR}=auto requested the compiled kernel tier "
        "but numba is not installed; falling back to the pure-Python "
        "kernels (this warning is emitted once)",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_kernel_tier(override: str | None = None) -> str:
    """Resolve the effective tier: ``"python"`` or ``"compiled"``.

    ``override`` is a per-call ``kernel_tier=`` argument and wins over the
    environment; both accept exactly :data:`KERNEL_TIERS`.  ``compiled``
    without numba raises :class:`RuntimeError`; an *explicit* ``auto``
    without numba warns once and returns ``"python"``; an unset
    environment behaves like a silent ``auto``.
    """
    explicit = True
    if override is not None:
        if override not in KERNEL_TIERS:
            raise _invalid_tier_error("kernel_tier", str(override))
        tier = override
    else:
        tier = _env_kernel_tier()
        if tier is None:
            tier, explicit = "auto", False
    if tier == "python":
        return "python"
    available = numba_available()
    if tier == "compiled":
        if not available:
            raise RuntimeError(
                f"{KERNEL_TIER_ENV_VAR}=compiled requires numba, which is "
                "not installed in this environment; install numba or "
                "select the 'python' or 'auto' tier"
            )
        return "compiled"
    # auto
    if available:
        return "compiled"
    if explicit:
        _warn_auto_fallback()
    return "python"


def count_tier(site: str, tier: str) -> None:
    """Record which tier ran at ``site`` (e.g. ``spgemm_rowwise``)."""
    perf_count(f"kernels.tier_{tier}")
    perf_count(f"kernels.tier_{tier}.{site}")
