"""Import guard around :mod:`numba` for the compiled kernel tier.

The compiled tier is strictly optional: the repository must import, test
and run correctly on machines without numba.  This module is the single
place that touches the import, exposing

* :data:`NUMBA_AVAILABLE` — whether a working numba import succeeded, and
* :func:`njit` — numba's ``njit`` when available, otherwise an *identity*
  decorator.

The identity fallback is deliberate: every ``@njit`` kernel body remains a
plain (slow) Python function when numba is absent, so the parity suite can
execute the compiled-tier code paths byte-for-byte on machines without a
JIT — tier selection (see :mod:`repro.sparse.kernels.tier`) guarantees the
fallback is never *dispatched to* for performance, only for testing.
"""

from __future__ import annotations

__all__ = ["NUMBA_AVAILABLE", "njit"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _numba_njit

    NUMBA_AVAILABLE = True
except Exception:  # ImportError, or a broken numba/numpy pairing
    _numba_njit = None
    NUMBA_AVAILABLE = False


def njit(*args, **kwargs):
    """``numba.njit`` when numba is importable, identity decorator otherwise.

    Supports both the bare (``@njit``) and the parametrised
    (``@njit(cache=True)``) decorator forms.
    """
    if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba
        return _numba_njit(*args, **kwargs)
    if len(args) == 1 and callable(args[0]) and not kwargs:
        return args[0]

    def decorate(func):
        return func

    return decorate
