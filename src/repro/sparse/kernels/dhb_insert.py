"""Compiled DHB whole-batch insert core: the hit/miss split.

The vectorised DHB insert path applies a deduplicated, ``(row, col)``-
sorted batch row by row: each touched *existing* row needs to know which
incoming columns are already present (hits — combined in place) and which
are new (misses — appended to the adjacency array).  The pure-Python tier
probes the row's dict hash index per element; this core answers the same
question for *all* touched rows in one jitted call by building a
transient open-addressing table per row over its adjacency columns.

Only the probe is compiled.  The value application — overwrite or
``combine`` of hits, vectorised append of misses — stays in
:mod:`repro.sparse.dhb` with the exact NumPy expressions of the Python
tier, so both tiers produce byte-identical matrices, created-counts and
adjacency orders for any ``combine`` callable.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.kernels._numba import njit

__all__ = ["probe_existing_rows"]


@njit(cache=True)
def probe_existing_rows(ex_cols, ex_ptr, new_cols, new_ptr):
    """Adjacency slot of each incoming column, ``-1`` for misses.

    ``ex_cols`` holds the concatenated live adjacency columns of the
    touched existing rows (delimited by ``ex_ptr``); ``new_cols`` holds
    the rows' incoming column segments (delimited by ``new_ptr``, aligned
    with ``ex_ptr``).  Returns ``slots`` aligned with ``new_cols``:
    ``slots[t]`` is the position of ``new_cols[t]`` within its row's live
    adjacency array, or ``-1`` when the column is new to the row.
    """
    slots = np.full(new_cols.size, -1, dtype=np.int64)
    n_rows = ex_ptr.size - 1
    for r in range(n_rows):
        lo = ex_ptr[r]
        hi = ex_ptr[r + 1]
        size = hi - lo
        nlo = new_ptr[r]
        nhi = new_ptr[r + 1]
        if size == 0 or nlo == nhi:
            continue
        cap = 8
        while cap < 2 * size:
            cap *= 2
        mask = cap - 1
        table = np.full(cap, -1, dtype=np.int64)
        for s in range(size):
            h = (int(ex_cols[lo + s]) * 2654435761) & mask
            while table[h] != -1:
                h = (h + 1) & mask
            table[h] = s
        for t in range(nlo, nhi):
            c = new_cols[t]
            h = (int(c) * 2654435761) & mask
            while True:
                s = table[h]
                if s == -1:
                    break
                if ex_cols[lo + s] == c:
                    slots[t] = s
                    break
                h = (h + 1) & mask
    return slots
