"""Optional compiled kernel tier for the hot sparse kernels.

This package holds numba-compiled implementations of the three hottest
local kernels — rowwise SpGEMM (plain and masked), the SPA bulk
scatter/merge, and the DHB whole-batch insert core — selected at run time
by :mod:`repro.sparse.kernels.tier` (``REPRO_KERNEL_TIER`` or a per-call
``kernel_tier=`` override).  The pure-Python kernels remain untouched as
correctness oracles; the compiled tier is pinned byte-identical to them
by ``tests/test_kernels_parity.py``.

numba is strictly optional: without it the package still imports (the
``@njit`` decorator degrades to identity via
:mod:`repro.sparse.kernels._numba`), ``auto`` selection falls back to the
Python tier, and requesting ``compiled`` raises a clear error.
"""

from repro.sparse.kernels.tier import (
    KERNEL_TIER_ENV_VAR,
    KERNEL_TIERS,
    count_tier,
    numba_available,
    resolve_kernel_tier,
)

__all__ = [
    "KERNEL_TIER_ENV_VAR",
    "KERNEL_TIERS",
    "count_tier",
    "numba_available",
    "resolve_kernel_tier",
]
