"""Compiled Gustavson rowwise SpGEMM (plain and masked).

The compiled tier splits the Python kernel's work in two:

* a jitted **core** does everything integer- and permutation-shaped —
  term expansion over the flattened operand rows (including the ⊗ scaling
  and the Bloom bit ``(k + inner_offset) mod 64``), the optional mask
  filter, and the per-row *stable* sort by output column;
* the Python **wrapper** performs the single order-sensitive float
  operation — the ⊕-fold of equal-column runs — with exactly the same
  ``Semiring.add_reduceat`` call the pure-Python tier uses, over the
  globally concatenated sorted terms.

``ufunc.reduceat`` segments are independent of their position in the
buffer (each segment is reduced from its own slice), so one global
``reduceat`` is byte-identical to the Python tier's per-row calls; a
stable sort permutation is unique, so the core's mergesort reproduces the
oracle's stable argsort exactly.  The ⊗ scaling uses scalar expressions
chosen to match the NumPy ufuncs bit-for-bit (including NaN propagation
and the ``±0.0`` tie behaviour of ``np.minimum``).

Only semirings whose ⊗ is ``np.multiply``, ``np.add`` or ``np.minimum``
over ``float64`` are supported — that covers all six standard semirings;
:func:`compiled_supported` gates dispatch, and unsupported semirings fall
back to the Python tier.
"""

from __future__ import annotations

import numpy as np

from repro.semirings import Semiring
from repro.sparse.bloom import BLOOM_BITS, BloomFilterMatrix
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels._numba import njit
from repro.sparse.layout import flat_rows

__all__ = [
    "compiled_supported",
    "mul_opcode",
    "spgemm_rowwise_compiled",
    "spgemm_rowwise_masked_compiled",
]

#: ⊗ ufunc → opcode understood by the jitted cores.
_MUL_OPCODES: tuple[tuple[np.ufunc, int], ...] = (
    (np.multiply, 0),
    (np.add, 1),
    (np.minimum, 2),
)


def mul_opcode(semiring: Semiring) -> int | None:
    """Core opcode for the semiring's ⊗, or ``None`` when unsupported."""
    for ufunc, code in _MUL_OPCODES:
        if semiring.mul is ufunc:
            return code
    return None


def compiled_supported(semiring: Semiring) -> bool:
    """Whether the compiled SpGEMM cores can run this semiring exactly."""
    return semiring.dtype == np.dtype(np.float64) and mul_opcode(semiring) is not None


@njit(cache=True)
def _mul(av: float, bv: float, mul_op: int) -> float:
    """Scalar ⊗ matching the NumPy ufunc bit-for-bit (see module docstring)."""
    if mul_op == 0:
        return av * bv
    if mul_op == 1:
        return av + bv
    # np.minimum: first operand on strict less-than or NaN, else second
    # (ties — including ±0.0 — take the second operand).
    return av if (av < bv or av != av) else bv


@njit(cache=True)
def _sort_row_slice(out_cols, out_vals, out_bits, lo, hi, with_bits):
    """Stably sort one row's term slice ``[lo, hi)`` by output column."""
    m = hi - lo
    order = np.argsort(out_cols[lo:hi], kind="mergesort")
    tmp_c = np.empty(m, dtype=np.int64)
    tmp_v = np.empty(m, dtype=np.float64)
    for t in range(m):
        tmp_c[t] = out_cols[lo + order[t]]
        tmp_v[t] = out_vals[lo + order[t]]
    for t in range(m):
        out_cols[lo + t] = tmp_c[t]
        out_vals[lo + t] = tmp_v[t]
    if with_bits:
        tmp_b = np.empty(m, dtype=np.uint64)
        for t in range(m):
            tmp_b[t] = out_bits[lo + order[t]]
        for t in range(m):
            out_bits[lo + t] = tmp_b[t]


@njit(cache=True)
def _gustavson_core(
    a_ids,
    a_ptr,
    a_cols,
    a_vals,
    b_start,
    b_end,
    b_cols,
    b_vals,
    mul_op,
    inner_offset,
    compute_bloom,
):
    """Expand, scale and per-row stably sort all Gustavson terms.

    Returns ``(sorted_cols, sorted_vals, sorted_bits, seg_rows, seg_ptr)``
    where ``seg_ptr`` delimits each non-empty output row's term run in the
    sorted arrays (``sorted_bits`` is empty unless ``compute_bloom``).
    """
    n_seg_in = a_ids.size
    total = 0
    n_out = 0
    for s in range(n_seg_in):
        t = 0
        for p in range(a_ptr[s], a_ptr[s + 1]):
            k = a_cols[p]
            t += b_end[k] - b_start[k]
        if t > 0:
            n_out += 1
            total += t
    out_cols = np.empty(total, dtype=np.int64)
    out_vals = np.empty(total, dtype=np.float64)
    out_bits = np.empty(total if compute_bloom else 0, dtype=np.uint64)
    seg_rows = np.empty(n_out, dtype=np.int64)
    seg_ptr = np.empty(n_out + 1, dtype=np.int64)
    seg_ptr[0] = 0
    pos = 0
    seg = 0
    for s in range(n_seg_in):
        row_start = pos
        for p in range(a_ptr[s], a_ptr[s + 1]):
            k = a_cols[p]
            av = a_vals[p]
            bit = np.uint64(0)
            if compute_bloom:
                bit = np.uint64(1) << np.uint64((k + inner_offset) % BLOOM_BITS)
            for q in range(b_start[k], b_end[k]):
                out_cols[pos] = b_cols[q]
                out_vals[pos] = _mul(av, b_vals[q], mul_op)
                if compute_bloom:
                    out_bits[pos] = bit
                pos += 1
        if pos > row_start:
            _sort_row_slice(out_cols, out_vals, out_bits, row_start, pos, compute_bloom)
            seg_rows[seg] = a_ids[s]
            seg += 1
            seg_ptr[seg] = pos
    return out_cols, out_vals, out_bits, seg_rows, seg_ptr


@njit(cache=True)
def _gustavson_masked_core(
    a_ids,
    a_ptr,
    a_cols,
    a_vals,
    b_start,
    b_end,
    b_cols,
    b_vals,
    mask_ids,
    mask_ptr,
    mask_cols,
    mul_op,
    inner_offset,
    compute_bloom,
):
    """Masked term expansion: only mask-present rows and allowed columns.

    Returns ``(n_terms, n_kept, n_seg, cols, vals, bits, seg_rows,
    seg_ptr)`` with the output arrays oversized (trim to ``n_kept`` /
    ``n_seg`` at the caller); ``n_terms`` counts expanded terms *before*
    the mask filter, matching the Python tier's ``spgemm.masked_terms``.
    """
    n_seg_in = a_ids.size
    n_mask = mask_ids.size
    # pass 1: locate each A row's mask slice and count pre-filter terms
    mask_slot = np.empty(n_seg_in, dtype=np.int64)
    total = 0
    n_masked_rows = 0
    for s in range(n_seg_in):
        i = a_ids[s]
        lo, hi = 0, n_mask
        while lo < hi:
            mid = (lo + hi) // 2
            if mask_ids[mid] < i:
                lo = mid + 1
            else:
                hi = mid
        if lo >= n_mask or mask_ids[lo] != i or mask_ptr[lo] == mask_ptr[lo + 1]:
            mask_slot[s] = -1
            continue
        mask_slot[s] = lo
        n_masked_rows += 1
        for p in range(a_ptr[s], a_ptr[s + 1]):
            k = a_cols[p]
            total += b_end[k] - b_start[k]
    out_cols = np.empty(total, dtype=np.int64)
    out_vals = np.empty(total, dtype=np.float64)
    out_bits = np.empty(total if compute_bloom else 0, dtype=np.uint64)
    seg_rows = np.empty(n_masked_rows, dtype=np.int64)
    seg_ptr = np.empty(n_masked_rows + 1, dtype=np.int64)
    seg_ptr[0] = 0
    pos = 0
    seg = 0
    for s in range(n_seg_in):
        slot = mask_slot[s]
        if slot < 0:
            continue
        alo = mask_ptr[slot]
        ahi = mask_ptr[slot + 1]
        row_start = pos
        for p in range(a_ptr[s], a_ptr[s + 1]):
            k = a_cols[p]
            av = a_vals[p]
            bit = np.uint64(0)
            if compute_bloom:
                bit = np.uint64(1) << np.uint64((k + inner_offset) % BLOOM_BITS)
            for q in range(b_start[k], b_end[k]):
                c = b_cols[q]
                # binary search in the row's sorted allowed columns
                lo, hi = alo, ahi
                while lo < hi:
                    mid = (lo + hi) // 2
                    if mask_cols[mid] < c:
                        lo = mid + 1
                    else:
                        hi = mid
                if lo >= ahi or mask_cols[lo] != c:
                    continue
                out_cols[pos] = c
                out_vals[pos] = _mul(av, b_vals[q], mul_op)
                if compute_bloom:
                    out_bits[pos] = bit
                pos += 1
        if pos > row_start:
            _sort_row_slice(out_cols, out_vals, out_bits, row_start, pos, compute_bloom)
            seg_rows[seg] = a_ids[s]
            seg += 1
            seg_ptr[seg] = pos
    return total, pos, seg, out_cols, out_vals, out_bits, seg_rows, seg_ptr


def _b_row_bounds(b) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dense per-row ``[start, end)`` bounds into B's flattened rows."""
    fb = flat_rows(b)
    n_b = int(b.shape[0])
    b_start = np.zeros(n_b, dtype=np.int64)
    b_end = np.zeros(n_b, dtype=np.int64)
    if fb.row_ids.size:
        b_start[fb.row_ids] = fb.row_ptr[:-1]
        b_end[fb.row_ids] = fb.row_ptr[1:]
    return b_start, b_end, fb.cols, np.asarray(fb.vals, dtype=np.float64)


def _finish(
    sorted_cols,
    sorted_vals,
    sorted_bits,
    seg_rows,
    seg_ptr,
    semiring: Semiring,
    shape: tuple[int, int],
    compute_bloom: bool,
) -> tuple[COOMatrix, BloomFilterMatrix | None]:
    """⊕-fold equal-column runs and assemble the COO / Bloom outputs.

    This is the one float-order-sensitive step, performed with the exact
    NumPy calls of the Python tier (``Semiring.add_reduceat`` and
    ``np.bitwise_or.reduceat``) so both tiers stay byte-identical.
    """
    bloom = BloomFilterMatrix(shape) if compute_bloom else None
    if sorted_cols.size == 0:
        return COOMatrix.empty(shape, semiring), bloom
    boundary = np.zeros(sorted_cols.size, dtype=bool)
    boundary[1:] = sorted_cols[1:] != sorted_cols[:-1]
    boundary[seg_ptr[:-1]] = True
    starts = np.flatnonzero(boundary)
    out_cols = sorted_cols[starts]
    out_vals = semiring.add_reduceat(sorted_vals, starts)
    counts = np.diff(np.searchsorted(starts, seg_ptr))
    out_rows = np.repeat(seg_rows, counts)
    result = COOMatrix(
        shape=shape,
        rows=out_rows,
        cols=out_cols,
        values=out_vals,
        semiring=semiring,
    )
    if compute_bloom:
        merged = np.bitwise_or.reduceat(sorted_bits, starts.astype(np.intp))
        bloom = BloomFilterMatrix.from_arrays(shape, out_rows, out_cols, merged)
    return result, bloom


def spgemm_rowwise_compiled(
    a,
    b,
    semiring: Semiring,
    shape: tuple[int, int],
    *,
    compute_bloom: bool,
    inner_offset: int,
) -> tuple[COOMatrix, BloomFilterMatrix | None, int, int]:
    """Compiled rowwise SpGEMM; returns ``(result, bloom, n_terms, n_rows)``.

    The trailing counts feed the caller's ``spgemm.terms`` /
    ``spgemm.rows`` perf counters (the Python tier counts the same
    quantities inline).
    """
    fa = flat_rows(a)
    b_start, b_end, b_cols, b_vals = _b_row_bounds(b)
    sorted_cols, sorted_vals, sorted_bits, seg_rows, seg_ptr = _gustavson_core(
        fa.row_ids,
        fa.row_ptr,
        fa.cols,
        np.asarray(fa.vals, dtype=np.float64),
        b_start,
        b_end,
        b_cols,
        b_vals,
        mul_opcode(semiring),
        int(inner_offset),
        compute_bloom,
    )
    result, bloom = _finish(
        sorted_cols,
        sorted_vals,
        sorted_bits,
        seg_rows,
        seg_ptr,
        semiring,
        shape,
        compute_bloom,
    )
    return result, bloom, int(sorted_cols.size), int(seg_rows.size)


def _flatten_mask(mask_rows: dict) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a mask dict into sorted row ids + per-row sorted columns."""
    ids = sorted(int(i) for i in mask_rows)
    counts = []
    chunks = []
    for i in ids:
        allowed = np.asarray(mask_rows[i], dtype=np.int64)
        if allowed.size > 1 and np.any(allowed[1:] < allowed[:-1]):
            allowed = np.sort(allowed)
        counts.append(allowed.size)
        chunks.append(allowed)
    mask_ids = np.asarray(ids, dtype=np.int64)
    mask_ptr = np.zeros(len(ids) + 1, dtype=np.int64)
    if ids:
        np.cumsum(counts, out=mask_ptr[1:])
        mask_cols = np.ascontiguousarray(np.concatenate(chunks), dtype=np.int64)
    else:
        mask_cols = np.empty(0, dtype=np.int64)
    return mask_ids, mask_ptr, mask_cols


def spgemm_rowwise_masked_compiled(
    a,
    b,
    semiring: Semiring,
    mask_rows: dict,
    shape: tuple[int, int],
    *,
    compute_bloom: bool,
    inner_offset: int,
) -> tuple[COOMatrix, BloomFilterMatrix | None, int, int]:
    """Compiled masked SpGEMM; returns ``(result, bloom, n_terms, n_rows)``.

    ``n_terms`` counts expanded terms before the mask filter and
    ``n_rows`` the output rows that survive it — the quantities behind the
    Python tier's ``spgemm.masked_terms`` / ``spgemm.masked_rows``.
    """
    fa = flat_rows(a)
    b_start, b_end, b_cols, b_vals = _b_row_bounds(b)
    mask_ids, mask_ptr, mask_cols = _flatten_mask(mask_rows)
    n_terms, n_kept, n_seg, cols, vals, bits, seg_rows, seg_ptr = (
        _gustavson_masked_core(
            fa.row_ids,
            fa.row_ptr,
            fa.cols,
            np.asarray(fa.vals, dtype=np.float64),
            b_start,
            b_end,
            b_cols,
            b_vals,
            mask_ids,
            mask_ptr,
            mask_cols,
            mul_opcode(semiring),
            int(inner_offset),
            compute_bloom,
        )
    )
    result, bloom = _finish(
        cols[:n_kept],
        vals[:n_kept],
        bits[:n_kept] if compute_bloom else bits,
        seg_rows[:n_seg],
        seg_ptr[: n_seg + 1],
        semiring,
        shape,
        compute_bloom,
    )
    return result, bloom, int(n_terms), int(n_seg)
