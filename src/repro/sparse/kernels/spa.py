"""Compiled SPA scatter/merge primitives.

The sparse-accumulator bulk load and the SpGEMM dedup both reduce to the
same shape of work: stably sort a row's column indices, find the segment
boundaries of equal columns, then ⊕-fold each segment.  The fold stays in
NumPy at the caller (``Semiring.add_reduceat`` — the byte-exact oracle
operation); this module compiles the integer part:

* :func:`sort_merge_order` — the stable permutation plus segment starts
  for one column array (used by
  :meth:`repro.sparse.spa.SparseAccumulator._bulk_load`);
* :func:`mask_keep` — sorted-membership filter used by the compiled
  masked SpGEMM path (the compiled analogue of ``np.isin`` against a
  sorted allowed-columns array).

A stable sort permutation is unique, so any stable algorithm (numba's
mergesort here, NumPy's radix/timsort in the Python tier) produces the
identical order — which is what makes the two tiers byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.kernels._numba import njit

__all__ = ["mask_keep", "sort_merge_order"]


@njit(cache=True)
def sort_merge_order(cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stable sort permutation of ``cols`` plus equal-column segment starts.

    Returns ``(order, starts)`` where ``cols[order]`` is stably sorted and
    ``starts`` indexes the first element of each run of equal columns in
    the sorted array (the ``reduceat`` offsets).
    """
    order = np.argsort(cols, kind="mergesort")
    n = cols.size
    if n == 0:
        return order, np.empty(0, dtype=np.int64)
    n_seg = 1
    for t in range(1, n):
        if cols[order[t]] != cols[order[t - 1]]:
            n_seg += 1
    starts = np.empty(n_seg, dtype=np.int64)
    starts[0] = 0
    s = 1
    for t in range(1, n):
        if cols[order[t]] != cols[order[t - 1]]:
            starts[s] = t
            s += 1
    return order, starts


@njit(cache=True)
def mask_keep(cols: np.ndarray, allowed: np.ndarray) -> np.ndarray:
    """Boolean membership of ``cols`` in the *sorted* array ``allowed``.

    Semantically ``np.isin(cols, allowed)`` specialised to a sorted
    needle-stack: each column is located with a binary search.
    """
    keep = np.empty(cols.size, dtype=np.bool_)
    hi_all = allowed.size
    for t in range(cols.size):
        c = cols[t]
        lo, hi = 0, hi_all
        while lo < hi:
            mid = (lo + hi) // 2
            if allowed[mid] < c:
                lo = mid + 1
            else:
                hi = mid
        keep[t] = lo < hi_all and allowed[lo] == c
    return keep
