"""Compressed sparse row (CSR) matrices over a semiring.

CSR is the paper's static layout for sparse (but not hypersparse) blocks:
``indptr`` of length ``n_rows + 1``, plus ``indices`` / ``values`` arrays of
length ``nnz``.  The paper notes that none of its algorithms ever needs to
*search* within a row, so rows are not required to be sorted; this
implementation keeps rows sorted after construction from COO (it costs one
``argsort`` and makes equality checks and tests straightforward) but no
kernel relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse.coo import COOMatrix
from repro.sparse.layout import FlatRows, register_flat_rows, register_row_layout

__all__ = ["CSRMatrix"]


@dataclass
class CSRMatrix:
    """Static CSR matrix."""

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray
    semiring: Semiring = PLUS_TIMES

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(np.asarray(self.indptr, dtype=np.int64))
        self.indices = np.ascontiguousarray(np.asarray(self.indices, dtype=np.int64))
        self.values = self.semiring.coerce(self.values)
        n, m = self.shape
        if len(self.indptr) != n + 1:
            raise ValueError(
                f"indptr must have length n_rows+1={n + 1}, got {len(self.indptr)}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.values):
            raise ValueError("indices and values must have identical lengths")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= m):
            raise ValueError("column index out of bounds for shape")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int], semiring: Semiring = PLUS_TIMES) -> "CSRMatrix":
        return cls(
            shape=shape,
            indptr=np.zeros(shape[0] + 1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            values=semiring.zeros(0),
            semiring=semiring,
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, *, dedup: bool = True) -> "CSRMatrix":
        """Build from COO; duplicates are ⊕-combined when ``dedup``."""
        canon = coo.sum_duplicates() if dedup else coo.sort()
        n = coo.shape[0]
        counts = np.bincount(canon.rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            shape=coo.shape,
            indptr=indptr,
            indices=canon.cols.copy(),
            values=canon.values.copy(),
            semiring=coo.semiring,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray, semiring: Semiring = PLUS_TIMES) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense, semiring))

    @classmethod
    def from_scipy(cls, mat, semiring: Semiring = PLUS_TIMES) -> "CSRMatrix":
        """Build from a ``scipy.sparse`` matrix (kept as structural nnz)."""
        csr = mat.tocsr()
        return cls(
            shape=csr.shape,
            indptr=csr.indptr.astype(np.int64),
            indices=csr.indices.astype(np.int64),
            values=semiring.coerce(csr.data),
            semiring=semiring,
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes + self.values.nbytes)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            shape=self.shape,
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            values=self.values.copy(),
            semiring=self.semiring,
        )

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(column indices, values)`` views of row ``i``."""
        if not (0 <= i < self.shape[0]):
            raise IndexError(f"row {i} outside matrix with {self.shape[0]} rows")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def row_arrays(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of row ``i`` — the uniform row-access protocol."""
        return self.row(i)

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, cols, vals)`` for every non-empty row."""
        for i in self.nonzero_rows():
            cols, vals = self.row(int(i))
            yield int(i), cols, vals

    def row_nnz(self) -> np.ndarray:
        """Number of structural non-zeros in every row."""
        return np.diff(self.indptr)

    def nonzero_rows(self) -> np.ndarray:
        """Indices of rows with at least one structural non-zero."""
        return np.flatnonzero(np.diff(self.indptr) > 0).astype(np.int64)

    def get(self, i: int, j: int, default: float | None = None) -> float:
        """Value at ``(i, j)``; the semiring zero (or ``default``) if absent."""
        cols, vals = self.row(i)
        hits = np.flatnonzero(cols == j)
        if hits.size == 0:
            return self.semiring.zero if default is None else default
        # If rows are unsorted duplicates could exist; ⊕-combine them.
        return float(self.semiring.add_reduce(vals[hits]))

    def contains(self, i: int, j: int) -> bool:
        cols, _ = self.row(i)
        return bool(np.any(cols == j))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        return COOMatrix(
            shape=self.shape,
            rows=rows,
            cols=self.indices.copy(),
            values=self.values.copy(),
            semiring=self.semiring,
        )

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.values, self.indices, self.indptr), shape=self.shape
        )

    def transpose(self) -> "CSRMatrix":
        """Transposed CSR (counting-sort based, O(nnz + n))."""
        return CSRMatrix.from_coo(self.to_coo().transpose(), dedup=False)

    def extract_rows(self, row_ids: np.ndarray) -> COOMatrix:
        """Triplets of the selected rows (used to filter ``A^R``)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        pieces_r, pieces_c, pieces_v = [], [], []
        for i in row_ids:
            cols, vals = self.row(int(i))
            pieces_r.append(np.full(cols.size, i, dtype=np.int64))
            pieces_c.append(cols)
            pieces_v.append(vals)
        if not pieces_r:
            return COOMatrix.empty(self.shape, self.semiring)
        return COOMatrix(
            shape=self.shape,
            rows=np.concatenate(pieces_r),
            cols=np.concatenate(pieces_c),
            values=np.concatenate(pieces_v),
            semiring=self.semiring,
        )

    def scale_values(self, factor: float) -> "CSRMatrix":
        """Multiplicatively scale all values (semiring ⊗ with a scalar)."""
        out = self.copy()
        out.values = self.semiring.times(out.values, factor)
        return out

    # ------------------------------------------------------------------
    def equal(self, other: "CSRMatrix", *, rtol: float = 1e-9) -> bool:
        """Structural and numerical equality (rows compared as sets)."""
        if self.shape != other.shape:
            return False
        a = self.to_coo().sum_duplicates().sort()
        b = other.to_coo().sum_duplicates().sort()
        if a.nnz != b.nnz:
            return False
        if not (np.array_equal(a.rows, b.rows) and np.array_equal(a.cols, b.cols)):
            return False
        return bool(np.allclose(a.values, b.values, rtol=rtol, equal_nan=True))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"semiring={self.semiring.name!r})"
        )


register_row_layout(CSRMatrix)
register_flat_rows(
    CSRMatrix,
    # zero-copy: every row is a segment, empty rows included
    lambda m: FlatRows(
        row_ids=np.arange(m.shape[0], dtype=np.int64),
        row_ptr=m.indptr,
        cols=m.indices,
        vals=m.values,
    ),
)
