"""Doubly-compressed sparse row (DCSR) matrices.

Hypersparse matrices (``nnz ≪ n``) waste memory in plain CSR because the
``indptr`` array alone costs ``O(n)``.  DCSR (the row analogue of
CombBLAS's DCSC) stores row pointers only for rows that actually contain
non-zeros: an array ``nz_rows`` of the non-empty row ids plus an ``indptr``
of length ``len(nz_rows) + 1``.

The paper stores all update matrices (``A*``, ``B*``), all communicated
blocks and all SUMMA partial products in DCSR because it "can substantially
decrease communication volume when hypersparse matrices need to be
communicated".  DCSR does not support O(1) row lookup; none of the
algorithms needs it (rows are only ever *iterated*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.layout import FlatRows, register_flat_rows, register_row_layout

__all__ = ["DCSRMatrix"]


@dataclass
class DCSRMatrix:
    """Doubly-compressed CSR: row pointers only for non-empty rows."""

    shape: tuple[int, int]
    nz_rows: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray
    semiring: Semiring = PLUS_TIMES

    def __post_init__(self) -> None:
        self.nz_rows = np.ascontiguousarray(np.asarray(self.nz_rows, dtype=np.int64))
        self.indptr = np.ascontiguousarray(np.asarray(self.indptr, dtype=np.int64))
        self.indices = np.ascontiguousarray(np.asarray(self.indices, dtype=np.int64))
        self.values = self.semiring.coerce(self.values)
        n, m = self.shape
        if len(self.indptr) != len(self.nz_rows) + 1:
            raise ValueError("indptr must have length len(nz_rows)+1")
        if len(self.indices) != len(self.values):
            raise ValueError("indices and values must have identical lengths")
        if self.indptr.size and (self.indptr[0] != 0 or self.indptr[-1] != len(self.indices)):
            raise ValueError("indptr must start at 0 and end at nnz")
        if self.nz_rows.size:
            if self.nz_rows.min() < 0 or self.nz_rows.max() >= n:
                raise ValueError("non-zero row index out of bounds")
            if np.any(np.diff(self.nz_rows) <= 0):
                raise ValueError("nz_rows must be strictly increasing")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= m):
            raise ValueError("column index out of bounds for shape")
        #: lazily built row-id -> stored-slot index (the arrays are never
        #: mutated in place, so the cache cannot go stale)
        self._row_index: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int], semiring: Semiring = PLUS_TIMES) -> "DCSRMatrix":
        return cls(
            shape=shape,
            nz_rows=np.empty(0, dtype=np.int64),
            indptr=np.zeros(1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            values=semiring.zeros(0),
            semiring=semiring,
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, *, dedup: bool = True) -> "DCSRMatrix":
        canon = coo.sum_duplicates() if dedup else coo.sort()
        if canon.nnz == 0:
            return cls.empty(coo.shape, coo.semiring)
        nz_rows, counts = np.unique(canon.rows, return_counts=True)
        indptr = np.zeros(len(nz_rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            shape=coo.shape,
            nz_rows=nz_rows.astype(np.int64),
            indptr=indptr,
            indices=canon.cols.copy(),
            values=canon.values.copy(),
            semiring=coo.semiring,
        )

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "DCSRMatrix":
        return cls.from_coo(csr.to_coo(), dedup=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray, semiring: Semiring = PLUS_TIMES) -> "DCSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense, semiring))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def n_nonzero_rows(self) -> int:
        return int(self.nz_rows.size)

    @property
    def nbytes(self) -> int:
        """Communication footprint; this is what DCSR is for — it scales
        with ``nnz`` and the number of non-empty rows, not with ``n``."""
        return int(
            self.nz_rows.nbytes
            + self.indptr.nbytes
            + self.indices.nbytes
            + self.values.nbytes
        )

    def copy(self) -> "DCSRMatrix":
        return DCSRMatrix(
            shape=self.shape,
            nz_rows=self.nz_rows.copy(),
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            values=self.values.copy(),
            semiring=self.semiring,
        )

    # ------------------------------------------------------------------
    # iteration / access
    # ------------------------------------------------------------------
    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, column indices, values)`` for each non-empty row."""
        for k, row in enumerate(self.nz_rows):
            lo, hi = self.indptr[k], self.indptr[k + 1]
            yield int(row), self.indices[lo:hi], self.values[lo:hi]

    def row_arrays(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of row ``i``; empty arrays for an empty row.

        DCSR has no O(1) row lookup, so the first call builds a row-id →
        slot hash index which is cached for the lifetime of the matrix —
        SpGEMM kernels probe the right operand once per left-operand entry
        and must not rebuild the index on every invocation.
        """
        if self._row_index is None:
            self._row_index = {
                int(r): k for k, r in enumerate(self.nz_rows)
            }
        slot = self._row_index.get(int(i))
        if slot is None:
            return np.empty(0, dtype=np.int64), self.semiring.zeros(0)
        lo, hi = self.indptr[slot], self.indptr[slot + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def row_by_position(self, k: int) -> tuple[int, np.ndarray, np.ndarray]:
        """The ``k``-th stored (non-empty) row."""
        if not (0 <= k < self.n_nonzero_rows):
            raise IndexError(f"stored-row position {k} out of range")
        lo, hi = self.indptr[k], self.indptr[k + 1]
        return int(self.nz_rows[k]), self.indices[lo:hi], self.values[lo:hi]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        if self.nnz == 0:
            return COOMatrix.empty(self.shape, self.semiring)
        rows = np.repeat(self.nz_rows, np.diff(self.indptr))
        return COOMatrix(
            shape=self.shape,
            rows=rows,
            cols=self.indices.copy(),
            values=self.values.copy(),
            semiring=self.semiring,
        )

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix.from_coo(self.to_coo(), dedup=False)

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def transpose(self) -> "DCSRMatrix":
        return DCSRMatrix.from_coo(self.to_coo().transpose(), dedup=False)

    # ------------------------------------------------------------------
    def equal(self, other: "DCSRMatrix", *, rtol: float = 1e-9) -> bool:
        if self.shape != other.shape:
            return False
        a = self.to_coo().sum_duplicates().sort()
        b = other.to_coo().sum_duplicates().sort()
        if a.nnz != b.nnz:
            return False
        if not (np.array_equal(a.rows, b.rows) and np.array_equal(a.cols, b.cols)):
            return False
        return bool(np.allclose(a.values, b.values, rtol=rtol, equal_nan=True))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DCSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"nz_rows={self.n_nonzero_rows}, semiring={self.semiring.name!r})"
        )


register_row_layout(DCSRMatrix)
register_flat_rows(
    DCSRMatrix,
    # zero-copy: DCSR storage *is* the flat non-empty-row form
    lambda m: FlatRows(
        row_ids=m.nz_rows, row_ptr=m.indptr, cols=m.indices, vals=m.values
    ),
)
