"""Sparse accumulator (SPA) for row-wise SpGEMM.

Gustavson's algorithm forms one output row at a time by scattering scaled
rows of ``B`` into an accumulator indexed by output column.  The paper's
implementation uses "a sparse accumulator based on a dynamic array combined
with a hash table" per shared-memory thread (Section VI-A).  This class is
that accumulator: a dict maps an output column to its slot in dynamic
``cols`` / ``vals`` lists, so accumulation is O(1) expected per term and the
result can be emitted without sorting.

The vectorised kernel in :mod:`repro.sparse.spgemm_local` does not need this
class (it uses sort + ``reduceat``), but the SPA-based reference
implementation is kept both for fidelity to the paper and as an independent
oracle for the property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.perf.recorder import perf_count
from repro.semirings import Semiring
from repro.sparse.kernels.spa import sort_merge_order
from repro.sparse.kernels.tier import count_tier, resolve_kernel_tier

__all__ = ["SparseAccumulator"]


class SparseAccumulator:
    """Hash-based sparse accumulator for one output row."""

    def __init__(self, semiring: Semiring) -> None:
        self.semiring = semiring
        self._slot: dict[int, int] = {}
        self._cols: list[int] = []
        self._vals: list[float] = []
        self._bits: list[int] = []

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Reset the accumulator for the next output row."""
        self._slot.clear()
        self._cols.clear()
        self._vals.clear()
        self._bits.clear()

    def accumulate(self, col: int, value, bloom_bit: int = 0) -> None:
        """⊕-accumulate ``value`` into output column ``col``."""
        col = int(col)
        slot = self._slot.get(col)
        if slot is None:
            self._slot[col] = len(self._cols)
            self._cols.append(col)
            self._vals.append(value)
            self._bits.append(int(bloom_bit))
        else:
            self._vals[slot] = self.semiring.plus(self._vals[slot], value)
            self._bits[slot] |= int(bloom_bit)

    def accumulate_scaled_row(
        self,
        scale,
        cols: np.ndarray,
        vals: np.ndarray,
        bloom_bit: int = 0,
        allowed: "set[int] | np.ndarray | None" = None,
    ) -> None:
        """Accumulate ``scale ⊗ vals`` into the columns ``cols``.

        ``allowed`` optionally restricts output columns (masked SpGEMM); it
        may be a Python set (tested per element inside the oracle loop) or a
        NumPy array of allowed columns, which is intersected vectorised
        before any scattering happens.

        An empty accumulator takes a vectorised bulk-load fast path (one
        sort plus a segmented ``reduceat`` merge); scattering on top of
        existing entries keeps the per-element hash-probe loop, which *is*
        the accumulator design the paper describes and the oracle the
        property tests rely on.
        """
        scaled = self.semiring.times(scale, vals)
        cols_arr = np.asarray(cols, dtype=np.int64)
        if isinstance(allowed, np.ndarray):
            keep = np.isin(cols_arr, allowed)
            cols_arr = cols_arr[keep]
            scaled = np.asarray(scaled)[keep]
            allowed = None
        if allowed is None and not self._cols:
            self._bulk_load(cols_arr, scaled, bloom_bit)
            return
        perf_count("spa.scatter_loop")
        # One dtype conversion for the whole row: ``tolist`` yields native
        # Python ints, so the hot loop avoids a per-element ``int(c)`` call.
        cols_int = cols_arr.tolist()
        if allowed is None:
            for c, v in zip(cols_int, scaled):
                self.accumulate(c, v, bloom_bit)
        else:
            for c, v in zip(cols_int, scaled):
                if c in allowed:
                    self.accumulate(c, v, bloom_bit)

    def _bulk_load(self, cols: np.ndarray, scaled, bloom_bit: int) -> None:
        """Vectorised scatter of a whole row into the *empty* accumulator.

        Duplicate columns are ⊕-combined with a stable sort plus segmented
        ``reduceat``; stability preserves the encounter order within each
        column, so the result matches the per-element oracle (up to the
        floating-point reassociation ``ufunc.reduceat`` is free to apply
        inside a segment).

        The compiled kernel tier replaces only the sort/segmentation with
        :func:`repro.sparse.kernels.spa.sort_merge_order`; the ⊕-fold uses
        the same ``Semiring.add_reduceat`` call in both tiers, and a
        stable sort permutation is unique, so the tiers are
        byte-identical.
        """
        if cols.size == 0:
            return
        perf_count("spa.scatter_bulk")
        vals = self.semiring.coerce(scaled)
        tier = resolve_kernel_tier()
        count_tier("spa_bulk_load", tier)
        if tier == "compiled":
            order, starts = sort_merge_order(cols)
            cols_s = cols[order]
        else:
            order = np.argsort(cols, kind="stable")
            cols_s = cols[order]
            boundary = np.empty(cols_s.size, dtype=bool)
            boundary[0] = True
            np.not_equal(cols_s[1:], cols_s[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
        vals_s = vals[order]
        if starts.size != cols_s.size:
            cols_s = cols_s[starts]
            vals_s = self.semiring.add_reduceat(vals_s, starts)
        self._cols = cols_s.tolist()
        self._vals = vals_s.tolist()
        self._bits = [int(bloom_bit)] * len(self._cols)
        self._slot = dict(zip(self._cols, range(len(self._cols))))

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Number of distinct output columns accumulated so far."""
        return len(self._cols)

    def is_empty(self) -> bool:
        """``True`` when nothing has been accumulated."""
        return not self._cols

    def contains(self, col: int) -> bool:
        """``True`` when ``col`` holds an accumulated value."""
        return int(col) in self._slot

    def get(self, col: int):
        """Accumulated value at ``col`` (semiring zero when absent)."""
        slot = self._slot.get(int(col))
        if slot is None:
            return self.semiring.zero
        return self._vals[slot]

    def emit(self, sort: bool = True) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(cols, vals, bloom_bits)`` of the accumulated row."""
        cols = np.asarray(self._cols, dtype=np.int64)
        vals = self.semiring.coerce(self._vals)
        bits = np.asarray(self._bits, dtype=np.uint64)
        if sort and cols.size:
            order = np.argsort(cols, kind="stable")
            cols, vals, bits = cols[order], vals[order], bits[order]
        return cols, vals, bits
