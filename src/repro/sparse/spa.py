"""Sparse accumulator (SPA) for row-wise SpGEMM.

Gustavson's algorithm forms one output row at a time by scattering scaled
rows of ``B`` into an accumulator indexed by output column.  The paper's
implementation uses "a sparse accumulator based on a dynamic array combined
with a hash table" per shared-memory thread (Section VI-A).  This class is
that accumulator: a dict maps an output column to its slot in dynamic
``cols`` / ``vals`` lists, so accumulation is O(1) expected per term and the
result can be emitted without sorting.

The vectorised kernel in :mod:`repro.sparse.spgemm_local` does not need this
class (it uses sort + ``reduceat``), but the SPA-based reference
implementation is kept both for fidelity to the paper and as an independent
oracle for the property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.semirings import Semiring

__all__ = ["SparseAccumulator"]


class SparseAccumulator:
    """Hash-based sparse accumulator for one output row."""

    def __init__(self, semiring: Semiring) -> None:
        self.semiring = semiring
        self._slot: dict[int, int] = {}
        self._cols: list[int] = []
        self._vals: list[float] = []
        self._bits: list[int] = []

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Reset the accumulator for the next output row."""
        self._slot.clear()
        self._cols.clear()
        self._vals.clear()
        self._bits.clear()

    def accumulate(self, col: int, value, bloom_bit: int = 0) -> None:
        """⊕-accumulate ``value`` into output column ``col``."""
        col = int(col)
        slot = self._slot.get(col)
        if slot is None:
            self._slot[col] = len(self._cols)
            self._cols.append(col)
            self._vals.append(value)
            self._bits.append(int(bloom_bit))
        else:
            self._vals[slot] = self.semiring.plus(self._vals[slot], value)
            self._bits[slot] |= int(bloom_bit)

    def accumulate_scaled_row(
        self,
        scale,
        cols: np.ndarray,
        vals: np.ndarray,
        bloom_bit: int = 0,
        allowed: set[int] | None = None,
    ) -> None:
        """Accumulate ``scale ⊗ vals`` into the columns ``cols``.

        ``allowed`` optionally restricts output columns (masked SpGEMM).
        """
        scaled = self.semiring.times(scale, vals)
        # One dtype conversion for the whole row: ``tolist`` yields native
        # Python ints, so the hot loop avoids a per-element ``int(c)`` call.
        cols_int = np.asarray(cols, dtype=np.int64).tolist()
        if allowed is None:
            for c, v in zip(cols_int, scaled):
                self.accumulate(c, v, bloom_bit)
        else:
            for c, v in zip(cols_int, scaled):
                if c in allowed:
                    self.accumulate(c, v, bloom_bit)

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return len(self._cols)

    def is_empty(self) -> bool:
        return not self._cols

    def contains(self, col: int) -> bool:
        return int(col) in self._slot

    def get(self, col: int):
        slot = self._slot.get(int(col))
        if slot is None:
            return self.semiring.zero
        return self._vals[slot]

    def emit(self, sort: bool = True) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(cols, vals, bloom_bits)`` of the accumulated row."""
        cols = np.asarray(self._cols, dtype=np.int64)
        vals = self.semiring.coerce(self._vals)
        bits = np.asarray(self._bits, dtype=np.uint64)
        if sort and cols.size:
            order = np.argsort(cols, kind="stable")
            cols, vals, bits = cols[order], vals[order], bits[order]
        return cols, vals, bits
