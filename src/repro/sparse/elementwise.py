"""Element-wise operations on static sparse matrices.

The dynamic matrix (:class:`~repro.sparse.dhb.DHBMatrix`) applies updates
in place; the *static* competitors (CombBLAS-, CTF- and PETSc-style
backends) instead rebuild their matrices, which requires out-of-place
element-wise kernels:

* :func:`add_coo` — semiring ``A ⊕ A*``.
* :func:`merge_pattern` — MERGE: overwrite entries of ``A`` present in
  ``A*`` (insert those that are missing).
* :func:`mask_pattern` — MASK: delete entries of ``A`` that are non-zero in
  ``A*``.
* :func:`pattern_row_index` — row → sorted column-array view of a sparsity
  pattern, the representation used for masked SpGEMM.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix

__all__ = ["add_coo", "merge_pattern", "mask_pattern", "pattern_row_index"]


def _coo_of(mat) -> COOMatrix:
    if isinstance(mat, COOMatrix):
        return mat
    if hasattr(mat, "to_coo"):
        return mat.to_coo()
    raise TypeError(f"expected a sparse matrix, got {type(mat).__name__}")


def _check(a: COOMatrix, b: COOMatrix) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.semiring.name != b.semiring.name:
        raise ValueError(
            f"semiring mismatch: {a.semiring.name} vs {b.semiring.name}"
        )


def add_coo(a, b) -> COOMatrix:
    """Element-wise semiring addition of two sparse matrices (as COO)."""
    ca, cb = _coo_of(a), _coo_of(b)
    _check(ca, cb)
    return ca.add(cb)


def merge_pattern(a, update) -> COOMatrix:
    """MERGE(A, A*): values of ``A*`` replace those of ``A`` where present."""
    ca, cu = _coo_of(a), _coo_of(update)
    _check(ca, cu)
    cu = cu.last_write_wins()
    if cu.nnz == 0:
        return ca.sum_duplicates()
    m = np.int64(ca.shape[1])
    update_keys = cu.rows * m + cu.cols
    base_keys = ca.rows * m + ca.cols
    keep = ~np.isin(base_keys, update_keys)
    merged = COOMatrix(
        shape=ca.shape,
        rows=np.concatenate([ca.rows[keep], cu.rows]),
        cols=np.concatenate([ca.cols[keep], cu.cols]),
        values=np.concatenate([ca.values[keep], cu.values]),
        semiring=ca.semiring,
    )
    return merged.sort()


def mask_pattern(a, update) -> COOMatrix:
    """MASK(A, A*): remove entries of ``A`` where ``A*`` is non-zero."""
    ca, cu = _coo_of(a), _coo_of(update)
    _check(ca, cu)
    if cu.nnz == 0:
        return ca.sum_duplicates()
    m = np.int64(ca.shape[1])
    update_keys = np.unique(cu.rows * m + cu.cols)
    base_keys = ca.rows * m + ca.cols
    keep = ~np.isin(base_keys, update_keys)
    return COOMatrix(
        shape=ca.shape,
        rows=ca.rows[keep],
        cols=ca.cols[keep],
        values=ca.values[keep],
        semiring=ca.semiring,
    ).sum_duplicates()


def pattern_row_index(mat) -> dict[int, np.ndarray]:
    """Row → sorted array of non-zero columns for a sparsity pattern.

    This is the mask representation consumed by
    :func:`repro.sparse.spgemm_local.spgemm_local_masked` and by the local
    hash-table construction described in Section VI-B.
    """
    coo = _coo_of(mat)
    out: dict[int, np.ndarray] = {}
    if coo.nnz == 0:
        return out
    canon = coo.sum_duplicates()
    order = np.argsort(canon.rows, kind="stable")
    rows_sorted = canon.rows[order]
    cols_sorted = canon.cols[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], rows_sorted[1:] != rows_sorted[:-1]))
    )
    boundaries = np.append(boundaries, rows_sorted.size)
    for b in range(len(boundaries) - 1):
        lo, hi = boundaries[b], boundaries[b + 1]
        out[int(rows_sorted[lo])] = np.sort(cols_sorted[lo:hi])
    return out
