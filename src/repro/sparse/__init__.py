"""Local (per-rank) sparse matrix substrate.

The paper distinguishes three local storage layouts (Section IV):

* **Dynamic matrices** — the DHB data structure (adjacency arrays plus a
  per-row hash index) supporting O(1) expected insertion, deletion and value
  update.  Implemented by :class:`~repro.sparse.dhb.DHBMatrix`.
* **Static CSR** — compressed sparse row, used for sparse but not
  hypersparse operands.  Implemented by :class:`~repro.sparse.csr.CSRMatrix`.
* **Doubly-compressed CSR (DCSR)** — stores row pointers only for non-empty
  rows; used for hypersparse blocks (update matrices, SUMMA partial
  products) and for all matrices that are communicated.  Implemented by
  :class:`~repro.sparse.dcsr.DCSRMatrix`.

On top of these the package provides the local kernels needed by the
distributed algorithms: element-wise ``ADD`` / ``MERGE`` / ``MASK``
(Section IV-A), Gustavson's row-wise SpGEMM with a sparse accumulator,
its masked variant, and the 64-bit Bloom-filter matrices of Section V-B.
"""

from repro.sparse.layout import (
    RowReader,
    register_row_layout,
    registered_row_layouts,
    row_reader,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.dcsr import DCSRMatrix
from repro.sparse.dhb import DHBMatrix, DHBRow
from repro.sparse.bloom import BloomFilterMatrix, BLOOM_BITS
from repro.sparse.spa import SparseAccumulator
from repro.sparse.elementwise import (
    add_coo,
    mask_pattern,
    merge_pattern,
    pattern_row_index,
)
from repro.sparse.spgemm_local import (
    spgemm_local,
    spgemm_local_masked,
    spgemm_rowwise_spa,
)

__all__ = [
    "RowReader",
    "register_row_layout",
    "registered_row_layouts",
    "row_reader",
    "COOMatrix",
    "CSRMatrix",
    "DCSRMatrix",
    "DHBMatrix",
    "DHBRow",
    "BloomFilterMatrix",
    "BLOOM_BITS",
    "SparseAccumulator",
    "add_coo",
    "merge_pattern",
    "mask_pattern",
    "pattern_row_index",
    "spgemm_local",
    "spgemm_local_masked",
    "spgemm_rowwise_spa",
]
