"""Bloom-filter matrices for the general-update dynamic SpGEMM.

Section V-B: while computing ``C = A·B`` the algorithm maintains a matrix
``F`` holding an ℓ-bit bitfield per output non-zero (ℓ = 64 in the paper
and here).  Bit ``k mod ℓ`` of ``f_{i,j}`` is set whenever the term
``a_{i,k} · b_{k,j}`` contributes to ``c_{i,j}``.  From ``F`` the algorithm
later recovers a *superset* of the inner indices ``k`` (i.e. columns of
``A'`` / rows of ``B'``) that can influence a given set of output entries —
this is what lets the general algorithm ship only a filtered ``A^R``
instead of all of ``A'``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["BLOOM_BITS", "BloomFilterMatrix", "bits_for_inner_indices"]

#: Width of the per-entry bitfield (ℓ in the paper).
BLOOM_BITS = 64

_MASK64 = (1 << BLOOM_BITS) - 1


def bits_for_inner_indices(inner: np.ndarray) -> np.ndarray:
    """Bitfield (as uint64) with bit ``k mod ℓ`` set for each inner index."""
    inner = np.asarray(inner, dtype=np.int64)
    return (np.uint64(1) << (inner.astype(np.uint64) % np.uint64(BLOOM_BITS))).astype(
        np.uint64
    )


class BloomFilterMatrix:
    """Sparse matrix of 64-bit bitfields keyed by ``(row, col)``.

    Supports the operations the general-update algorithm needs: bitwise-OR
    accumulation (``⊕`` in Algorithm 2), masking by an output pattern,
    row-wise OR reduction, and recovery of candidate inner indices.
    """

    def __init__(self, shape: tuple[int, int]) -> None:
        n, m = shape
        if n < 0 or m < 0:
            raise ValueError(f"invalid shape {shape}")
        self.shape = (int(n), int(m))
        self._bits: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(
        cls, shape: tuple[int, int], entries: Iterable[tuple[int, int, int]]
    ) -> "BloomFilterMatrix":
        """Build from ``(row, col, bits)`` triples (bits are OR-combined)."""
        out = cls(shape)
        for i, j, bits in entries:
            out.set_bits(int(i), int(j), int(bits))
        return out

    @classmethod
    def from_arrays(
        cls, shape: tuple[int, int], rows: np.ndarray, cols: np.ndarray, bits: np.ndarray
    ) -> "BloomFilterMatrix":
        out = cls(shape)
        for i, j, b in zip(
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(bits, dtype=np.uint64),
        ):
            out.set_bits(int(i), int(j), int(b))
        return out

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self._bits)

    @property
    def nbytes(self) -> int:
        # (row, col, bits) as three 8-byte words per entry
        return 24 * len(self._bits)

    def get(self, i: int, j: int) -> int:
        """Bitfield at ``(i, j)`` (0 when absent)."""
        return self._bits.get((int(i), int(j)), 0)

    def set_bits(self, i: int, j: int, bits: int) -> None:
        """OR ``bits`` into the entry at ``(i, j)``."""
        n, m = self.shape
        if not (0 <= i < n and 0 <= j < m):
            raise IndexError(f"entry ({i}, {j}) outside matrix of shape {self.shape}")
        bits = int(bits) & _MASK64
        if bits == 0 and (i, j) not in self._bits:
            return
        key = (int(i), int(j))
        self._bits[key] = self._bits.get(key, 0) | bits

    def overwrite(self, i: int, j: int, bits: int) -> None:
        """Replace the bitfield at ``(i, j)`` (used by the MERGE step)."""
        n, m = self.shape
        if not (0 <= i < n and 0 <= j < m):
            raise IndexError(f"entry ({i}, {j}) outside matrix of shape {self.shape}")
        bits = int(bits) & _MASK64
        if bits == 0:
            self._bits.pop((int(i), int(j)), None)
        else:
            self._bits[(int(i), int(j))] = bits

    def delete(self, i: int, j: int) -> bool:
        return self._bits.pop((int(i), int(j)), None) is not None

    def items(self) -> Iterator[tuple[tuple[int, int], int]]:
        return iter(self._bits.items())

    # ------------------------------------------------------------------
    # bulk operations used by Algorithm 2
    # ------------------------------------------------------------------
    def or_with(self, other: "BloomFilterMatrix") -> "BloomFilterMatrix":
        """Element-wise bitwise OR (``F ⊕ F*``)."""
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        out = self.copy()
        for (i, j), bits in other._bits.items():
            out.set_bits(i, j, bits)
        return out

    def or_inplace(self, other: "BloomFilterMatrix") -> None:
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        for (i, j), bits in other._bits.items():
            self.set_bits(i, j, bits)

    def masked_by(self, pattern: Iterable[tuple[int, int]]) -> "BloomFilterMatrix":
        """Keep only entries whose coordinate appears in ``pattern``.

        This builds the matrix ``E`` of Algorithm 2: ``F ⊕ F*`` restricted to
        the non-zero pattern of ``C*``.
        """
        out = BloomFilterMatrix(self.shape)
        for i, j in pattern:
            bits = self._bits.get((int(i), int(j)))
            if bits:
                out._bits[(int(i), int(j))] = bits
        return out

    def reduce_rows_or(self) -> dict[int, int]:
        """Row-wise bitwise OR: ``r_i = OR_j e_{i,j}`` (sparse dict view)."""
        out: dict[int, int] = {}
        for (i, _j), bits in self._bits.items():
            out[i] = out.get(i, 0) | bits
        return out

    def candidate_inner_indices(self, i: int, j: int, k_range: int) -> np.ndarray:
        """Superset of inner indices ``k < k_range`` admitted by entry (i, j).

        Because the filter folds ``k`` modulo ℓ, the returned set is a
        superset of the truly contributing indices — the defining Bloom
        filter property (no false negatives).
        """
        bits = self.get(i, j)
        if bits == 0:
            return np.empty(0, dtype=np.int64)
        ks = np.arange(k_range, dtype=np.int64)
        admitted = (bits >> (ks % BLOOM_BITS)) & 1
        return ks[admitted.astype(bool)]

    # ------------------------------------------------------------------
    def copy(self) -> "BloomFilterMatrix":
        out = BloomFilterMatrix(self.shape)
        out._bits = dict(self._bits)
        return out

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, cols, bits)`` arrays sorted by (row, col)."""
        if not self._bits:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.uint64),
            )
        keys = sorted(self._bits)
        rows = np.array([k[0] for k in keys], dtype=np.int64)
        cols = np.array([k[1] for k in keys], dtype=np.int64)
        bits = np.array([self._bits[k] for k in keys], dtype=np.uint64)
        return rows, cols, bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilterMatrix):
            return NotImplemented
        return self.shape == other.shape and self._bits == other._bits

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BloomFilterMatrix(shape={self.shape}, nnz={self.nnz})"
