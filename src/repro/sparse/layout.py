"""Uniform row-access protocol and registry over sparse matrix layouts.

The local SpGEMM kernels need exactly two capabilities from an operand,
regardless of its storage layout:

* ``iter_rows()`` — yield ``(row, cols, vals)`` for every non-empty row
  (left operands are only ever *iterated*);
* ``row_arrays(i)`` — return ``(cols, vals)`` of row ``i``, empty arrays
  when the row is empty (right operands are accessed row-by-row).

:class:`RowReader` captures this as a structural protocol.  All built-in
layouts (:class:`~repro.sparse.coo.COOMatrix`,
:class:`~repro.sparse.csr.CSRMatrix`, :class:`~repro.sparse.dcsr.DCSRMatrix`,
:class:`~repro.sparse.dhb.DHBMatrix`) implement it natively — DCSR caches
its row-id → slot index and COO caches its converted forms, so repeated
kernel invocations on the same operand do not rebuild them.

Layouts that cannot (or should not) implement the methods themselves are
plugged in through a type registry: :func:`register_row_layout` maps a class
to an adapter factory, and :func:`row_reader` resolves an operand by walking
its MRO through the registry before falling back to the native protocol.
This replaces the ``isinstance`` dispatch chains the kernels used to carry.

The compiled kernel tier (:mod:`repro.sparse.kernels`) needs a third view:
the operand's non-empty rows as *flat arrays* it can hand to a jitted
core.  :func:`flat_rows` produces a :class:`FlatRows` record through a
second per-type registry (:func:`register_flat_rows` — CSR and DCSR expose
their storage zero-copy) with a generic fallback that concatenates
``iter_rows()`` output, preserving each row's native within-row order —
which is what keeps the compiled tier byte-identical to the Python tier
for layouts like DHB whose rows are in adjacency (insertion) order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, NamedTuple, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "FlatRows",
    "RowReader",
    "flat_rows",
    "register_flat_rows",
    "register_row_layout",
    "registered_flat_rows_layouts",
    "registered_row_layouts",
    "row_reader",
]


@runtime_checkable
class RowReader(Protocol):
    """Row-wise view of a sparse operand, independent of storage layout."""

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, cols, vals)`` for every non-empty row."""
        ...

    def row_arrays(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of row ``i`` (empty arrays for an empty row)."""
        ...


#: type -> adapter factory returning a :class:`RowReader` for an instance.
_ROW_LAYOUT_REGISTRY: dict[type, Callable[[Any], RowReader]] = {}


def register_row_layout(
    cls: type, adapter: Callable[[Any], RowReader] | None = None
) -> None:
    """Register ``cls`` as a row-readable layout.

    ``adapter`` turns an instance into a :class:`RowReader`; omit it for
    classes that implement the protocol themselves (identity adapter).
    """
    _ROW_LAYOUT_REGISTRY[cls] = adapter if adapter is not None else (lambda m: m)


def registered_row_layouts() -> tuple[type, ...]:
    """The registered layout classes (mainly for introspection/tests)."""
    return tuple(_ROW_LAYOUT_REGISTRY)


class FlatRows(NamedTuple):
    """An operand's rows flattened into kernel-ready arrays.

    ``row_ids[s]`` is the matrix row of segment ``s``; its columns and
    values occupy ``cols[row_ptr[s]:row_ptr[s + 1]]`` /
    ``vals[row_ptr[s]:row_ptr[s + 1]]`` in the row's native order (sorted
    for CSR/DCSR, adjacency order for DHB).  Segments may be empty (CSR
    exposes every row zero-copy); consumers must treat the arrays as
    read-only views of the operand's storage.
    """

    row_ids: np.ndarray
    row_ptr: np.ndarray
    cols: np.ndarray
    vals: np.ndarray


#: type -> extractor returning a :class:`FlatRows` view of an instance.
_FLAT_ROWS_REGISTRY: dict[type, Callable[[Any], FlatRows]] = {}


def register_flat_rows(cls: type, extractor: Callable[[Any], FlatRows]) -> None:
    """Register a zero-copy (or cheap) flat-row extractor for ``cls``."""
    _FLAT_ROWS_REGISTRY[cls] = extractor


def registered_flat_rows_layouts() -> tuple[type, ...]:
    """The layout classes with a registered flat-row extractor."""
    return tuple(_FLAT_ROWS_REGISTRY)


def flat_rows(mat: Any) -> FlatRows:
    """Resolve a :class:`FlatRows` view of ``mat``.

    Resolution order mirrors :func:`row_reader`: exact type then MRO walk
    through the extractor registry, then a generic fallback that
    concatenates the operand's ``iter_rows()`` output (one copy, native
    within-row order preserved).
    """
    for base in type(mat).__mro__:
        extractor = _FLAT_ROWS_REGISTRY.get(base)
        if extractor is not None:
            return extractor(mat)
    reader = row_reader(mat)
    ids: list[int] = []
    counts: list[int] = []
    col_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray] = []
    for i, cols, vals in reader.iter_rows():
        ids.append(int(i))
        counts.append(int(cols.size))
        col_chunks.append(np.asarray(cols, dtype=np.int64))
        val_chunks.append(np.asarray(vals))
    if not ids:
        return FlatRows(
            row_ids=np.empty(0, dtype=np.int64),
            row_ptr=np.zeros(1, dtype=np.int64),
            cols=np.empty(0, dtype=np.int64),
            vals=np.empty(0, dtype=np.float64),
        )
    row_ptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    return FlatRows(
        row_ids=np.asarray(ids, dtype=np.int64),
        row_ptr=row_ptr,
        cols=np.ascontiguousarray(np.concatenate(col_chunks)),
        vals=np.ascontiguousarray(np.concatenate(val_chunks)),
    )


def row_reader(mat: Any) -> RowReader:
    """Resolve a :class:`RowReader` for ``mat``.

    Resolution order: exact type in the registry, then base classes in MRO
    order, then the native method protocol.  Raises :class:`TypeError` for
    operands that provide none of these.
    """
    for base in type(mat).__mro__:
        adapter = _ROW_LAYOUT_REGISTRY.get(base)
        if adapter is not None:
            return adapter(mat)
    if isinstance(mat, RowReader):
        return mat
    raise TypeError(
        f"unsupported operand layout {type(mat).__name__}: expected a "
        "registered layout or an object with iter_rows()/row_arrays()"
    )
