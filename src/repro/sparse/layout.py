"""Uniform row-access protocol and registry over sparse matrix layouts.

The local SpGEMM kernels need exactly two capabilities from an operand,
regardless of its storage layout:

* ``iter_rows()`` — yield ``(row, cols, vals)`` for every non-empty row
  (left operands are only ever *iterated*);
* ``row_arrays(i)`` — return ``(cols, vals)`` of row ``i``, empty arrays
  when the row is empty (right operands are accessed row-by-row).

:class:`RowReader` captures this as a structural protocol.  All built-in
layouts (:class:`~repro.sparse.coo.COOMatrix`,
:class:`~repro.sparse.csr.CSRMatrix`, :class:`~repro.sparse.dcsr.DCSRMatrix`,
:class:`~repro.sparse.dhb.DHBMatrix`) implement it natively — DCSR caches
its row-id → slot index and COO caches its converted forms, so repeated
kernel invocations on the same operand do not rebuild them.

Layouts that cannot (or should not) implement the methods themselves are
plugged in through a type registry: :func:`register_row_layout` maps a class
to an adapter factory, and :func:`row_reader` resolves an operand by walking
its MRO through the registry before falling back to the native protocol.
This replaces the ``isinstance`` dispatch chains the kernels used to carry.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "RowReader",
    "register_row_layout",
    "registered_row_layouts",
    "row_reader",
]


@runtime_checkable
class RowReader(Protocol):
    """Row-wise view of a sparse operand, independent of storage layout."""

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, cols, vals)`` for every non-empty row."""
        ...

    def row_arrays(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of row ``i`` (empty arrays for an empty row)."""
        ...


#: type -> adapter factory returning a :class:`RowReader` for an instance.
_ROW_LAYOUT_REGISTRY: dict[type, Callable[[Any], RowReader]] = {}


def register_row_layout(
    cls: type, adapter: Callable[[Any], RowReader] | None = None
) -> None:
    """Register ``cls`` as a row-readable layout.

    ``adapter`` turns an instance into a :class:`RowReader`; omit it for
    classes that implement the protocol themselves (identity adapter).
    """
    _ROW_LAYOUT_REGISTRY[cls] = adapter if adapter is not None else (lambda m: m)


def registered_row_layouts() -> tuple[type, ...]:
    """The registered layout classes (mainly for introspection/tests)."""
    return tuple(_ROW_LAYOUT_REGISTRY)


def row_reader(mat: Any) -> RowReader:
    """Resolve a :class:`RowReader` for ``mat``.

    Resolution order: exact type in the registry, then base classes in MRO
    order, then the native method protocol.  Raises :class:`TypeError` for
    operands that provide none of these.
    """
    for base in type(mat).__mro__:
        adapter = _ROW_LAYOUT_REGISTRY.get(base)
        if adapter is not None:
            return adapter(mat)
    if isinstance(mat, RowReader):
        return mat
    raise TypeError(
        f"unsupported operand layout {type(mat).__name__}: expected a "
        "registered layout or an object with iter_rows()/row_arrays()"
    )
