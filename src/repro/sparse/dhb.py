"""DHB — dynamic hashed blocks (the paper's dynamic matrix layout).

The paper stores dynamic matrices with the DHB data structure of
van der Grinten, Predari and Willich: per-row *adjacency arrays* holding
the column indices and values, plus a per-row *hash table* mapping a column
index to its slot in the adjacency array.  This yields O(1) expected time
for discovering whether ``(i, j)`` is present and for inserting, deleting
or overwriting an entry — which is what makes purely local application of
update batches cheap.

:class:`DHBRow` mirrors that design literally: growable ``cols`` / ``vals``
arrays (the adjacency array) plus a Python dict as the hash index.
:class:`DHBMatrix` owns one row object per non-empty row and implements the
batch update operations of Section IV-A: semiring ``ADD``, ``MERGE``
(overwrite) and ``MASK`` (delete).
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.perf.recorder import perf_count, perf_phase
from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.dcsr import DCSRMatrix
from repro.sparse.kernels.dhb_insert import probe_existing_rows
from repro.sparse.kernels.tier import count_tier, resolve_kernel_tier
from repro.sparse.layout import register_row_layout

__all__ = [
    "AUTO_SCATTERED_FACTOR",
    "DHB_INSERT_STRATEGY_ENV_VAR",
    "DHBRow",
    "DHBMatrix",
]

_INITIAL_CAPACITY = 4

#: ``"auto"`` dispatch threshold of :meth:`DHBMatrix.insert_batch`: a batch
#: with fewer than ``AUTO_SCATTERED_FACTOR`` entries per touched row on
#: average is considered *scattered* and takes the per-element hash-probe
#: loop; denser batches take the vectorised per-row path.  The value 8 was
#: picked from the ``bench_dhb_insert`` crossover on the paper-regime
#: batch mix.
AUTO_SCATTERED_FACTOR = 8

#: Environment variable overriding the ``"auto"`` insert strategy of
#: :meth:`DHBMatrix.insert_batch` globally: set to ``per_element`` or
#: ``vectorized`` to force that path wherever callers left the default
#: ``strategy="auto"`` (explicit non-auto ``strategy=`` arguments win).
#: Unset or empty keeps the heuristic dispatch.
DHB_INSERT_STRATEGY_ENV_VAR = "REPRO_DHB_INSERT_STRATEGY"


def _env_insert_strategy() -> str | None:
    """The validated ``REPRO_DHB_INSERT_STRATEGY`` override, if any."""
    raw = os.environ.get(DHB_INSERT_STRATEGY_ENV_VAR, "").strip().lower()
    if raw in ("", "auto"):
        return None
    if raw in ("per_element", "vectorized"):
        return raw
    raise ValueError(
        f"{DHB_INSERT_STRATEGY_ENV_VAR}={raw!r} is not a recognised insert "
        "strategy (use 'auto', 'per_element' or 'vectorized')"
    )


class DHBRow:
    """One row of a DHB matrix: adjacency array + hash index."""

    __slots__ = ("cols", "vals", "size", "index", "grow_count")

    def __init__(self, dtype: np.dtype, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(int(capacity), 1)
        self.cols = np.empty(capacity, dtype=np.int64)
        self.vals = np.empty(capacity, dtype=dtype)
        self.size = 0
        #: hash index col -> slot; ``None`` means "not built yet" (bulk
        #: loads defer index construction until the first point access)
        self.index: dict[int, int] | None = {}
        #: number of adjacency-array reallocations (memory-management work)
        self.grow_count = 0

    @classmethod
    def from_arrays(cls, cols: np.ndarray, vals: np.ndarray) -> "DHBRow":
        """Bulk-load a row from (deduplicated) column/value arrays.

        The hash index is built lazily on first point access, mirroring how
        a native DHB bulk loader avoids per-entry hashing during initial
        construction.
        """
        row = cls.__new__(cls)
        row.cols = np.ascontiguousarray(cols, dtype=np.int64)
        row.vals = np.ascontiguousarray(vals)
        row.size = int(cols.size)
        row.index = None
        row.grow_count = 0
        return row

    def ensure_index(self) -> dict[int, int]:
        """Build (if needed) and return the column -> slot hash index."""
        if self.index is None:
            self.index = dict(
                zip(self.cols[: self.size].tolist(), range(self.size))
            )
        return self.index

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def capacity(self) -> int:
        """Allocated adjacency-array capacity (entries)."""
        return int(self.cols.size)

    def reserve(self, extra: int) -> None:
        """Ensure capacity for ``extra`` additional entries."""
        needed = self.size + max(int(extra), 0)
        if needed <= self.cols.size:
            return
        new_cap = max(needed, 2 * self.cols.size)
        new_cols = np.empty(new_cap, dtype=np.int64)
        new_vals = np.empty(new_cap, dtype=self.vals.dtype)
        new_cols[: self.size] = self.cols[: self.size]
        new_vals[: self.size] = self.vals[: self.size]
        self.cols = new_cols
        self.vals = new_vals
        self.grow_count += 1

    # ------------------------------------------------------------------
    def get_slot(self, col: int) -> int | None:
        """Adjacency-array slot of ``col`` (``None`` when absent)."""
        return self.ensure_index().get(int(col))

    def get(self, col: int, default: float | None = None):
        """Value at ``col``, or ``default`` when absent."""
        slot = self.ensure_index().get(int(col))
        if slot is None:
            return default
        return self.vals[slot]

    def contains(self, col: int) -> bool:
        """``True`` when ``col`` is a structural non-zero of the row."""
        return int(col) in self.ensure_index()

    def insert_or_assign(self, col: int, value, combine=None) -> bool:
        """Insert ``(col, value)`` or update the existing entry.

        ``combine(old, new)`` is applied when the column already exists
        (``None`` means overwrite).  Returns ``True`` when a new structural
        non-zero was created.
        """
        col = int(col)
        index = self.ensure_index()
        slot = index.get(col)
        if slot is not None:
            if combine is None:
                self.vals[slot] = value
            else:
                self.vals[slot] = combine(self.vals[slot], value)
            return False
        self.reserve(1)
        slot = self.size
        self.cols[slot] = col
        self.vals[slot] = value
        index[col] = slot
        self.size += 1
        return True

    def delete(self, col: int) -> bool:
        """Delete ``col`` (swap-with-last); returns ``True`` if it existed."""
        col = int(col)
        index = self.ensure_index()
        slot = index.pop(col, None)
        if slot is None:
            return False
        last = self.size - 1
        if slot != last:
            moved_col = int(self.cols[last])
            self.cols[slot] = moved_col
            self.vals[slot] = self.vals[last]
            index[moved_col] = slot
        self.size = last
        return True

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Views of the live portion of the adjacency array."""
        return self.cols[: self.size], self.vals[: self.size]

    def iter_entries(self) -> Iterator[tuple[int, float]]:
        """Yield ``(col, value)`` pairs in adjacency-array order."""
        for k in range(self.size):
            yield int(self.cols[k]), self.vals[k]

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the row in bytes."""
        # live data + hash index footprint (8 bytes key + 8 bytes slot)
        return int(self.size * (8 + self.vals.itemsize) + 16 * self.size)


class DHBMatrix:
    """Dynamic sparse matrix with O(1) expected per-entry updates."""

    def __init__(self, shape: tuple[int, int], semiring: Semiring = PLUS_TIMES) -> None:
        n, m = shape
        if n < 0 or m < 0:
            raise ValueError(f"invalid shape {shape}")
        self.shape = (int(n), int(m))
        self.semiring = semiring
        self._rows: dict[int, DHBRow] = {}
        self._nnz = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, combine_duplicates: bool = True) -> "DHBMatrix":
        """Build from a COO matrix (duplicates ⊕-combined unless disabled)."""
        mat = cls(coo.shape, coo.semiring)
        combine = coo.semiring.plus if combine_duplicates else None
        mat.insert_batch(coo.rows, coo.cols, coo.values, combine=combine)
        return mat

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "DHBMatrix":
        """Build from a CSR matrix (already deduplicated)."""
        return cls.from_coo(csr.to_coo(), combine_duplicates=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray, semiring: Semiring = PLUS_TIMES) -> "DHBMatrix":
        """Build from a dense array, skipping semiring zeros."""
        return cls.from_coo(COOMatrix.from_dense(dense, semiring))

    @classmethod
    def empty(cls, shape: tuple[int, int], semiring: Semiring = PLUS_TIMES) -> "DHBMatrix":
        """An empty matrix of the given shape."""
        return cls(shape, semiring)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of structural non-zeros."""
        return self._nnz

    @property
    def n_nonzero_rows(self) -> int:
        """Number of rows holding at least one entry."""
        return len(self._rows)

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint in bytes (rows + row table)."""
        return sum(row.nbytes for row in self._rows.values()) + 32 * len(self._rows)

    @property
    def grow_count(self) -> int:
        """Total adjacency-array reallocations (memory-management work)."""
        return sum(row.grow_count for row in self._rows.values())

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def _check_bounds(self, i: int, j: int) -> None:
        n, m = self.shape
        if not (0 <= i < n and 0 <= j < m):
            raise IndexError(f"entry ({i}, {j}) outside matrix of shape {self.shape}")

    def get(self, i: int, j: int, default: float | None = None):
        """Value at ``(i, j)``; the semiring zero (or ``default``) if absent."""
        self._check_bounds(i, j)
        row = self._rows.get(int(i))
        if row is None:
            return self.semiring.zero if default is None else default
        value = row.get(j)
        if value is None:
            return self.semiring.zero if default is None else default
        return value

    def contains(self, i: int, j: int) -> bool:
        """``True`` when ``(i, j)`` is a structural non-zero."""
        row = self._rows.get(int(i))
        return row is not None and row.contains(j)

    def insert(self, i: int, j: int, value, combine=None) -> bool:
        """Insert or update a single entry; returns ``True`` if new."""
        self._check_bounds(i, j)
        row = self._rows.get(int(i))
        if row is None:
            row = DHBRow(self.semiring.dtype)
            self._rows[int(i)] = row
        created = row.insert_or_assign(j, value, combine=combine)
        if created:
            self._nnz += 1
        return created

    def delete(self, i: int, j: int) -> bool:
        """Delete a single entry; returns ``True`` if it existed."""
        self._check_bounds(i, j)
        row = self._rows.get(int(i))
        if row is None:
            return False
        deleted = row.delete(j)
        if deleted:
            self._nnz -= 1
            if len(row) == 0:
                del self._rows[int(i)]
        return deleted

    # ------------------------------------------------------------------
    # batch operations (Section IV-A)
    # ------------------------------------------------------------------
    def reserve_batch(self, rows: np.ndarray) -> int:
        """Pre-grow adjacency arrays for a batch landing on ``rows``.

        Returns the number of reallocations performed; the distributed
        insertion path charges this step to the *memory management*
        category of the Fig. 7 breakdown.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return 0
        unique, counts = np.unique(rows, return_counts=True)
        grows = 0
        for i, cnt in zip(unique, counts):
            row = self._rows.get(int(i))
            if row is None:
                row = DHBRow(self.semiring.dtype, capacity=max(int(cnt), _INITIAL_CAPACITY))
                self._rows[int(i)] = row
            else:
                before = row.grow_count
                row.reserve(int(cnt))
                grows += row.grow_count - before
        return grows

    def insert_batch(
        self, rows, cols, values, combine=None, *, strategy="auto", kernel_tier=None
    ) -> int:
        """Insert a batch of triplets; returns the number of new non-zeros.

        ``combine`` handles collisions with existing entries (and between
        duplicate triplets inside the batch): ``None`` overwrites (last
        write wins), a callable combines, e.g. the semiring's ``plus`` for
        additive updates.

        ``strategy`` selects the application path:

        * ``"auto"`` (default) — empty matrices are bulk-built; scattered
          batches landing mostly on *existing* rows use the per-element
          hash-probe loop (cheapest when each touched row receives one or
          two entries); everything else takes the vectorised per-row path.
        * ``"vectorized"`` — force the batched path: duplicates are merged
          with segmented ``reduceat``, batch shares landing on absent rows
          are bulk-loaded without per-entry hashing, shares landing on
          existing rows are applied with vectorised adjacency-array appends
          (the Python analogue of the paper's OpenMP-parallel bulk
          insertion into the DHB rows).
        * ``"per_element"`` — force the per-element loop.  Kept as the
          measured baseline the benchmark suite compares the batched path
          against.

        With ``strategy="auto"`` the :data:`DHB_INSERT_STRATEGY_ENV_VAR`
        environment variable, when set, overrides the heuristic dispatch
        (scattered-batch detection via :data:`AUTO_SCATTERED_FACTOR`).

        ``kernel_tier`` overrides ``REPRO_KERNEL_TIER`` per call for the
        vectorised path's hit/miss probe (see
        :mod:`repro.sparse.kernels`); the per-element and bulk-build paths
        are pure Python in every tier.
        """
        if strategy not in ("auto", "vectorized", "per_element"):
            raise ValueError(
                f"unknown insert strategy {strategy!r} "
                "(use 'auto', 'vectorized' or 'per_element')"
            )
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = self.semiring.coerce(values)
        if not (rows.size == cols.size == values.size):
            raise ValueError("rows, cols and values must have identical lengths")
        if rows.size == 0:
            return 0
        n, m = self.shape
        if rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= m:
            raise IndexError(f"batch entry outside matrix of shape {self.shape}")
        with perf_phase("dhb_insert"):
            perf_count("dhb.insert.entries", rows.size)
            created = self._insert_batch_dispatch(
                rows, cols, values, combine, strategy, kernel_tier
            )
            perf_count("dhb.insert.created", created)
            return created

    def _insert_batch_dispatch(
        self, rows, cols, values, combine, strategy, kernel_tier=None
    ) -> int:
        """Pick and run the insertion path for a validated batch.

        The per-element loop consumes the batch in its original order (the
        order last-write-wins semantics are defined over), so no sorting
        happens before dispatch; the vectorised path owns its one lexsort.
        """
        if strategy == "auto":
            override = _env_insert_strategy()
            if override is not None:
                strategy = override
        if strategy == "per_element":
            perf_count("dhb.insert.path_per_element")
            return self._insert_scattered(rows, cols, values, combine)
        if strategy == "vectorized":
            perf_count("dhb.insert.path_vectorized")
            return self._insert_batch_vectorized(
                rows, cols, values, combine, kernel_tier=kernel_tier
            )
        # auto: one lexsort serves the heuristic and both dispatch targets
        if self._nnz == 0:
            perf_count("dhb.insert.path_bulk_build")
            return self._bulk_build(rows, cols, values, combine)
        order = np.lexsort((cols, rows))
        rows_s, cols_s, vals_s = rows[order], cols[order], values[order]
        n_touched = 1 + int(np.count_nonzero(rows_s[1:] != rows_s[:-1]))
        if rows_s.size < AUTO_SCATTERED_FACTOR * n_touched:
            # Scattered batch (one or two entries per touched row): the
            # per-element hash-probe loop has the lowest constant factor.
            # Row-major iteration keeps each row's dict hot (~25% faster
            # than batch order), and the stable lexsort keeps duplicate
            # (row, col) entries in batch order, so last-write-wins and
            # sequential combine semantics are preserved.
            perf_count("dhb.insert.path_per_element")
            return self._insert_scattered(rows_s, cols_s, vals_s, combine)
        perf_count("dhb.insert.path_vectorized")
        return self._insert_batch_sorted(
            rows_s, cols_s, vals_s, combine, kernel_tier=kernel_tier
        )

    def _insert_batch_vectorized(self, rows, cols, values, combine, *, kernel_tier=None) -> int:
        """Whole-batch vectorised insertion (sorts, then applies).

        One stable ``(row, col)`` lexsort orders the entire batch, one
        global segmented merge (``reduceat`` for the semiring ``plus``,
        boolean last-occurrence mask for overwrite) removes in-batch
        duplicates, and each touched row's share is then applied in one
        step: absent rows are materialised with :meth:`DHBRow.from_arrays`
        (no per-entry hashing), existing rows get a hit/miss split against
        their hash index followed by vectorised adjacency-array appends.
        """
        order = np.lexsort((cols, rows))
        return self._insert_batch_sorted(
            rows[order], cols[order], values[order], combine, kernel_tier=kernel_tier
        )

    def _insert_batch_sorted(
        self, rows_s, cols_s, vals_s, combine, *, kernel_tier=None
    ) -> int:
        """The vectorised application over ``(row, col)``-lexsorted arrays."""
        same = (rows_s[1:] == rows_s[:-1]) & (cols_s[1:] == cols_s[:-1])
        if not np.any(same):
            rows_u, cols_u, vals_u = rows_s, cols_s, vals_s
        elif combine is None:
            # last write wins; lexsort is stable, so the last occurrence of
            # each (row, col) in sorted order is the last in batch order
            keep = np.concatenate((~same, [True]))
            rows_u, cols_u, vals_u = rows_s[keep], cols_s[keep], vals_s[keep]
        elif combine == self.semiring.plus:
            starts = np.flatnonzero(np.concatenate(([True], ~same)))
            rows_u, cols_u = rows_s[starts], cols_s[starts]
            vals_u = self.semiring.add_reduceat(vals_s, starts)
        else:
            # An arbitrary combiner cannot be pre-folded over duplicate
            # groups: combining the group first and the existing entry
            # second computes combine(existing, fold(v1..vk)), whereas the
            # per-element baseline computes fold(combine(existing, v1)..vk)
            # — these differ for non-associative combiners.  The stable
            # lexsort keeps each group's batch order and distinct keys are
            # independent, so the per-element loop over the sorted batch
            # reproduces the baseline exactly.
            perf_count("dhb.insert.path_combine_fallback")
            return self._insert_scattered(rows_s, cols_s, vals_s, combine)
        row_starts = np.flatnonzero(
            np.concatenate(([True], rows_u[1:] != rows_u[:-1]))
        )
        row_ends = np.append(row_starts[1:], rows_u.size)
        tier = resolve_kernel_tier(kernel_tier)
        count_tier("dhb_insert", tier)
        if tier == "compiled":
            return self._apply_sorted_compiled(
                rows_u, cols_u, vals_u, row_starts, row_ends, combine
            )
        created = 0
        get_row = self._rows.get
        for i, lo, hi in zip(
            rows_u[row_starts].tolist(), row_starts.tolist(), row_ends.tolist()
        ):
            row = get_row(i)
            if row is None:
                self._rows[i] = DHBRow.from_arrays(cols_u[lo:hi], vals_u[lo:hi])
                created += hi - lo
            else:
                created += _merge_into_row(row, cols_u[lo:hi], vals_u[lo:hi], combine)
        self._nnz += created
        return created

    def _apply_sorted_compiled(
        self, rows_u, cols_u, vals_u, row_starts, row_ends, combine
    ) -> int:
        """Compiled-tier application of a deduplicated, sorted batch.

        Absent rows are bulk-loaded exactly as in the Python tier; for the
        touched *existing* rows, one jitted call
        (:func:`repro.sparse.kernels.dhb_insert.probe_existing_rows`)
        replaces the per-element dict probes of :func:`_merge_into_row`,
        and the value application reuses the Python tier's vectorised
        NumPy expressions — outputs, adjacency orders and created-counts
        are byte-identical between tiers.
        """
        created = 0
        get_row = self._rows.get
        touched: list[DHBRow] = []
        seg_bounds: list[tuple[int, int]] = []
        ex_sizes: list[int] = []
        ex_chunks: list[np.ndarray] = []
        for i, lo, hi in zip(
            rows_u[row_starts].tolist(), row_starts.tolist(), row_ends.tolist()
        ):
            row = get_row(i)
            if row is None:
                self._rows[i] = DHBRow.from_arrays(cols_u[lo:hi], vals_u[lo:hi])
                created += hi - lo
            else:
                touched.append(row)
                seg_bounds.append((lo, hi))
                ex_sizes.append(row.size)
                ex_chunks.append(row.cols[: row.size])
        if not touched:
            self._nnz += created
            return created
        ex_ptr = np.zeros(len(touched) + 1, dtype=np.int64)
        np.cumsum(ex_sizes, out=ex_ptr[1:])
        ex_cols = np.ascontiguousarray(np.concatenate(ex_chunks))
        new_ptr = np.zeros(len(touched) + 1, dtype=np.int64)
        np.cumsum([hi - lo for lo, hi in seg_bounds], out=new_ptr[1:])
        new_cols = np.ascontiguousarray(
            np.concatenate([cols_u[lo:hi] for lo, hi in seg_bounds])
        )
        slots = probe_existing_rows(ex_cols, ex_ptr, new_cols, new_ptr)
        for r, (row, (lo, hi)) in enumerate(zip(touched, seg_bounds)):
            seg_slots = slots[new_ptr[r] : new_ptr[r + 1]]
            cols_seg = cols_u[lo:hi]
            vals_seg = vals_u[lo:hi]
            hit = seg_slots >= 0
            if np.any(hit):
                hs = seg_slots[hit]
                hv = vals_seg[hit]
                if combine is None:
                    row.vals[hs] = hv
                else:
                    row.vals[hs] = combine(row.vals[hs], hv)
            k = int(np.count_nonzero(~hit))
            if k:
                if k == cols_seg.size:
                    miss_cols, miss_vals = cols_seg, vals_seg
                else:
                    miss_cols, miss_vals = cols_seg[~hit], vals_seg[~hit]
                row.reserve(k)
                start = row.size
                row.cols[start : start + k] = miss_cols
                row.vals[start : start + k] = miss_vals
                if row.index is not None:
                    row.index.update(
                        zip(miss_cols.tolist(), range(start, start + k))
                    )
                row.size += k
                created += k
        self._nnz += created
        return created

    def _bulk_build(self, rows, cols, values, combine) -> int:
        """Vectorised construction of an empty matrix from a large batch.

        Groups the batch by row with one sort, de-duplicates columns within
        each row, and materialises the adjacency arrays and hash indexes
        row-by-row — the Python analogue of the bulk-loading path a real
        DHB implementation uses when a matrix is constructed from scratch.
        """
        coo = COOMatrix(self.shape, rows, cols, values, self.semiring)
        if combine is None:
            canon = coo.last_write_wins()
        else:
            # the semiring's ⊕ is the only vectorisable combiner; other
            # callables fall back to the scattered path
            if combine is not self.semiring.plus and combine != self.semiring.plus:
                return self._insert_scattered(rows, cols, values, combine)
            canon = coo.sum_duplicates()
        csr = CSRMatrix.from_coo(canon, dedup=False)
        created = 0
        indptr = csr.indptr
        indices = csr.indices
        values = csr.values
        for i in np.flatnonzero(np.diff(indptr) > 0):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            self._rows[int(i)] = DHBRow.from_arrays(indices[lo:hi], values[lo:hi])
            created += hi - lo
        self._nnz += created
        return created

    def _insert_scattered(self, rows, cols, values, combine) -> int:
        """Per-entry application of a scattered batch (pure-Python loop)."""
        created = 0
        dtype = self.semiring.dtype
        rows_l = rows.tolist()
        cols_l = cols.tolist()
        vals_l = values.tolist()
        get_row = self._rows.get
        for i, j, v in zip(rows_l, cols_l, vals_l):
            row = get_row(i)
            if row is None:
                row = DHBRow(dtype)
                self._rows[i] = row
            index = row.index
            if index is None:
                index = row.ensure_index()
            slot = index.get(j)
            if slot is None:
                if row.size >= row.cols.size:
                    row.reserve(1)
                slot = row.size
                row.cols[slot] = j
                row.vals[slot] = v
                index[j] = slot
                row.size += 1
                created += 1
            elif combine is None:
                row.vals[slot] = v
            else:
                row.vals[slot] = combine(row.vals[slot], v)
        self._nnz += created
        return created

    def add_update(self, update: "COOMatrix | DCSRMatrix | CSRMatrix") -> int:
        """``A ← A ⊕ A*`` — algebraic application of an update matrix."""
        coo = _as_coo(update)
        self._check_update(coo)
        return self.insert_batch(
            coo.rows, coo.cols, coo.values, combine=self.semiring.plus
        )

    def merge_update(self, update: "COOMatrix | DCSRMatrix | CSRMatrix") -> int:
        """MERGE(A, A*): overwrite entries of ``A`` present in ``A*``."""
        coo = _as_coo(update)
        self._check_update(coo)
        return self.insert_batch(coo.rows, coo.cols, coo.values, combine=None)

    def mask_update(self, update: "COOMatrix | DCSRMatrix | CSRMatrix") -> int:
        """MASK(A, A*): delete every entry of ``A`` that is non-zero in ``A*``.

        Returns the number of deleted entries (entries of ``A*`` absent from
        ``A`` are ignored, matching the paper's deletion semantics).
        """
        coo = _as_coo(update)
        self._check_update(coo)
        deleted = 0
        for i, j in zip(coo.rows, coo.cols):
            if self.delete(int(i), int(j)):
                deleted += 1
        return deleted

    def _check_update(self, coo: COOMatrix) -> None:
        if coo.shape != self.shape:
            raise ValueError(
                f"update shape {coo.shape} does not match matrix shape {self.shape}"
            )
        if coo.semiring.name != self.semiring.name:
            raise ValueError(
                "update semiring "
                f"{coo.semiring.name!r} does not match matrix semiring "
                f"{self.semiring.name!r}"
            )

    # ------------------------------------------------------------------
    # iteration / conversion
    # ------------------------------------------------------------------
    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, cols, vals)`` for non-empty rows in ascending order."""
        for i in sorted(self._rows):
            cols, vals = self._rows[i].as_arrays()
            yield i, cols, vals

    def row_arrays(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of row ``i`` (empty arrays when the row is empty)."""
        row = self._rows.get(int(i))
        if row is None:
            return (
                np.empty(0, dtype=np.int64),
                self.semiring.zeros(0),
            )
        return row.as_arrays()

    def to_coo(self) -> COOMatrix:
        """Sorted COO copy of the matrix."""
        if self._nnz == 0:
            return COOMatrix.empty(self.shape, self.semiring)
        pieces_r, pieces_c, pieces_v = [], [], []
        for i, cols, vals in self.iter_rows():
            pieces_r.append(np.full(cols.size, i, dtype=np.int64))
            pieces_c.append(cols.copy())
            pieces_v.append(vals.copy())
        return COOMatrix(
            shape=self.shape,
            rows=np.concatenate(pieces_r),
            cols=np.concatenate(pieces_c),
            values=np.concatenate(pieces_v),
            semiring=self.semiring,
        ).sort()

    def to_csr(self) -> CSRMatrix:
        """CSR copy of the matrix."""
        return CSRMatrix.from_coo(self.to_coo(), dedup=False)

    def to_dcsr(self) -> DCSRMatrix:
        """Doubly-compressed (hypersparse) copy of the matrix."""
        return DCSRMatrix.from_coo(self.to_coo(), dedup=False)

    def to_dense(self) -> np.ndarray:
        """Dense copy (semiring zeros at structural zeros)."""
        return self.to_coo().to_dense()

    def copy(self) -> "DHBMatrix":
        """Deep copy of the matrix."""
        return DHBMatrix.from_coo(self.to_coo(), combine_duplicates=False)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DHBMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"semiring={self.semiring.name!r})"
        )


def _merge_into_row(row: DHBRow, cols: np.ndarray, vals: np.ndarray, combine) -> int:
    """Apply one row's deduplicated batch share to an *existing* row.

    ``cols`` must be unique within the share (the whole-batch dedup of
    :meth:`DHBMatrix._insert_batch_vectorized` guarantees this).  Existing
    entries are combined slot-wise; new entries are appended with one
    vectorised adjacency-array write.  Returns the number of new entries.
    """
    index = row.ensure_index()
    get_slot = index.get
    hit_slots: list[int] = []
    hit_idx: list[int] = []
    miss_idx: list[int] = []
    for t, c in enumerate(cols.tolist()):
        slot = get_slot(c)
        if slot is None:
            miss_idx.append(t)
        else:
            hit_slots.append(slot)
            hit_idx.append(t)
    if hit_slots:
        hs = np.asarray(hit_slots, dtype=np.int64)
        hv = vals[np.asarray(hit_idx, dtype=np.int64)]
        if combine is None:
            row.vals[hs] = hv
        else:
            row.vals[hs] = combine(row.vals[hs], hv)
    k = len(miss_idx)
    if k:
        if k == cols.size:
            miss_cols, miss_vals = cols, vals
        else:
            mi = np.asarray(miss_idx, dtype=np.int64)
            miss_cols, miss_vals = cols[mi], vals[mi]
        row.reserve(k)
        start = row.size
        row.cols[start : start + k] = miss_cols
        row.vals[start : start + k] = miss_vals
        index.update(zip(miss_cols.tolist(), range(start, start + k)))
        row.size += k
    return k


def _as_coo(mat) -> COOMatrix:
    if isinstance(mat, COOMatrix):
        return mat
    if hasattr(mat, "to_coo"):
        return mat.to_coo()
    raise TypeError(f"cannot interpret {type(mat).__name__} as an update matrix")


register_row_layout(DHBMatrix)
