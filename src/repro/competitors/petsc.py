"""PETSc-style backend: 1D row distribution, per-element assembly.

PETSc's ``MatMPIAIJ`` distributes whole block-rows to ranks (the paper runs
PETSc with one rank per node), stores CSR locally and mutates matrices via
``MatSetValues`` + ``MatAssemblyBegin/End``:

* each value is inserted individually (stash / hash per rank, a per-element
  cost rather than a vectorised batch cost),
* values destined for remote rows are accumulated in a *stash* and shipped
  during assembly,
* assembly then rebuilds the compressed rows that received new entries —
  and inserting into rows without preallocated space forces reallocation of
  the whole local matrix, which is the behaviour that dominates PETSc's
  insertion times in the paper (≥ 460× slower than the dynamic structure).

Deletions are not supported (``supports_deletions = False``), matching the
paper's note, and only the ``(+, ·)`` semiring is available.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse import COOMatrix, CSRMatrix
from repro.competitors.base import Backend, TupleArrays, UnsupportedOperation

__all__ = ["PETScBackend"]


class PETScBackend(Backend):
    """1D row-distributed CSR matrix with MatSetValues-style updates."""

    name = "PETSc 3.17.1"
    supports_deletions = False
    supports_semirings = False

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        semiring: Semiring = PLUS_TIMES,
        *,
        n_ranks: int | None = None,
    ) -> None:
        if semiring.name != "plus_times":
            raise UnsupportedOperation(
                "PETSc supports only the (+, *) semiring"
            )
        super().__init__(comm, grid, shape, semiring)
        # The paper runs PETSc with one MPI rank per node (24 threads); by
        # default use p / ranks_per_node ranks of the shared communicator.
        if n_ranks is None:
            n_ranks = max(1, grid.n_ranks // comm.machine.ranks_per_node)
        self.n_ranks = int(n_ranks)
        self.row_offsets = self._row_offsets(shape[0], self.n_ranks)
        self.local_csr: dict[int, CSRMatrix] = {
            rank: CSRMatrix.empty(self._local_shape(rank), semiring)
            for rank in comm.owned_ranks(list(range(self.n_ranks)))
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _row_offsets(n_rows: int, parts: int) -> np.ndarray:
        base = n_rows // parts
        rem = n_rows % parts
        sizes = np.full(parts, base, dtype=np.int64)
        sizes[:rem] += 1
        offsets = np.zeros(parts + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return offsets

    def _local_shape(self, rank: int) -> tuple[int, int]:
        return (
            int(self.row_offsets[rank + 1] - self.row_offsets[rank]),
            self.shape[1],
        )

    def _owner_of_rows(self, rows: np.ndarray) -> np.ndarray:
        return (np.searchsorted(self.row_offsets, rows, side="right") - 1).astype(np.int64)

    # ------------------------------------------------------------------
    def _set_values(
        self, tuples_per_rank: Mapping[int, TupleArrays], *, mode: str
    ) -> None:
        """MatSetValues + MatAssembly: stash remote values, then rebuild rows."""
        # Map the caller's per-rank batches (defined over the full grid) to
        # the PETSc ranks that generated them.
        petsc_ranks = self.comm.owned_ranks(list(range(self.n_ranks)))
        stash_inputs: dict[int, list[TupleArrays]] = {r: [] for r in petsc_ranks}
        for src_rank, data in tuples_per_rank.items():
            petsc_rank = int(src_rank) % self.n_ranks
            if petsc_rank in stash_inputs:
                stash_inputs[petsc_rank].append(data)

        # Per-rank MatSetValues loop: values for local rows are stored, the
        # rest goes into the communication stash (per destination rank).
        sendbufs: dict[int, dict[int, TupleArrays]] = {}
        local_pending: dict[int, list[tuple[int, int, float]]] = {
            r: [] for r in petsc_ranks
        }
        for rank in petsc_ranks:
            pieces = stash_inputs[rank]

            def _mat_set_values(pieces=pieces, rank=rank):
                stash: dict[int, list[tuple[int, int, float]]] = {}
                local: list[tuple[int, int, float]] = []
                for rows, cols, vals in pieces:
                    owners = self._owner_of_rows(np.asarray(rows, dtype=np.int64))
                    # per-element insertion, as MatSetValues does
                    for i, j, v, owner in zip(rows, cols, vals, owners):
                        entry = (int(i), int(j), float(v))
                        if owner == rank:
                            local.append(entry)
                        else:
                            stash.setdefault(int(owner), []).append(entry)
                return local, stash

            local, stash = self.comm.run_local(
                rank, _mat_set_values, category=StatCategory.LOCAL_CONSTRUCT
            )
            local_pending[rank].extend(local)
            sendbufs[rank] = {
                dest: (
                    np.array([e[0] for e in entries], dtype=np.int64),
                    np.array([e[1] for e in entries], dtype=np.int64),
                    np.array([e[2] for e in entries], dtype=np.float64),
                )
                for dest, entries in stash.items()
            }

        # Assembly: ship the stashes, then rebuild each local CSR.
        recv = self.comm.alltoallv(
            sendbufs,
            group=list(range(self.n_ranks)),
            category=StatCategory.REDIST_COMM,
        )
        for rank in petsc_ranks:
            incoming = [payload for _src, payload in sorted(recv.get(rank, {}).items())]
            pending = local_pending[rank]
            old = self.local_csr[rank]
            row_base = int(self.row_offsets[rank])

            def _assemble(incoming=incoming, pending=pending, old=old, row_base=row_base):
                rows = [np.array([e[0] for e in pending], dtype=np.int64)]
                cols = [np.array([e[1] for e in pending], dtype=np.int64)]
                vals = [np.array([e[2] for e in pending], dtype=np.float64)]
                for r, c, v in incoming:
                    rows.append(np.asarray(r, dtype=np.int64))
                    cols.append(np.asarray(c, dtype=np.int64))
                    vals.append(np.asarray(v, dtype=np.float64))
                new_rows = np.concatenate(rows) - row_base
                new_cols = np.concatenate(cols)
                new_vals = np.concatenate(vals)
                update = COOMatrix(
                    shape=old.shape,
                    rows=new_rows,
                    cols=new_cols,
                    values=self.semiring.coerce(new_vals),
                    semiring=self.semiring,
                )
                base = old.to_coo()
                if mode == "add":
                    merged = base.concatenate(update).sum_duplicates()
                else:  # overwrite (INSERT_VALUES)
                    from repro.sparse.elementwise import merge_pattern

                    merged = merge_pattern(base, update)
                # The assembly compresses the *whole* local matrix again.
                return CSRMatrix.from_coo(merged)

            self.local_csr[rank] = self.comm.run_local(
                rank, _assemble, category=StatCategory.LOCAL_CONSTRUCT
            )

    # ------------------------------------------------------------------
    def construct(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        self.local_csr = {
            rank: CSRMatrix.empty(self._local_shape(rank), self.semiring)
            for rank in self.comm.owned_ranks(list(range(self.n_ranks)))
        }
        self._set_values(tuples_per_rank, mode="add")

    def insert_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        self._set_values(tuples_per_rank, mode="add")

    def update_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        self._set_values(tuples_per_rank, mode="overwrite")

    def delete_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        raise UnsupportedOperation(
            "PETSc does not support efficiently masking out non-zeros"
        )

    # ------------------------------------------------------------------
    def local_nnz(self) -> int:
        return sum(csr.nnz for csr in self.local_csr.values())

    def to_coo_global(self) -> COOMatrix:
        merged = self.comm.host_merge(self.local_csr)
        pieces_r, pieces_c, pieces_v = [], [], []
        for rank in sorted(merged):
            coo = merged[rank].to_coo()
            pieces_r.append(coo.rows + int(self.row_offsets[rank]))
            pieces_c.append(coo.cols)
            pieces_v.append(coo.values)
        if not pieces_r:
            return COOMatrix.empty(self.shape, self.semiring)
        return COOMatrix(
            shape=self.shape,
            rows=np.concatenate(pieces_r),
            cols=np.concatenate(pieces_c),
            values=np.concatenate(pieces_v),
            semiring=self.semiring,
        ).sum_duplicates()
