"""CTF-style backend: cyclic layout, global re-shuffle per write epoch.

Cyclops Tensor Framework treats a sparse write as a *tensor redistribution*:
the new values are combined with the existing tensor and the whole tensor
is re-mapped (re-sorted and re-shuffled across all ranks) to restore its
cyclic layout.  That makes every batch cost ``O(nnz(A))`` communication and
computation — not ``O(batch)`` — which is why the paper measures CTF to be
at least 55× (insertions) to 100× (deletions) slower than the dynamic data
structure.

The simulation mirrors that behaviour literally: each batch triggers a
global ``ALLTOALL`` of *all* non-zeros (old and new) followed by a full
comparison sort and rebuild on every rank.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse import COOMatrix, CSRMatrix
from repro.distributed import BlockDistribution
from repro.competitors.base import Backend, TupleArrays

__all__ = ["CTFBackend"]


class CTFBackend(Backend):
    """Cyclically distributed static tensor rebuilt globally per batch."""

    name = "CTF 1.35"
    supports_deletions = True
    supports_semirings = True

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        semiring: Semiring = PLUS_TIMES,
    ) -> None:
        super().__init__(comm, grid, shape, semiring)
        self.dist = BlockDistribution(shape[0], shape[1], grid)
        # Per-rank shard of the cyclic layout, stored as raw triplets in
        # *global* coordinates (CTF keeps index-value pairs per processor).
        self.shards: dict[int, COOMatrix] = {
            rank: COOMatrix.empty(shape, semiring)
            for rank in comm.owned_ranks(grid.all_ranks())
        }

    # ------------------------------------------------------------------
    def _cyclic_owner(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Cyclic ownership: ``(i + j) mod p`` — CTF's element-cyclic map."""
        return ((rows + cols) % self.grid.n_ranks).astype(np.int64)

    def _global_remap(
        self,
        tuples_per_rank: Mapping[int, TupleArrays],
        *,
        combine: str,
    ) -> None:
        """Combine new tuples with the existing tensor and re-shuffle it all."""
        p = self.grid.n_ranks
        # Every rank contributes its *entire* shard plus its share of the
        # new tuples; everything is exchanged and re-sorted.
        sendbufs: dict[int, dict[int, TupleArrays]] = {}
        for rank in list(self.shards):
            shard = self.shards[rank]
            new = tuples_per_rank.get(
                rank,
                (
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    self.semiring.zeros(0),
                ),
            )
            rows = np.concatenate([shard.rows, np.asarray(new[0], dtype=np.int64)])
            cols = np.concatenate([shard.cols, np.asarray(new[1], dtype=np.int64)])
            vals = np.concatenate([shard.values, self.semiring.coerce(new[2])])
            # mark which entries are "new" so MERGE/MASK semantics survive
            # the shuffle: new entries are appended after old ones and a
            # stable sort keeps that order per coordinate.
            flags = np.concatenate(
                [np.zeros(shard.nnz, dtype=np.int64), np.ones(len(new[0]), dtype=np.int64)]
            )

            def _sort_and_split(rows=rows, cols=cols, vals=vals, flags=flags):
                owner = self._cyclic_owner(rows, cols)
                order = np.lexsort((cols, rows, owner))
                return rows[order], cols[order], vals[order], flags[order], owner[order]

            rows_s, cols_s, vals_s, flags_s, owner_s = self.comm.run_local(
                rank, _sort_and_split, category=StatCategory.REDIST_SORT
            )
            outgoing: dict[int, TupleArrays] = {}
            flag_payload: dict[int, np.ndarray] = {}
            for dest in range(p):
                sel = owner_s == dest
                if np.any(sel):
                    outgoing[dest] = (rows_s[sel], cols_s[sel], vals_s[sel])
                    flag_payload[dest] = flags_s[sel]
            # piggyback the flags with the values (counts towards volume)
            sendbufs[rank] = {
                dest: (r, c, np.stack([v, flag_payload[dest].astype(v.dtype)]))
                for dest, (r, c, v) in outgoing.items()
            }
        recv = self.comm.alltoallv(
            sendbufs, group=self.grid.all_ranks(), category=StatCategory.REDIST_COMM
        )
        for rank in list(self.shards):
            pieces = [payload for _src, payload in sorted(recv.get(rank, {}).items())]

            def _rebuild(pieces=pieces):
                if not pieces:
                    return COOMatrix.empty(self.shape, self.semiring)
                rows = np.concatenate([piece[0] for piece in pieces])
                cols = np.concatenate([piece[1] for piece in pieces])
                vals = np.concatenate([piece[2][0] for piece in pieces])
                flags = np.concatenate([piece[2][1] for piece in pieces]).astype(bool)
                coo_old = COOMatrix(
                    shape=self.shape,
                    rows=rows[~flags],
                    cols=cols[~flags],
                    values=vals[~flags],
                    semiring=self.semiring,
                )
                coo_new = COOMatrix(
                    shape=self.shape,
                    rows=rows[flags],
                    cols=cols[flags],
                    values=vals[flags],
                    semiring=self.semiring,
                )
                if combine == "add":
                    return coo_old.concatenate(coo_new).sum_duplicates()
                if combine == "merge":
                    from repro.sparse.elementwise import merge_pattern

                    return merge_pattern(coo_old, coo_new)
                if combine == "mask":
                    from repro.sparse.elementwise import mask_pattern

                    return mask_pattern(coo_old, coo_new)
                raise ValueError(combine)

            self.shards[rank] = self.comm.run_local(
                rank, _rebuild, category=StatCategory.LOCAL_CONSTRUCT
            )

    # ------------------------------------------------------------------
    def construct(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        self.shards = {
            rank: COOMatrix.empty(self.shape, self.semiring)
            for rank in self.comm.owned_ranks(self.grid.all_ranks())
        }
        self._global_remap(tuples_per_rank, combine="add")

    def insert_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        self._global_remap(tuples_per_rank, combine="add")

    def update_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        self._global_remap(tuples_per_rank, combine="merge")

    def delete_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        self._global_remap(tuples_per_rank, combine="mask")

    # ------------------------------------------------------------------
    def local_nnz(self) -> int:
        return sum(shard.nnz for shard in self.shards.values())

    def to_coo_global(self) -> COOMatrix:
        merged = self.comm.host_merge(self.shards)
        out = COOMatrix.empty(self.shape, self.semiring)
        for rank in sorted(merged):
            out = out.concatenate(merged[rank])
        return out.sum_duplicates()

    def to_csr_global(self) -> CSRMatrix:
        return CSRMatrix.from_coo(self.to_coo_global())
