"""Common interface of all (simulated) backends.

A backend owns one distributed adjacency matrix and exposes the operations
measured by the paper's data-structure experiments (Figs. 2–8):
construction from scattered tuples, batched insertions, batched value
updates and batched deletions.  The benchmark drivers time these calls with
the communicator's clock, so every backend must perform its work through the
shared :class:`~repro.runtime.backend.Communicator`.
"""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse import COOMatrix

__all__ = ["Backend", "UnsupportedOperation", "get_backend", "list_backends"]

TupleArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


class UnsupportedOperation(RuntimeError):
    """Raised when a backend does not support an operation.

    Mirrors the paper's treatment of missing features (e.g. "PETSc does not
    support an efficient way to mask non-zeros in matrices; thus, we do not
    compare against PETSc for deletions").
    """


class Backend(abc.ABC):
    """Abstract distributed-adjacency-matrix backend."""

    #: human-readable name as used in the paper's plots
    name: str = "abstract"
    #: whether the backend supports deletions (Fig. 5b)
    supports_deletions: bool = True
    #: whether the backend supports arbitrary semirings (Fig. 10)
    supports_semirings: bool = True

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        semiring: Semiring = PLUS_TIMES,
    ) -> None:
        self.comm = comm
        self.grid = grid
        self.shape = shape
        self.semiring = semiring

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def construct(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        """Build the adjacency matrix from per-rank tuple arrays."""

    @abc.abstractmethod
    def insert_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        """Insert a batch of new non-zeros (⊕-combining collisions)."""

    @abc.abstractmethod
    def update_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        """Overwrite the values of existing non-zeros (MERGE semantics)."""

    @abc.abstractmethod
    def delete_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        """Delete the given non-zeros (MASK semantics)."""

    @abc.abstractmethod
    def local_nnz(self) -> int:
        """Structural non-zeros of the locally owned state only.

        Collective-free, so it is safe in contexts that may run on a single
        process of a larger world (``__repr__``, logging, error paths) —
        the global :meth:`nnz` would block in the control plane there while
        the peers are elsewhere.
        """

    def nnz(self) -> int:
        """Current *global* number of structural non-zeros.

        A world-wide query: folds the owned counts through the control
        plane, so every process must call it at the same point of the
        program.
        """
        return int(self.comm.host_fold(self.local_nnz(), lambda x, y: x + y))

    @abc.abstractmethod
    def to_coo_global(self) -> COOMatrix:
        """Assembled global matrix (verification only; world-wide query)."""

    def describe(self) -> dict[str, object]:
        """Metadata used by the benchmark reports (collective-free)."""
        return {
            "name": self.name,
            "supports_deletions": self.supports_deletions,
            "supports_semirings": self.supports_semirings,
            "shape": self.shape,
            "nnz": self.local_nnz(),
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(shape={self.shape}, local_nnz={self.local_nnz()})"


def _registry() -> dict[str, type[Backend]]:
    from repro.competitors.combblas import CombBLASBackend
    from repro.competitors.ctf import CTFBackend
    from repro.competitors.ours import OurBackend
    from repro.competitors.petsc import PETScBackend

    return {
        "ours": OurBackend,
        "combblas": CombBLASBackend,
        "ctf": CTFBackend,
        "petsc": PETScBackend,
    }


def list_backends() -> list[str]:
    """Names of the available backends."""
    return list(_registry())


def get_backend(name: str) -> type[Backend]:
    """Look up a backend class by name (``ours``/``combblas``/``ctf``/``petsc``)."""
    registry = _registry()
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(registry)
        raise KeyError(f"unknown backend {name!r}; known backends: {known}") from None
