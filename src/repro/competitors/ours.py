"""The paper's approach as a backend (dynamic DHB blocks)."""

from __future__ import annotations

from typing import Mapping

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse import COOMatrix
from repro.distributed import DynamicDistMatrix, build_update_matrix
from repro.competitors.base import Backend, TupleArrays

__all__ = ["OurBackend"]


class OurBackend(Backend):
    """Dynamic distributed matrix with two-phase redistribution.

    * Construction and raw insertions go through the two-phase counting-sort
      redistribution and land in DHB blocks (O(1) expected per entry).
    * Batched updates are expressed as hypersparse DCSR update matrices
      (exactly as the paper's interface prescribes) followed by a purely
      local ``ADD`` / ``MERGE`` / ``MASK``.
    """

    name = "our approach"
    supports_deletions = True
    supports_semirings = True

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        semiring: Semiring = PLUS_TIMES,
        *,
        dynamic_storage: bool = True,
    ) -> None:
        super().__init__(comm, grid, shape, semiring)
        #: when False, blocks are rebuilt as DCSR after every batch — the
        #: "construct a DCSR instead of a dynamic matrix" variant the paper
        #: uses to isolate the benefit of the redistribution algorithm.
        self.dynamic_storage = dynamic_storage
        self.matrix = DynamicDistMatrix.empty(comm, grid, shape, semiring)

    # ------------------------------------------------------------------
    def construct(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        self.matrix = DynamicDistMatrix.from_tuples(
            self.comm,
            self.grid,
            self.shape,
            tuples_per_rank,
            self.semiring,
            combine="add",
            redistribution="two_phase",
        )
        if not self.dynamic_storage:
            # Rebuild static blocks once to emulate the DCSR-output variant.
            static = self.matrix.to_static(layout="dcsr")
            self.matrix = static.to_dynamic()

    def insert_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        update = build_update_matrix(
            self.comm,
            self.grid,
            self.matrix.dist,
            tuples_per_rank,
            self.semiring,
            layout="dcsr",
            combine="add",
            redistribution="two_phase",
        )
        self.matrix.add_update(update)

    def update_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        update = build_update_matrix(
            self.comm,
            self.grid,
            self.matrix.dist,
            tuples_per_rank,
            self.semiring,
            layout="dcsr",
            combine="last",
            redistribution="two_phase",
        )
        self.matrix.merge_update(update)

    def delete_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        update = build_update_matrix(
            self.comm,
            self.grid,
            self.matrix.dist,
            tuples_per_rank,
            self.semiring,
            layout="dcsr",
            combine="last",
            redistribution="two_phase",
        )
        self.matrix.mask_update(update)

    # ------------------------------------------------------------------
    def local_nnz(self) -> int:
        return sum(block.nnz for block in self.matrix.blocks.values())

    def nnz(self) -> int:
        return self.matrix.nnz()

    def to_coo_global(self) -> COOMatrix:
        return self.matrix.to_coo_global()
