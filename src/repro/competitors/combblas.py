"""CombBLAS-style backend: 2D static doubly-compressed blocks.

CombBLAS 2.0 stores each block in DCSC (doubly-compressed sparse column)
and has no in-place update path: applying a batch of updates means

1. assembling the update matrix with a *comparison sort* of the tuples and
   a single *global* ``ALLTOALL`` over all ``p`` ranks (in contrast to the
   paper's two-phase √p-peer exchange), and
2. rebuilding the static block from scratch by merging the old block with
   the update (concatenate + full lexicographic re-sort), because the
   compressed layout cannot absorb new entries incrementally.

This is exactly the cost structure the paper measures: the rebuild is
proportional to ``nnz(A)/p`` per batch regardless of the batch size, which
is why the speedup of the dynamic structure shrinks as batches grow
(Fig. 4) — for huge batches the rebuild amortises.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse import COOMatrix, DCSRMatrix
from repro.distributed import BlockDistribution, StaticDistMatrix
from repro.distributed.redistribution import redistribute_tuples_single_phase
from repro.competitors.base import Backend, TupleArrays

__all__ = ["CombBLASBackend"]


class CombBLASBackend(Backend):
    """Static 2D doubly-compressed blocks rebuilt on every batch."""

    name = "CombBLAS 2.0"
    supports_deletions = True
    supports_semirings = True
    #: per-entry work multiplier of the rebuild relative to a plain merge;
    #: models DCSC's column-pointer reconstruction on top of the sort.
    rebuild_overhead = 1.0

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        semiring: Semiring = PLUS_TIMES,
    ) -> None:
        super().__init__(comm, grid, shape, semiring)
        self.dist = BlockDistribution(shape[0], shape[1], grid)
        # DCSR over the transposed block is the row-major stand-in for the
        # column-major DCSC layout; the rebuild cost structure is identical.
        self.blocks: dict[int, DCSRMatrix] = {
            rank: DCSRMatrix.empty(self.dist.block_shape_of_rank(rank), semiring)
            for rank in comm.owned_ranks(grid.all_ranks())
        }

    # ------------------------------------------------------------------
    def _route(self, tuples_per_rank: Mapping[int, TupleArrays]) -> dict[int, TupleArrays]:
        return redistribute_tuples_single_phase(
            self.comm,
            self.grid,
            self.dist,
            tuples_per_rank,
            value_dtype=self.semiring.dtype,
            sort_mode="comparison",
        )

    def _local_coo(self, rank: int, routed: Mapping[int, TupleArrays]) -> COOMatrix:
        rows, cols, vals = routed.get(
            rank,
            (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                self.semiring.zeros(0),
            ),
        )
        lrows, lcols = self.dist.to_local(rank, rows, cols)
        return COOMatrix(
            shape=self.dist.block_shape_of_rank(rank),
            rows=lrows,
            cols=lcols,
            values=vals,
            semiring=self.semiring,
        )

    def _rebuild(self, rank: int, merged: COOMatrix) -> DCSRMatrix:
        """Full static rebuild: sort all non-zeros, recreate the layout."""
        canon = merged.sort().sum_duplicates()
        return DCSRMatrix.from_coo(canon, dedup=False)

    # ------------------------------------------------------------------
    def construct(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        routed = self._route(tuples_per_rank)
        for rank in list(self.blocks):
            coo = self._local_coo(rank, routed)
            self.blocks[rank] = self.comm.run_local(
                rank, self._rebuild, rank, coo, category=StatCategory.LOCAL_CONSTRUCT
            )

    def insert_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        routed = self._route(tuples_per_rank)
        for rank in list(self.blocks):
            update = self._local_coo(rank, routed)
            old = self.blocks[rank]

            def _merge_rebuild(old=old, update=update):
                merged = old.to_coo().concatenate(update)
                return self._rebuild(0, merged)

            self.blocks[rank] = self.comm.run_local(
                rank, _merge_rebuild, category=StatCategory.LOCAL_CONSTRUCT
            )

    def update_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        from repro.sparse.elementwise import merge_pattern

        routed = self._route(tuples_per_rank)
        for rank in list(self.blocks):
            update = self._local_coo(rank, routed)
            old = self.blocks[rank]

            def _merge_rebuild(old=old, update=update):
                merged = merge_pattern(old, update)
                return DCSRMatrix.from_coo(merged, dedup=False)

            self.blocks[rank] = self.comm.run_local(
                rank, _merge_rebuild, category=StatCategory.LOCAL_CONSTRUCT
            )

    def delete_batch(self, tuples_per_rank: Mapping[int, TupleArrays]) -> None:
        from repro.sparse.elementwise import mask_pattern

        routed = self._route(tuples_per_rank)
        for rank in list(self.blocks):
            update = self._local_coo(rank, routed)
            old = self.blocks[rank]

            def _mask_rebuild(old=old, update=update):
                masked = mask_pattern(old, update)
                return DCSRMatrix.from_coo(masked, dedup=False)

            self.blocks[rank] = self.comm.run_local(
                rank, _mask_rebuild, category=StatCategory.LOCAL_CONSTRUCT
            )

    # ------------------------------------------------------------------
    def local_nnz(self) -> int:
        return sum(block.nnz for block in self.blocks.values())

    def to_coo_global(self) -> COOMatrix:
        return self.as_static_dist().to_coo_global()

    def as_static_dist(self) -> StaticDistMatrix:
        """View of the backend's matrix as a :class:`StaticDistMatrix`."""
        return StaticDistMatrix(
            self.comm,
            self.grid,
            self.dist,
            self.semiring,
            dict(self.blocks),
            layout="dcsr",
        )
