"""Simulated competitor frameworks.

The paper compares against CombBLAS 2.0, CTF 1.35 and PETSc 3.17.1.  Those
frameworks are not available here (and would need a real cluster), so this
package re-implements *how each of them handles dynamic workloads* on top
of the same simulated runtime and local kernels:

* :class:`OurBackend` — the paper's approach: dynamic DHB blocks, two-phase
  counting-sort redistribution, purely local batch application.
* :class:`CombBLASBackend` — 2D grid of static doubly-compressed blocks;
  updates require assembling an update matrix with a comparison sort plus a
  single global ``ALLTOALL`` and then *rebuilding* the static storage.
* :class:`CTFBackend` — cyclic data layout; every write epoch redistributes
  and re-sorts **all** non-zeros of the matrix, which is why CTF is orders
  of magnitude slower for small batches.
* :class:`PETScBackend` — 1D row distribution, CSR storage rebuilt through
  ``MatSetValues``-style per-element insertion plus a full matrix assembly;
  no deletion support and no configurable semirings.

The SpGEMM-side baselines (static SUMMA recomputation, 1D PETSc-style
``MatMatMult``) live in :mod:`repro.competitors.spgemm_baselines`.

The point of these backends is to reproduce the *relative shape* of the
paper's comparisons (who wins, how the gap shrinks as batches grow), not
the absolute constants of the closed-source implementations.
"""

from repro.competitors.base import Backend, UnsupportedOperation, get_backend, list_backends
from repro.competitors.ours import OurBackend
from repro.competitors.combblas import CombBLASBackend
from repro.competitors.ctf import CTFBackend
from repro.competitors.petsc import PETScBackend
from repro.competitors.spgemm_baselines import (
    static_spgemm_combblas,
    static_spgemm_ctf,
    static_spgemm_petsc_1d,
)

__all__ = [
    "Backend",
    "UnsupportedOperation",
    "get_backend",
    "list_backends",
    "OurBackend",
    "CombBLASBackend",
    "CTFBackend",
    "PETScBackend",
    "static_spgemm_combblas",
    "static_spgemm_ctf",
    "static_spgemm_petsc_1d",
]
