"""Competitor-style distributed SpGEMM baselines (Figs. 9–12).

The paper's dynamic-SpGEMM experiments compare against the *static*
distributed SpGEMM of each framework:

* Figure 9 (algebraic case): competitors compute ``A*·B`` with their static
  SpGEMM and add the result to ``C``.  CombBLAS/CTF use sparse SUMMA on the
  2D grid — which broadcasts the full blocks of the (large) right operand
  ``B`` every round; CTF additionally re-maps the operands into its cyclic
  layout before multiplying.  PETSc uses a 1D row algorithm where every rank
  must fetch the remote rows of ``B`` referenced by its rows of ``A*``.
* Figure 10 (general case): the competitors cannot update incrementally at
  all and recompute ``A'·B`` from scratch with the same static algorithms.

These functions reproduce those cost structures on the simulated runtime.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import Semiring
from repro.sparse import COOMatrix, CSRMatrix, spgemm_local
from repro.distributed import DynamicDistMatrix
from repro.distributed.dist_matrix import DistMatrixBase
from repro.core.summa import summa_spgemm

__all__ = [
    "static_spgemm_combblas",
    "static_spgemm_ctf",
    "static_spgemm_petsc_1d",
    "add_product_to_result",
]


def add_product_to_result(
    product: DistMatrixBase, c: DynamicDistMatrix | None
) -> None:
    """Fold a freshly computed distributed product into ``C`` (local adds)."""
    if c is None:
        return
    for rank, block in product.blocks.items():
        coo = block.to_coo()
        if coo.nnz == 0:
            continue
        c.comm.run_local(
            rank,
            c.blocks[rank].add_update,
            coo,
            category=StatCategory.LOCAL_ADDITION,
        )


def static_spgemm_combblas(
    comm: Communicator,
    grid: ProcessGrid,
    a: DistMatrixBase,
    b: DistMatrixBase,
    *,
    semiring: Semiring | None = None,
    accumulate_into: DynamicDistMatrix | None = None,
) -> DistMatrixBase:
    """CombBLAS-style static SpGEMM: plain sparse SUMMA on the 2D grid."""
    product, _ = summa_spgemm(
        comm, grid, a, b, semiring=semiring, output="static", compute_bloom=False
    )
    add_product_to_result(product, accumulate_into)
    return product


def static_spgemm_ctf(
    comm: Communicator,
    grid: ProcessGrid,
    a: DistMatrixBase,
    b: DistMatrixBase,
    *,
    semiring: Semiring | None = None,
    accumulate_into: DynamicDistMatrix | None = None,
) -> DistMatrixBase:
    """CTF-style static SpGEMM: operand re-mapping, then SUMMA.

    CTF contracts tensors in a layout chosen per contraction, which means
    both operands are redistributed (an all-to-all of *all* their non-zeros)
    before the actual multiplication.  The extra re-mapping round is what
    makes CTF slower than CombBLAS on these workloads.
    """
    semiring = semiring if semiring is not None else a.semiring
    # Model the re-mapping: every rank ships its full block to the rank that
    # owns it under the contraction layout (here: the transposed position,
    # any fixed non-identity permutation has the same cost profile), and the
    # blocks travel back afterwards.
    for operand in (a, b):
        messages = []
        for rank in comm.owned_ranks(grid.all_ranks()):
            dst = grid.transpose_rank(rank)
            messages.append((rank, dst, operand.blocks[rank]))
        inbox = comm.exchange(messages, category=StatCategory.ALLTOALL)
        # Return leg: every rank ships the block it just received straight
        # back to its origin (same volume as the outbound leg, posted by
        # the rank that actually holds the copy).
        messages = [
            (rank, grid.transpose_rank(rank), inbox[rank][0][1])
            for rank in comm.owned_ranks(grid.all_ranks())
            if inbox.get(rank)
        ]
        comm.exchange(messages, category=StatCategory.ALLTOALL)
    product, _ = summa_spgemm(
        comm, grid, a, b, semiring=semiring, output="static", compute_bloom=False
    )
    add_product_to_result(product, accumulate_into)
    return product


def static_spgemm_petsc_1d(
    comm: Communicator,
    a_rows_per_rank: dict[int, CSRMatrix],
    row_offsets: np.ndarray,
    b_global: CSRMatrix,
    *,
    semiring: Semiring,
    n_ranks: int,
    accumulate_into: dict[int, COOMatrix] | None = None,
) -> dict[int, COOMatrix]:
    """PETSc-style 1D ``MatMatMult``.

    ``a_rows_per_rank[rank]`` holds the local block-row slice of ``A`` (a
    CSR with local row indices), ``b_global`` is the full ``B`` (PETSc also
    distributes ``B`` 1D; the off-process rows a rank needs are gathered
    during the symbolic phase).  The communication charged here is the
    gather of the remote ``B`` rows referenced by each rank's ``A`` slice —
    for an adjacency-matrix workload that is effectively most of ``B``.

    Returns the per-rank local result rows (COO with local row indices).
    """
    results: dict[int, COOMatrix] = {}
    group = list(range(n_ranks))

    # Symbolic phase: every rank's referenced-row list, computed locally and
    # made globally visible in ONE control-plane merge (the stand-in for a
    # real implementation's row-request exchange) instead of one collective
    # per rank.
    needed_local: dict[int, np.ndarray] = {}
    for rank in comm.owned_ranks(group):
        a_local = a_rows_per_rank.get(rank)
        if a_local is None:
            continue

        def _needed_rows(a_local=a_local):
            return np.unique(a_local.indices)

        needed_local[rank] = comm.run_local(
            rank, _needed_rows, category=StatCategory.LOCAL_COMPUTE
        )
    needed_by_rank = comm.host_merge(needed_local)

    for rank in group:
        needed = needed_by_rank.get(rank)
        if needed is None:
            continue
        # Gather the needed rows of B from their owners (modelled as one
        # gather of the corresponding row slices onto this rank).  Each
        # process extracts only the slices of the owners it hosts — the
        # gather reads nothing else from it.
        payloads = {}
        for owner in group:
            if not comm.owns(owner):
                continue
            lo = int(row_offsets[owner])
            hi = int(row_offsets[owner + 1])
            owned = needed[(needed >= lo) & (needed < hi)]
            if owner == rank or owned.size == 0:
                payloads[owner] = None
                continue
            payloads[owner] = b_global.extract_rows(owned)
        comm.gather(rank, payloads, group=group, category=StatCategory.BCAST)
        a_local = a_rows_per_rank.get(rank)

        def _multiply(a_local=a_local):
            product, _ = spgemm_local(a_local, b_global, semiring)
            return product

        if a_local is not None and comm.owns(rank):
            results[rank] = comm.run_local(
                rank, _multiply, category=StatCategory.LOCAL_MULT
            )
            if accumulate_into is not None:
                prev = accumulate_into.get(rank)
                accumulate_into[rank] = (
                    results[rank]
                    if prev is None
                    else prev.concatenate(results[rank]).sum_duplicates()
                )
    return results
