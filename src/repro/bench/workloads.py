"""Workload generation for the benchmark experiments.

Reproduces the experimental protocols of Section VII:

* adjacency matrices are built from the (surrogate) instances with a random
  index permutation for load balancing;
* insertion experiments pre-load half of the non-zeros and draw batches
  from the remaining half;
* update / deletion experiments pre-load the full matrix and draw batches
  from the existing non-zeros;
* dynamic-SpGEMM experiments grow the left operand from empty by drawing
  insertions from the adjacency matrix while the right operand stays fixed.

Batch randomness is derived through :class:`numpy.random.SeedSequence`
children (:func:`spawn_batch_seeds`): per-batch streams are statistically
independent and two workloads with different seeds never share an
``rng.choice`` stream — unlike the additive ``seed + b`` scheme this module
used to carry, where ``seed=17`` batch 1 collided with ``seed=18`` batch 0.

The ``*_scenario`` builders at the bottom express the protocols as
replayable :class:`~repro.scenarios.model.Scenario` traces; the experiment
drivers in :mod:`repro.bench.experiments_updates` and
:mod:`repro.bench.experiments_spgemm` replay those scenarios instead of
carrying bespoke batch loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed import IndexPermutation, partition_tuples_round_robin
from repro.graphs import generate_instance
from repro.scenarios import (
    DeleteBatch,
    InsertBatch,
    Scenario,
    SpGEMMStep,
    ValueUpdateBatch,
)
from repro.scenarios.model import seed_int, spawn_seeds

__all__ = [
    "InstanceWorkload",
    "prepare_instance",
    "spawn_batch_seeds",
    "draw_batch",
    "split_batches",
    "batched_operation_scenario",
    "spgemm_stream_scenario",
    "construction_scenario",
]

TupleArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


def spawn_batch_seeds(
    seed: int | np.random.SeedSequence, n: int
) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences of ``seed``.

    Children of different parents never collide, which makes per-batch
    seeding safe across workloads/scenarios that share a tuple pool.
    Thin alias of :func:`repro.scenarios.model.spawn_seeds` so that every
    scenario producer derives seeds identically.
    """
    return spawn_seeds(seed if isinstance(seed, np.random.SeedSequence) else int(seed), n)



@dataclass
class InstanceWorkload:
    """A prepared (permuted) instance plus update pools."""

    name: str
    n: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    permutation: IndexPermutation

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    def all_tuples(self) -> TupleArrays:
        return self.rows, self.cols, self.values

    def all_tuples_per_rank(self, n_ranks: int, *, seed: int = 0) -> dict[int, TupleArrays]:
        """The full adjacency matrix scattered round-robin over ranks."""
        return partition_tuples_round_robin(
            self.rows, self.cols, self.values, n_ranks, seed=seed
        )

    def split_half(
        self, *, seed: int | np.random.SeedSequence = 0
    ) -> tuple[TupleArrays, TupleArrays]:
        """(initial half, insertion pool) split of the non-zeros."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.nnz)
        half = self.nnz // 2
        first, second = order[:half], order[half:]
        return (
            (self.rows[first], self.cols[first], self.values[first]),
            (self.rows[second], self.cols[second], self.values[second]),
        )


def prepare_instance(
    name: str,
    *,
    scale_divisor: int,
    seed: int = 0,
    permute: bool = True,
    weights: str = "uniform",
) -> InstanceWorkload:
    """Generate a surrogate instance and apply the random permutation."""
    n, rows, cols, values = generate_instance(
        name, scale_divisor=scale_divisor, seed=seed, weights=weights
    )
    perm = IndexPermutation(n, seed=seed + 17) if permute else IndexPermutation.identity(n)
    rows = perm.apply(rows)
    cols = perm.apply(cols)
    return InstanceWorkload(
        name=name, n=n, rows=rows, cols=cols, values=values, permutation=perm
    )


def draw_batch(
    pool: TupleArrays,
    batch_total: int,
    *,
    seed: int | np.random.SeedSequence = 0,
    replace: bool = True,
) -> TupleArrays:
    """Draw a batch of tuples uniformly at random from a pool.

    ``seed`` may be an integer or a :class:`numpy.random.SeedSequence`
    child from :func:`spawn_batch_seeds`; prefer the latter when drawing
    several batches from one pool.
    """
    rows, cols, values = pool
    if rows.size == 0:
        return rows, cols, values
    rng = np.random.default_rng(seed)
    size = int(batch_total) if replace else min(int(batch_total), rows.size)
    idx = rng.choice(rows.size, size=size, replace=replace)
    return rows[idx], cols[idx], values[idx]


def split_batches(
    pool: TupleArrays,
    n_batches: int,
    batch_total: int,
    *,
    seed: int | np.random.SeedSequence = 0,
) -> list[TupleArrays]:
    """Draw ``n_batches`` disjoint batches from a pool (without replacement).

    Used for deletion experiments where deleting the same entry twice would
    distort the measurement; falls back to sampling with replacement across
    batches when the pool is too small.
    """
    rows, cols, values = pool
    rng = np.random.default_rng(seed)
    needed = n_batches * batch_total
    if rows.size >= needed:
        idx = rng.choice(rows.size, size=needed, replace=False)
    else:
        idx = rng.choice(rows.size, size=needed, replace=True)
    batches = []
    for b in range(n_batches):
        sel = idx[b * batch_total : (b + 1) * batch_total]
        batches.append((rows[sel], cols[sel], values[sel]))
    return batches


# ----------------------------------------------------------------------
# protocol -> scenario builders
# ----------------------------------------------------------------------
def batched_operation_scenario(
    workload: InstanceWorkload,
    operation: str,
    *,
    n_batches: int,
    batch_total: int,
    seed: int = 0,
) -> Scenario:
    """The Fig. 4/5 protocol as a replayable scenario.

    * ``"insert"`` — pre-load half the non-zeros, insert batches drawn
      (with replacement) from the other half;
    * ``"update"`` — pre-load the full matrix, overwrite batches drawn from
      all non-zeros;
    * ``"delete"`` — pre-load the full matrix, delete disjoint batches.
    """
    if operation not in ("insert", "update", "delete"):
        raise ValueError(f"unknown operation {operation!r}")
    split_seed, construct_seed, draw_parent, part_parent = spawn_batch_seeds(seed, 4)
    if operation == "insert":
        initial, pool = workload.split_half(seed=split_seed)
    else:
        initial, pool = workload.all_tuples(), workload.all_tuples()
    part_seeds = [seed_int(s) for s in part_parent.spawn(n_batches)]
    steps: list = []
    if operation == "delete":
        batches = split_batches(pool, n_batches, batch_total, seed=draw_parent)
        for b, (br, bc, bv) in enumerate(batches):
            steps.append(
                DeleteBatch(br, bc, bv, partition_seed=part_seeds[b], label=f"delete[{b}]")
            )
    else:
        step_cls = InsertBatch if operation == "insert" else ValueUpdateBatch
        for b, draw_seed in enumerate(draw_parent.spawn(n_batches)):
            br, bc, bv = draw_batch(pool, batch_total, seed=draw_seed)
            steps.append(
                step_cls(
                    br, bc, bv, partition_seed=part_seeds[b], label=f"{operation}[{b}]"
                )
            )
    return Scenario(
        name=f"{workload.name}:{operation}",
        shape=(workload.n, workload.n),
        steps=steps,
        initial_tuples=initial,
        seed=seed,
        construct_seed=seed_int(construct_seed),
        metadata={
            "protocol": f"fig4/5:{operation}",
            "instance": workload.name,
            "batch_total": batch_total,
        },
    )


def spgemm_stream_scenario(
    workload: InstanceWorkload,
    *,
    n_batches: int,
    batch_total: int,
    mode: str = "algebraic",
    kind: str = "insert",
    semiring_name: str = "plus_times",
    seed: int = 0,
) -> Scenario:
    """The Fig. 9/10/11 protocol as a scenario.

    The left operand grows from empty by batches drawn from the adjacency
    matrix, each driving one dynamic-SpGEMM round against the fixed right
    operand ``B`` (the full adjacency matrix).
    """
    construct_seed, draw_parent, part_parent = spawn_batch_seeds(seed, 3)
    pool = workload.all_tuples()
    part_seeds = [seed_int(s) for s in part_parent.spawn(n_batches)]
    steps: list = []
    for b, draw_seed in enumerate(draw_parent.spawn(n_batches)):
        br, bc, bv = draw_batch(pool, batch_total, seed=draw_seed)
        steps.append(
            SpGEMMStep(
                br,
                bc,
                bv,
                partition_seed=part_seeds[b],
                label=f"spgemm[{b}]",
                mode=mode,
                kind=kind,
            )
        )
    return Scenario(
        name=f"{workload.name}:spgemm-{mode}",
        shape=(workload.n, workload.n),
        steps=steps,
        b_tuples=pool,
        semiring_name=semiring_name,
        seed=seed,
        construct_seed=seed_int(construct_seed),
        metadata={
            "protocol": f"fig9/10/11:{mode}",
            "instance": workload.name,
            "batch_total": batch_total,
        },
    )


def construction_scenario(
    name: str,
    shape: tuple[int, int],
    tuples: TupleArrays,
    *,
    seed: int = 0,
) -> Scenario:
    """A timed bulk-construction trace (the Fig. 8 protocol)."""
    (construct_seed,) = spawn_batch_seeds(seed, 1)
    return Scenario(
        name=name,
        shape=shape,
        steps=[],
        initial_tuples=tuples,
        seed=seed,
        construct_seed=seed_int(construct_seed),
        timed_construction=True,
        metadata={"protocol": "fig8:construction"},
    )
