"""Workload generation for the benchmark experiments.

Reproduces the experimental protocols of Section VII:

* adjacency matrices are built from the (surrogate) instances with a random
  index permutation for load balancing;
* insertion experiments pre-load half of the non-zeros and draw batches
  from the remaining half;
* update / deletion experiments pre-load the full matrix and draw batches
  from the existing non-zeros;
* dynamic-SpGEMM experiments grow the left operand from empty by drawing
  insertions from the adjacency matrix while the right operand stays fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed import IndexPermutation, partition_tuples_round_robin
from repro.graphs import generate_instance

__all__ = ["InstanceWorkload", "prepare_instance", "draw_batch", "split_batches"]

TupleArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass
class InstanceWorkload:
    """A prepared (permuted) instance plus update pools."""

    name: str
    n: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    permutation: IndexPermutation

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    def all_tuples_per_rank(self, n_ranks: int, *, seed: int = 0) -> dict[int, TupleArrays]:
        """The full adjacency matrix scattered round-robin over ranks."""
        return partition_tuples_round_robin(
            self.rows, self.cols, self.values, n_ranks, seed=seed
        )

    def split_half(self, *, seed: int = 0) -> tuple[TupleArrays, TupleArrays]:
        """(initial half, insertion pool) split of the non-zeros."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.nnz)
        half = self.nnz // 2
        first, second = order[:half], order[half:]
        return (
            (self.rows[first], self.cols[first], self.values[first]),
            (self.rows[second], self.cols[second], self.values[second]),
        )


def prepare_instance(
    name: str,
    *,
    scale_divisor: int,
    seed: int = 0,
    permute: bool = True,
    weights: str = "uniform",
) -> InstanceWorkload:
    """Generate a surrogate instance and apply the random permutation."""
    n, rows, cols, values = generate_instance(
        name, scale_divisor=scale_divisor, seed=seed, weights=weights
    )
    perm = IndexPermutation(n, seed=seed + 17) if permute else IndexPermutation.identity(n)
    rows = perm.apply(rows)
    cols = perm.apply(cols)
    return InstanceWorkload(
        name=name, n=n, rows=rows, cols=cols, values=values, permutation=perm
    )


def draw_batch(
    pool: TupleArrays,
    batch_total: int,
    *,
    seed: int = 0,
    replace: bool = True,
) -> TupleArrays:
    """Draw a batch of tuples uniformly at random from a pool."""
    rows, cols, values = pool
    if rows.size == 0:
        return rows, cols, values
    rng = np.random.default_rng(seed)
    size = int(batch_total) if replace else min(int(batch_total), rows.size)
    idx = rng.choice(rows.size, size=size, replace=replace)
    return rows[idx], cols[idx], values[idx]


def split_batches(
    pool: TupleArrays,
    n_batches: int,
    batch_total: int,
    *,
    seed: int = 0,
) -> list[TupleArrays]:
    """Draw ``n_batches`` disjoint batches from a pool (without replacement).

    Used for deletion experiments where deleting the same entry twice would
    distort the measurement; falls back to sampling with replacement across
    batches when the pool is too small.
    """
    rows, cols, values = pool
    rng = np.random.default_rng(seed)
    needed = n_batches * batch_total
    if rows.size >= needed:
        idx = rng.choice(rows.size, size=needed, replace=False)
    else:
        idx = rng.choice(rows.size, size=needed, replace=True)
    batches = []
    for b in range(n_batches):
        sel = idx[b * batch_total : (b + 1) * batch_total]
        batches.append((rows[sel], cols[sel], values[sel]))
    return batches
