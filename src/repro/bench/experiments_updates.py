"""Experiment drivers for the data-structure evaluation (Table I, Figs. 2–8).

Every batched protocol is expressed as a replayable
:class:`~repro.scenarios.model.Scenario` (built by the ``*_scenario``
helpers in :mod:`repro.bench.workloads`) and executed through
:meth:`Scenario.replay` with a
:class:`~repro.scenarios.replay.CompetitorExecutor` bound to the backend
under measurement — one trace, every system, identical batches.
"""

from __future__ import annotations

import numpy as np

from repro.runtime import MachineModel, StatCategory, make_communicator
from repro.graphs import TABLE1_INSTANCES, rmat_edges
from repro.competitors import get_backend
from repro.scenarios import CompetitorExecutor, Scenario, ScenarioResult
from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentResult
from repro.bench.workloads import (
    batched_operation_scenario,
    construction_scenario,
    prepare_instance,
)

__all__ = [
    "run_table1",
    "run_construction",
    "run_insertions",
    "run_updates_deletions",
    "run_insert_weak_scaling",
    "run_insert_breakdown",
    "run_rmat_scaling",
]

DEFAULT_BACKENDS = ("ours", "combblas", "ctf", "petsc")


def _replay_on_backend(
    scenario: Scenario,
    backend_name: str,
    *,
    n_ranks: int,
    machine: MachineModel,
) -> ScenarioResult:
    """Replay a scenario against one benchmark backend (fresh communicator)."""
    comm = make_communicator(n_ranks=n_ranks, machine=machine)
    return scenario.replay(
        comm=comm,
        executor_factory=CompetitorExecutor.factory(backend_name),
        check_snapshots=False,
        collect_final=False,
    )


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def run_table1(profile: BenchProfile | None = None) -> ExperimentResult:
    """Table I: the instance catalogue and the surrogate sizes used here."""
    profile = profile or get_profile()
    result = ExperimentResult(
        experiment="table_1",
        title="Real-world instances and their scaled surrogates",
        columns=[
            "instance",
            "source",
            "type",
            "n_paper",
            "nnz_paper",
            "n_surrogate",
            "nnz_surrogate",
        ],
        metadata={"scale_divisor": profile.scale_divisor, "profile": profile.name},
    )
    for name, inst in TABLE1_INSTANCES.items():
        workload = prepare_instance(
            name, scale_divisor=profile.scale_divisor, seed=1, permute=False
        )
        result.add_row(
            name,
            inst.source,
            inst.category,
            inst.n_full,
            inst.nnz_full,
            workload.n,
            workload.nnz,
        )
    return result


# ----------------------------------------------------------------------
# Figures 2/3: construction
# ----------------------------------------------------------------------
def run_construction(
    profile: BenchProfile | None = None,
    *,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
) -> ExperimentResult:
    """Fig. 2/3: adjacency-matrix construction, relative to CombBLAS."""
    profile = profile or get_profile()
    p = profile.n_ranks
    result = ExperimentResult(
        experiment="figure_3",
        title="Matrix construction performance (relative to CombBLAS)",
        columns=["instance", "backend", "time_ms", "relative_to_combblas"],
        metadata={
            "profile": profile.name,
            "n_ranks": p,
            "scale_divisor": profile.scale_divisor,
            "protocol": "scenario:construction",
            "note": "relative > 1 means faster than CombBLAS (as in Fig. 2/3)",
        },
    )
    for name in profile.instances:
        workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=3)
        scenario = construction_scenario(
            f"{name}:construction",
            (workload.n, workload.n),
            workload.all_tuples(),
            seed=5,
        )
        times: dict[str, float] = {}
        for backend_name in backends:
            replayed = _replay_on_backend(
                scenario, backend_name, n_ranks=p, machine=profile.machine
            )
            times[backend_name] = replayed.steps[0].seconds
        base = times.get("combblas")
        for backend_name in backends:
            rel = (base / times[backend_name]) if base else float("nan")
            result.add_row(name, backend_name, times[backend_name] * 1e3, rel)
    return result


# ----------------------------------------------------------------------
# Figure 4: insertions; Figure 5: updates and deletions
# ----------------------------------------------------------------------
def _run_batched_operation(
    operation: str,
    profile: BenchProfile,
    backends: tuple[str, ...],
) -> ExperimentResult:
    p = profile.n_ranks
    figure = {"insert": "figure_4", "update": "figure_5a", "delete": "figure_5b"}[operation]
    result = ExperimentResult(
        experiment=figure,
        title=f"Mean {operation} performance vs. batch size (per-rank batch sizes)",
        columns=["instance", "backend", "batch_per_rank", "mean_time_ms", "time_per_nnz_ns"],
        metadata={
            "profile": profile.name,
            "n_ranks": p,
            "batches_per_config": profile.batches_per_config,
            "scale_divisor": profile.scale_divisor,
            "protocol": f"scenario:{operation}",
        },
    )
    for name in profile.instances:
        workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=7)
        # One scenario per batch size, replayed on every backend: identical
        # batches and scatter seeds for all systems under comparison.
        scenarios = {
            batch_per_rank: batched_operation_scenario(
                workload,
                operation,
                n_batches=profile.batches_per_config,
                batch_total=batch_per_rank * p,
                seed=17,
            )
            for batch_per_rank in profile.update_batch_sizes
        }
        for backend_name in backends:
            backend_cls = get_backend(backend_name)
            if operation == "delete" and not backend_cls.supports_deletions:
                continue
            for batch_per_rank in profile.update_batch_sizes:
                batch_total = batch_per_rank * p
                replayed = _replay_on_backend(
                    scenarios[batch_per_rank],
                    backend_name,
                    n_ranks=p,
                    machine=profile.machine,
                )
                if not replayed.measured_steps():
                    continue
                mean_s = replayed.trimmed_mean_step_seconds()
                result.add_row(
                    name,
                    backend_name,
                    batch_per_rank,
                    mean_s * 1e3,
                    mean_s / batch_total * 1e9,
                )
    return result


def run_insertions(
    profile: BenchProfile | None = None,
    *,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
) -> ExperimentResult:
    """Fig. 4: mean insertion time per batch vs. per-rank batch size."""
    return _run_batched_operation("insert", profile or get_profile(), backends)


def run_updates_deletions(
    profile: BenchProfile | None = None,
    *,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    operation: str = "update",
) -> ExperimentResult:
    """Fig. 5a (updates) / Fig. 5b (deletions)."""
    if operation not in ("update", "delete"):
        raise ValueError("operation must be 'update' or 'delete'")
    return _run_batched_operation(operation, profile or get_profile(), backends)


# ----------------------------------------------------------------------
# Figures 6 and 7: weak scaling of insertions and time breakdown
# ----------------------------------------------------------------------
def _insertion_scaling_run(
    n_ranks: int,
    profile: BenchProfile,
    *,
    instance: str | None = None,
    machine: MachineModel | None = None,
) -> tuple[float, int, dict[str, float]]:
    """One weak-scaling data point: (mean batch seconds, batch nnz, breakdown)."""
    machine = machine or profile.machine
    name = instance or profile.instances[0]
    workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=23)
    batch_total = profile.weak_scaling_batch * n_ranks
    scenario = batched_operation_scenario(
        workload,
        "insert",
        n_batches=profile.batches_per_config,
        batch_total=batch_total,
        seed=29,
    )
    replayed = _replay_on_backend(scenario, "ours", n_ranks=n_ranks, machine=machine)
    breakdown = replayed.breakdown(StatCategory.INSERTION_BREAKDOWN)
    return replayed.trimmed_mean_step_seconds(), batch_total, breakdown


def run_insert_weak_scaling(profile: BenchProfile | None = None) -> ExperimentResult:
    """Fig. 6: weak scaling of insertions (time per inserted non-zero)."""
    profile = profile or get_profile()
    result = ExperimentResult(
        experiment="figure_6",
        title="Weak scalability of insertions (time per inserted non-zero)",
        columns=["n_ranks", "config", "batch_per_rank", "time_per_nnz_ns"],
        metadata={
            "profile": profile.name,
            "instance": profile.instances[0],
            "protocol": "scenario:insert",
        },
    )
    for n_ranks in profile.scaling_ranks:
        mean_s, batch_total, _ = _insertion_scaling_run(n_ranks, profile)
        config = f"{max(1, n_ranks // 4)}x4"
        result.add_row(
            n_ranks, config, profile.weak_scaling_batch, mean_s / batch_total * 1e9
        )
    return result


def run_insert_breakdown(profile: BenchProfile | None = None) -> ExperimentResult:
    """Fig. 7: breakdown of the insertion time into its phases."""
    profile = profile or get_profile()
    result = ExperimentResult(
        experiment="figure_7",
        title="Breakdown of insertion running time (per inserted non-zero)",
        columns=["n_ranks", "phase", "time_per_nnz_ns"],
        metadata={
            "profile": profile.name,
            "instance": profile.instances[0],
            "protocol": "scenario:insert",
        },
    )
    for n_ranks in profile.scaling_ranks:
        _, batch_total, breakdown = _insertion_scaling_run(n_ranks, profile)
        total_batches = profile.batches_per_config * batch_total
        for phase in StatCategory.INSERTION_BREAKDOWN:
            result.add_row(
                n_ranks, phase, breakdown.get(phase, 0.0) / total_batches * 1e9
            )
    return result


# ----------------------------------------------------------------------
# Figure 8: strong and weak scaling on R-MAT graphs
# ----------------------------------------------------------------------
def run_rmat_scaling(profile: BenchProfile | None = None) -> ExperimentResult:
    """Fig. 8a/8b: insertion scaling on synthetic R-MAT graphs."""
    profile = profile or get_profile()
    result = ExperimentResult(
        experiment="figure_8",
        title="Parallel scalability of insertions on R-MAT graphs",
        columns=["mode", "n_ranks", "total_insertions", "time_s", "speedup_or_ns_per_nnz"],
        metadata={
            "profile": profile.name,
            "strong_total_log2": profile.rmat_strong_total_log2,
            "weak_per_rank_log2": profile.rmat_weak_per_rank_log2,
            "protocol": "scenario:construction",
        },
    )
    # ---------------- strong scaling (fixed total insertions) ------------
    total = 1 << profile.rmat_strong_total_log2
    scale = max(8, profile.rmat_strong_total_log2 - 3)
    n_vertices, src, dst = rmat_edges(scale, max(1, total // (1 << scale)), seed=43)
    values = np.random.default_rng(47).random(src.size)
    src, dst, values = src[:total], dst[:total], values[:total]
    strong = construction_scenario(
        f"rmat-strong-2^{profile.rmat_strong_total_log2}",
        (n_vertices, n_vertices),
        (src, dst, values),
        seed=53,
    )
    baseline = None
    for n_ranks in profile.scaling_ranks:
        replayed = _replay_on_backend(
            strong, "ours", n_ranks=n_ranks, machine=profile.machine
        )
        seconds = replayed.steps[0].seconds
        if baseline is None:
            baseline = seconds
        speedup = baseline / seconds if seconds else float("nan")
        result.add_row("strong", n_ranks, total, seconds, speedup)
    # ---------------- weak scaling (fixed insertions per rank) -----------
    per_rank_count = 1 << profile.rmat_weak_per_rank_log2
    for n_ranks in profile.scaling_ranks:
        total_w = per_rank_count * n_ranks
        scale = max(8, int(np.ceil(np.log2(max(total_w // 8, 2)))))
        n_vertices, src, dst = rmat_edges(
            scale, max(1, total_w // (1 << scale)), seed=59 + n_ranks
        )
        values = np.random.default_rng(61).random(src.size)
        src, dst, values = src[:total_w], dst[:total_w], values[:total_w]
        weak = construction_scenario(
            f"rmat-weak-2^{profile.rmat_weak_per_rank_log2}x{n_ranks}",
            (n_vertices, n_vertices),
            (src, dst, values),
            seed=67,
        )
        replayed = _replay_on_backend(
            weak, "ours", n_ranks=n_ranks, machine=profile.machine
        )
        seconds = replayed.steps[0].seconds
        result.add_row(
            "weak", n_ranks, total_w, seconds, seconds / total_w * 1e9
        )
    return result
