"""Result containers and plain-text reporting for the benchmark harness.

Every experiment driver returns an :class:`ExperimentResult`: the
identifier of the paper artefact it reproduces (e.g. ``"figure_9"``), the
column names, the measured rows, and free-form metadata (profile, instance,
machine model).  :func:`print_result` renders the same rows/series the
paper's plot shows, and :func:`ExperimentResult.to_json` feeds
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["ExperimentResult", "format_table", "print_result"]


@dataclass
class ExperimentResult:
    """Structured result of one experiment driver."""

    #: paper artefact this reproduces, e.g. "table_1", "figure_4"
    experiment: str
    #: one-line description
    title: str
    #: column names of ``rows``
    columns: list[str]
    #: measured rows (aligned with ``columns``)
    rows: list[list[Any]] = field(default_factory=list)
    #: free-form metadata (profile, instance names, parameters, caveats)
    metadata: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values ({self.columns}), got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def filtered(self, **criteria: Any) -> list[list[Any]]:
        """Rows whose named columns equal the given values."""
        idxs = {self.columns.index(k): v for k, v in criteria.items()}
        return [
            row for row in self.rows if all(row[i] == v for i, v in idxs.items())
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "metadata": self.metadata,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=_json_default)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())


def _json_default(obj: Any) -> Any:
    try:
        import numpy as np

        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
    except ImportError:  # pragma: no cover
        pass
    return str(obj)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: Iterable[str], rows: Iterable[Iterable[Any]]) -> str:
    """Render rows as a fixed-width text table."""
    columns = [str(c) for c in columns]
    str_rows = [[_format_value(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    sep = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in str_rows
    )
    return "\n".join([header, sep, body]) if str_rows else "\n".join([header, sep])


def print_result(result: ExperimentResult) -> None:
    """Print an experiment result in the same layout as the paper's figure."""
    print(f"\n=== {result.experiment}: {result.title} ===")
    if result.metadata:
        for key, value in sorted(result.metadata.items()):
            print(f"# {key}: {value}")
    print(format_table(result.columns, result.rows))
