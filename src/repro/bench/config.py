"""Benchmark scale profiles.

The paper's workloads (billions of non-zeros, 64 MPI ranks, 100 Gbit
interconnect) are scaled down so the simulation finishes in minutes on one
core.  A :class:`BenchProfile` bundles every scaling knob so the same
experiment code can run at three sizes:

* ``smoke``   — seconds; used by the benchmark suite's default run and CI.
* ``default`` — a couple of minutes; the scale used for EXPERIMENTS.md.
* ``large``   — tens of minutes; closest to the paper's regime.

Select a profile with the ``REPRO_BENCH_PROFILE`` environment variable
(``smoke`` is the default so that ``pytest benchmarks/`` stays fast).

The SpGEMM experiments additionally use a *paper-regime* machine model: the
paper's data is ~10³–10⁴× larger than the surrogates, so keeping the
100 Gbit-link parameters would make communication (the quantity the dynamic
algorithm optimises) vanish next to the interpreted local compute.  The
paper-regime model scales the latency/bandwidth terms so that the
communication : computation balance is representative of the original
experiments; DESIGN.md and EXPERIMENTS.md document this calibration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.runtime.config import MachineModel

__all__ = ["BenchProfile", "PROFILES", "get_profile", "paper_regime_machine"]


def paper_regime_machine() -> MachineModel:
    """Machine model with communication scaled to the surrogate data size."""
    return MachineModel(
        alpha=5.0e-5,
        beta=2.0e-8,
        intra_node_alpha=1.0e-5,
        intra_node_beta=5.0e-9,
    )


@dataclass(frozen=True)
class BenchProfile:
    """All scaling knobs of the benchmark suite."""

    name: str
    #: simulated MPI ranks for the single-configuration experiments
    n_ranks: int
    #: divisor applied to the Table-I instance sizes
    scale_divisor: int
    #: instances used for the per-instance experiments (Figs. 2–5, 9, 10)
    instances: tuple[str, ...]
    #: per-rank batch sizes for the insertion/update/deletion experiments
    update_batch_sizes: tuple[int, ...]
    #: per-rank batch sizes for the algebraic dynamic SpGEMM experiment
    spgemm_batch_sizes: tuple[int, ...]
    #: per-rank batch sizes for the general dynamic SpGEMM experiment
    spgemm_general_batch_sizes: tuple[int, ...]
    #: batches measured per configuration (the paper uses 10)
    batches_per_config: int
    #: rank counts for the scaling experiments (paper: 4, 16, 64)
    scaling_ranks: tuple[int, ...]
    #: per-rank insertions for the weak-scaling experiments
    weak_scaling_batch: int
    #: per-rank non-zeros for the SpGEMM weak-scaling experiment (Fig. 11)
    spgemm_scaling_nnz_per_rank: int
    #: R-MAT scale (log2 of total insertions) for the strong-scaling run
    rmat_strong_total_log2: int
    #: R-MAT insertions per rank (log2) for the weak-scaling run
    rmat_weak_per_rank_log2: int
    #: machine model for the data-structure experiments
    machine: MachineModel = field(default_factory=MachineModel)
    #: machine model for the SpGEMM experiments (paper-regime calibration)
    spgemm_machine: MachineModel = field(default_factory=paper_regime_machine)


PROFILES: dict[str, BenchProfile] = {
    "smoke": BenchProfile(
        name="smoke",
        n_ranks=16,
        scale_divisor=4096,
        instances=("LiveJournal", "orkut"),
        update_batch_sizes=(16, 64, 256),
        spgemm_batch_sizes=(8, 32),
        spgemm_general_batch_sizes=(8, 16),
        batches_per_config=4,
        scaling_ranks=(4, 16),
        weak_scaling_batch=256,
        spgemm_scaling_nnz_per_rank=512,
        rmat_strong_total_log2=14,
        rmat_weak_per_rank_log2=10,
    ),
    "default": BenchProfile(
        name="default",
        n_ranks=16,
        scale_divisor=1024,
        instances=("LiveJournal", "orkut", "tech-p2p", "indochina", "uk2002"),
        update_batch_sizes=(32, 64, 128, 256, 512, 1024),
        spgemm_batch_sizes=(32, 64, 128, 256),
        spgemm_general_batch_sizes=(16, 32, 64, 128),
        batches_per_config=3,
        scaling_ranks=(4, 16, 64),
        weak_scaling_batch=1024,
        spgemm_scaling_nnz_per_rank=1024,
        rmat_strong_total_log2=17,
        rmat_weak_per_rank_log2=12,
    ),
    "large": BenchProfile(
        name="large",
        n_ranks=16,
        scale_divisor=256,
        instances=(
            "LiveJournal",
            "orkut",
            "tech-p2p",
            "indochina",
            "uk2002",
            "sinaweibo",
        ),
        update_batch_sizes=(32, 64, 128, 256, 512, 1024, 2048, 4096),
        spgemm_batch_sizes=(32, 64, 128, 256, 512),
        spgemm_general_batch_sizes=(16, 32, 64, 128, 256),
        batches_per_config=5,
        scaling_ranks=(4, 16, 64),
        weak_scaling_batch=2048,
        spgemm_scaling_nnz_per_rank=2048,
        rmat_strong_total_log2=19,
        rmat_weak_per_rank_log2=14,
    ),
}


def get_profile(name: str | None = None) -> BenchProfile:
    """Resolve a profile by name or from ``REPRO_BENCH_PROFILE``."""
    if name is None:
        name = os.environ.get("REPRO_BENCH_PROFILE", "smoke")
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(PROFILES)
        raise KeyError(
            f"unknown benchmark profile {name!r}; known profiles: {known}"
        ) from None
