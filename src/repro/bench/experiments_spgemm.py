"""Experiment drivers for the dynamic SpGEMM evaluation (Figs. 9–12).

The update-stream protocols are expressed as replayable scenarios
(:func:`repro.bench.workloads.spgemm_stream_scenario`): our approach
replays them natively through :meth:`Scenario.replay` (Algorithm 1 / 2),
while the competitor loops iterate the *same* scenario steps — identical
batches and scatter seeds for every system under comparison.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.runtime import ProcessGrid, StatCategory, make_communicator
from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import CSRMatrix, COOMatrix
from repro.distributed import (
    DynamicDistMatrix,
    StaticDistMatrix,
    build_update_matrix,
)
from repro.competitors import (
    static_spgemm_combblas,
    static_spgemm_ctf,
    static_spgemm_petsc_1d,
)
from repro.competitors.combblas import CombBLASBackend
from repro.scenarios import (
    NativeExecutor,
    Scenario,
    ScenarioResult,
    trimmed_mean_seconds,
)
from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentResult
from repro.bench.workloads import prepare_instance, spgemm_stream_scenario

__all__ = [
    "run_spgemm_algebraic",
    "run_spgemm_general",
    "run_spgemm_weak_scaling",
    "run_spgemm_breakdown",
]

SPGEMM_BACKENDS = ("ours", "combblas", "ctf", "petsc")


def _replay_ours(
    scenario: Scenario, *, n_ranks: int, machine
) -> ScenarioResult:
    """Replay a SpGEMM scenario natively (CSR operand, DCSR updates)."""
    comm = make_communicator(n_ranks=n_ranks, machine=machine)
    return scenario.replay(
        comm=comm,
        layout="csr",
        executor_factory=partial(NativeExecutor, update_layout="dcsr"),
        check_snapshots=False,
        collect_final=False,
    )


def _petsc_row_offsets(n_rows: int, parts: int) -> np.ndarray:
    base = n_rows // parts
    rem = n_rows % parts
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:rem] += 1
    offsets = np.zeros(parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def _petsc_rows(
    batch: tuple[np.ndarray, np.ndarray, np.ndarray],
    shape: tuple[int, int],
    row_offsets: np.ndarray,
    n_ranks: int,
    semiring,
) -> dict[int, CSRMatrix]:
    """1D row-distributed CSR slices of a batch (local row indices)."""
    rows, cols, vals = batch
    owners = (np.searchsorted(row_offsets, rows, side="right") - 1).astype(np.int64)
    out: dict[int, CSRMatrix] = {}
    for rank in range(n_ranks):
        sel = owners == rank
        local_rows = rows[sel] - row_offsets[rank]
        local_shape = (int(row_offsets[rank + 1] - row_offsets[rank]), shape[1])
        coo = COOMatrix(
            shape=local_shape,
            rows=local_rows,
            cols=cols[sel],
            values=semiring.coerce(vals[sel]),
            semiring=semiring,
        )
        out[rank] = CSRMatrix.from_coo(coo)
    return out


def _b_static_from_scenario(
    comm, grid, scenario: Scenario, semiring
) -> StaticDistMatrix:
    """The fixed right operand of a scenario as a CSR static matrix."""
    from repro.distributed import partition_tuples_round_robin

    per_rank = partition_tuples_round_robin(
        *scenario.b_tuples, grid.n_ranks, seed=scenario.construct_seed
    )
    return StaticDistMatrix.from_tuples(
        comm, grid, scenario.shape, per_rank, semiring, layout="csr"
    )


# ----------------------------------------------------------------------
# Figure 9: algebraic case
# ----------------------------------------------------------------------
def run_spgemm_algebraic(
    profile: BenchProfile | None = None,
    *,
    backends: tuple[str, ...] = SPGEMM_BACKENDS,
    instance: str | None = None,
) -> ExperimentResult:
    """Fig. 9: dynamic SpGEMM with algebraic updates (``(+, ·)`` semiring).

    ``C' = A'·B`` where ``B`` is the (static) adjacency matrix and ``A'``
    grows from the zero matrix by batches of insertions drawn from the
    adjacency matrix.  Our approach replays the scenario natively
    (Algorithm 1, ``C += A*·B``); the competitors iterate the same scenario
    steps and compute ``A*·B`` with their static distributed SpGEMM.
    """
    profile = profile or get_profile()
    p = profile.n_ranks
    grid = ProcessGrid(p)
    name = instance or profile.instances[0]
    workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=71)
    shape = (workload.n, workload.n)

    result = ExperimentResult(
        experiment="figure_9",
        title="Mean dynamic SpGEMM time, algebraic case (per batch)",
        columns=["instance", "backend", "batch_per_rank", "mean_time_ms"],
        metadata={
            "profile": profile.name,
            "instance": name,
            "n_ranks": p,
            "semiring": "plus_times",
            "batches_per_config": profile.batches_per_config,
            "protocol": "scenario:spgemm-algebraic",
        },
    )

    for batch_per_rank in profile.spgemm_batch_sizes:
        batch_total = batch_per_rank * p
        scenario = spgemm_stream_scenario(
            workload,
            n_batches=profile.batches_per_config,
            batch_total=batch_total,
            mode="algebraic",
            seed=79,
        )
        for backend_name in backends:
            if backend_name == "ours":
                replayed = _replay_ours(
                    scenario, n_ranks=p, machine=profile.spgemm_machine
                )
                mean_s = replayed.trimmed_mean_step_seconds()
                result.add_row(name, backend_name, batch_per_rank, mean_s * 1e3)
                continue
            comm = make_communicator(n_ranks=p, machine=profile.spgemm_machine)
            # B: full adjacency, static CSR blocks (not part of measured time)
            b_static = _b_static_from_scenario(comm, grid, scenario, PLUS_TIMES)
            c_dyn = DynamicDistMatrix.empty(comm, grid, shape, PLUS_TIMES)
            a_dyn = DynamicDistMatrix.empty(comm, grid, shape, PLUS_TIMES)
            petsc_ranks = max(1, p // comm.machine.ranks_per_node)
            petsc_offsets = _petsc_row_offsets(shape[0], petsc_ranks)
            b_global_csr = (
                CSRMatrix.from_coo(b_static.to_coo_global())
                if backend_name == "petsc"
                else None
            )
            petsc_result_rows: dict[int, COOMatrix] = {}
            comm.reset_clock()
            times: list[float] = []
            for step in scenario.update_steps():
                per_rank = step.per_rank(p)
                with comm.timer() as timer:
                    if backend_name in ("combblas", "ctf"):
                        a_star = build_update_matrix(
                            comm,
                            grid,
                            a_dyn.dist,
                            per_rank,
                            PLUS_TIMES,
                            layout="dcsr",
                            redistribution="single_phase",
                        )
                        if backend_name == "combblas":
                            static_spgemm_combblas(
                                comm, grid, a_star, b_static, accumulate_into=c_dyn
                            )
                        else:
                            static_spgemm_ctf(
                                comm, grid, a_star, b_static, accumulate_into=c_dyn
                            )
                        a_dyn.add_update(a_star)
                    else:  # petsc
                        static_spgemm_petsc_1d(
                            comm,
                            _petsc_rows(
                                step.tuples(), shape, petsc_offsets, petsc_ranks, PLUS_TIMES
                            ),
                            petsc_offsets,
                            b_global_csr,
                            semiring=PLUS_TIMES,
                            n_ranks=petsc_ranks,
                            accumulate_into=petsc_result_rows,
                        )
                times.append(timer.seconds)
            result.add_row(
                name, backend_name, batch_per_rank, trimmed_mean_seconds(times) * 1e3
            )
    return result


# ----------------------------------------------------------------------
# Figure 10: general case
# ----------------------------------------------------------------------
def run_spgemm_general(
    profile: BenchProfile | None = None,
    *,
    backends: tuple[str, ...] = SPGEMM_BACKENDS,
    instance: str | None = None,
) -> ExperimentResult:
    """Fig. 10: dynamic SpGEMM with general updates (``(min, +)`` semiring).

    Value updates to ``A'`` are not expressible as additions for the
    competitors' workflow, so they must recompute ``A'·B`` from scratch
    every batch; our approach replays the scenario natively (Algorithm 2,
    masked recomputation driven by the Bloom filter).  PETSc does not
    support other semirings and keeps ``(+, ·)``, as in the paper.
    """
    profile = profile or get_profile()
    p = profile.n_ranks
    grid = ProcessGrid(p)
    name = instance or profile.instances[0]
    workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=89)
    shape = (workload.n, workload.n)

    result = ExperimentResult(
        experiment="figure_10",
        title="Mean dynamic SpGEMM time, general case (per batch)",
        columns=["instance", "backend", "batch_per_rank", "mean_time_ms"],
        metadata={
            "profile": profile.name,
            "instance": name,
            "n_ranks": p,
            "semiring": "min_plus (plus_times for PETSc)",
            "batches_per_config": profile.batches_per_config,
            "protocol": "scenario:spgemm-general",
        },
    )

    for batch_per_rank in profile.spgemm_general_batch_sizes:
        batch_total = batch_per_rank * p
        scenario = spgemm_stream_scenario(
            workload,
            n_batches=profile.batches_per_config,
            batch_total=batch_total,
            mode="general",
            kind="update",
            semiring_name="min_plus",
            seed=101,
        )
        for backend_name in backends:
            times: list[float] = []
            if backend_name == "ours":
                replayed = _replay_ours(
                    scenario, n_ranks=p, machine=profile.spgemm_machine
                )
                result.add_row(
                    name,
                    backend_name,
                    batch_per_rank,
                    replayed.trimmed_mean_step_seconds() * 1e3,
                )
                continue
            comm = make_communicator(n_ranks=p, machine=profile.spgemm_machine)
            if backend_name in ("combblas", "ctf"):
                b_static = _b_static_from_scenario(comm, grid, scenario, MIN_PLUS)
                a_backend = CombBLASBackend(comm, grid, shape, MIN_PLUS)
                comm.reset_clock()
                for step in scenario.update_steps():
                    per_rank = step.per_rank(p)
                    with comm.timer() as timer:
                        a_backend.update_batch(per_rank)
                        a_prime = a_backend.as_static_dist()
                        if backend_name == "combblas":
                            static_spgemm_combblas(
                                comm, grid, a_prime, b_static, semiring=MIN_PLUS
                            )
                        else:
                            static_spgemm_ctf(
                                comm, grid, a_prime, b_static, semiring=MIN_PLUS
                            )
                    times.append(timer.seconds)
            else:  # petsc, (+, ·) only
                petsc_ranks = max(1, p // comm.machine.ranks_per_node)
                petsc_offsets = _petsc_row_offsets(shape[0], petsc_ranks)
                b_global_csr = CSRMatrix.from_coo(
                    COOMatrix(
                        shape,
                        workload.rows,
                        workload.cols,
                        workload.values,
                        PLUS_TIMES,
                    )
                )
                a_rows_acc: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
                comm.reset_clock()
                for step in scenario.update_steps():
                    a_rows_acc.append(step.tuples())
                    merged = (
                        np.concatenate([x[0] for x in a_rows_acc]),
                        np.concatenate([x[1] for x in a_rows_acc]),
                        np.concatenate([x[2] for x in a_rows_acc]),
                    )
                    with comm.timer() as timer:
                        static_spgemm_petsc_1d(
                            comm,
                            _petsc_rows(merged, shape, petsc_offsets, petsc_ranks, PLUS_TIMES),
                            petsc_offsets,
                            b_global_csr,
                            semiring=PLUS_TIMES,
                            n_ranks=petsc_ranks,
                        )
                    times.append(timer.seconds)
            result.add_row(
                name, backend_name, batch_per_rank, trimmed_mean_seconds(times) * 1e3
            )
    return result


# ----------------------------------------------------------------------
# Figures 11 and 12: weak scaling and breakdown of the algebraic algorithm
# ----------------------------------------------------------------------
def _spgemm_scaling_run(
    n_ranks: int, profile: BenchProfile, *, instance: str | None = None
) -> tuple[float, int, dict[str, float]]:
    name = instance or profile.instances[0]
    workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=109)
    batch_total = profile.spgemm_scaling_nnz_per_rank * n_ranks
    scenario = spgemm_stream_scenario(
        workload,
        n_batches=profile.batches_per_config,
        batch_total=batch_total,
        mode="algebraic",
        seed=127,
    )
    replayed = _replay_ours(scenario, n_ranks=n_ranks, machine=profile.spgemm_machine)
    breakdown = replayed.breakdown(StatCategory.SPGEMM_BREAKDOWN)
    return replayed.trimmed_mean_step_seconds(), batch_total, breakdown


def run_spgemm_weak_scaling(profile: BenchProfile | None = None) -> ExperimentResult:
    """Fig. 11: weak scalability of the algebraic dynamic SpGEMM."""
    profile = profile or get_profile()
    result = ExperimentResult(
        experiment="figure_11",
        title="Weak scalability of dynamic SpGEMM (algebraic case)",
        columns=["n_ranks", "config", "nnz_per_rank", "time_per_nnz_us"],
        metadata={
            "profile": profile.name,
            "instance": profile.instances[0],
            "protocol": "scenario:spgemm-algebraic",
        },
    )
    for n_ranks in profile.scaling_ranks:
        mean_s, batch_total, _ = _spgemm_scaling_run(n_ranks, profile)
        config = f"{max(1, n_ranks // 4)}x4"
        result.add_row(
            n_ranks,
            config,
            profile.spgemm_scaling_nnz_per_rank,
            mean_s / batch_total * 1e6,
        )
    return result


def run_spgemm_breakdown(profile: BenchProfile | None = None) -> ExperimentResult:
    """Fig. 12: breakdown of the algebraic dynamic SpGEMM running time."""
    profile = profile or get_profile()
    result = ExperimentResult(
        experiment="figure_12",
        title="Breakdown of dynamic SpGEMM running time (per non-zero)",
        columns=["n_ranks", "phase", "time_per_nnz_us"],
        metadata={
            "profile": profile.name,
            "instance": profile.instances[0],
            "protocol": "scenario:spgemm-algebraic",
        },
    )
    for n_ranks in profile.scaling_ranks:
        _, batch_total, breakdown = _spgemm_scaling_run(n_ranks, profile)
        total_nnz = profile.batches_per_config * batch_total
        for phase in StatCategory.SPGEMM_BREAKDOWN:
            result.add_row(
                n_ranks, phase, breakdown.get(phase, 0.0) / total_nnz * 1e6
            )
    return result
