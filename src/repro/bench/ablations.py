"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures of the paper but isolate the individual mechanisms the
paper's design rests on, so the contribution of each can be measured
separately:

1. two-phase vs. single-phase redistribution, counting vs. comparison sort;
2. broadcast-the-update (Algorithm 1) vs. SUMMA as the update density grows
   (the crossover the paper predicts in Section VII-C);
3. Bloom-filter column filtering on/off in the general algorithm;
4. dynamic DHB blocks vs. rebuilding static DCSR blocks per batch.
"""

from __future__ import annotations

import numpy as np

from repro.runtime import ProcessGrid, make_communicator
from repro.semirings import PLUS_TIMES
from repro.distributed import (
    BlockDistribution,
    DynamicDistMatrix,
    StaticDistMatrix,
    build_update_matrix,
    partition_tuples_round_robin,
    redistribute_tuples,
    redistribute_tuples_single_phase,
)
from repro.core import dynamic_spgemm_algebraic, summa_spgemm
from repro.competitors import CombBLASBackend, OurBackend
from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentResult
from repro.bench.workloads import draw_batch, prepare_instance, spawn_batch_seeds

__all__ = [
    "run_redistribution_ablation",
    "run_summa_crossover_ablation",
    "run_dynamic_storage_ablation",
]


def run_redistribution_ablation(profile: BenchProfile | None = None) -> ExperimentResult:
    """Two-phase counting-sort vs. single-phase comparison-sort routing."""
    profile = profile or get_profile()
    p = profile.n_ranks
    grid = ProcessGrid(p)
    name = profile.instances[0]
    workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=137)
    dist = BlockDistribution(workload.n, workload.n, grid)
    result = ExperimentResult(
        experiment="ablation_redistribution",
        title="Update-tuple redistribution strategies",
        columns=["strategy", "sort_mode", "tuples", "time_ms", "bytes_moved"],
        metadata={"profile": profile.name, "instance": name, "n_ranks": p},
    )
    batch_total = max(profile.update_batch_sizes) * p
    batch = draw_batch((workload.rows, workload.cols, workload.values), batch_total, seed=139)
    per_rank = partition_tuples_round_robin(*batch, p, seed=149)
    configs = [
        ("two_phase", "counting", redistribute_tuples, {"sort_mode": "counting"}),
        ("two_phase", "comparison", redistribute_tuples, {"sort_mode": "comparison"}),
        ("single_phase", "comparison", redistribute_tuples_single_phase, {"sort_mode": "comparison"}),
        ("single_phase", "counting", redistribute_tuples_single_phase, {"sort_mode": "counting"}),
    ]
    for strategy, sort_mode, fn, kwargs in configs:
        comm = make_communicator(n_ranks=p, machine=profile.machine)
        with comm.timer() as timer:
            fn(comm, grid, dist, per_rank, **kwargs)
        result.add_row(
            strategy, sort_mode, batch_total, timer.seconds * 1e3, comm.stats.total_bytes()
        )
    return result


def run_summa_crossover_ablation(profile: BenchProfile | None = None) -> ExperimentResult:
    """Algorithm 1 vs. sparse SUMMA as the update matrix gets denser.

    The paper expects the dynamic algorithm to lose its advantage once the
    update matrices stop being hypersparse (Section VII-C); this ablation
    sweeps the update density to find the crossover on the simulated
    machine.
    """
    profile = profile or get_profile()
    p = profile.n_ranks
    grid = ProcessGrid(p)
    name = profile.instances[0]
    workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=151)
    shape = (workload.n, workload.n)
    pool = (workload.rows, workload.cols, workload.values)
    result = ExperimentResult(
        experiment="ablation_summa_crossover",
        title="Dynamic algorithm vs. SUMMA as a function of update density",
        columns=["update_fraction", "update_nnz", "dynamic_ms", "summa_ms", "dynamic_speedup"],
        metadata={"profile": profile.name, "instance": name, "n_ranks": p},
    )
    fractions = (0.01, 0.05, 0.2, 0.5, 1.0)
    for fraction in fractions:
        update_total = max(p, int(workload.nnz * fraction))
        comm = make_communicator(n_ranks=p, machine=profile.spgemm_machine)
        b_static = StaticDistMatrix.from_tuples(
            comm, grid, shape, workload.all_tuples_per_rank(p, seed=157), PLUS_TIMES
        )
        a_dyn = DynamicDistMatrix.empty(comm, grid, shape, PLUS_TIMES)
        c_dyn = DynamicDistMatrix.empty(comm, grid, shape, PLUS_TIMES)
        batch = draw_batch(pool, update_total, seed=163)
        per_rank = partition_tuples_round_robin(*batch, p, seed=167)
        a_star = build_update_matrix(comm, grid, a_dyn.dist, per_rank, PLUS_TIMES)
        with comm.timer() as t_dyn:
            dynamic_spgemm_algebraic(comm, grid, a_dyn, b_static, a_star, None, c_dyn)
        with comm.timer() as t_summa:
            summa_spgemm(comm, grid, a_star, b_static, output="static")
        speedup = t_summa.seconds / t_dyn.seconds if t_dyn.seconds else float("nan")
        result.add_row(
            fraction, a_star.nnz(), t_dyn.seconds * 1e3, t_summa.seconds * 1e3, speedup
        )
    return result


def run_dynamic_storage_ablation(profile: BenchProfile | None = None) -> ExperimentResult:
    """DHB dynamic blocks vs. rebuilding static blocks per batch."""
    profile = profile or get_profile()
    p = profile.n_ranks
    grid = ProcessGrid(p)
    name = profile.instances[0]
    workload = prepare_instance(name, scale_divisor=profile.scale_divisor, seed=173)
    initial_half, insert_pool = workload.split_half(seed=179)
    result = ExperimentResult(
        experiment="ablation_dynamic_storage",
        title="Dynamic DHB blocks vs. static rebuild per batch",
        columns=["storage", "batch_per_rank", "mean_insert_ms"],
        metadata={"profile": profile.name, "instance": name, "n_ranks": p},
    )
    for batch_per_rank in profile.update_batch_sizes[:3]:
        batch_total = batch_per_rank * p
        for storage, backend_cls in (("dhb_dynamic", OurBackend), ("static_rebuild", CombBLASBackend)):
            comm = make_communicator(n_ranks=p, machine=profile.machine)
            backend = backend_cls(comm, grid, (workload.n, workload.n))
            backend.construct(partition_tuples_round_robin(*initial_half, p, seed=181))
            total = 0.0
            draw_seeds = spawn_batch_seeds(191, profile.batches_per_config)
            for b in range(profile.batches_per_config):
                batch = draw_batch(insert_pool, batch_total, seed=draw_seeds[b])
                per_rank = partition_tuples_round_robin(*batch, p, seed=193 + b)
                with comm.timer() as timer:
                    backend.insert_batch(per_rank)
                total += timer.seconds
            result.add_row(storage, batch_per_rank, total / profile.batches_per_config * 1e3)
    return result
