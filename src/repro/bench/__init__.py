"""Benchmark harness: one driver per table / figure of the paper.

Every experiment driver returns a plain-data result object (series of rows
that mirror the corresponding plot in the paper) and is wrapped by a
``pytest-benchmark`` target under ``benchmarks/``.  Drivers take a
:class:`~repro.bench.config.BenchProfile` so that the same code can run as
a quick smoke test (CI), at the default scale used for EXPERIMENTS.md, or
at a larger scale.

Figure → driver map
-------------------
========  ==========================================================
Table I   :func:`repro.bench.experiments_updates.run_table1`
Fig 2/3   :func:`repro.bench.experiments_updates.run_construction`
Fig 4     :func:`repro.bench.experiments_updates.run_insertions`
Fig 5a/b  :func:`repro.bench.experiments_updates.run_updates_deletions`
Fig 6     :func:`repro.bench.experiments_updates.run_insert_weak_scaling`
Fig 7     :func:`repro.bench.experiments_updates.run_insert_breakdown`
Fig 8a/b  :func:`repro.bench.experiments_updates.run_rmat_scaling`
Fig 9     :func:`repro.bench.experiments_spgemm.run_spgemm_algebraic`
Fig 10    :func:`repro.bench.experiments_spgemm.run_spgemm_general`
Fig 11    :func:`repro.bench.experiments_spgemm.run_spgemm_weak_scaling`
Fig 12    :func:`repro.bench.experiments_spgemm.run_spgemm_breakdown`
ablations :mod:`repro.bench.ablations`
========  ==========================================================

The batched protocols behind Figs. 4–11 are expressed as replayable
scenarios (:mod:`repro.scenarios`) built by the ``*_scenario`` helpers in
:mod:`repro.bench.workloads`; the drivers replay one scenario per
configuration against every backend under comparison.
"""

from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentResult, format_table, print_result
from repro.bench.workloads import (
    batched_operation_scenario,
    construction_scenario,
    spgemm_stream_scenario,
)
from repro.bench import experiments_updates, experiments_spgemm, ablations, workloads

__all__ = [
    "BenchProfile",
    "get_profile",
    "ExperimentResult",
    "format_table",
    "print_result",
    "batched_operation_scenario",
    "construction_scenario",
    "spgemm_stream_scenario",
    "experiments_updates",
    "experiments_spgemm",
    "ablations",
    "workloads",
]
