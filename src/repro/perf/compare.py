"""Diff two ``BENCH_*.json`` documents and flag performance regressions.

Usage as a library::

    report = compare_documents(baseline_doc, current_doc, threshold=0.25)
    if report.regressed:
        ...

or as a CLI (the CI perf gate)::

    python -m repro.perf.compare BENCH_old.json BENCH_new.json --threshold 0.25

A metric regresses when ``current > baseline * (1 + threshold)`` **and**
the absolute slowdown exceeds ``--min-seconds`` (timing metrics only) — the
absolute floor keeps micro-phases with sub-millisecond medians from
tripping the gate on scheduler noise.  Compared metrics: per-run
``elapsed_seconds_median``, every shared ``phase_seconds_median`` entry and
the communication volume (``comm.bytes`` / ``comm.messages``, which must
not regress at all beyond the threshold since they are deterministic).
The CLI exits 1 when any regression is found, 2 on malformed inputs.

``--expect-speedup X`` flips the gate around: instead of tolerating a
bounded slowdown, every matched run's ``elapsed_seconds_median`` must be
at least ``X`` (a fraction, e.g. ``0.2``) *faster* than the baseline.
Per-phase timings are not compared in this mode — an optimisation such as
compute/communication overlap intentionally redistributes time between
phases — but the communication volume checks still apply, so the speedup
cannot come from silently doing less work.  This is the CI overlap gate:
``BENCH_overlap`` documents produced with ``REPRO_OVERLAP=off`` (baseline)
and ``on`` (current) are compared with ``--expect-speedup 0.2``.

``--expect-reduction METRIC=FRACTION`` (repeatable) gates arbitrary
deterministic metrics instead of wall-clock time: each matched run must
satisfy ``current <= baseline * (1 - FRACTION)`` for every requested
metric, and **only** the requested metrics are compared — nothing else.
Metric paths: ``comm.bytes``, ``comm.messages``,
``elapsed_seconds_median`` and ``counters.<name>``.  This is the CI
partitioning gate: ``BENCH_partition`` documents produced per placement
strategy are compared against the round-robin document with
``--expect-reduction counters.partition.max_nnz_share=...`` (nnz-aware)
or ``--expect-reduction comm.bytes=...`` (locality-aware), because each
strategy optimises its own metric and may legitimately be worse on the
other.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.perf.schema import BenchSchemaError, validate_bench

__all__ = [
    "Regression",
    "ComparisonReport",
    "compare_documents",
    "load_bench",
    "parse_expect_reduction",
    "main",
]

#: Default relative slowdown tolerated before a metric counts as regressed.
DEFAULT_THRESHOLD = 0.25

#: Default absolute floor (seconds) under which timing drift is ignored.
DEFAULT_MIN_SECONDS = 5e-4


@dataclass
class Regression:
    """One regressed metric of one ``backend × layout`` run."""

    #: run identifier, e.g. ``"sim/csr"``
    run: str
    #: metric name, e.g. ``"phase:replay/step"`` or ``"comm.bytes"``
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """``current / baseline`` (``inf`` when the baseline is zero)."""
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        """Human-readable one-liner for CLI output."""
        return (
            f"{self.run}: {self.metric} regressed "
            f"{self.baseline:.6g} -> {self.current:.6g} ({self.ratio:.2f}x)"
        )


@dataclass
class ComparisonReport:
    """Outcome of comparing two BENCH documents."""

    figure: str
    threshold: float
    regressions: list[Regression] = field(default_factory=list)
    #: runs present in only one of the documents (not comparable)
    unmatched_runs: list[str] = field(default_factory=list)
    #: metrics compared without finding a regression
    compared_metrics: int = 0

    @property
    def regressed(self) -> bool:
        """``True`` when at least one metric regressed."""
        return bool(self.regressions)


def _metric_value(run: Mapping[str, Any], metric: str) -> float:
    """Resolve a ``--expect-reduction`` metric path against one run entry.

    Supported paths: ``elapsed_seconds_median``, ``comm.bytes``,
    ``comm.messages`` and ``counters.<name>``.  A path that does not
    resolve (unknown shape, or a counter the run never recorded) raises
    ``ValueError`` so a typo fails the gate loudly instead of comparing
    nothing.
    """
    if metric == "elapsed_seconds_median":
        return float(run["elapsed_seconds_median"])
    if metric in ("comm.bytes", "comm.messages"):
        return float(run["comm"][metric.split(".", 1)[1]])
    if metric.startswith("counters."):
        name = metric.split(".", 1)[1]
        counters = run["counters"]
        if name not in counters:
            raise ValueError(
                f"run {_run_key(run)!r} has no counter {name!r} "
                f"(available: {sorted(counters) or 'none'})"
            )
        return float(counters[name])
    raise ValueError(
        f"unknown metric path {metric!r}: expected elapsed_seconds_median, "
        "comm.bytes, comm.messages or counters.<name>"
    )


def parse_expect_reduction(specs: list[str] | None) -> dict[str, float] | None:
    """Parse repeated ``METRIC=FRACTION`` CLI specs into a mapping."""
    if not specs:
        return None
    parsed: dict[str, float] = {}
    for spec in specs:
        metric, sep, fraction = spec.partition("=")
        if not sep or not metric:
            raise ValueError(
                f"malformed --expect-reduction {spec!r}: expected METRIC=FRACTION"
            )
        parsed[metric] = float(fraction)
    return parsed


def _run_key(run: Mapping[str, Any]) -> str:
    """Identity of one run within a document's ``runs[]`` series.

    Scenario-tagged runs (the ``apps`` figure emits one ``backend × csr``
    entry per application scenario) include the tag, so same-layout runs
    of different scenarios never collapse onto one key.
    """
    key = f"{run['backend']}/{run['layout']}"
    scenario = run.get("scenario")
    return f"{key}/{scenario}" if scenario else key


def compare_documents(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    expect_speedup: float | None = None,
    expect_reduction: Mapping[str, float] | None = None,
) -> ComparisonReport:
    """Compare two validated BENCH documents; see the module docstring.

    With ``expect_speedup`` set (a fraction in ``(0, 1)``), each matched
    run's ``elapsed_seconds_median`` must satisfy
    ``current <= baseline * (1 - expect_speedup)`` or the run is reported
    as a regression; phase timings are skipped and the communication
    volume checks keep their usual threshold semantics.

    With ``expect_reduction`` set (metric path -> required fractional
    reduction), **only** those metrics are compared: each matched run must
    satisfy ``current <= baseline * (1 - fraction)`` per metric.  The two
    expectation modes are mutually exclusive.
    """
    if expect_speedup is not None and not 0.0 < expect_speedup < 1.0:
        raise ValueError(f"expect_speedup must be in (0, 1), got {expect_speedup!r}")
    if expect_reduction is not None:
        if expect_speedup is not None:
            raise ValueError("expect_speedup and expect_reduction are exclusive")
        if not expect_reduction:
            raise ValueError("expect_reduction must name at least one metric")
        for metric, fraction in expect_reduction.items():
            if not 0.0 < fraction < 1.0:
                raise ValueError(
                    f"expect_reduction fraction for {metric!r} must be in (0, 1), "
                    f"got {fraction!r}"
                )
    validate_bench(baseline)
    validate_bench(current)
    if baseline["figure"] != current["figure"]:
        raise BenchSchemaError(
            f"documents describe different figures: "
            f"{baseline['figure']!r} vs {current['figure']!r}"
        )
    report = ComparisonReport(figure=str(current["figure"]), threshold=threshold)
    base_runs = {_run_key(run): run for run in baseline["runs"]}
    cur_runs = {_run_key(run): run for run in current["runs"]}
    report.unmatched_runs = sorted(set(base_runs) ^ set(cur_runs))

    def check(run: str, metric: str, base: float, cur: float, *, timing: bool) -> None:
        report.compared_metrics += 1
        if cur <= base * (1.0 + threshold):
            return
        if timing and (cur - base) < min_seconds:
            return
        report.regressions.append(
            Regression(run=run, metric=metric, baseline=base, current=cur)
        )

    for key in sorted(set(base_runs) & set(cur_runs)):
        base, cur = base_runs[key], cur_runs[key]
        if expect_reduction is not None:
            for metric, fraction in sorted(expect_reduction.items()):
                base_value = _metric_value(base, metric)
                cur_value = _metric_value(cur, metric)
                report.compared_metrics += 1
                if cur_value > base_value * (1.0 - fraction):
                    report.regressions.append(
                        Regression(
                            run=key,
                            metric=f"{metric} (expected >= {fraction:.0%} reduction)",
                            baseline=base_value,
                            current=cur_value,
                        )
                    )
            continue
        base_elapsed = float(base["elapsed_seconds_median"])
        cur_elapsed = float(cur["elapsed_seconds_median"])
        if expect_speedup is not None:
            report.compared_metrics += 1
            if cur_elapsed > base_elapsed * (1.0 - expect_speedup):
                report.regressions.append(
                    Regression(
                        run=key,
                        metric=(
                            "elapsed_seconds_median"
                            f" (expected >= {expect_speedup:.0%} speedup)"
                        ),
                        baseline=base_elapsed,
                        current=cur_elapsed,
                    )
                )
        else:
            check(
                key,
                "elapsed_seconds_median",
                base_elapsed,
                cur_elapsed,
                timing=True,
            )
            base_phases = base["phase_seconds_median"]
            cur_phases = cur["phase_seconds_median"]
            for phase in sorted(set(base_phases) & set(cur_phases)):
                check(
                    key,
                    f"phase:{phase}",
                    float(base_phases[phase]),
                    float(cur_phases[phase]),
                    timing=True,
                )
        for volume in ("messages", "bytes"):
            check(
                key,
                f"comm.{volume}",
                float(base["comm"][volume]),
                float(cur["comm"][volume]),
                timing=False,
            )
    report.regressions.sort(key=lambda r: r.ratio, reverse=True)
    return report


def load_bench(path: str) -> dict[str, Any]:
    """Load and validate a ``BENCH_*.json`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_bench(document)
    return document


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.compare",
        description="Diff two BENCH_*.json files; exit 1 on regression.",
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown tolerated before failing (default %(default)s)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="absolute timing floor below which drift is ignored "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--expect-speedup",
        type=float,
        default=None,
        metavar="X",
        help="require every matched run to be at least this fraction "
        "faster than the baseline (e.g. 0.2 for a 20%% speedup); "
        "phase timings are not compared in this mode",
    )
    parser.add_argument(
        "--expect-reduction",
        action="append",
        default=None,
        metavar="METRIC=FRACTION",
        help="require every matched run to reduce METRIC (comm.bytes, "
        "comm.messages, elapsed_seconds_median or counters.<name>) by at "
        "least FRACTION vs the baseline; repeatable; only the requested "
        "metrics are compared in this mode",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
        report = compare_documents(
            baseline,
            current,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
            expect_speedup=args.expect_speedup,
            expect_reduction=parse_expect_reduction(args.expect_reduction),
        )
    except (OSError, json.JSONDecodeError, BenchSchemaError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"{report.figure}: compared {report.compared_metrics} metrics "
        f"at threshold {report.threshold:.0%}"
    )
    for run in report.unmatched_runs:
        print(f"  note: run {run} present in only one document (skipped)")
    if not report.regressed:
        print("  no regressions")
        return 0
    for regression in report.regressions:
        print(f"  REGRESSION {regression.describe()}")
    return 1


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
