"""The checked-in ``BENCH_<fig>.json`` document schema and its validator.

``benchmarks/run_suite.py`` emits one JSON document per reproduced figure;
:data:`BENCH_SCHEMA` is the authoritative description of that document and
:func:`validate_bench` enforces it (a small, dependency-free subset of JSON
Schema: ``type``, ``required``, ``properties``, ``additionalProperties`` as
a schema, ``items``, ``enum`` and ``minimum``).  The perf-regression
harness refuses to compare documents that do not validate, so a drifting
producer fails loudly instead of producing silently incomparable numbers.

Dump the schema itself with ``python -m repro.perf.schema``.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Any, Mapping

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "bench_document",
    "bench_run_entry",
    "git_sha",
    "validate_bench",
]

#: Version stamped into every document; bump on incompatible layout changes.
BENCH_SCHEMA_VERSION = 1

_NUMBER = {"type": "number"}
_STRING = {"type": "string"}
_COUNT = {"type": "number", "minimum": 0}

#: Schema of one ``runs[]`` entry: a single ``backend × layout`` series.
_RUN_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "backend",
        "layout",
        "repeats",
        "elapsed_seconds_median",
        "phase_seconds_median",
        "phase_calls",
        "counters",
        "comm",
    ],
    "properties": {
        "backend": _STRING,
        "layout": _STRING,
        "repeats": {"type": "integer", "minimum": 1},
        "elapsed_seconds_median": _COUNT,
        "phase_seconds_median": {"type": "object", "additionalProperties": _COUNT},
        "phase_calls": {"type": "object", "additionalProperties": _COUNT},
        "counters": {"type": "object", "additionalProperties": _NUMBER},
        "comm": {
            "type": "object",
            "required": ["messages", "bytes"],
            "properties": {"messages": _COUNT, "bytes": _COUNT},
        },
        "comm_categories": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "additionalProperties": _NUMBER,
            },
        },
    },
}

#: Schema of a full ``BENCH_<fig>.json`` document.
BENCH_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "schema_version",
        "figure",
        "title",
        "git_sha",
        "seed",
        "profile",
        "n_ranks",
        "runs",
    ],
    "properties": {
        "schema_version": {"enum": [BENCH_SCHEMA_VERSION]},
        "figure": _STRING,
        "title": _STRING,
        "git_sha": _STRING,
        "seed": {"type": "integer"},
        "profile": _STRING,
        "n_ranks": {"type": "integer", "minimum": 1},
        "runs": {"type": "array", "items": _RUN_SCHEMA},
        "extras": {"type": "object"},
    },
}


class BenchSchemaError(ValueError):
    """A document does not conform to :data:`BENCH_SCHEMA`."""


_TYPES = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
}


def _check(instance: Any, schema: Mapping[str, Any], path: str) -> None:
    """Recursively validate ``instance`` against the schema subset."""
    expected = schema.get("type")
    if expected is not None:
        kinds = _TYPES[expected]
        if isinstance(instance, bool) and expected in ("integer", "number"):
            raise BenchSchemaError(f"{path}: expected {expected}, got boolean")
        if not isinstance(instance, kinds):
            raise BenchSchemaError(
                f"{path}: expected {expected}, got {type(instance).__name__}"
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise BenchSchemaError(
            f"{path}: value {instance!r} not one of {schema['enum']!r}"
        )
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            raise BenchSchemaError(
                f"{path}: value {instance!r} below minimum {schema['minimum']!r}"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise BenchSchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            if key in properties:
                _check(value, properties[key], f"{path}.{key}")
            elif "additionalProperties" in schema:
                extra = schema["additionalProperties"]
                if extra is False:
                    raise BenchSchemaError(f"{path}: unexpected key {key!r}")
                _check(value, extra, f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            _check(item, schema["items"], f"{path}[{i}]")


def validate_bench(document: Mapping[str, Any]) -> None:
    """Raise :class:`BenchSchemaError` unless ``document`` conforms."""
    _check(document, BENCH_SCHEMA, "$")


# ----------------------------------------------------------------------
# document builders
# ----------------------------------------------------------------------
def git_sha(default: str = "unknown", *, repo_dir: str | None = None) -> str:
    """Commit SHA of ``repo_dir`` (default: this checkout), or ``default``.

    ``repo_dir`` defaults to the directory containing this package, so the
    answer does not depend on the caller's working directory.
    """
    if repo_dir is None:
        repo_dir = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "-C", repo_dir, "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


def bench_run_entry(
    *,
    backend: str,
    layout: str,
    repeats: int,
    elapsed_seconds_median: float,
    phase_seconds_median: Mapping[str, float],
    phase_calls: Mapping[str, float],
    counters: Mapping[str, float],
    comm: Mapping[str, float],
    comm_categories: Mapping[str, Mapping[str, float]] | None = None,
) -> dict[str, Any]:
    """One ``runs[]`` entry of a BENCH document."""
    entry: dict[str, Any] = {
        "backend": backend,
        "layout": layout,
        "repeats": int(repeats),
        "elapsed_seconds_median": float(elapsed_seconds_median),
        "phase_seconds_median": {k: float(v) for k, v in phase_seconds_median.items()},
        "phase_calls": {k: float(v) for k, v in phase_calls.items()},
        "counters": {k: float(v) for k, v in counters.items()},
        "comm": {k: float(v) for k, v in comm.items()},
    }
    if comm_categories is not None:
        entry["comm_categories"] = {
            cat: {k: float(v) for k, v in bucket.items()}
            for cat, bucket in comm_categories.items()
        }
    return entry


def bench_document(
    *,
    figure: str,
    title: str,
    seed: int,
    profile: str,
    n_ranks: int,
    runs: list[dict[str, Any]],
    extras: Mapping[str, Any] | None = None,
    sha: str | None = None,
) -> dict[str, Any]:
    """Assemble and validate a full ``BENCH_<fig>.json`` document."""
    document: dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "figure": figure,
        "title": title,
        "git_sha": sha if sha is not None else git_sha(),
        "seed": int(seed),
        "profile": profile,
        "n_ranks": int(n_ranks),
        "runs": runs,
    }
    if extras is not None:
        document["extras"] = dict(extras)
    validate_bench(document)
    return document


def main() -> int:
    """Print the checked-in schema as JSON (``python -m repro.perf.schema``)."""
    print(json.dumps(BENCH_SCHEMA, indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
