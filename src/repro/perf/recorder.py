"""Nested phase timers, counters and communication attribution.

:class:`PerfRecorder` is the accumulation target of all performance
instrumentation in this repository.  It records three kinds of facts:

* **phases** — nested named regions.  Entering ``phase("summa")`` then
  ``phase("local_mult")`` accumulates under the path
  ``"summa/local_mult"``; each path keeps call counts and *inclusive*
  wall-clock seconds (exclusive time is derived, see
  :meth:`PerfRecorder.exclusive_seconds`).
* **counters** — named monotonic tallies (``"dhb.insert.entries"``,
  ``"spgemm.flops"``, …) incremented by the instrumented kernels.
* **communication** — per-category and per-phase message/byte volume,
  delivered by the :func:`record_comm_event` funnel that both
  :class:`~repro.runtime.simmpi.SimMPI` and
  :class:`~repro.runtime.mpi_backend.MPIBackend` call instead of invoking
  ``CommStats.record`` directly.  This is the single definition of how a
  communication event is accounted, for every backend.

Instrumented code never holds a recorder reference: it calls the
module-level probes :func:`perf_phase` / :func:`perf_count`, which consult
the *active* recorder installed with :func:`use_recorder` and no-op when
none is active.  Recorders merge (:meth:`PerfRecorder.merge`), so per-rank
recorders of a real multi-process run can be combined into one global view.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "PhaseTotals",
    "PerfRecorder",
    "get_recorder",
    "use_recorder",
    "perf_phase",
    "perf_count",
    "record_comm_event",
]

#: Separator of nested phase names inside a phase path.
PATH_SEP = "/"


@dataclass
class PhaseTotals:
    """Accumulated totals of one phase path."""

    #: times the phase was entered
    calls: int = 0
    #: inclusive wall-clock seconds (children included)
    seconds: float = 0.0
    #: point-to-point / collective messages attributed to the phase
    messages: int = 0
    #: payload bytes attributed to the phase
    bytes: int = 0

    def add(self, other: "PhaseTotals") -> None:
        """Accumulate ``other`` into this bucket (for cross-rank merges)."""
        self.calls += other.calls
        self.seconds += other.seconds
        self.messages += other.messages
        self.bytes += other.bytes

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly view."""
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "messages": self.messages,
            "bytes": self.bytes,
        }


class PerfRecorder:
    """Accumulates nested phase timings, counters and comm volume."""

    def __init__(self, *, clock=time.perf_counter) -> None:
        self.phases: dict[str, PhaseTotals] = {}
        self.counters: dict[str, float] = {}
        #: per communication category: {"events", "messages", "bytes",
        #: "seconds"} — the recorder-side mirror of ``CommStats``
        self.comm: dict[str, dict[str, float]] = {}
        self._stack: list[str] = []
        self._clock = clock

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def current_path(self) -> str:
        """The phase path currently open (``""`` outside any phase)."""
        return self._stack[-1] if self._stack else ""

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseTotals]:
        """Time a named region, nesting under the currently open phase."""
        if not name or PATH_SEP in name:
            raise ValueError(
                f"phase name must be non-empty and must not contain {PATH_SEP!r}: "
                f"{name!r}"
            )
        parent = self.current_path()
        path = f"{parent}{PATH_SEP}{name}" if parent else name
        bucket = self.phases.get(path)
        if bucket is None:
            bucket = PhaseTotals()
            self.phases[path] = bucket
        self._stack.append(path)
        start = self._clock()
        try:
            yield bucket
        finally:
            bucket.seconds += self._clock() - start
            bucket.calls += 1
            self._stack.pop()

    def phase_seconds(self, path: str) -> float:
        """Inclusive seconds of ``path`` (0.0 when never entered)."""
        bucket = self.phases.get(path)
        return bucket.seconds if bucket is not None else 0.0

    def exclusive_seconds(self, path: str) -> float:
        """Seconds spent in ``path`` itself, minus its direct children."""
        total = self.phase_seconds(path)
        prefix = path + PATH_SEP
        depth = path.count(PATH_SEP) + 1
        children = sum(
            bucket.seconds
            for child, bucket in self.phases.items()
            if child.startswith(prefix) and child.count(PATH_SEP) == depth
        )
        return total - children

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def record_comm(
        self,
        category: str,
        *,
        messages: int = 0,
        nbytes: int = 0,
        seconds: float = 0.0,
    ) -> None:
        """Attribute one communication event to ``category``.

        The volume is also charged to every phase currently open (inclusive
        attribution, matching the inclusive phase seconds), so the BENCH
        documents can report communication per phase at any nesting depth.
        """
        bucket = self.comm.get(category)
        if bucket is None:
            bucket = {"events": 0, "messages": 0, "bytes": 0, "seconds": 0.0}
            self.comm[category] = bucket
        bucket["events"] += 1
        bucket["messages"] += messages
        bucket["bytes"] += nbytes
        bucket["seconds"] += seconds
        for path in self._stack:
            phase = self.phases[path]
            phase.messages += messages
            phase.bytes += nbytes

    def total_comm(self) -> dict[str, float]:
        """Total messages/bytes over all categories."""
        return {
            "messages": sum(b["messages"] for b in self.comm.values()),
            "bytes": sum(b["bytes"] for b in self.comm.values()),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def merge(self, other: "PerfRecorder") -> "PerfRecorder":
        """Accumulate ``other``'s phases, counters and comm into ``self``.

        Used to combine per-rank recorders into one global view; returns
        ``self`` so merges chain.
        """
        for path, bucket in other.phases.items():
            mine = self.phases.get(path)
            if mine is None:
                mine = PhaseTotals()
                self.phases[path] = mine
            mine.add(bucket)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for category, bucket in other.comm.items():
            mine_c = self.comm.get(category)
            if mine_c is None:
                mine_c = {"events": 0, "messages": 0, "bytes": 0, "seconds": 0.0}
                self.comm[category] = mine_c
            for key, value in bucket.items():
                mine_c[key] += value
        return self

    def reset(self) -> None:
        """Drop everything accumulated so far (open phases stay open)."""
        self.phases.clear()
        self.counters.clear()
        self.comm.clear()

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view of all phases, counters and comm categories."""
        return {
            "phases": {
                path: bucket.as_dict() for path, bucket in sorted(self.phases.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "comm": {cat: dict(b) for cat, b in sorted(self.comm.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{path}: {bucket.seconds * 1e3:.3f} ms x{bucket.calls}"
            for path, bucket in sorted(self.phases.items())
        )
        return f"PerfRecorder({parts})"


# ----------------------------------------------------------------------
# the active recorder
# ----------------------------------------------------------------------
_ACTIVE: PerfRecorder | None = None


def get_recorder() -> PerfRecorder | None:
    """The currently active recorder, or ``None`` when instrumentation is off."""
    return _ACTIVE


@contextmanager
def use_recorder(recorder: PerfRecorder) -> Iterator[PerfRecorder]:
    """Install ``recorder`` as the active recorder for the ``with`` body.

    Nests: the previously active recorder (if any) is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


@contextmanager
def perf_phase(name: str) -> Iterator[None]:
    """Time a named region on the active recorder (no-op when none)."""
    recorder = _ACTIVE
    if recorder is None:
        yield
        return
    with recorder.phase(name):
        yield


def perf_count(name: str, n: float = 1) -> None:
    """Increment a counter on the active recorder (no-op when none)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.count(name, n)


def record_comm_event(
    stats,
    category: str,
    *,
    operations: int = 0,
    messages: int = 0,
    nbytes: int = 0,
    modeled_seconds: float = 0.0,
    measured_seconds: float = 0.0,
) -> None:
    """Account one per-category backend event (communication or compute).

    The single funnel through which both ``SimMPI`` and ``MPIBackend``
    record their per-category accounting: the event lands in the backend's
    ``stats`` (a :class:`~repro.runtime.stats.CommStats`, duck-typed here
    to keep this package import-free of the runtime) *and*, when
    instrumentation is active, in the active :class:`PerfRecorder` with
    per-phase message/byte attribution.
    """
    stats.record(
        category,
        operations=operations,
        messages=messages,
        nbytes=nbytes,
        modeled_seconds=modeled_seconds,
        measured_seconds=measured_seconds,
    )
    recorder = _ACTIVE
    if recorder is not None:
        recorder.record_comm(
            category,
            messages=messages,
            nbytes=nbytes,
            seconds=modeled_seconds,
        )
