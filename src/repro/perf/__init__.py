"""Unified performance instrumentation.

Three pieces, layered bottom to top:

``recorder``
    :class:`PerfRecorder` — nested phase timers plus a counter registry,
    with per-phase communication-volume attribution.  One module-level
    *active* recorder (installed with :func:`use_recorder`) is consulted by
    the instrumented hot paths (``spgemm_local``, DHB batch insertion, the
    SPA, SUMMA, tuple redistribution, scenario replay) and by both
    communicator backends through the :func:`record_comm_event` funnel —
    the single code path that accounts bytes/messages for ``SimMPI`` *and*
    ``MPIBackend``.  When no recorder is active every probe is a cheap
    no-op, so production code pays almost nothing.

``schema``
    The checked-in ``BENCH_<fig>.json`` document schema
    (:data:`BENCH_SCHEMA`), a dependency-free validator
    (:func:`validate_bench`) and the :func:`bench_document` builder used by
    ``benchmarks/run_suite.py``.

``compare``
    :func:`compare_documents` / the ``python -m repro.perf.compare`` CLI —
    diff two ``BENCH_*.json`` files and fail (exit code 1) on a relative
    slowdown above the threshold.

The subsystem is dependency-free by design (stdlib + NumPy only) and never
imports :mod:`repro.runtime`, so the runtime backends can import it without
cycles.
"""

from repro.perf.recorder import (
    PerfRecorder,
    PhaseTotals,
    get_recorder,
    perf_count,
    perf_phase,
    record_comm_event,
    use_recorder,
)
#: names resolved lazily from their submodule, so that running the CLIs as
#: ``python -m repro.perf.compare`` / ``python -m repro.perf.schema`` does
#: not re-import the module being executed (which would trigger a runpy
#: warning)
_LAZY_EXPORTS = {
    "ComparisonReport": "compare",
    "Regression": "compare",
    "compare_documents": "compare",
    "BENCH_SCHEMA": "schema",
    "BENCH_SCHEMA_VERSION": "schema",
    "BenchSchemaError": "schema",
    "bench_document": "schema",
    "bench_run_entry": "schema",
    "git_sha": "schema",
    "validate_bench": "schema",
}


def __getattr__(name: str):
    """Lazily expose the :mod:`repro.perf.schema` / ``compare`` public names."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f"repro.perf.{module_name}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PerfRecorder",
    "PhaseTotals",
    "get_recorder",
    "use_recorder",
    "perf_phase",
    "perf_count",
    "record_comm_event",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "bench_document",
    "bench_run_entry",
    "git_sha",
    "validate_bench",
    "ComparisonReport",
    "Regression",
    "compare_documents",
]
