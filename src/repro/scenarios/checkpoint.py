"""Durable checkpoint/restore of a replaying world.

A *snapshot* is a plain (JSON + numpy arrays) description of everything the
remainder of a trace needs to continue **byte-identically**:

* every owned block of every live distributed matrix, in its exact
  layout-internal form (:mod:`repro.distributed.serialization` preserves
  DHB adjacency order, capacities and grow counts);
* the logical-rank→process placement map;
* the incremental product state (``C`` and the general-mode bloom filters
  ``F``) and the application state (triangle counter, SSSP selector);
* the applied-step cursor, per-step statistics, recorded application query
  payloads and the global per-category communication counters up to the
  checkpoint.

Snapshots are assembled through the *uncharged* control plane
(``host_merge``), so a :class:`~repro.scenarios.model.CheckpointStep` adds
no charged traffic — the same trace is both the crashing run and the
uninterrupted reference of a differential drill.  Restoring, by contrast,
ships blocks back into the (rebuilt) world: that traffic is charged to the
``recovery`` category only, keeping every other category byte-identical.

The module also provides the snapshot *file* format (versioned,
schema-checked ``.npz``), the thread-safe :class:`CheckpointStore` shared
by the processes of a loopback world, and :func:`run_with_recovery` — the
kill-and-restart harness that reruns a loopback world after an injected
crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Callable

import numpy as np

from repro.distributed import (
    decode_block,
    decode_bloom,
    encode_block,
    encode_bloom,
)
from repro.distributed.distribution import BlockDistribution
from repro.distributed.dist_matrix import (
    DistMatrixBase,
    DynamicDistMatrix,
    StaticDistMatrix,
)
from repro.runtime.faults import SimulatedCrash
from repro.runtime.simmpi import payload_nbytes
from repro.runtime.stats import StatCategory
from repro.scenarios.model import (
    AppQueryResult,
    Scenario,
    ScenarioStep,
    StepStats,
)
from repro.semirings import get_semiring

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotFormatError",
    "scenario_fingerprint",
    "build_snapshot",
    "restore_state",
    "CheckpointStore",
    "save_snapshot",
    "load_snapshot",
    "with_checkpoint",
    "with_crash",
    "run_with_recovery",
]

#: Version stamp of the snapshot schema; bumped on incompatible changes.
SNAPSHOT_VERSION = 1

_REQUIRED_KEYS = (
    "version",
    "scenario",
    "fingerprint",
    "cursor",
    "layout",
    "n_ranks",
    "world_size",
    "placement",
    "state",
    "progress",
)

_STATE_KINDS = ("plain", "algebraic", "general", "app")


class SnapshotFormatError(ValueError):
    """A snapshot is malformed, mis-versioned or from another scenario."""


# ----------------------------------------------------------------------
# identity
# ----------------------------------------------------------------------
def scenario_fingerprint(scenario: Scenario) -> str:
    """Content hash of a scenario: shape, seeds and every step's tuples.

    Resuming checks the fingerprint so a snapshot can never silently
    continue a *different* trace (wrong generator, wrong seed, edited
    steps) — the mismatch fails loudly instead of producing drift.
    """
    h = hashlib.sha256()
    head = {
        "name": scenario.name,
        "shape": list(scenario.shape),
        "semiring": scenario.semiring_name,
        "seed": int(scenario.seed),
        "construct_seed": scenario.construct_seed,
        "app": None if scenario.app is None else scenario.app.name,
    }
    h.update(json.dumps(head, sort_keys=True).encode())
    for step in scenario.steps:
        seed = getattr(step, "partition_seed", None)
        h.update(
            f"|{step.kind}:{step.n_tuples}:{seed}".encode()
        )
        if isinstance(step, ScenarioStep):
            h.update(np.ascontiguousarray(step.rows).tobytes())
            h.update(np.ascontiguousarray(step.cols).tobytes())
            h.update(np.ascontiguousarray(step.values).tobytes())
    return h.hexdigest()[:24]


# ----------------------------------------------------------------------
# snapshot assembly
# ----------------------------------------------------------------------
def _encode_dist(comm, matrix: DistMatrixBase) -> dict[str, Any]:
    """Globally-merged encoding of one distributed matrix (uncharged)."""
    local = {
        int(rank): encode_block(block) for rank, block in matrix.blocks.items()
    }
    wrapper: dict[str, Any] = {
        "shape": (int(matrix.shape[0]), int(matrix.shape[1])),
        "semiring": matrix.semiring.name,
        "blocks": comm.host_merge(local),
    }
    if isinstance(matrix, StaticDistMatrix):
        wrapper["static_layout"] = matrix.layout
    return wrapper


def _encode_blooms(comm, blooms: dict[int, Any]) -> dict[int, Any]:
    return comm.host_merge(
        {int(rank): encode_bloom(f) for rank, f in blooms.items()}
    )


def _encode_state(executor) -> dict[str, Any]:
    comm = executor.comm
    if executor.app is not None:
        spec = executor.scenario.app
        product = executor.app.product
        state: dict[str, Any] = {
            "kind": "app",
            "app": {
                "name": spec.name,
                "n": int(executor.app.n),
                "sources": (
                    None
                    if getattr(executor.app, "sources", None) is None
                    else np.asarray(executor.app.sources, dtype=np.int64)
                ),
            },
        }
    elif executor.product is not None:
        product = executor.product
        state = {"kind": "general"}
    elif executor.b_static is not None:
        product = None
        state = {
            "kind": "algebraic",
            "a": _encode_dist(comm, executor.a),
            "b_static": _encode_dist(comm, executor.b_static),
            "c": _encode_dist(comm, executor.c),
        }
    else:
        product = None
        state = {"kind": "plain", "a": _encode_dist(comm, executor.a)}
    if product is not None:
        state["product"] = {
            "mode": product.mode,
            "semiring": product.semiring.name,
            "a": _encode_dist(comm, product.a),
            "b": _encode_dist(comm, product.b),
            "c": _encode_dist(comm, product.c),
            "f": _encode_blooms(comm, product.f),
        }
    return state


def build_snapshot(
    executor,
    *,
    cursor: int,
    step_stats: list[StepStats],
    applied_counts: dict[str, int],
    app_results: list[AppQueryResult],
    comm_stats: dict[str, dict[str, float]],
    update_stats: dict[str, dict[str, float]],
    elapsed: float,
) -> dict[str, Any]:
    """Serialise the executor's full world state plus replay progress.

    ``cursor`` is the index of the first step the restored run must
    execute; the progress prefix (statistics, counters, recorded query
    payloads) covers everything before it.  Identical on every process up
    to per-process wall-clock measurements inside ``step_stats``.
    """
    if not hasattr(executor, "a") or not hasattr(executor, "scenario"):
        raise SnapshotFormatError(
            f"executor {type(executor).__name__} is not checkpointable "
            "(only the native executor exposes its full state)"
        )
    comm = executor.comm
    scenario = executor.scenario
    placement = comm.placement() if hasattr(comm, "placement") else None
    snapshot = {
        "version": SNAPSHOT_VERSION,
        "scenario": scenario.name,
        "fingerprint": scenario_fingerprint(scenario),
        "cursor": int(cursor),
        "layout": executor.layout,
        "n_ranks": int(executor.grid.n_ranks),
        "world_size": int(getattr(comm, "world_size", 1)),
        "placement": (
            None
            if placement is None
            else {int(r): int(p) for r, p in placement.items()}
        ),
        "state": _encode_state(executor),
        "progress": {
            "step_stats": [s.as_dict() for s in step_stats],
            "applied_counts": dict(applied_counts),
            "app_results": [
                {
                    "index": r.index,
                    "kind": r.kind,
                    "label": r.label,
                    "payload": r.payload,
                }
                for r in app_results
            ],
            "comm_stats": comm_stats,
            "update_stats": update_stats,
            "elapsed": float(elapsed),
        },
    }
    check_snapshot(snapshot)
    return snapshot


def check_snapshot(snapshot: dict[str, Any]) -> None:
    """Validate the snapshot schema; raise :class:`SnapshotFormatError`."""
    if not isinstance(snapshot, dict):
        raise SnapshotFormatError(f"snapshot must be a dict, got {type(snapshot)}")
    missing = [key for key in _REQUIRED_KEYS if key not in snapshot]
    if missing:
        raise SnapshotFormatError(f"snapshot is missing keys {missing}")
    version = snapshot["version"]
    if version != SNAPSHOT_VERSION:
        raise SnapshotFormatError(
            f"snapshot version {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    state = snapshot["state"]
    if not isinstance(state, dict) or state.get("kind") not in _STATE_KINDS:
        raise SnapshotFormatError(
            f"snapshot state kind {state.get('kind') if isinstance(state, dict) else state!r} "
            f"is not one of {_STATE_KINDS}"
        )
    progress = snapshot["progress"]
    for key in ("step_stats", "applied_counts", "comm_stats", "elapsed"):
        if key not in progress:
            raise SnapshotFormatError(f"snapshot progress is missing {key!r}")


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def _decode_dynamic(comm, grid, wrapper: dict[str, Any]) -> tuple[DynamicDistMatrix, int]:
    shape = (int(wrapper["shape"][0]), int(wrapper["shape"][1]))
    semiring = get_semiring(str(wrapper["semiring"]))
    dist = BlockDistribution(shape[0], shape[1], grid)
    encoded = {int(r): b for r, b in wrapper["blocks"].items()}
    blocks: dict[int, Any] = {}
    nbytes = 0
    for rank in comm.owned_ranks(grid.all_ranks()):
        blocks[rank] = decode_block(encoded[rank])
        nbytes += payload_nbytes(blocks[rank])
    return DynamicDistMatrix(comm, grid, dist, semiring, blocks), nbytes


def _decode_static(comm, grid, wrapper: dict[str, Any]) -> tuple[StaticDistMatrix, int]:
    shape = (int(wrapper["shape"][0]), int(wrapper["shape"][1]))
    semiring = get_semiring(str(wrapper["semiring"]))
    dist = BlockDistribution(shape[0], shape[1], grid)
    encoded = {int(r): b for r, b in wrapper["blocks"].items()}
    blocks: dict[int, Any] = {}
    nbytes = 0
    for rank in comm.owned_ranks(grid.all_ranks()):
        blocks[rank] = decode_block(encoded[rank])
        nbytes += payload_nbytes(blocks[rank])
    matrix = StaticDistMatrix(
        comm, grid, dist, semiring, blocks, layout=wrapper.get("static_layout", "csr")
    )
    return matrix, nbytes


def _decode_product(comm, grid, wrapper: dict[str, Any]):
    from repro.core import DynamicProduct
    from repro.sparse import BloomFilterMatrix  # noqa: F401  (decode path)

    a, a_bytes = _decode_dynamic(comm, grid, wrapper["a"])
    b, b_bytes = _decode_dynamic(comm, grid, wrapper["b"])
    c, c_bytes = _decode_dynamic(comm, grid, wrapper["c"])
    encoded_f = {int(r): f for r, f in wrapper["f"].items()}
    f: dict[int, Any] = {}
    f_bytes = 0
    for rank in comm.owned_ranks(grid.all_ranks()):
        if rank in encoded_f:
            f[rank] = decode_bloom(encoded_f[rank])
            f_bytes += payload_nbytes(f[rank])
    product = DynamicProduct.__new__(DynamicProduct)
    product.comm = comm
    product.grid = grid
    product.a = a
    product.b = b
    product.semiring = get_semiring(str(wrapper["semiring"]))
    product.mode = str(wrapper["mode"])
    product.c = c
    product.f = f
    return product, a_bytes + b_bytes + c_bytes + f_bytes


def restore_state(executor, snapshot: dict[str, Any]) -> int:
    """Replace the executor's world state with the snapshot's.

    Installs the snapshot's placement map when the communicator has a
    placement surface and the world size matches, decodes only the blocks
    the calling process owns, and rebuilds product/application wrappers by
    direct construction (no collective construction traffic).  Every
    decoded block is charged to the ``recovery`` category — one message of
    the block's payload size per owned logical rank, a placement-independent
    global total.  Returns the number of blocks decoded locally.
    """
    check_snapshot(snapshot)
    comm, grid = executor.comm, executor.grid
    if int(snapshot["n_ranks"]) != int(grid.n_ranks):
        raise SnapshotFormatError(
            f"snapshot was taken on {snapshot['n_ranks']} logical ranks but "
            f"this world replays on {grid.n_ranks}"
        )
    placement = snapshot.get("placement")
    if (
        placement is not None
        and hasattr(comm, "set_placement")
        and int(snapshot.get("world_size", 1)) == int(getattr(comm, "world_size", 1))
    ):
        comm.set_placement({int(r): int(p) for r, p in placement.items()})

    state = snapshot["state"]
    kind = state["kind"]
    n_blocks = 0
    recovered_bytes = 0
    with comm.stats.redirect(StatCategory.RECOVERY):
        executor.a = None
        executor.b_static = None
        executor.c = None
        executor.product = None
        executor.app = None
        if kind == "plain":
            executor.a, recovered_bytes = _decode_dynamic(comm, grid, state["a"])
            n_blocks = len(executor.a.blocks)
        elif kind == "algebraic":
            executor.a, a_bytes = _decode_dynamic(comm, grid, state["a"])
            executor.b_static, b_bytes = _decode_static(comm, grid, state["b_static"])
            executor.c, c_bytes = _decode_dynamic(comm, grid, state["c"])
            recovered_bytes = a_bytes + b_bytes + c_bytes
            n_blocks = (
                len(executor.a.blocks)
                + len(executor.b_static.blocks)
                + len(executor.c.blocks)
            )
        elif kind == "general":
            product, recovered_bytes = _decode_product(comm, grid, state["product"])
            executor.product = product
            executor.a = product.a
            executor.c = product.c
            n_blocks = (
                len(product.a.blocks) + len(product.b.blocks) + len(product.c.blocks)
            )
        else:  # app
            product, recovered_bytes = _decode_product(comm, grid, state["product"])
            executor.app = _rebuild_app(comm, grid, state["app"], product)
            executor.a = executor.app.adjacency
            executor.c = product.c
            executor.product = product
            n_blocks = (
                len(product.a.blocks) + len(product.b.blocks) + len(product.c.blocks)
            )
    # One recovery message per decoded block, sized by the blocks actually
    # shipped to this process; summed over processes the total is exactly
    # the global state volume, independent of placement.
    comm.stats.record(
        StatCategory.RECOVERY,
        operations=1,
        messages=n_blocks,
        nbytes=int(recovered_bytes),
    )
    return n_blocks


def _rebuild_app(comm, grid, app_state: dict[str, Any], product):
    from repro.apps import DynamicMultiSourceShortestPaths, DynamicTriangleCounter

    name = str(app_state["name"])
    if name == "triangle":
        app = DynamicTriangleCounter.__new__(DynamicTriangleCounter)
        app.comm = comm
        app.grid = grid
        app.n = int(app_state["n"])
        app.product = product
        return app
    app = DynamicMultiSourceShortestPaths.__new__(DynamicMultiSourceShortestPaths)
    app.comm = comm
    app.grid = grid
    app.n = int(app_state["n"])
    app.sources = np.asarray(app_state["sources"], dtype=np.int64)
    app.product = product
    return app


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class CheckpointStore:
    """Thread-safe snapshot store shared by the processes of one drill.

    Snapshots are keyed by ``(tag, process)`` — every (loopback) process
    saves and restores its own copy, whose progress prefix carries that
    process's wall-clock measurements.  With ``directory`` set, each save
    is also persisted as a versioned ``.npz`` file (the durable form used
    by the ``mpiexec`` restore drill and the benchmark).
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = None if directory is None else os.fspath(directory)
        self._snapshots: dict[tuple[str, int], dict[str, Any]] = {}
        self._order: list[tuple[str, int]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def save(self, tag: str, process: int, snapshot: dict[str, Any]) -> None:
        """Store (and optionally persist) one process's snapshot."""
        check_snapshot(snapshot)
        key = (str(tag), int(process))
        with self._lock:
            if key in self._snapshots:
                self._order.remove(key)
            self._snapshots[key] = snapshot
            self._order.append(key)
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            save_snapshot(self._path(tag, process), snapshot)

    def load(self, tag: str, process: int) -> dict[str, Any]:
        """The snapshot saved under ``(tag, process)`` (KeyError if absent)."""
        key = (str(tag), int(process))
        with self._lock:
            if key in self._snapshots:
                return self._snapshots[key]
        if self.directory is not None:
            path = self._path(tag, process)
            if os.path.exists(path):
                return load_snapshot(path)
        raise KeyError(
            f"no checkpoint stored under tag {tag!r} for process {process}"
        )

    def latest(self, process: int) -> dict[str, Any] | None:
        """The most recently saved snapshot for ``process`` (or ``None``)."""
        with self._lock:
            for tag, proc in reversed(self._order):
                if proc == int(process):
                    return self._snapshots[(tag, proc)]
        return None

    def tags(self) -> list[str]:
        """All distinct tags with at least one stored snapshot."""
        with self._lock:
            return sorted({tag for tag, _proc in self._snapshots})

    def _path(self, tag: str, process: int) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"snapshot_{tag}_p{int(process)}.npz")


# ----------------------------------------------------------------------
# the file format
# ----------------------------------------------------------------------
def _flatten(obj: Any, arrays: dict[str, np.ndarray]) -> Any:
    """JSON-able skeleton of ``obj``; ndarrays spill into ``arrays``."""
    if isinstance(obj, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = obj
        return {"__array__": key}
    if isinstance(obj, dict):
        return {
            "__items__": [
                [k, _flatten(v, arrays)] for k, v in obj.items()
            ]
        }
    if isinstance(obj, tuple):
        return {"__tuple__": [_flatten(v, arrays) for v in obj]}
    if isinstance(obj, list):
        return [_flatten(v, arrays) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise SnapshotFormatError(
        f"cannot serialise object of type {type(obj).__name__} into a snapshot file"
    )


def _unflatten(obj: Any, arrays) -> Any:
    if isinstance(obj, dict):
        if "__array__" in obj:
            return np.asarray(arrays[obj["__array__"]])
        if "__tuple__" in obj:
            return tuple(_unflatten(v, arrays) for v in obj["__tuple__"])
        return {k: _unflatten(v, arrays) for k, v in obj["__items__"]}
    if isinstance(obj, list):
        return [_unflatten(v, arrays) for v in obj]
    return obj


def save_snapshot(path: str | os.PathLike, snapshot: dict[str, Any]) -> int:
    """Persist a snapshot as a versioned ``.npz`` file; returns its size."""
    check_snapshot(snapshot)
    arrays: dict[str, np.ndarray] = {}
    skeleton = _flatten(snapshot, arrays)
    meta = json.dumps({"version": SNAPSHOT_VERSION, "root": skeleton})
    np.savez_compressed(
        path, __meta__=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8), **arrays
    )
    return os.path.getsize(path)


def load_snapshot(path: str | os.PathLike) -> dict[str, Any]:
    """Load and schema-check a snapshot written by :func:`save_snapshot`."""
    try:
        with np.load(path) as data:
            if "__meta__" not in data:
                raise SnapshotFormatError(
                    f"{os.fspath(path)!r} is not a snapshot file (no metadata)"
                )
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
            if meta.get("version") != SNAPSHOT_VERSION:
                raise SnapshotFormatError(
                    f"snapshot file version {meta.get('version')!r} is not "
                    f"supported (this build reads version {SNAPSHOT_VERSION})"
                )
            snapshot = _unflatten(meta["root"], data)
    except (OSError, ValueError, KeyError) as exc:
        if isinstance(exc, SnapshotFormatError):
            raise
        raise SnapshotFormatError(
            f"cannot read snapshot file {os.fspath(path)!r}: {exc}"
        ) from exc
    check_snapshot(snapshot)
    return snapshot


# ----------------------------------------------------------------------
# trace helpers and the kill-and-restart harness
# ----------------------------------------------------------------------
def with_checkpoint(
    scenario: Scenario, at: int, *, tag: str = "default"
) -> Scenario:
    """A copy of ``scenario`` with a checkpoint inserted at position ``at``."""
    import dataclasses

    from repro.scenarios.model import CheckpointStep

    steps = list(scenario.steps)
    steps.insert(int(at), CheckpointStep(tag=tag, label=f"checkpoint@{int(at)}"))
    return dataclasses.replace(scenario, steps=steps)


def with_crash(
    scenario: Scenario, at: int, *, process: int | None = None
) -> Scenario:
    """A copy of ``scenario`` with a deterministic kill point at ``at``.

    The :class:`~repro.scenarios.model.CrashStep` only fires when a fault
    injector is armed, so the same trace replayed without faults is the
    uninterrupted reference run.
    """
    import dataclasses

    from repro.scenarios.model import CrashStep

    steps = list(scenario.steps)
    steps.insert(int(at), CrashStep(process=process, label=f"crash@{int(at)}"))
    return dataclasses.replace(scenario, steps=steps)


def crash_cause(exc: BaseException | None) -> SimulatedCrash | None:
    """The :class:`SimulatedCrash` in an exception's cause chain (or None)."""
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        seen.add(id(exc))
        if isinstance(exc, SimulatedCrash):
            return exc
        exc = exc.__cause__ or exc.__context__
    return None


def run_with_recovery(
    world_size: int,
    program: Callable[..., Any],
    *,
    max_restarts: int = 4,
    timeout: float = 120.0,
) -> list[Any]:
    """Run a loopback SPMD program, restarting the world after crashes.

    Drives :func:`repro.runtime.loopback.run_spmd`; when the world dies of
    an injected :class:`~repro.runtime.faults.SimulatedCrash` (directly or
    as the cause of a process failure) a fresh world is started and
    ``program`` runs again — the program is responsible for resuming from
    its :class:`CheckpointStore` (fault injectors remember fired kills, so
    a restarted world does not re-crash at the same point).  Any other
    failure propagates unchanged.
    """
    from repro.runtime.loopback import run_spmd

    restarts = 0
    while True:
        try:
            return run_spmd(world_size, program, timeout=timeout)
        except (RuntimeError, SimulatedCrash) as exc:
            if crash_cause(exc) is None:
                raise
            restarts += 1
            if restarts > max_restarts:
                raise RuntimeError(
                    f"world failed {restarts} times; giving up recovery"
                ) from exc
