"""Library of seeded scenario generators.

Each generator returns a fully materialised
:class:`~repro.scenarios.model.Scenario`: every random draw is derived from
the ``seed`` argument through independent :class:`numpy.random.SeedSequence`
children, so the same call always produces the identical trace and two
different seeds never share RNG streams.

The traces mirror the dynamic-graph regimes of the paper's experiments
(Sections IV-A, VII) and the batched streaming regimes studied for very
large dynamic datasets in the related work:

* :func:`grow_from_empty` — pure insertion stream (Fig. 4 regime);
* :func:`steady_state_churn` — stationary nnz under interleaved insert /
  delete / value-update rounds (Fig. 5 regime);
* :func:`sliding_window` — streaming window: every insert batch expires
  ``window`` steps later as a deletion batch;
* :func:`bursty_skewed_stream` — R-MAT (social-skew) stream with bursty
  batch sizes and occasional deletions;
* :func:`mixed_update_multiply` — dynamic SpGEMM: the left operand grows
  through update+multiply rounds (Fig. 9 regime) with full product
  verification at the checkpoints.

Three *adversarial* traces stress the corners the well-behaved regimes
above never reach (they are part of the differential and fault-drill
sweeps precisely because they are the likeliest to expose divergence):

* :func:`hotspot_vertex_stream` — a handful of hub vertices receive
  almost every edge, producing extreme per-row and per-rank imbalance;
* :func:`oscillating_insert_delete` — the same batch is inserted and
  deleted over and over, so nnz oscillates while the DHB rows accumulate
  a long swap-with-last / regrowth history;
* :func:`dhb_bucket_collision_stream` — the DHB worst case: every entry
  lands on a few hot rows with stride-spaced columns, interleaved with
  interior deletions, maximising hash-index churn per structural nnz.

The *application* traces exercise the workloads of :mod:`repro.apps`
through the app-aware executor (queries baked with generation-time
expected results):

* :func:`social_triangle_stream` — an evolving R-MAT social graph with
  periodic incremental triangle-count queries;
* :func:`road_churn_sssp` — weighted road-style churn (weight increases,
  deletions, new edges) with multi-source shortest-path checks over
  ``(min, +)``;
* :func:`multilevel_contraction` — a growing/shrinking clustered graph
  contracted at two coarsening levels between update batches.

``SCENARIO_GENERATORS`` maps generator names to callables and
:func:`library_scenarios` instantiates one default-sized scenario per
generator — the set the cross-backend differential suite replays.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.apps import (
    count_triangles_reference,
    distances_to_tuples,
    sssp_minplus_reference,
)
from repro.graphs import erdos_renyi_edges, ring_of_cliques_edges, rmat_edges
from repro.scenarios.model import (
    AppSpec,
    ContractStep,
    DeleteBatch,
    InsertBatch,
    Scenario,
    ShortestPathCheck,
    SnapshotCheck,
    SpGEMMStep,
    TriangleCountCheck,
    TupleArrays,
    ValueUpdateBatch,
    seed_int,
    spawn_seeds,
)

__all__ = [
    "SCENARIO_GENERATORS",
    "library_scenarios",
    "grow_from_empty",
    "steady_state_churn",
    "sliding_window",
    "bursty_skewed_stream",
    "mixed_update_multiply",
    "social_triangle_stream",
    "road_churn_sssp",
    "multilevel_contraction",
    "hotspot_vertex_stream",
    "oscillating_insert_delete",
    "dhb_bucket_collision_stream",
]

#: R-MAT quadrant probabilities of the most skewed (social) category.
_SOCIAL_PARAMS = (0.57, 0.19, 0.19, 0.05)


def _child_seeds(seed: int, n: int, *, salt: int) -> list[int]:
    """``n`` independent integer seeds derived from ``(seed, salt)``."""
    return [seed_int(c) for c in spawn_seeds([int(seed), int(salt)], n)]


def _unique_edge_pool(
    n: int,
    target: int,
    seed: int,
    *,
    skewed: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """At most ``target`` unique (row, col) pairs on an ``n × n`` matrix."""
    if skewed:
        scale = max(2, int(np.ceil(np.log2(n))))
        n_vertices, src, dst = rmat_edges(
            scale,
            max(1, int(np.ceil(2.0 * target / (1 << scale)))),
            params=_SOCIAL_PARAMS,
            seed=seed,
            deduplicate=True,
            remove_self_loops=True,
        )
        src, dst = src % n, dst % n
    else:
        src, dst = erdos_renyi_edges(n, 2 * target, seed=seed, deduplicate=True)
    keys = src.astype(np.int64) * n + dst.astype(np.int64)
    _, first = np.unique(keys, return_index=True)
    first.sort()
    src, dst = src[first], dst[first]
    return src[:target].astype(np.int64), dst[:target].astype(np.int64)


def _values(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.random(size) + 0.25


# ----------------------------------------------------------------------
# 1. grow-from-empty insertion stream
# ----------------------------------------------------------------------
def grow_from_empty(
    *, n: int = 64, n_batches: int = 6, batch: int = 56, seed: int = 0
) -> Scenario:
    """Pure insertion stream: the matrix grows from empty in equal batches."""
    pool_seed, value_seed = _child_seeds(seed, 2, salt=0x6F01)
    rows, cols = _unique_edge_pool(n, n_batches * batch, pool_seed)
    batch = rows.size // n_batches
    rng = np.random.default_rng(value_seed)
    steps: list = []
    for b in range(n_batches):
        sel = slice(b * batch, (b + 1) * batch)
        steps.append(
            InsertBatch(
                rows[sel], cols[sel], _values(rng, batch), label=f"insert[{b}]"
            )
        )
        if b == n_batches // 2 - 1 or b == n_batches - 1:
            steps.append(
                SnapshotCheck(expect_nnz=(b + 1) * batch, label=f"nnz@{b}")
            )
    return Scenario(
        name="grow_from_empty",
        shape=(n, n),
        steps=steps,
        seed=seed,
        metadata={"generator": "grow_from_empty", "batch": batch},
    )


# ----------------------------------------------------------------------
# 2. steady-state churn
# ----------------------------------------------------------------------
def steady_state_churn(
    *, n: int = 64, rounds: int = 4, batch: int = 32, seed: int = 0
) -> Scenario:
    """Stationary-size trace: each round inserts, deletes and re-values.

    The generator tracks the exact set of present coordinates, so every
    round inserts only absent coordinates, deletes and value-updates only
    present ones, and the snapshot checks pin the exact nnz.
    """
    pool_seed, pick_seed, value_seed = _child_seeds(seed, 3, salt=0x6F02)
    initial_size = 6 * batch
    pool_rows, pool_cols = _unique_edge_pool(
        n, initial_size + rounds * batch, pool_seed
    )
    rng_pick = np.random.default_rng(pick_seed)
    rng_val = np.random.default_rng(value_seed)

    present = [(int(i), int(j)) for i, j in zip(pool_rows[:initial_size], pool_cols[:initial_size])]
    free = [(int(i), int(j)) for i, j in zip(pool_rows[initial_size:], pool_cols[initial_size:])]
    initial: TupleArrays = (
        pool_rows[:initial_size],
        pool_cols[:initial_size],
        _values(rng_val, initial_size),
    )

    def _as_arrays(pairs: list[tuple[int, int]]) -> tuple[np.ndarray, np.ndarray]:
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return arr[:, 0], arr[:, 1]

    steps: list = []
    for r in range(rounds):
        # insert `batch` absent coordinates
        take = min(batch, len(free))
        idx = rng_pick.choice(len(free), size=take, replace=False)
        inserted = [free[i] for i in idx]
        chosen = set(idx.tolist())
        free = [p for k, p in enumerate(free) if k not in chosen]
        present.extend(inserted)
        ir, ic = _as_arrays(inserted)
        steps.append(InsertBatch(ir, ic, _values(rng_val, take), label=f"churn-in[{r}]"))
        # delete `batch` present coordinates (they become free again)
        idx = rng_pick.choice(len(present), size=min(batch, len(present)), replace=False)
        deleted = [present[i] for i in idx]
        chosen = set(idx.tolist())
        present = [p for k, p in enumerate(present) if k not in chosen]
        free.extend(deleted)
        dr, dc = _as_arrays(deleted)
        steps.append(
            DeleteBatch(dr, dc, np.ones(dr.size), label=f"churn-del[{r}]")
        )
        # overwrite the values of `batch` surviving coordinates
        idx = rng_pick.choice(len(present), size=min(batch, len(present)), replace=False)
        updated = [present[i] for i in idx]
        ur, uc = _as_arrays(updated)
        steps.append(
            ValueUpdateBatch(
                ur, uc, _values(rng_val, ur.size), label=f"churn-upd[{r}]"
            )
        )
        steps.append(SnapshotCheck(expect_nnz=len(present), label=f"nnz@{r}"))
    return Scenario(
        name="steady_state_churn",
        shape=(n, n),
        steps=steps,
        initial_tuples=initial,
        seed=seed,
        metadata={"generator": "steady_state_churn", "rounds": rounds, "batch": batch},
    )


# ----------------------------------------------------------------------
# 3. sliding window
# ----------------------------------------------------------------------
def sliding_window(
    *,
    n: int = 64,
    window: int = 3,
    n_batches: int = 7,
    batch: int = 40,
    seed: int = 0,
) -> Scenario:
    """Streaming window: batch ``b`` is deleted again at step ``b + window``.

    After the trace only the last ``window`` insert batches remain, which
    the final snapshot pins exactly — the regime of streaming-window
    analytics over an edge stream.
    """
    if n_batches <= window:
        raise ValueError("need more batches than the window length")
    pool_seed, value_seed = _child_seeds(seed, 2, salt=0x6F03)
    rows, cols = _unique_edge_pool(n, n_batches * batch, pool_seed)
    batch = rows.size // n_batches
    rng = np.random.default_rng(value_seed)
    batches = [
        (rows[b * batch : (b + 1) * batch], cols[b * batch : (b + 1) * batch])
        for b in range(n_batches)
    ]
    steps: list = []
    live = 0
    for b in range(n_batches):
        br, bc = batches[b]
        steps.append(InsertBatch(br, bc, _values(rng, batch), label=f"window-in[{b}]"))
        live += batch
        if b >= window:
            er, ec = batches[b - window]
            steps.append(
                DeleteBatch(er, ec, np.ones(er.size), label=f"window-expire[{b - window}]")
            )
            live -= batch
        steps.append(SnapshotCheck(expect_nnz=live, label=f"nnz@{b}"))
    return Scenario(
        name="sliding_window",
        shape=(n, n),
        steps=steps,
        seed=seed,
        metadata={
            "generator": "sliding_window",
            "window": window,
            "batch": batch,
        },
    )


# ----------------------------------------------------------------------
# 4. bursty skewed stream
# ----------------------------------------------------------------------
def bursty_skewed_stream(
    *,
    n: int = 96,
    bursts: tuple[int, ...] = (16, 16, 144, 16, 112, 16),
    delete_every: int = 3,
    delete_batch: int = 24,
    seed: int = 0,
    semiring_name: str = "min_plus",
) -> Scenario:
    """Bursty R-MAT stream: small steady batches punctuated by large bursts.

    Batches are drawn *with replacement* from a skewed (social-parameter)
    R-MAT pool, so duplicate coordinates are ⊕-combined — over ``min_plus``
    by default, exercising a non-ring semiring.  Every ``delete_every``-th
    step additionally deletes a batch of currently present coordinates.
    The generator tracks the exact present set for the snapshot checks.
    """
    pool_seed, draw_seed, value_seed = _child_seeds(seed, 3, salt=0x6F04)
    pool_rows, pool_cols = _unique_edge_pool(n, 6 * max(bursts), pool_seed, skewed=True)
    rng_draw = np.random.default_rng(draw_seed)
    rng_val = np.random.default_rng(value_seed)
    present: set[tuple[int, int]] = set()
    steps: list = []
    for b, size in enumerate(bursts):
        idx = rng_draw.choice(pool_rows.size, size=size, replace=True)
        br, bc = pool_rows[idx], pool_cols[idx]
        present.update((int(i), int(j)) for i, j in zip(br, bc))
        steps.append(
            InsertBatch(br, bc, _values(rng_val, size), label=f"burst[{b}]x{size}")
        )
        if delete_every and (b + 1) % delete_every == 0 and present:
            candidates = sorted(present)
            idx = rng_draw.choice(
                len(candidates), size=min(delete_batch, len(candidates)), replace=False
            )
            dropped = [candidates[i] for i in idx]
            present.difference_update(dropped)
            arr = np.asarray(dropped, dtype=np.int64).reshape(-1, 2)
            steps.append(
                DeleteBatch(
                    arr[:, 0], arr[:, 1], np.ones(arr.shape[0]), label=f"burst-del[{b}]"
                )
            )
        steps.append(SnapshotCheck(expect_nnz=len(present), label=f"nnz@{b}"))
    return Scenario(
        name="bursty_skewed_stream",
        shape=(n, n),
        steps=steps,
        seed=seed,
        semiring_name=semiring_name,
        metadata={"generator": "bursty_skewed_stream", "bursts": list(bursts)},
    )


# ----------------------------------------------------------------------
# 5. mixed update + multiply phases
# ----------------------------------------------------------------------
def mixed_update_multiply(
    *,
    n: int = 48,
    n_batches: int = 4,
    batch: int = 36,
    b_edges: int = 200,
    seed: int = 0,
) -> Scenario:
    """Dynamic SpGEMM trace: ``A`` grows through update+multiply rounds.

    Every batch flows through an algebraic :class:`SpGEMMStep` (Algorithm 1:
    ``C ⊕= A*·B``, ``A ⊕= A*``), and the checkpoints recompute ``A·B`` from
    scratch to verify the maintained product — the Fig. 9 protocol as a
    replayable trace.
    """
    pool_seed, b_seed, value_seed = _child_seeds(seed, 3, salt=0x6F05)
    rows, cols = _unique_edge_pool(n, n_batches * batch, pool_seed)
    batch = rows.size // n_batches
    rng = np.random.default_rng(value_seed)
    b_rows, b_cols = _unique_edge_pool(n, b_edges, b_seed)
    b_tuples: TupleArrays = (b_rows, b_cols, _values(rng, b_rows.size))
    steps: list = []
    for b in range(n_batches):
        sel = slice(b * batch, (b + 1) * batch)
        steps.append(
            SpGEMMStep(
                rows[sel],
                cols[sel],
                _values(rng, batch),
                label=f"update+multiply[{b}]",
                mode="algebraic",
            )
        )
        if b == n_batches // 2 - 1 or b == n_batches - 1:
            steps.append(
                SnapshotCheck(
                    expect_nnz=(b + 1) * batch,
                    verify_product=True,
                    label=f"product@{b}",
                )
            )
    return Scenario(
        name="mixed_update_multiply",
        shape=(n, n),
        steps=steps,
        b_tuples=b_tuples,
        seed=seed,
        metadata={"generator": "mixed_update_multiply", "batch": batch},
    )


# ----------------------------------------------------------------------
# 6. evolving social graph with periodic triangle queries
# ----------------------------------------------------------------------
def social_triangle_stream(
    *,
    n: int = 40,
    n_batches: int = 4,
    batch: int = 22,
    query_every: int = 2,
    seed: int = 0,
) -> Scenario:
    """Social-graph edge stream with incremental triangle-count queries.

    Unique undirected edges (canonical ``i < j`` form, drawn from a skewed
    R-MAT pool) arrive in batches; the app-aware executor maintains ``A²``
    through a :class:`~repro.apps.DynamicTriangleCounter` and every
    :class:`TriangleCountCheck` carries the exact triangle count computed
    at generation time, so a replay is self-verifying.
    """
    pool_seed, value_seed = _child_seeds(seed, 2, salt=0x6F06)
    src, dst = _unique_edge_pool(n, 6 * n_batches * batch, pool_seed, skewed=True)
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    keys = lo * n + hi
    _, first = np.unique(keys, return_index=True)
    first.sort()
    lo, hi = lo[first], hi[first]
    batch = min(batch, lo.size // n_batches)
    rng = np.random.default_rng(value_seed)
    steps: list = []
    for b in range(n_batches):
        sel = slice(b * batch, (b + 1) * batch)
        steps.append(
            InsertBatch(
                lo[sel], hi[sel], _values(rng, batch), label=f"social-in[{b}]"
            )
        )
        if (b + 1) % query_every == 0 or b == n_batches - 1:
            upto = (b + 1) * batch
            steps.append(
                TriangleCountCheck(
                    expect=count_triangles_reference(n, lo[:upto], hi[:upto]),
                    label=f"triangles@{b}",
                )
            )
            # the counter stores both directions of every undirected edge
            steps.append(SnapshotCheck(expect_nnz=2 * upto, label=f"nnz@{b}"))
    return Scenario(
        name="social_triangle_stream",
        shape=(n, n),
        steps=steps,
        app=AppSpec(name="triangle"),
        seed=seed,
        metadata={"generator": "social_triangle_stream", "batch": batch},
    )


# ----------------------------------------------------------------------
# 7. weighted road-style churn with shortest-path checks
# ----------------------------------------------------------------------
def road_churn_sssp(
    *,
    n: int = 28,
    rounds: int = 2,
    batch: int = 14,
    n_sources: int = 3,
    seed: int = 0,
) -> Scenario:
    """Weighted churn over ``(min, +)`` with multi-source SSSP checks.

    Each round overwrites weights of present edges (a mix of increases and
    decreases — the non-algebraic case that forces Algorithm 2), inserts
    fresh edges and deletes others; a :class:`ShortestPathCheck` after
    every round carries the expected distance tuples, computed at
    generation time with the bit-compatible dense min-plus reference
    (:func:`repro.apps.sssp_minplus_reference`).
    """
    pool_seed, pick_seed, value_seed = _child_seeds(seed, 3, salt=0x6F07)
    initial_size = 5 * batch
    pool_rows, pool_cols = _unique_edge_pool(
        n, initial_size + rounds * batch, pool_seed
    )
    # small vertex counts can exhaust the unique-pair pool: shrink the
    # initial graph first so every round still gets fresh edges to insert
    initial_size = min(initial_size, max(0, pool_rows.size - rounds * batch))
    rng_pick = np.random.default_rng(pick_seed)
    rng_val = np.random.default_rng(value_seed)
    sources = np.sort(rng_pick.choice(n, size=n_sources, replace=False))

    weights = rng_val.uniform(1.0, 5.0, initial_size)
    edges: dict[tuple[int, int], float] = {
        (int(i), int(j)): float(w)
        for i, j, w in zip(pool_rows[:initial_size], pool_cols[:initial_size], weights)
    }
    initial: TupleArrays = (
        pool_rows[:initial_size],
        pool_cols[:initial_size],
        weights.copy(),
    )
    free = list(zip(pool_rows[initial_size:].tolist(), pool_cols[initial_size:].tolist()))

    def _arrays(pairs: list[tuple[int, int]]) -> tuple[np.ndarray, np.ndarray]:
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return arr[:, 0], arr[:, 1]

    def _expected_check(label: str) -> ShortestPathCheck:
        if edges:
            er, ec = _arrays(sorted(edges))
            ew = np.asarray([edges[(int(i), int(j))] for i, j in zip(er, ec)])
        else:
            er = ec = np.empty(0, dtype=np.int64)
            ew = np.empty(0, dtype=np.float64)
        expected = distances_to_tuples(
            sssp_minplus_reference(n, er, ec, ew, sources)
        )
        return ShortestPathCheck(expect_tuples=expected, label=label)

    steps: list = []
    for r in range(rounds):
        # overwrite weights of `batch` present edges (half raised, half cut)
        present = sorted(edges)
        idx = rng_pick.choice(len(present), size=min(batch, len(present)), replace=False)
        chosen = [present[i] for i in idx]
        factors = np.where(rng_pick.random(len(chosen)) < 0.5, 3.0, 0.4)
        ur, uc = _arrays(chosen)
        uw = np.asarray([edges[p] for p in chosen]) * factors
        for p, w in zip(chosen, uw):
            edges[p] = float(w)
        steps.append(ValueUpdateBatch(ur, uc, uw, label=f"road-reweigh[{r}]"))
        # insert `batch` fresh edges
        fresh, free = free[:batch], free[batch:]
        ir, ic = _arrays(fresh)
        iw = rng_val.uniform(1.0, 5.0, ir.size)
        for p, w in zip(fresh, iw):
            edges[p] = float(w)
        steps.append(InsertBatch(ir, ic, iw, label=f"road-in[{r}]"))
        # delete `batch // 2` present edges
        present = sorted(edges)
        idx = rng_pick.choice(
            len(present), size=min(batch // 2, len(present)), replace=False
        )
        dropped = [present[i] for i in idx]
        for p in dropped:
            del edges[p]
        dr, dc = _arrays(dropped)
        steps.append(DeleteBatch(dr, dc, np.ones(dr.size), label=f"road-del[{r}]"))
        steps.append(SnapshotCheck(expect_nnz=len(edges), label=f"nnz@{r}"))
        steps.append(_expected_check(f"distances@{r}"))
    return Scenario(
        name="road_churn_sssp",
        shape=(n, n),
        steps=steps,
        initial_tuples=initial,
        app=AppSpec(name="sssp", sources=sources),
        semiring_name="min_plus",
        seed=seed,
        metadata={
            "generator": "road_churn_sssp",
            "rounds": rounds,
            "sources": sources.tolist(),
        },
    )


# ----------------------------------------------------------------------
# 8. multilevel contraction pipeline
# ----------------------------------------------------------------------
def multilevel_contraction(
    *,
    n_cliques: int = 6,
    clique: int = 4,
    extra_batch: int = 20,
    seed: int = 0,
) -> Scenario:
    """Contract a churning clustered graph at two coarsening levels.

    A ring of cliques is inserted, contracted along its planted clustering
    (level 1), perturbed with random inter-cluster edges, contracted again
    at a coarser pairing of cliques (level 2), then thinned and contracted
    once more — the multilevel-coarsening pipeline as a replayable trace.
    Every :class:`ContractStep` carries the expected contracted COO
    computed at generation time.
    """
    pool_seed, value_seed = _child_seeds(seed, 2, salt=0x6F08)
    n = n_cliques * clique
    clusters1 = np.arange(n, dtype=np.int64) // clique
    clusters2 = clusters1 // 2
    n_coarse = (n_cliques + 1) // 2

    src, dst = ring_of_cliques_edges(n_cliques, clique)
    edges: dict[tuple[int, int], float] = {}

    def _expected(clusters: np.ndarray, k: int, drop_self_loops: bool) -> TupleArrays:
        dense = np.zeros((k, k))
        for (i, j), w in edges.items():
            dense[clusters[i], clusters[j]] += w
        if drop_self_loops:
            np.fill_diagonal(dense, 0.0)
        rows, cols = np.nonzero(dense)
        return (
            rows.astype(np.int64),
            cols.astype(np.int64),
            dense[rows, cols].astype(np.float64),
        )

    def _insert(rows: np.ndarray, cols: np.ndarray, label: str) -> InsertBatch:
        for i, j in zip(rows.tolist(), cols.tolist()):
            edges[(i, j)] = edges.get((i, j), 0.0) + 1.0
        return InsertBatch(rows, cols, np.ones(rows.size), label=label)

    steps: list = [_insert(src, dst, "cliques")]
    steps.append(
        ContractStep(
            clusters=clusters1,
            n_clusters=n_cliques,
            drop_self_loops=True,
            expect_tuples=_expected(clusters1, n_cliques, True),
            label="contract-l1",
        )
    )
    # perturb with random edges not already present
    pr, pc = _unique_edge_pool(n, 4 * extra_batch, pool_seed)
    keep = np.asarray([(int(i), int(j)) not in edges for i, j in zip(pr, pc)])
    pr, pc = pr[keep][:extra_batch], pc[keep][:extra_batch]
    steps.append(_insert(pr, pc, "perturb"))
    steps.append(
        ContractStep(
            clusters=clusters2,
            n_clusters=n_coarse,
            expect_tuples=_expected(clusters2, n_coarse, False),
            label="contract-l2",
        )
    )
    # thin the perturbation again and re-contract at level 1
    rng = np.random.default_rng(value_seed)
    half = max(1, pr.size // 2)
    idx = rng.choice(pr.size, size=half, replace=False)
    dr, dc = pr[idx], pc[idx]
    for i, j in zip(dr.tolist(), dc.tolist()):
        del edges[(i, j)]
    steps.append(DeleteBatch(dr, dc, np.ones(dr.size), label="thin"))
    steps.append(SnapshotCheck(expect_nnz=len(edges), label="nnz@final"))
    steps.append(
        ContractStep(
            clusters=clusters1,
            n_clusters=n_cliques,
            drop_self_loops=True,
            expect_tuples=_expected(clusters1, n_cliques, True),
            label="contract-l3",
        )
    )
    return Scenario(
        name="multilevel_contraction",
        shape=(n, n),
        steps=steps,
        seed=seed,
        metadata={
            "generator": "multilevel_contraction",
            "n_cliques": n_cliques,
            "clique": clique,
        },
    )


# ----------------------------------------------------------------------
# 9. hotspot vertex stream (adversarial: extreme imbalance)
# ----------------------------------------------------------------------
def hotspot_vertex_stream(
    *,
    n: int = 64,
    n_hubs: int = 3,
    n_batches: int = 5,
    batch: int = 40,
    hub_share: float = 0.85,
    seed: int = 0,
) -> Scenario:
    """Hub-dominated stream: a few vertices receive almost every edge.

    Each batch sends ``hub_share`` of its edges to ``n_hubs`` hub rows
    (round-robin over the hubs, fresh columns per hub) and scatters the
    rest uniformly — the degree-skew worst case for 2D block placement,
    since whole grid rows concentrate on the ranks owning the hubs.
    Every other batch also deletes a slice of the oldest hub edges, so
    the hub rows churn instead of only growing.  The generator tracks
    the exact present set and pins nnz after every batch.
    """
    pool_seed, pick_seed, value_seed = _child_seeds(seed, 3, salt=0x6F09)
    rng_pick = np.random.default_rng(pick_seed)
    rng_val = np.random.default_rng(value_seed)
    hubs = np.sort(rng_pick.choice(n, size=n_hubs, replace=False)).tolist()
    bg_rows, bg_cols = _unique_edge_pool(n, n_batches * batch, pool_seed)
    bg_cursor = 0

    present: set[tuple[int, int]] = set()
    hub_history: list[tuple[int, int]] = []  # hub edges in insertion order
    free_cols = {int(h): [c for c in range(n) if c != h] for h in hubs}
    for h in free_cols:
        rng_pick.shuffle(free_cols[h])

    steps: list = []
    for b in range(n_batches):
        n_hub = int(round(hub_share * batch))
        pairs: list[tuple[int, int]] = []
        for k in range(n_hub):
            h = hubs[k % n_hubs]
            cols = free_cols[h]
            if not cols:
                continue
            pair = (h, cols.pop())
            pairs.append(pair)
            hub_history.append(pair)
        while len(pairs) < batch and bg_cursor < bg_rows.size:
            pair = (int(bg_rows[bg_cursor]), int(bg_cols[bg_cursor]))
            bg_cursor += 1
            if pair not in present and pair not in pairs:
                pairs.append(pair)
        present.update(pairs)
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        steps.append(
            InsertBatch(
                arr[:, 0], arr[:, 1], _values(rng_val, arr.shape[0]),
                label=f"hotspot-in[{b}]",
            )
        )
        if b % 2 == 1 and hub_history:
            drop = hub_history[: max(1, len(hub_history) // 4)]
            hub_history = hub_history[len(drop):]
            present.difference_update(drop)
            for h, c in drop:
                free_cols[h].append(c)
            darr = np.asarray(drop, dtype=np.int64).reshape(-1, 2)
            steps.append(
                DeleteBatch(
                    darr[:, 0], darr[:, 1], np.ones(darr.shape[0]),
                    label=f"hotspot-del[{b}]",
                )
            )
        steps.append(SnapshotCheck(expect_nnz=len(present), label=f"nnz@{b}"))
    return Scenario(
        name="hotspot_vertex_stream",
        shape=(n, n),
        steps=steps,
        seed=seed,
        metadata={
            "generator": "hotspot_vertex_stream",
            "hubs": hubs,
            "batch": batch,
        },
    )


# ----------------------------------------------------------------------
# 10. oscillating insert/delete (adversarial: churn without growth)
# ----------------------------------------------------------------------
def oscillating_insert_delete(
    *,
    n: int = 64,
    rounds: int = 4,
    batch: int = 48,
    base: int = 64,
    seed: int = 0,
) -> Scenario:
    """Insert a batch, then delete exactly that batch, over and over.

    A persistent ``base`` graph keeps the matrix non-empty while the same
    oscillating coordinate set is inserted and deleted every round (with
    fresh values each time).  The structural nnz returns to ``base`` after
    every round, but the DHB rows accumulate a long swap-with-last and
    regrowth history — the regime where any state that is *not* derivable
    from the live tuples (capacities, slot order, grow counters) drifts
    furthest from a freshly built matrix.
    """
    pool_seed, value_seed = _child_seeds(seed, 2, salt=0x6F0A)
    rows, cols = _unique_edge_pool(n, base + batch, pool_seed)
    if rows.size < base + 1:
        raise ValueError("edge pool too small for the requested base/batch")
    base = min(base, rows.size - 1)
    batch = min(batch, rows.size - base)
    rng = np.random.default_rng(value_seed)
    initial: TupleArrays = (rows[:base], cols[:base], _values(rng, base))
    osc_r, osc_c = rows[base : base + batch], cols[base : base + batch]

    steps: list = []
    for r in range(rounds):
        steps.append(
            InsertBatch(osc_r, osc_c, _values(rng, batch), label=f"osc-in[{r}]")
        )
        steps.append(SnapshotCheck(expect_nnz=base + batch, label=f"nnz-hi@{r}"))
        steps.append(
            DeleteBatch(osc_r, osc_c, np.ones(batch), label=f"osc-del[{r}]")
        )
        steps.append(SnapshotCheck(expect_nnz=base, label=f"nnz-lo@{r}"))
    return Scenario(
        name="oscillating_insert_delete",
        shape=(n, n),
        steps=steps,
        initial_tuples=initial,
        seed=seed,
        metadata={
            "generator": "oscillating_insert_delete",
            "rounds": rounds,
            "batch": batch,
            "base": base,
        },
    )


# ----------------------------------------------------------------------
# 11. DHB bucket-collision stream (adversarial: hash-index churn)
# ----------------------------------------------------------------------
def dhb_bucket_collision_stream(
    *,
    n: int = 96,
    n_hot_rows: int = 2,
    waves: int = 5,
    wave: int = 36,
    stride: int = 7,
    seed: int = 0,
) -> Scenario:
    """DHB worst case: every entry collides into a few hot rows.

    All inserts land on ``n_hot_rows`` rows with stride-spaced column
    indices (the classic bucket-collision pattern: many keys, one home),
    and every wave deletes a block of *interior* columns before the next
    wave re-inserts over the holes.  Each hot DHB row therefore replays
    the maximum number of hash-index probes, swap-with-last relocations
    and adjacency-array regrowths per structural non-zero — the pattern
    that separates a restored row (bulk-loaded, compact) from a row that
    lived through the history, which is exactly what the checkpoint codec
    must preserve.
    """
    pick_seed, value_seed = _child_seeds(seed, 2, salt=0x6F0B)
    rng_pick = np.random.default_rng(pick_seed)
    rng_val = np.random.default_rng(value_seed)
    hot_rows = np.sort(rng_pick.choice(n, size=n_hot_rows, replace=False)).tolist()

    # stride-spaced column ring: visits every column exactly once per lap
    # (a coprime stride makes the ring a full cycle)
    while np.gcd(int(stride), n) != 1:
        stride += 1
    col_ring = [(k * stride) % n for k in range(n)]

    present: dict[int, list[int]] = {h: [] for h in hot_rows}  # insertion order
    cursor = {h: 0 for h in hot_rows}
    steps: list = []
    for w in range(waves):
        pairs: list[tuple[int, int]] = []
        per_row = wave // n_hot_rows
        for h in hot_rows:
            live = set(present[h])
            taken = 0
            while taken < per_row and len(live) < n:
                c = col_ring[cursor[h] % n]
                cursor[h] += 1
                if c in live:
                    continue
                live.add(c)
                present[h].append(c)
                pairs.append((h, c))
                taken += 1
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        steps.append(
            InsertBatch(
                arr[:, 0], arr[:, 1], _values(rng_val, arr.shape[0]),
                label=f"collide-in[{w}]",
            )
        )
        nnz = sum(len(v) for v in present.values())
        steps.append(SnapshotCheck(expect_nnz=nnz, label=f"nnz-hi@{w}"))
        # delete a block of interior (not most-recent) columns per hot row,
        # forcing swap-with-last relocations rather than cheap tail pops
        drop_pairs: list[tuple[int, int]] = []
        for h in hot_rows:
            inner = present[h][1 : 1 + max(1, len(present[h]) // 3)]
            drop_pairs.extend((h, c) for c in inner)
            present[h] = [c for c in present[h] if c not in set(inner)]
        if drop_pairs:
            darr = np.asarray(drop_pairs, dtype=np.int64).reshape(-1, 2)
            steps.append(
                DeleteBatch(
                    darr[:, 0], darr[:, 1], np.ones(darr.shape[0]),
                    label=f"collide-del[{w}]",
                )
            )
        nnz = sum(len(v) for v in present.values())
        steps.append(SnapshotCheck(expect_nnz=nnz, label=f"nnz-lo@{w}"))
    return Scenario(
        name="dhb_bucket_collision_stream",
        shape=(n, n),
        steps=steps,
        seed=seed,
        metadata={
            "generator": "dhb_bucket_collision_stream",
            "hot_rows": hot_rows,
            "stride": int(stride),
        },
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
SCENARIO_GENERATORS: dict[str, Callable[..., Scenario]] = {
    "grow_from_empty": grow_from_empty,
    "steady_state_churn": steady_state_churn,
    "sliding_window": sliding_window,
    "bursty_skewed_stream": bursty_skewed_stream,
    "mixed_update_multiply": mixed_update_multiply,
    "social_triangle_stream": social_triangle_stream,
    "road_churn_sssp": road_churn_sssp,
    "multilevel_contraction": multilevel_contraction,
    "hotspot_vertex_stream": hotspot_vertex_stream,
    "oscillating_insert_delete": oscillating_insert_delete,
    "dhb_bucket_collision_stream": dhb_bucket_collision_stream,
}


def library_scenarios(*, seed: int = 0) -> list[Scenario]:
    """One default-sized scenario per generator (differential-suite set)."""
    return [gen(seed=seed) for gen in SCENARIO_GENERATORS.values()]
