"""Library of seeded scenario generators.

Each generator returns a fully materialised
:class:`~repro.scenarios.model.Scenario`: every random draw is derived from
the ``seed`` argument through independent :class:`numpy.random.SeedSequence`
children, so the same call always produces the identical trace and two
different seeds never share RNG streams.

The traces mirror the dynamic-graph regimes of the paper's experiments
(Sections IV-A, VII) and the batched streaming regimes studied for very
large dynamic datasets in the related work:

* :func:`grow_from_empty` — pure insertion stream (Fig. 4 regime);
* :func:`steady_state_churn` — stationary nnz under interleaved insert /
  delete / value-update rounds (Fig. 5 regime);
* :func:`sliding_window` — streaming window: every insert batch expires
  ``window`` steps later as a deletion batch;
* :func:`bursty_skewed_stream` — R-MAT (social-skew) stream with bursty
  batch sizes and occasional deletions;
* :func:`mixed_update_multiply` — dynamic SpGEMM: the left operand grows
  through update+multiply rounds (Fig. 9 regime) with full product
  verification at the checkpoints.

``SCENARIO_GENERATORS`` maps generator names to callables and
:func:`library_scenarios` instantiates one default-sized scenario per
generator — the set the cross-backend differential suite replays.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graphs import erdos_renyi_edges, rmat_edges
from repro.scenarios.model import (
    DeleteBatch,
    InsertBatch,
    Scenario,
    SnapshotCheck,
    SpGEMMStep,
    TupleArrays,
    ValueUpdateBatch,
    seed_int,
    spawn_seeds,
)

__all__ = [
    "SCENARIO_GENERATORS",
    "library_scenarios",
    "grow_from_empty",
    "steady_state_churn",
    "sliding_window",
    "bursty_skewed_stream",
    "mixed_update_multiply",
]

#: R-MAT quadrant probabilities of the most skewed (social) category.
_SOCIAL_PARAMS = (0.57, 0.19, 0.19, 0.05)


def _child_seeds(seed: int, n: int, *, salt: int) -> list[int]:
    """``n`` independent integer seeds derived from ``(seed, salt)``."""
    return [seed_int(c) for c in spawn_seeds([int(seed), int(salt)], n)]


def _unique_edge_pool(
    n: int,
    target: int,
    seed: int,
    *,
    skewed: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """At most ``target`` unique (row, col) pairs on an ``n × n`` matrix."""
    if skewed:
        scale = max(2, int(np.ceil(np.log2(n))))
        n_vertices, src, dst = rmat_edges(
            scale,
            max(1, int(np.ceil(2.0 * target / (1 << scale)))),
            params=_SOCIAL_PARAMS,
            seed=seed,
            deduplicate=True,
            remove_self_loops=True,
        )
        src, dst = src % n, dst % n
    else:
        src, dst = erdos_renyi_edges(n, 2 * target, seed=seed, deduplicate=True)
    keys = src.astype(np.int64) * n + dst.astype(np.int64)
    _, first = np.unique(keys, return_index=True)
    first.sort()
    src, dst = src[first], dst[first]
    return src[:target].astype(np.int64), dst[:target].astype(np.int64)


def _values(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.random(size) + 0.25


# ----------------------------------------------------------------------
# 1. grow-from-empty insertion stream
# ----------------------------------------------------------------------
def grow_from_empty(
    *, n: int = 64, n_batches: int = 6, batch: int = 56, seed: int = 0
) -> Scenario:
    """Pure insertion stream: the matrix grows from empty in equal batches."""
    pool_seed, value_seed = _child_seeds(seed, 2, salt=0x6F01)
    rows, cols = _unique_edge_pool(n, n_batches * batch, pool_seed)
    batch = rows.size // n_batches
    rng = np.random.default_rng(value_seed)
    steps: list = []
    for b in range(n_batches):
        sel = slice(b * batch, (b + 1) * batch)
        steps.append(
            InsertBatch(
                rows[sel], cols[sel], _values(rng, batch), label=f"insert[{b}]"
            )
        )
        if b == n_batches // 2 - 1 or b == n_batches - 1:
            steps.append(
                SnapshotCheck(expect_nnz=(b + 1) * batch, label=f"nnz@{b}")
            )
    return Scenario(
        name="grow_from_empty",
        shape=(n, n),
        steps=steps,
        seed=seed,
        metadata={"generator": "grow_from_empty", "batch": batch},
    )


# ----------------------------------------------------------------------
# 2. steady-state churn
# ----------------------------------------------------------------------
def steady_state_churn(
    *, n: int = 64, rounds: int = 4, batch: int = 32, seed: int = 0
) -> Scenario:
    """Stationary-size trace: each round inserts, deletes and re-values.

    The generator tracks the exact set of present coordinates, so every
    round inserts only absent coordinates, deletes and value-updates only
    present ones, and the snapshot checks pin the exact nnz.
    """
    pool_seed, pick_seed, value_seed = _child_seeds(seed, 3, salt=0x6F02)
    initial_size = 6 * batch
    pool_rows, pool_cols = _unique_edge_pool(
        n, initial_size + rounds * batch, pool_seed
    )
    rng_pick = np.random.default_rng(pick_seed)
    rng_val = np.random.default_rng(value_seed)

    present = [(int(i), int(j)) for i, j in zip(pool_rows[:initial_size], pool_cols[:initial_size])]
    free = [(int(i), int(j)) for i, j in zip(pool_rows[initial_size:], pool_cols[initial_size:])]
    initial: TupleArrays = (
        pool_rows[:initial_size],
        pool_cols[:initial_size],
        _values(rng_val, initial_size),
    )

    def _as_arrays(pairs: list[tuple[int, int]]) -> tuple[np.ndarray, np.ndarray]:
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return arr[:, 0], arr[:, 1]

    steps: list = []
    for r in range(rounds):
        # insert `batch` absent coordinates
        take = min(batch, len(free))
        idx = rng_pick.choice(len(free), size=take, replace=False)
        inserted = [free[i] for i in idx]
        chosen = set(idx.tolist())
        free = [p for k, p in enumerate(free) if k not in chosen]
        present.extend(inserted)
        ir, ic = _as_arrays(inserted)
        steps.append(InsertBatch(ir, ic, _values(rng_val, take), label=f"churn-in[{r}]"))
        # delete `batch` present coordinates (they become free again)
        idx = rng_pick.choice(len(present), size=min(batch, len(present)), replace=False)
        deleted = [present[i] for i in idx]
        chosen = set(idx.tolist())
        present = [p for k, p in enumerate(present) if k not in chosen]
        free.extend(deleted)
        dr, dc = _as_arrays(deleted)
        steps.append(
            DeleteBatch(dr, dc, np.ones(dr.size), label=f"churn-del[{r}]")
        )
        # overwrite the values of `batch` surviving coordinates
        idx = rng_pick.choice(len(present), size=min(batch, len(present)), replace=False)
        updated = [present[i] for i in idx]
        ur, uc = _as_arrays(updated)
        steps.append(
            ValueUpdateBatch(
                ur, uc, _values(rng_val, ur.size), label=f"churn-upd[{r}]"
            )
        )
        steps.append(SnapshotCheck(expect_nnz=len(present), label=f"nnz@{r}"))
    return Scenario(
        name="steady_state_churn",
        shape=(n, n),
        steps=steps,
        initial_tuples=initial,
        seed=seed,
        metadata={"generator": "steady_state_churn", "rounds": rounds, "batch": batch},
    )


# ----------------------------------------------------------------------
# 3. sliding window
# ----------------------------------------------------------------------
def sliding_window(
    *,
    n: int = 64,
    window: int = 3,
    n_batches: int = 7,
    batch: int = 40,
    seed: int = 0,
) -> Scenario:
    """Streaming window: batch ``b`` is deleted again at step ``b + window``.

    After the trace only the last ``window`` insert batches remain, which
    the final snapshot pins exactly — the regime of streaming-window
    analytics over an edge stream.
    """
    if n_batches <= window:
        raise ValueError("need more batches than the window length")
    pool_seed, value_seed = _child_seeds(seed, 2, salt=0x6F03)
    rows, cols = _unique_edge_pool(n, n_batches * batch, pool_seed)
    batch = rows.size // n_batches
    rng = np.random.default_rng(value_seed)
    batches = [
        (rows[b * batch : (b + 1) * batch], cols[b * batch : (b + 1) * batch])
        for b in range(n_batches)
    ]
    steps: list = []
    live = 0
    for b in range(n_batches):
        br, bc = batches[b]
        steps.append(InsertBatch(br, bc, _values(rng, batch), label=f"window-in[{b}]"))
        live += batch
        if b >= window:
            er, ec = batches[b - window]
            steps.append(
                DeleteBatch(er, ec, np.ones(er.size), label=f"window-expire[{b - window}]")
            )
            live -= batch
        steps.append(SnapshotCheck(expect_nnz=live, label=f"nnz@{b}"))
    return Scenario(
        name="sliding_window",
        shape=(n, n),
        steps=steps,
        seed=seed,
        metadata={
            "generator": "sliding_window",
            "window": window,
            "batch": batch,
        },
    )


# ----------------------------------------------------------------------
# 4. bursty skewed stream
# ----------------------------------------------------------------------
def bursty_skewed_stream(
    *,
    n: int = 96,
    bursts: tuple[int, ...] = (16, 16, 144, 16, 112, 16),
    delete_every: int = 3,
    delete_batch: int = 24,
    seed: int = 0,
    semiring_name: str = "min_plus",
) -> Scenario:
    """Bursty R-MAT stream: small steady batches punctuated by large bursts.

    Batches are drawn *with replacement* from a skewed (social-parameter)
    R-MAT pool, so duplicate coordinates are ⊕-combined — over ``min_plus``
    by default, exercising a non-ring semiring.  Every ``delete_every``-th
    step additionally deletes a batch of currently present coordinates.
    The generator tracks the exact present set for the snapshot checks.
    """
    pool_seed, draw_seed, value_seed = _child_seeds(seed, 3, salt=0x6F04)
    pool_rows, pool_cols = _unique_edge_pool(n, 6 * max(bursts), pool_seed, skewed=True)
    rng_draw = np.random.default_rng(draw_seed)
    rng_val = np.random.default_rng(value_seed)
    present: set[tuple[int, int]] = set()
    steps: list = []
    for b, size in enumerate(bursts):
        idx = rng_draw.choice(pool_rows.size, size=size, replace=True)
        br, bc = pool_rows[idx], pool_cols[idx]
        present.update((int(i), int(j)) for i, j in zip(br, bc))
        steps.append(
            InsertBatch(br, bc, _values(rng_val, size), label=f"burst[{b}]x{size}")
        )
        if delete_every and (b + 1) % delete_every == 0 and present:
            candidates = sorted(present)
            idx = rng_draw.choice(
                len(candidates), size=min(delete_batch, len(candidates)), replace=False
            )
            dropped = [candidates[i] for i in idx]
            present.difference_update(dropped)
            arr = np.asarray(dropped, dtype=np.int64).reshape(-1, 2)
            steps.append(
                DeleteBatch(
                    arr[:, 0], arr[:, 1], np.ones(arr.shape[0]), label=f"burst-del[{b}]"
                )
            )
        steps.append(SnapshotCheck(expect_nnz=len(present), label=f"nnz@{b}"))
    return Scenario(
        name="bursty_skewed_stream",
        shape=(n, n),
        steps=steps,
        seed=seed,
        semiring_name=semiring_name,
        metadata={"generator": "bursty_skewed_stream", "bursts": list(bursts)},
    )


# ----------------------------------------------------------------------
# 5. mixed update + multiply phases
# ----------------------------------------------------------------------
def mixed_update_multiply(
    *,
    n: int = 48,
    n_batches: int = 4,
    batch: int = 36,
    b_edges: int = 200,
    seed: int = 0,
) -> Scenario:
    """Dynamic SpGEMM trace: ``A`` grows through update+multiply rounds.

    Every batch flows through an algebraic :class:`SpGEMMStep` (Algorithm 1:
    ``C ⊕= A*·B``, ``A ⊕= A*``), and the checkpoints recompute ``A·B`` from
    scratch to verify the maintained product — the Fig. 9 protocol as a
    replayable trace.
    """
    pool_seed, b_seed, value_seed = _child_seeds(seed, 3, salt=0x6F05)
    rows, cols = _unique_edge_pool(n, n_batches * batch, pool_seed)
    batch = rows.size // n_batches
    rng = np.random.default_rng(value_seed)
    b_rows, b_cols = _unique_edge_pool(n, b_edges, b_seed)
    b_tuples: TupleArrays = (b_rows, b_cols, _values(rng, b_rows.size))
    steps: list = []
    for b in range(n_batches):
        sel = slice(b * batch, (b + 1) * batch)
        steps.append(
            SpGEMMStep(
                rows[sel],
                cols[sel],
                _values(rng, batch),
                label=f"update+multiply[{b}]",
                mode="algebraic",
            )
        )
        if b == n_batches // 2 - 1 or b == n_batches - 1:
            steps.append(
                SnapshotCheck(
                    expect_nnz=(b + 1) * batch,
                    verify_product=True,
                    label=f"product@{b}",
                )
            )
    return Scenario(
        name="mixed_update_multiply",
        shape=(n, n),
        steps=steps,
        b_tuples=b_tuples,
        seed=seed,
        metadata={"generator": "mixed_update_multiply", "batch": batch},
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
SCENARIO_GENERATORS: dict[str, Callable[..., Scenario]] = {
    "grow_from_empty": grow_from_empty,
    "steady_state_churn": steady_state_churn,
    "sliding_window": sliding_window,
    "bursty_skewed_stream": bursty_skewed_stream,
    "mixed_update_multiply": mixed_update_multiply,
}


def library_scenarios(*, seed: int = 0) -> list[Scenario]:
    """One default-sized scenario per generator (differential-suite set)."""
    return [gen(seed=seed) for gen in SCENARIO_GENERATORS.values()]
