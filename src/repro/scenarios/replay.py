"""Replay driver: run a :class:`~repro.scenarios.model.Scenario` anywhere.

:func:`replay` executes a scenario against any registered communicator
backend (``sim``, ``mpi``, …), any rank count and any local storage layout,
and returns a structured :class:`~repro.scenarios.model.ScenarioResult`.
It is a thin driver: communicator resolution, fault arming and the
crash/recovery loop live here, while the actual step application is the
shared :class:`~repro.scenarios.engine.ScenarioEngine` (also driven,
incrementally, by the always-on :class:`repro.service.GraphService`) and
the per-step semantics live in the executors
(:mod:`repro.scenarios.executors`):

* :class:`NativeExecutor` — the paper's own machinery (all four local
  layouts, Algorithm 1 / 2, app-aware on ``AppSpec`` scenarios).
* :class:`CompetitorExecutor` — wraps any :mod:`repro.competitors`
  backend; unsupported steps truncate the replay
  (``ScenarioResult.truncated_at``).

Timing semantics match the bespoke loops the benchmark drivers used to
carry: construction is untimed unless ``scenario.timed_construction`` is
set, batch scattering (``partition_tuples_round_robin``) happens outside
the timed region, and each step's timed region covers exactly the update /
multiply work.

Configuration can be passed as historical keywords, as a bundled
:class:`~repro.scenarios.options.ReplayOptions`, or both (keywords win).
"""

from __future__ import annotations

import os
from contextlib import nullcontext

from repro.runtime import make_communicator, resolve_backend_name
from repro.runtime.backend import Communicator
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    faults_from_env,
)
from repro.scenarios.engine import (
    ScenarioEngine,
    global_stats_diff,
    install_placement,
    merged_stats,
    registry_name_of,
    scenario_nnz_weights,
)
from repro.scenarios.executors import (
    REPLAY_LAYOUTS,
    CompetitorExecutor,
    NativeExecutor,
    ScenarioCheckError,
    _as_layout,
)
from repro.scenarios.model import Scenario, ScenarioResult
from repro.scenarios.options import ReplayOptions

__all__ = [
    "REPLAY_LAYOUTS",
    "ReplayOptions",
    "ScenarioCheckError",
    "ScenarioEngine",
    "NativeExecutor",
    "CompetitorExecutor",
    "replay",
]

# Historical private aliases: these helpers lived here before the engine
# extraction and external code may still import them by the old names.
_registry_name_of = registry_name_of
_scenario_nnz_weights = scenario_nnz_weights
_install_placement = install_placement
_global_stats_diff = global_stats_diff
_merged_stats = merged_stats


def replay(
    scenario: Scenario,
    *,
    options: ReplayOptions | None = None,
    comm: Communicator | None = None,
    **kwargs,
) -> ScenarioResult:
    """Replay ``scenario`` and return its structured result.

    Parameters
    ----------
    options:
        A bundled :class:`~repro.scenarios.options.ReplayOptions`.  Any
        keyword below overrides the bundled value; unknown keywords are
        forwarded to :func:`repro.runtime.make_communicator`.
    backend:
        Communicator backend name (``"sim"``, ``"mpi"``, …); resolved like
        :func:`repro.runtime.make_communicator` when ``comm`` is not given.
    n_ranks, machine:
        Communicator configuration (ignored when ``comm`` is passed).
    layout:
        Local storage layout of the static right-hand operand, one of
        :data:`REPLAY_LAYOUTS`.
    partitioner:
        Logical-rank→process placement strategy (a name or a
        :class:`~repro.runtime.partitioner.Partitioner`); defaults to the
        ``REPRO_PARTITIONER`` environment variable.  Placement is physical
        — results are byte-identical under every strategy; only the
        multi-process backends act on it.  Weight-using strategies
        (``nnz_aware``) estimate per-rank nnz from the initial matrix and
        a scenario prefix.  With ``REPRO_REPARTITION`` armed, pure-update
        replays additionally migrate block ownership between batches when
        the per-process nnz imbalance exceeds the threshold.
    executor_factory:
        ``(comm, grid, scenario, *, layout) -> executor``; defaults to
        :class:`NativeExecutor`.  Use
        ``CompetitorExecutor.factory("combblas")`` to replay against a
        benchmark backend.
    check_snapshots:
        When False, :class:`~repro.scenarios.model.SnapshotCheck` steps are
        recorded but not evaluated (useful while benchmarking competitors).
    collect_final:
        When False, skip assembling the global final tuples (cheaper for
        timing-only replays).
    checkpoint_store:
        :class:`~repro.scenarios.checkpoint.CheckpointStore` used by
        :class:`~repro.scenarios.model.CheckpointStep` /
        :class:`~repro.scenarios.model.RestoreStep` steps and the
        ``on_crash="restore"`` policy.  A run-local store is created when
        the scenario contains checkpoint steps and none is passed; share
        one store across the processes of a loopback drill.
    resume_from:
        A snapshot ``dict`` (or path to a snapshot file) to continue
        from: construction is skipped, the world state is rebuilt
        (recovery traffic charged to the ``recovery`` category), and the
        returned result covers the *whole* trace — the snapshot's progress
        prefix stitched to the resumed suffix.
    faults:
        Fault injection: a :class:`~repro.runtime.faults.FaultPlan`, a
        ``REPRO_FAULTS``-grammar string, or a pre-armed
        :class:`~repro.runtime.faults.FaultInjector` (pass the same
        injector across recovery attempts so fired kills do not refire).
        Defaults to the ``REPRO_FAULTS`` environment variable.
    on_crash:
        What to do when an injected crash fires: ``"raise"`` (default —
        the multi-process harness catches it and restarts the world),
        ``"restore"`` (resume from the latest checkpoint, or retry from
        scratch when none exists yet) or ``"retry"`` (always restart the
        replay from scratch).  In-process backends only.
    """
    from repro.scenarios.checkpoint import CheckpointStore, load_snapshot
    from repro.scenarios.model import CheckpointStep, RestoreStep

    opts = (options if options is not None else ReplayOptions()).merged(**kwargs)
    opts.validate()
    if comm is None:
        backend_name = resolve_backend_name(opts.backend)
        comm = make_communicator(
            backend_name,
            n_ranks=opts.n_ranks,
            machine=opts.machine,
            **opts.backend_kwargs,
        )
    else:
        backend_name = (
            resolve_backend_name(opts.backend)
            if opts.backend
            else registry_name_of(comm)
        )
    faults = opts.faults if opts.faults is not None else faults_from_env()
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    injector = (
        faults
        if isinstance(faults, FaultInjector)
        else (FaultInjector(faults) if faults is not None else None)
    )
    store = opts.checkpoint_store
    if store is None and any(
        isinstance(s, (CheckpointStep, RestoreStep)) for s in scenario.steps
    ):
        store = CheckpointStore()
    resume = opts.resume_from
    if isinstance(resume, (str, os.PathLike)):
        resume = load_snapshot(resume)
    world_rank = int(getattr(comm, "world_rank", 0))

    recoveries = 0
    while True:
        try:
            return _replay_once(
                scenario,
                comm=comm,
                backend_name=backend_name,
                opts=opts,
                store=store,
                resume=resume,
                injector=injector,
                world_rank=world_rank,
            )
        except SimulatedCrash:
            if opts.on_crash == "raise":
                raise
            recoveries += 1
            if recoveries > opts.max_recoveries:
                raise
            resume = (
                store.latest(world_rank)
                if (opts.on_crash == "restore" and store is not None)
                else None
            )


def _replay_once(
    scenario: Scenario,
    *,
    comm: Communicator,
    backend_name: str,
    opts: ReplayOptions,
    store,
    resume,
    injector,
    world_rank: int,
) -> ScenarioResult:
    """One replay attempt (the crash/recovery loop lives in :func:`replay`)."""
    engine = ScenarioEngine(
        scenario,
        comm,
        backend_name=backend_name,
        layout=opts.layout,
        partitioner=opts.partitioner,
        executor_factory=opts.executor_factory,
        check_snapshots=opts.check_snapshots,
        store=store,
        injector=injector,
        world_rank=world_rank,
    )
    armed = injector.activate(world_rank) if injector is not None else nullcontext()
    with armed:
        engine.begin(resume=resume)
        engine.advance()
    return engine.result(collect_final=opts.collect_final)
