"""Replay driver: run a :class:`~repro.scenarios.model.Scenario` anywhere.

:func:`replay` executes a scenario against any registered communicator
backend (``sim``, ``mpi``, …), any rank count and any local storage layout,
and returns a structured :class:`~repro.scenarios.model.ScenarioResult`.
The actual application of steps is delegated to an *executor*:

* :class:`NativeExecutor` — the paper's own machinery: a
  :class:`~repro.distributed.DynamicDistMatrix` target, hypersparse update
  matrices, Algorithm 1 / 2 for :class:`~repro.scenarios.model.SpGEMMStep`
  steps and support for all four local layouts (COO, CSR, DCSR, DHB) of the
  static right-hand operand.
* :class:`CompetitorExecutor` — wraps any backend from
  :mod:`repro.competitors` (``ours``, ``combblas``, ``ctf``, ``petsc``), so
  the benchmark drivers can replay one scenario against every system under
  comparison.  Steps a backend does not support truncate the replay and are
  reported via ``ScenarioResult.truncated_at``.

Timing semantics match the bespoke loops the benchmark drivers used to
carry: construction is untimed unless ``scenario.timed_construction`` is
set, batch scattering (``partition_tuples_round_robin``) happens outside
the timed region, and each step's timed region covers exactly the update /
multiply work.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from contextlib import nullcontext

from repro.perf.recorder import perf_phase
from repro.runtime import ProcessGrid, make_communicator, resolve_backend_name
from repro.runtime.backend import Communicator
from repro.runtime.config import MachineModel
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    faults_from_env,
)
from repro.runtime.partitioner import (
    PARTITIONER_ENV_VAR,
    Partitioner,
    make_partitioner,
    repartition_threshold,
)
from repro.runtime.stats import CommStats
from repro.semirings import Semiring
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    DCSRMatrix,
    DHBMatrix,
    spgemm_local,
)
from repro.distributed import (
    DynamicDistMatrix,
    StaticDistMatrix,
    UpdateBatch,
    build_update_matrix,
    partition_tuples_round_robin,
)
from repro.distributed.distribution import BlockDistribution
from repro.distributed.repartition import maybe_repartition
from repro.core import DynamicProduct, dynamic_spgemm_algebraic
from repro.scenarios.model import (
    AppQueryResult,
    AppQueryStep,
    CheckpointStep,
    ContractStep,
    CrashStep,
    RestoreStep,
    Scenario,
    ScenarioResult,
    ScenarioStep,
    ShortestPathCheck,
    SnapshotCheck,
    SpGEMMStep,
    StepStats,
    TriangleCountCheck,
    TupleArrays,
    canonical_tuples,
)

__all__ = [
    "REPLAY_LAYOUTS",
    "ScenarioCheckError",
    "NativeExecutor",
    "CompetitorExecutor",
    "replay",
]

#: Local layouts a scenario can be replayed against (the differential
#: harness sweeps all of them).
REPLAY_LAYOUTS = ("coo", "csr", "dcsr", "dhb")


class ScenarioCheckError(RuntimeError):
    """A :class:`SnapshotCheck` assertion failed during replay."""


def _as_layout(block, layout: str):
    """Convert a CSR block to the requested local layout."""
    if layout == "csr":
        return block
    coo = block.to_coo()
    if layout == "coo":
        return coo
    if layout == "dcsr":
        return DCSRMatrix.from_coo(coo, dedup=False)
    if layout == "dhb":
        return DHBMatrix.from_coo(coo, combine_duplicates=False)
    raise ValueError(f"unknown replay layout {layout!r} (use one of {REPLAY_LAYOUTS})")


# ----------------------------------------------------------------------
# native executor (the paper's machinery)
# ----------------------------------------------------------------------
class NativeExecutor:
    """Replays a scenario on the repository's own distributed matrices.

    When the scenario carries an :class:`~repro.scenarios.model.AppSpec`,
    the executor instantiates the corresponding application at construction
    time, routes every update step through it (so the app's incremental
    state — the maintained ``A²`` or ``S·A`` product — tracks the trace),
    and answers the application query steps from that state.
    """

    name = "native"
    supports_layouts = True
    #: the maintained application instance (None outside app scenarios)
    app = None

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        scenario: Scenario,
        *,
        layout: str = "csr",
        update_layout: str | None = None,
    ) -> None:
        if layout not in REPLAY_LAYOUTS:
            raise ValueError(
                f"unknown replay layout {layout!r} (use one of {REPLAY_LAYOUTS})"
            )
        self.comm = comm
        self.grid = grid
        self.scenario = scenario
        self.layout = layout
        #: update matrices need a static assembly layout (CSR or DCSR);
        #: by default they follow ``layout``, degrading to hypersparse DCSR
        #: for the layouts without an assembly path
        self.update_layout = update_layout or (
            layout if layout in ("csr", "dcsr") else "dcsr"
        )
        self.semiring: Semiring = scenario.semiring
        self.a: DynamicDistMatrix | None = None
        self.b_static: StaticDistMatrix | None = None
        self.c: DynamicDistMatrix | None = None
        self.product: DynamicProduct | None = None
        self._initial_per_rank: dict[int, TupleArrays] | None = None
        self._b_per_rank: dict[int, TupleArrays] | None = None

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Scatter the construction tuples (outside the timed region)."""
        scenario, grid = self.scenario, self.grid
        if scenario.b_tuples is None and scenario.has_spgemm:
            raise ValueError(
                f"scenario {scenario.name!r} contains SpGEMM steps but no "
                "b_tuples for the right-hand operand"
            )
        if scenario.app is not None:
            # the applications scatter their own construction batches
            # (seeded with construct_seed), so there is nothing to stage
            return
        if scenario.initial_tuples is not None:
            self._initial_per_rank = partition_tuples_round_robin(
                *scenario.initial_tuples, grid.n_ranks, seed=scenario.construct_seed
            )
        if scenario.b_tuples is not None:
            self._b_per_rank = partition_tuples_round_robin(
                *scenario.b_tuples, grid.n_ranks, seed=scenario.construct_seed
            )

    def _construct_app(self) -> None:
        """Instantiate the scenario's application and alias its matrices.

        ``self.a`` aliases the app's adjacency matrix and ``self.c`` the
        maintained product, so snapshot checks, ``final_a``/``final_c`` and
        :class:`ContractStep` work unchanged on app scenarios.
        """
        from repro.apps import (
            DynamicMultiSourceShortestPaths,
            DynamicTriangleCounter,
        )

        scenario, comm, grid = self.scenario, self.comm, self.grid
        spec = scenario.app
        n = scenario.shape[0]
        empty = np.empty(0, dtype=np.int64)
        rows, cols, values = scenario.initial_tuples or (
            empty,
            empty,
            np.empty(0, dtype=np.float64),
        )
        if spec.name == "triangle":
            self.app = DynamicTriangleCounter(
                comm, grid, n, rows, cols, seed=scenario.construct_seed
            )
        else:  # sssp (AppSpec validated the name)
            self.app = DynamicMultiSourceShortestPaths(
                comm,
                grid,
                n,
                rows,
                cols,
                values,
                spec.sources,
                seed=scenario.construct_seed,
            )
        self.a = self.app.adjacency
        self.c = self.app.product.c
        self.product = self.app.product

    def construct(self) -> None:
        scenario, comm, grid = self.scenario, self.comm, self.grid
        shape = scenario.shape
        if scenario.app is not None:
            self._construct_app()
            return
        if self._initial_per_rank is not None:
            self.a = DynamicDistMatrix.from_tuples(
                comm, grid, shape, self._initial_per_rank, self.semiring, combine="add"
            )
        else:
            self.a = DynamicDistMatrix.empty(comm, grid, shape, self.semiring)
        if self._b_per_rank is None:
            return
        b_per_rank = self._b_per_rank
        if scenario.has_general_spgemm:
            # Algorithm 2 maintains the product through DynamicProduct and
            # needs a dynamic right operand (last-write-wins duplicates).
            b_dyn = DynamicDistMatrix.from_tuples(
                comm, grid, shape, b_per_rank, self.semiring, combine="last"
            )
            self.product = DynamicProduct(
                comm, grid, self.a, b_dyn, semiring=self.semiring, mode="general"
            )
            self.c = self.product.c
        else:
            b_static = StaticDistMatrix.from_tuples(
                comm, grid, shape, b_per_rank, self.semiring, layout="csr"
            )
            if self.layout != "csr":
                for rank in list(b_static.blocks):
                    b_static.blocks[rank] = comm.run_local(
                        rank, _as_layout, b_static.blocks[rank], self.layout
                    )
            self.b_static = b_static
            self.c = DynamicDistMatrix.empty(comm, grid, shape, self.semiring)

    # ------------------------------------------------------------------
    def apply(self, step: ScenarioStep, per_rank: dict[int, TupleArrays]) -> int:
        if self.app is not None:
            return self._apply_app(step)
        if isinstance(step, SpGEMMStep):
            return self._apply_spgemm(step, per_rank)
        assert self.a is not None
        update = build_update_matrix(
            self.comm,
            self.grid,
            self.a.dist,
            per_rank,
            self.semiring,
            layout=self.update_layout,
            combine="add" if step.kind == "insert" else "last",
        )
        if step.kind == "insert":
            return self.a.add_update(update)
        if step.kind == "update":
            return self.a.merge_update(update)
        return self.a.mask_update(update)

    def _apply_spgemm(
        self, step: SpGEMMStep, per_rank: dict[int, TupleArrays]
    ) -> int:
        assert self.a is not None
        if step.mode == "general":
            assert self.product is not None
            batch = UpdateBatch(
                shape=self.scenario.shape,
                tuples_per_rank=dict(per_rank),
                kind=step.kind,
                semiring=self.semiring,
            )
            return self.product.apply_updates(a_batch=batch).touched_outputs
        assert self.b_static is not None and self.c is not None
        a_star = build_update_matrix(
            self.comm,
            self.grid,
            self.a.dist,
            per_rank,
            self.semiring,
            layout=self.update_layout,
            combine="add",
        )
        touched = dynamic_spgemm_algebraic(
            self.comm, self.grid, self.a, self.b_static, a_star, None, self.c
        )
        self.a.add_update(a_star)
        return touched

    def _apply_app(self, step: ScenarioStep) -> int:
        """Route one update step through the maintained application.

        The applications redistribute their (symmetrised / semiring-coerced)
        batches themselves, seeded with the step's ``partition_seed``, so
        the pre-scattered ``per_rank`` mapping is not used here.
        """
        spec = self.scenario.app
        if spec.name == "triangle":
            if step.kind != "insert":
                raise ValueError(
                    "the triangle application maintains A² additively; "
                    f"{step.kind!r} steps are not expressible (insert only)"
                )
            return self.app.insert_edges(
                step.rows, step.cols, seed=step.partition_seed
            )
        if step.kind == "delete":
            return self.app.delete_edges(
                step.rows, step.cols, seed=step.partition_seed
            )
        # insert and value-update steps are both general MERGE updates
        return self.app.update_edges(
            step.rows, step.cols, step.values, seed=step.partition_seed
        )

    # ------------------------------------------------------------------
    def query(self, step: AppQueryStep, *, check: bool = True) -> tuple[int, object]:
        """Execute one application query step.

        Returns ``(applied, payload)`` — an operation count for the step
        statistics and the byte-comparable payload recorded in
        ``ScenarioResult.app_results``.  ``check=False`` records without
        evaluating the baked-in expectations (mirrors ``check_snapshots``).
        """
        if isinstance(step, ContractStep):
            return self._query_contract(step, check)
        if isinstance(step, TriangleCountCheck):
            if self.app is None or self.scenario.app.name != "triangle":
                raise ScenarioCheckError(
                    f"step {step.label!r}: TriangleCountCheck requires a "
                    "triangle application scenario"
                )
            count = self.app.triangle_count()
            if check and step.expect is not None and count != step.expect:
                raise ScenarioCheckError(
                    f"step {step.label!r}: expected {step.expect} triangles, "
                    f"got {count}"
                )
            return count, int(count)
        if isinstance(step, ShortestPathCheck):
            if self.app is None or self.scenario.app.name != "sssp":
                raise ScenarioCheckError(
                    f"step {step.label!r}: ShortestPathCheck requires an "
                    "sssp application scenario"
                )
            payload = self.app.distance_tuples(max_hops=step.max_hops)
            if check and step.expect_tuples is not None:
                self._check_expected_tuples(step.label, payload, step.expect_tuples)
            return int(payload[0].size), payload
        raise ScenarioCheckError(f"unknown application query step {step!r}")

    def _query_contract(self, step: ContractStep, check: bool) -> tuple[int, object]:
        from repro.apps import contract_graph

        assert self.a is not None
        contracted = contract_graph(
            self.comm,
            self.grid,
            self.a,
            step.clusters,
            n_clusters=step.n_clusters,
            drop_self_loops=step.drop_self_loops,
        )
        payload = canonical_tuples(contracted)
        if check and step.expect_tuples is not None:
            self._check_expected_tuples(step.label, payload, step.expect_tuples)
        return int(contracted.nnz), payload

    @staticmethod
    def _check_expected_tuples(
        label: str, got: TupleArrays, expected: TupleArrays
    ) -> None:
        ok = (
            np.array_equal(got[0], expected[0])
            and np.array_equal(got[1], expected[1])
            and np.allclose(got[2], expected[2], rtol=1e-9)
        )
        if not ok:
            raise ScenarioCheckError(
                f"step {label!r}: query result ({got[0].size} tuples) does "
                f"not match the expected tuples ({expected[0].size})"
            )

    # ------------------------------------------------------------------
    def snapshot(self, step: SnapshotCheck) -> None:
        assert self.a is not None
        if step.expect_nnz is not None:
            got = self.a.nnz()
            if got != step.expect_nnz:
                raise ScenarioCheckError(
                    f"snapshot {step.label!r}: expected nnz {step.expect_nnz}, "
                    f"got {got}"
                )
        if step.verify_product:
            self._verify_product(step)

    def _verify_product(self, step: SnapshotCheck) -> None:
        if self.c is None or self.scenario.b_tuples is None:
            raise ScenarioCheckError(
                f"snapshot {step.label!r}: verify_product requires SpGEMM state"
            )
        a_global = CSRMatrix.from_coo(self.a.to_coo_global())
        b_coo = COOMatrix(
            shape=self.scenario.shape,
            rows=self.scenario.b_tuples[0],
            cols=self.scenario.b_tuples[1],
            values=self.semiring.coerce(self.scenario.b_tuples[2]),
            semiring=self.semiring,
        ).sum_duplicates()
        reference, _ = spgemm_local(
            a_global, CSRMatrix.from_coo(b_coo), self.semiring, use_scipy=False
        )
        reference = reference.drop_zeros().sort()
        maintained = self.c.to_coo_global().drop_zeros().sort()
        ok = (
            maintained.nnz == reference.nnz
            and np.array_equal(maintained.rows, reference.rows)
            and np.array_equal(maintained.cols, reference.cols)
            and np.allclose(maintained.values, reference.values, rtol=1e-9)
        )
        if not ok:
            raise ScenarioCheckError(
                f"snapshot {step.label!r}: maintained C (nnz {maintained.nnz}) "
                f"does not match recomputed A·B (nnz {reference.nnz})"
            )

    # ------------------------------------------------------------------
    def final_a(self) -> TupleArrays:
        assert self.a is not None
        return canonical_tuples(self.a.to_coo_global())

    def final_c(self) -> TupleArrays | None:
        if self.c is None:
            return None
        return canonical_tuples(self.c.to_coo_global())


# ----------------------------------------------------------------------
# competitor executor (benchmark backends)
# ----------------------------------------------------------------------
class CompetitorExecutor:
    """Replays the data-structure steps of a scenario on a benchmark backend.

    SpGEMM steps are not expressible through the uniform
    :class:`repro.competitors.base.Backend` interface and raise
    :class:`~repro.competitors.base.UnsupportedOperation`, truncating the
    replay (mirroring how the paper's figures drop unsupported systems).
    """

    name = "competitor"
    supports_layouts = False
    #: competitor backends expose no incremental application state
    app = None

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        scenario: Scenario,
        *,
        layout: str = "csr",
        backend_name: str = "ours",
        **backend_kwargs,
    ) -> None:
        from repro.competitors import get_backend

        self.comm = comm
        self.grid = grid
        self.scenario = scenario
        self.layout = layout
        self.backend_name = backend_name
        self.backend = get_backend(backend_name)(
            comm, grid, scenario.shape, scenario.semiring, **backend_kwargs
        )

    @classmethod
    def factory(cls, backend_name: str, **backend_kwargs) -> Callable:
        """An ``executor_factory`` for :func:`replay` bound to a backend."""

        def make(comm, grid, scenario, *, layout="csr"):
            return cls(
                comm,
                grid,
                scenario,
                layout=layout,
                backend_name=backend_name,
                **backend_kwargs,
            )

        return make

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Scatter the construction tuples (outside the timed region)."""
        scenario = self.scenario
        initial = (
            scenario.initial_tuples
            if scenario.initial_tuples is not None
            else (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        )
        self._initial_per_rank = partition_tuples_round_robin(
            *initial, self.grid.n_ranks, seed=scenario.construct_seed
        )

    def construct(self) -> None:
        self.backend.construct(self._initial_per_rank)

    def apply(self, step: ScenarioStep, per_rank: dict[int, TupleArrays]) -> int:
        from repro.competitors import UnsupportedOperation

        if isinstance(step, SpGEMMStep):
            raise UnsupportedOperation(
                f"backend {self.backend_name!r} cannot replay SpGEMM steps "
                "through the uniform update interface"
            )
        if step.kind == "insert":
            self.backend.insert_batch(per_rank)
        elif step.kind == "update":
            self.backend.update_batch(per_rank)
        else:
            self.backend.delete_batch(per_rank)
        # The uniform backend interface does not report created/changed
        # counts; the batch size is the comparable volume measure.
        return step.n_tuples

    def query(self, step: AppQueryStep, *, check: bool = True) -> tuple[int, object]:
        """Application queries are outside the uniform backend interface."""
        from repro.competitors import UnsupportedOperation

        raise UnsupportedOperation(
            f"backend {self.backend_name!r} cannot answer application "
            f"queries ({step.kind})"
        )

    def snapshot(self, step: SnapshotCheck) -> None:
        if step.expect_nnz is not None:
            got = self.backend.nnz()
            if got != step.expect_nnz:
                raise ScenarioCheckError(
                    f"snapshot {step.label!r}: expected nnz {step.expect_nnz}, "
                    f"got {got}"
                )
        if step.verify_product:
            raise ScenarioCheckError(
                "verify_product snapshots require the native executor"
            )

    def final_a(self) -> TupleArrays:
        return canonical_tuples(self.backend.to_coo_global())

    def final_c(self) -> TupleArrays | None:
        return None


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
#: built-in communicator classes -> registered backend names, so results
#: carry the same backend labels whether a comm or a name was passed
_COMM_CLASS_NAMES = {"SimMPI": "sim", "MPIBackend": "mpi"}


def _registry_name_of(comm: Communicator) -> str:
    cls = type(comm).__name__
    return _COMM_CLASS_NAMES.get(cls, cls.lower())


def _scenario_nnz_weights(
    scenario: Scenario, grid: ProcessGrid, n_ranks: int
) -> dict[int, float]:
    """Per-rank nnz estimates from the initial matrix and a step prefix.

    Counts how many tuples of the initial matrix plus the first few
    insert/update steps land on each grid rank under the block
    distribution — the weights the ``nnz_aware`` partitioner bin-packs on.
    Pure host-side arithmetic on the scenario description (identical on
    every process), no communication.
    """
    dist = BlockDistribution(*scenario.shape, grid)
    weights = np.zeros(n_ranks, dtype=np.float64)
    sources: list[tuple[np.ndarray, np.ndarray]] = []
    if scenario.initial_tuples is not None:
        sources.append(scenario.initial_tuples[:2])
    prefix = 0
    for step in scenario.steps:
        if isinstance(step, ScenarioStep) and step.kind in ("insert", "update"):
            sources.append((step.rows, step.cols))
            prefix += 1
            if prefix >= 8:
                break
    for rows, cols in sources:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            continue
        owners = dist.owner_of(rows, cols)
        counts = np.bincount(owners, minlength=n_ranks)
        weights += counts[:n_ranks]
    return {rank: float(weights[rank]) for rank in range(n_ranks)}


def _install_placement(
    comm: Communicator,
    scenario: Scenario,
    grid: ProcessGrid,
    partitioner: str | Partitioner | None,
) -> None:
    """Resolve the requested partitioner and install its placement.

    Strategy names are validated even when the communicator has no
    placement surface (the simulator), so ``REPRO_PARTITIONER`` typos fail
    loudly on every backend.  The placement is only *installed* when one
    was explicitly requested (argument or environment): a caller-provided
    communicator may already carry a custom placement that an unsolicited
    reset to the default would silently destroy.
    """
    requested = (
        partitioner
        if partitioner is not None
        else (os.environ.get(PARTITIONER_ENV_VAR) or None)
    )
    if requested is None:
        return
    strategy = make_partitioner(requested)
    if not hasattr(comm, "set_placement"):
        return
    weights = (
        _scenario_nnz_weights(scenario, grid, comm.p)
        if strategy.uses_weights
        else None
    )
    comm.set_placement(
        strategy.placement(comm.p, comm.world_size, grid=grid, weights=weights)
    )


def _global_stats_diff(comm: Communicator, since):
    """Statistics accumulated since ``since``, merged over all processes.

    On a multi-process backend each process records only the traffic of its
    owned ranks; folding the per-process diffs through the control plane
    yields the same global per-category volume the simulator reports, which
    is what the differential harness compares.
    """
    return comm.host_fold(comm.stats.diff(since), lambda a, b: a.merge(b))


def _merged_stats(
    prefix: "dict[str, dict[str, float]] | None", comm: Communicator, since
) -> CommStats:
    """Global statistics since ``since``, merged onto a snapshot prefix."""
    suffix = _global_stats_diff(comm, since)
    if prefix:
        return CommStats.from_dict(prefix).merge(suffix)
    return suffix


def replay(
    scenario: Scenario,
    *,
    backend: str | None = None,
    n_ranks: int = 16,
    machine: MachineModel | None = None,
    layout: str = "csr",
    comm: Communicator | None = None,
    partitioner: str | Partitioner | None = None,
    executor_factory: Callable | None = None,
    check_snapshots: bool = True,
    collect_final: bool = True,
    checkpoint_store=None,
    resume_from=None,
    faults: "FaultPlan | FaultInjector | str | None" = None,
    on_crash: str = "raise",
    max_recoveries: int = 8,
    **backend_kwargs,
) -> ScenarioResult:
    """Replay ``scenario`` and return its structured result.

    Parameters
    ----------
    backend:
        Communicator backend name (``"sim"``, ``"mpi"``, …); resolved like
        :func:`repro.runtime.make_communicator` when ``comm`` is not given.
    n_ranks, machine:
        Communicator configuration (ignored when ``comm`` is passed).
    layout:
        Local storage layout of the static right-hand operand, one of
        :data:`REPLAY_LAYOUTS`.
    partitioner:
        Logical-rank→process placement strategy (a name or a
        :class:`~repro.runtime.partitioner.Partitioner`); defaults to the
        ``REPRO_PARTITIONER`` environment variable.  Placement is physical
        — results are byte-identical under every strategy; only the
        multi-process backends act on it.  Weight-using strategies
        (``nnz_aware``) estimate per-rank nnz from the initial matrix and
        a scenario prefix.  With ``REPRO_REPARTITION`` armed, pure-update
        replays additionally migrate block ownership between batches when
        the per-process nnz imbalance exceeds the threshold.
    executor_factory:
        ``(comm, grid, scenario, *, layout) -> executor``; defaults to
        :class:`NativeExecutor`.  Use
        ``CompetitorExecutor.factory("combblas")`` to replay against a
        benchmark backend.
    check_snapshots:
        When False, :class:`SnapshotCheck` steps are recorded but not
        evaluated (useful while benchmarking competitors).
    collect_final:
        When False, skip assembling the global final tuples (cheaper for
        timing-only replays).
    checkpoint_store:
        :class:`~repro.scenarios.checkpoint.CheckpointStore` used by
        :class:`~repro.scenarios.model.CheckpointStep` /
        :class:`~repro.scenarios.model.RestoreStep` steps and the
        ``on_crash="restore"`` policy.  A run-local store is created when
        the scenario contains checkpoint steps and none is passed; share
        one store across the processes of a loopback drill.
    resume_from:
        A snapshot ``dict`` (or path to a snapshot file) to continue
        from: construction is skipped, the world state is rebuilt
        (recovery traffic charged to the ``recovery`` category), and the
        returned result covers the *whole* trace — the snapshot's progress
        prefix stitched to the resumed suffix.
    faults:
        Fault injection: a :class:`~repro.runtime.faults.FaultPlan`, a
        ``REPRO_FAULTS``-grammar string, or a pre-armed
        :class:`~repro.runtime.faults.FaultInjector` (pass the same
        injector across recovery attempts so fired kills do not refire).
        Defaults to the ``REPRO_FAULTS`` environment variable.
    on_crash:
        What to do when an injected crash fires: ``"raise"`` (default —
        the multi-process harness catches it and restarts the world),
        ``"restore"`` (resume from the latest checkpoint, or retry from
        scratch when none exists yet) or ``"retry"`` (always restart the
        replay from scratch).  In-process backends only.
    """
    if on_crash not in ("raise", "retry", "restore"):
        raise ValueError(
            f"unknown on_crash policy {on_crash!r} (use 'raise', 'retry' or 'restore')"
        )
    from repro.scenarios.checkpoint import CheckpointStore, load_snapshot

    if comm is None:
        backend_name = resolve_backend_name(backend)
        comm = make_communicator(
            backend_name, n_ranks=n_ranks, machine=machine, **backend_kwargs
        )
    else:
        backend_name = (
            resolve_backend_name(backend)
            if backend
            else _registry_name_of(comm)
        )
        n_ranks = comm.p
    if faults is None:
        faults = faults_from_env()
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    injector = (
        faults
        if isinstance(faults, FaultInjector)
        else (FaultInjector(faults) if faults is not None else None)
    )
    store = checkpoint_store
    if store is None and any(
        isinstance(s, (CheckpointStep, RestoreStep)) for s in scenario.steps
    ):
        store = CheckpointStore()
    resume = resume_from
    if isinstance(resume, (str, os.PathLike)):
        resume = load_snapshot(resume)
    world_rank = int(getattr(comm, "world_rank", 0))

    recoveries = 0
    while True:
        try:
            return _replay_once(
                scenario,
                comm=comm,
                backend_name=backend_name,
                n_ranks=n_ranks,
                layout=layout,
                partitioner=partitioner,
                executor_factory=executor_factory,
                check_snapshots=check_snapshots,
                collect_final=collect_final,
                store=store,
                resume=resume,
                injector=injector,
                world_rank=world_rank,
            )
        except SimulatedCrash:
            if on_crash == "raise":
                raise
            recoveries += 1
            if recoveries > max_recoveries:
                raise
            resume = (
                store.latest(world_rank)
                if (on_crash == "restore" and store is not None)
                else None
            )


def _replay_once(
    scenario: Scenario,
    *,
    comm: Communicator,
    backend_name: str,
    n_ranks: int,
    layout: str,
    partitioner,
    executor_factory,
    check_snapshots: bool,
    collect_final: bool,
    store,
    resume,
    injector,
    world_rank: int,
) -> ScenarioResult:
    """One replay attempt (the crash/recovery loop lives in :func:`replay`)."""
    from repro.competitors import UnsupportedOperation
    from repro.scenarios.checkpoint import (
        SnapshotFormatError,
        build_snapshot,
        check_snapshot,
        restore_state,
        scenario_fingerprint,
    )

    # Non-square rank counts degrade to the largest q×q subgrid (surplus
    # ranks idle), so e.g. `mpiexec -n 6` replays on a 2×2 grid instead of
    # aborting inside grid construction.  Everything downstream — tuple
    # scattering, per-step batches, the reported rank count — uses the
    # effective grid ranks, so trimmed replays stay comparable to runs that
    # asked for the square count directly.
    grid = ProcessGrid.fit(n_ranks)
    n_ranks = grid.n_ranks
    # Placement must be agreed before any per-rank state is materialised.
    _install_placement(comm, scenario, grid, partitioner)
    repartition_at = repartition_threshold()
    factory = executor_factory or NativeExecutor
    executor = factory(comm, grid, scenario, layout=layout)

    step_stats: list[StepStats] = []
    applied_counts: dict[str, int] = {}
    app_results: list[AppQueryResult] = []
    truncated_at: int | None = None
    cursor = 0
    prefix_comm: dict[str, dict[str, float]] | None = None
    prefix_update: dict[str, dict[str, float]] | None = None
    prefix_elapsed = 0.0
    elapsed_start = comm.elapsed()
    start = comm.stats.snapshot()
    armed = injector.activate(world_rank) if injector is not None else nullcontext()

    with armed:
        if resume is not None:
            # ------------ resume: rebuild instead of constructing -------
            check_snapshot(resume)
            fingerprint = scenario_fingerprint(scenario)
            if resume["fingerprint"] != fingerprint:
                raise SnapshotFormatError(
                    f"snapshot fingerprint {resume['fingerprint']} does not match "
                    f"scenario {scenario.name!r} ({fingerprint}); refusing to "
                    "continue a different trace"
                )
            if resume["layout"] != layout:
                raise SnapshotFormatError(
                    f"snapshot was taken with layout {resume['layout']!r}; "
                    f"resuming with {layout!r} would diverge"
                )
            progress = resume["progress"]
            cursor = int(resume["cursor"])
            step_stats = [StepStats(**dict(s)) for s in progress["step_stats"]]
            applied_counts = dict(progress["applied_counts"])
            app_results = [
                AppQueryResult(
                    index=int(r["index"]),
                    kind=str(r["kind"]),
                    label=str(r["label"]),
                    payload=r["payload"],
                )
                for r in progress["app_results"]
            ]
            prefix_comm = progress["comm_stats"]
            prefix_update = progress["update_stats"]
            prefix_elapsed = float(progress["elapsed"])
            with perf_phase("replay_restore"):
                restore_state(executor, resume)
            # Recovery traffic lands between `start` and here: it shows up
            # in the run's comm_stats (recovery category only) but not in
            # the update-phase statistics.
            post_construct = comm.stats.snapshot()
        else:
            # ------------ construction (optionally timed) ---------------
            # The round-robin scatter is measurement infrastructure, not
            # part of the construction protocol: it always stays outside
            # the timed region.
            with perf_phase("replay_prepare"):
                executor.prepare()
            if scenario.timed_construction:
                before = comm.stats.snapshot()
                with comm.timer() as timer, perf_phase("replay_construct"):
                    executor.construct()
                diff = _global_stats_diff(comm, before)
                n_initial = (
                    int(scenario.initial_tuples[0].size)
                    if scenario.initial_tuples is not None
                    else 0
                )
                step_stats.append(
                    StepStats(
                        index=-1,
                        kind="construct",
                        label="construct",
                        n_tuples=n_initial,
                        applied=n_initial,
                        seconds=timer.seconds,
                        comm_messages=diff.total_messages(),
                        comm_bytes=diff.total_bytes(),
                    )
                )
            else:
                with perf_phase("replay_construct"):
                    executor.construct()
            post_construct = comm.stats.snapshot()

        # ---------------- the trace ------------------------------------
        for index, step in enumerate(scenario.steps):
            if index < cursor:
                continue
            if injector is not None:
                injector.check_step(index, process=world_rank)
            if isinstance(step, CheckpointStep):
                # The checkpoint's own (untimed, zero-comm) statistics are
                # part of the snapshot, so the restored run replays it as
                # already-done.
                step_stats.append(
                    StepStats(
                        index=index,
                        kind="checkpoint",
                        label=step.label,
                        n_tuples=0,
                        applied=0,
                        seconds=0.0,
                    )
                )
                snapshot = build_snapshot(
                    executor,
                    cursor=index + 1,
                    step_stats=step_stats,
                    applied_counts=applied_counts,
                    app_results=app_results,
                    comm_stats=_merged_stats(prefix_comm, comm, start).as_dict(),
                    update_stats=_merged_stats(
                        prefix_update, comm, post_construct
                    ).as_dict(),
                    elapsed=prefix_elapsed + comm.elapsed() - elapsed_start,
                )
                if store is not None:
                    store.save(step.tag, world_rank, snapshot)
                continue
            if isinstance(step, RestoreStep):
                if store is None:
                    raise ScenarioCheckError(
                        f"step {step.label!r}: RestoreStep needs a checkpoint "
                        "store (did a CheckpointStep run first?)"
                    )
                snapshot = store.load(step.tag, world_rank)
                before = comm.stats.snapshot()
                with perf_phase("replay_restore"):
                    n_blocks = restore_state(executor, snapshot)
                diff = _global_stats_diff(comm, before)
                step_stats.append(
                    StepStats(
                        index=index,
                        kind="restore",
                        label=step.label,
                        n_tuples=0,
                        applied=int(n_blocks),
                        seconds=0.0,
                        comm_messages=diff.total_messages(),
                        comm_bytes=diff.total_bytes(),
                    )
                )
                continue
            if isinstance(step, CrashStep):
                if injector is not None:
                    injector.fire_crash(index, step.process, process=world_rank)
                step_stats.append(
                    StepStats(
                        index=index,
                        kind="crash",
                        label=step.label,
                        n_tuples=0,
                        applied=0,
                        seconds=0.0,
                    )
                )
                continue
            if isinstance(step, SnapshotCheck):
                if check_snapshots:
                    executor.snapshot(step)
                step_stats.append(
                    StepStats(
                        index=index,
                        kind="snapshot",
                        label=step.label,
                        n_tuples=0,
                        applied=0,
                        seconds=0.0,
                    )
                )
                continue
            if isinstance(step, AppQueryStep):
                before = comm.stats.snapshot()
                try:
                    with comm.timer() as timer, perf_phase(f"replay_{step.kind}"):
                        applied, payload = executor.query(step, check=check_snapshots)
                except UnsupportedOperation:
                    step_stats.append(
                        StepStats(
                            index=index,
                            kind=step.kind,
                            label=step.label,
                            n_tuples=0,
                            applied=0,
                            seconds=0.0,
                            supported=False,
                        )
                    )
                    truncated_at = index
                    break
                diff = _global_stats_diff(comm, before)
                step_stats.append(
                    StepStats(
                        index=index,
                        kind=step.kind,
                        label=step.label,
                        n_tuples=0,
                        applied=int(applied),
                        seconds=timer.seconds,
                        comm_messages=diff.total_messages(),
                        comm_bytes=diff.total_bytes(),
                    )
                )
                app_results.append(
                    AppQueryResult(
                        index=index, kind=step.kind, label=step.label, payload=payload
                    )
                )
                applied_counts[step.kind] = applied_counts.get(step.kind, 0) + int(applied)
                continue
            # the applications re-scatter their (transformed) batches themselves
            per_rank = (
                step.per_rank(n_ranks)
                if getattr(executor, "app", None) is None
                else {}
            )
            before = comm.stats.snapshot()
            try:
                with comm.timer() as timer, perf_phase(f"replay_{step.kind}"):
                    applied = executor.apply(step, per_rank)
            except UnsupportedOperation:
                step_stats.append(
                    StepStats(
                        index=index,
                        kind=step.kind,
                        label=step.label,
                        n_tuples=step.n_tuples,
                        applied=0,
                        seconds=0.0,
                        supported=False,
                    )
                )
                truncated_at = index
                break
            diff = _global_stats_diff(comm, before)
            step_stats.append(
                StepStats(
                    index=index,
                    kind=step.kind,
                    label=step.label,
                    n_tuples=step.n_tuples,
                    applied=int(applied),
                    seconds=timer.seconds,
                    comm_messages=diff.total_messages(),
                    comm_bytes=diff.total_bytes(),
                )
            )
            applied_counts[step.kind] = applied_counts.get(step.kind, 0) + int(applied)
            # Online repartitioning (REPRO_REPARTITION): only for pure-update
            # replays on a placement-aware backend — with SpGEMM state or an
            # application in play, more matrices than `a` would have to move
            # in lock-step, which the hook deliberately does not attempt.
            if (
                repartition_at is not None
                and isinstance(executor, NativeExecutor)
                and executor.app is None
                and executor.product is None
                and executor.b_static is None
                and executor.c is None
                and executor.a is not None
            ):
                with perf_phase("replay_repartition"):
                    maybe_repartition(
                        comm, grid, [executor.a], threshold=repartition_at
                    )

    # ---------------- result -------------------------------------------
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
    )
    final_a: TupleArrays = executor.final_a() if collect_final else empty
    final_c = executor.final_c() if collect_final else None
    return ScenarioResult(
        scenario=scenario.name,
        backend=backend_name,
        n_ranks=n_ranks,
        layout=layout,
        semiring_name=scenario.semiring_name,
        steps=step_stats,
        final_a=final_a,
        final_c=final_c,
        applied_counts=applied_counts,
        comm_stats=_merged_stats(prefix_comm, comm, start).as_dict(),
        update_stats=_merged_stats(prefix_update, comm, post_construct).as_dict(),
        truncated_at=truncated_at,
        elapsed_modeled=prefix_elapsed + comm.elapsed() - elapsed_start,
        app_results=app_results,
    )
