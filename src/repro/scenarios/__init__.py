"""Replayable dynamic-graph scenarios.

The paper's experiments are all instances of one pattern — seeded streams
of insert / update / delete batches interleaved with dynamic SpGEMM — and
this package makes that pattern a first-class, declarative object instead
of a bespoke loop per benchmark driver.

Module map
----------
==============  ==========================================================
``model``       :class:`Scenario` (the declarative, fully seeded trace),
                the step types :class:`InsertBatch`, :class:`DeleteBatch`,
                :class:`ValueUpdateBatch`, :class:`SpGEMMStep`,
                :class:`SnapshotCheck`, the fault-tolerance steps
                :class:`CheckpointStep` / :class:`RestoreStep` /
                :class:`CrashStep`, the application pieces
                :class:`AppSpec` / :class:`TriangleCountCheck` /
                :class:`ShortestPathCheck` / :class:`ContractStep`, and the
                structured results :class:`ScenarioResult` /
                :class:`StepStats` / :class:`AppQueryResult`.
``generators``  The trace library: ``grow_from_empty``,
                ``steady_state_churn``, ``sliding_window``,
                ``bursty_skewed_stream``, ``mixed_update_multiply``, the
                application traces ``social_triangle_stream``,
                ``road_churn_sssp``, ``multilevel_contraction``, plus the
                adversarial traces ``hotspot_vertex_stream``,
                ``oscillating_insert_delete``,
                ``dhb_bucket_collision_stream``;
                registry ``SCENARIO_GENERATORS`` and
                :func:`library_scenarios`.
``engine``      :class:`ScenarioEngine` — the incremental step-application
                engine shared by :func:`replay` and the always-on
                :class:`repro.service.GraphService` (construct / advance /
                result over a trace that may keep growing).
``executors``   :class:`NativeExecutor` (the paper's machinery, app-aware
                on :class:`AppSpec` scenarios) and
                :class:`CompetitorExecutor` (benchmark backends).
``options``     :class:`ReplayOptions` — the replay configuration bundle,
                shared with the service config (the cold-replay oracle
                runs under exactly the tenant's options).
``replay``      :func:`replay` — run any scenario on any communicator
                backend, rank count and local layout (``REPLAY_LAYOUTS``),
                with fault injection (``faults=``) and retry-or-restore
                crash recovery (``on_crash=``).
``checkpoint``  Durable snapshots and the drill helpers:
                :func:`build_snapshot` / :func:`restore_state`,
                :func:`save_snapshot` / :func:`load_snapshot`,
                :class:`CheckpointStore`, :func:`scenario_fingerprint`,
                the trace editors :func:`with_checkpoint` /
                :func:`with_crash`, and the loopback drill loop
                :func:`run_with_recovery` / :func:`crash_cause`.
==============  ==========================================================

A scenario materialises all randomness at generation time (per-step tuples
plus explicit partition seeds derived via ``SeedSequence``), so one trace
replays bit-for-bit on the ``sim`` and ``mpi`` backends — the property the
cross-backend differential suite (``tests/test_scenarios_differential.py``)
asserts for every library scenario, every layout and both backends.
"""

from repro.scenarios.model import (
    AppQueryResult,
    AppQueryStep,
    AppSpec,
    CheckpointStep,
    ContractStep,
    CrashStep,
    DeleteBatch,
    InsertBatch,
    RestoreStep,
    Scenario,
    ScenarioResult,
    ScenarioStep,
    ShortestPathCheck,
    SnapshotCheck,
    SpGEMMStep,
    StepStats,
    TriangleCountCheck,
    ValueUpdateBatch,
    canonical_tuples,
    trimmed_mean_seconds,
)
from repro.scenarios.generators import (
    SCENARIO_GENERATORS,
    bursty_skewed_stream,
    dhb_bucket_collision_stream,
    grow_from_empty,
    hotspot_vertex_stream,
    library_scenarios,
    mixed_update_multiply,
    multilevel_contraction,
    oscillating_insert_delete,
    road_churn_sssp,
    sliding_window,
    social_triangle_stream,
    steady_state_churn,
)
from repro.scenarios.engine import ScenarioEngine
from repro.scenarios.options import ReplayOptions
from repro.scenarios.replay import (
    REPLAY_LAYOUTS,
    CompetitorExecutor,
    NativeExecutor,
    ScenarioCheckError,
    replay,
)
from repro.scenarios.checkpoint import (
    SNAPSHOT_VERSION,
    CheckpointStore,
    SnapshotFormatError,
    build_snapshot,
    check_snapshot,
    crash_cause,
    load_snapshot,
    restore_state,
    run_with_recovery,
    save_snapshot,
    scenario_fingerprint,
    with_checkpoint,
    with_crash,
)

__all__ = [
    "Scenario",
    "ScenarioStep",
    "InsertBatch",
    "DeleteBatch",
    "ValueUpdateBatch",
    "SpGEMMStep",
    "SnapshotCheck",
    "AppSpec",
    "AppQueryStep",
    "TriangleCountCheck",
    "ShortestPathCheck",
    "ContractStep",
    "AppQueryResult",
    "ScenarioResult",
    "StepStats",
    "canonical_tuples",
    "trimmed_mean_seconds",
    "SCENARIO_GENERATORS",
    "library_scenarios",
    "grow_from_empty",
    "steady_state_churn",
    "sliding_window",
    "bursty_skewed_stream",
    "mixed_update_multiply",
    "social_triangle_stream",
    "road_churn_sssp",
    "multilevel_contraction",
    "hotspot_vertex_stream",
    "oscillating_insert_delete",
    "dhb_bucket_collision_stream",
    "CheckpointStep",
    "RestoreStep",
    "CrashStep",
    "REPLAY_LAYOUTS",
    "replay",
    "ReplayOptions",
    "ScenarioEngine",
    "NativeExecutor",
    "CompetitorExecutor",
    "ScenarioCheckError",
    "SNAPSHOT_VERSION",
    "CheckpointStore",
    "SnapshotFormatError",
    "build_snapshot",
    "check_snapshot",
    "crash_cause",
    "load_snapshot",
    "restore_state",
    "run_with_recovery",
    "save_snapshot",
    "scenario_fingerprint",
    "with_checkpoint",
    "with_crash",
]
