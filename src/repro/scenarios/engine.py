"""The step-application engine shared by ``replay()`` and the service.

:class:`ScenarioEngine` owns everything one scenario execution needs —
the executor, the process grid, placement, the per-step statistics and
the progress accumulators — and exposes a small incremental surface:

``begin(resume=None)``
    Install placement and construct the world (or rebuild it from a
    snapshot), exactly as the batch replay driver always did.
``advance(stop=None)``
    Apply scenario steps from the current cursor up to ``stop``
    (default: every step currently in the trace).  The trace may *grow*
    between calls — :class:`repro.service.GraphService` appends coalesced
    micro-batches to a live request log and advances the same engine.
``result(collect_final=True)``
    Assemble the structured :class:`~repro.scenarios.model.ScenarioResult`
    for everything applied so far.  Callable mid-trace: global state
    queries go through the uncharged control plane, so sampling a result
    between batches adds no charged traffic and keeps the
    service-versus-cold-replay comparison byte-exact.

:func:`repro.scenarios.replay.replay` drives one engine to completion
(with crash/recovery around it); the always-on service keeps one engine
per tenant alive for as long as the tenant exists.  Both therefore run
the *same* step-application code, which is what makes the differential
suite the service's correctness oracle.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.distributed.distribution import BlockDistribution
from repro.distributed.repartition import maybe_repartition
from repro.perf.recorder import perf_phase
from repro.runtime import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.partitioner import (
    PARTITIONER_ENV_VAR,
    Partitioner,
    make_partitioner,
    repartition_threshold,
)
from repro.runtime.stats import CommStats
from repro.scenarios.executors import NativeExecutor, ScenarioCheckError
from repro.scenarios.model import (
    AppQueryResult,
    AppQueryStep,
    CheckpointStep,
    CrashStep,
    RestoreStep,
    Scenario,
    ScenarioResult,
    ScenarioStep,
    SnapshotCheck,
    StepStats,
    TupleArrays,
)

__all__ = [
    "ScenarioEngine",
    "registry_name_of",
    "install_placement",
    "scenario_nnz_weights",
    "global_stats_diff",
    "merged_stats",
]

#: built-in communicator classes -> registered backend names, so results
#: carry the same backend labels whether a comm or a name was passed
_COMM_CLASS_NAMES = {"SimMPI": "sim", "MPIBackend": "mpi"}


def registry_name_of(comm: Communicator) -> str:
    """The registered backend name a communicator instance answers to."""
    cls = type(comm).__name__
    return _COMM_CLASS_NAMES.get(cls, cls.lower())


def scenario_nnz_weights(
    scenario: Scenario, grid: ProcessGrid, n_ranks: int
) -> dict[int, float]:
    """Per-rank nnz estimates from the initial matrix and a step prefix.

    Counts how many tuples of the initial matrix plus the first few
    insert/update steps land on each grid rank under the block
    distribution — the weights the ``nnz_aware`` partitioner bin-packs on.
    Pure host-side arithmetic on the scenario description (identical on
    every process), no communication.
    """
    dist = BlockDistribution(*scenario.shape, grid)
    weights = np.zeros(n_ranks, dtype=np.float64)
    sources: list[tuple[np.ndarray, np.ndarray]] = []
    if scenario.initial_tuples is not None:
        sources.append(scenario.initial_tuples[:2])
    prefix = 0
    for step in scenario.steps:
        if isinstance(step, ScenarioStep) and step.kind in ("insert", "update"):
            sources.append((step.rows, step.cols))
            prefix += 1
            if prefix >= 8:
                break
    for rows, cols in sources:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            continue
        owners = dist.owner_of(rows, cols)
        counts = np.bincount(owners, minlength=n_ranks)
        weights += counts[:n_ranks]
    return {rank: float(weights[rank]) for rank in range(n_ranks)}


def install_placement(
    comm: Communicator,
    scenario: Scenario,
    grid: ProcessGrid,
    partitioner: "str | Partitioner | None",
) -> None:
    """Resolve the requested partitioner and install its placement.

    Strategy names are validated even when the communicator has no
    placement surface (the simulator), so ``REPRO_PARTITIONER`` typos fail
    loudly on every backend.  The placement is only *installed* when one
    was explicitly requested (argument or environment): a caller-provided
    communicator may already carry a custom placement that an unsolicited
    reset to the default would silently destroy.
    """
    requested = (
        partitioner
        if partitioner is not None
        else (os.environ.get(PARTITIONER_ENV_VAR) or None)
    )
    if requested is None:
        return
    strategy = make_partitioner(requested)
    if not hasattr(comm, "set_placement"):
        return
    weights = (
        scenario_nnz_weights(scenario, grid, comm.p)
        if strategy.uses_weights
        else None
    )
    comm.set_placement(
        strategy.placement(comm.p, comm.world_size, grid=grid, weights=weights)
    )


def global_stats_diff(comm: Communicator, since) -> CommStats:
    """Statistics accumulated since ``since``, merged over all processes.

    On a multi-process backend each process records only the traffic of its
    owned ranks; folding the per-process diffs through the control plane
    yields the same global per-category volume the simulator reports, which
    is what the differential harness compares.
    """
    return comm.host_fold(comm.stats.diff(since), lambda a, b: a.merge(b))


def merged_stats(
    prefix: "dict[str, dict[str, float]] | None", comm: Communicator, since
) -> CommStats:
    """Global statistics since ``since``, merged onto a snapshot prefix."""
    suffix = global_stats_diff(comm, since)
    if prefix:
        return CommStats.from_dict(prefix).merge(suffix)
    return suffix


class ScenarioEngine:
    """Applies the steps of one scenario to one live world, incrementally.

    The engine is bound to a communicator and a scenario at construction
    (placement is installed immediately, before any per-rank state is
    materialised).  Non-square rank counts degrade to the largest ``q×q``
    subgrid — surplus ranks idle — so e.g. ``mpiexec -n 6`` replays on a
    2×2 grid instead of aborting inside grid construction; everything
    downstream uses the effective ``self.n_ranks``.

    The scenario's step list may grow *after* construction: ``advance()``
    re-reads ``scenario.steps`` on every call and applies whatever lies
    between the cursor and the end.  This is the contract the always-on
    service builds on (its request log is the scenario).
    """

    def __init__(
        self,
        scenario: Scenario,
        comm: Communicator,
        *,
        backend_name: str | None = None,
        layout: str = "csr",
        partitioner: "str | Partitioner | None" = None,
        executor_factory: Callable | None = None,
        check_snapshots: bool = True,
        store=None,
        injector=None,
        world_rank: int | None = None,
    ) -> None:
        self.scenario = scenario
        self.comm = comm
        self.backend_name = backend_name or registry_name_of(comm)
        self.layout = layout
        self.check_snapshots = check_snapshots
        self.store = store
        self.injector = injector
        self.world_rank = (
            int(getattr(comm, "world_rank", 0)) if world_rank is None else world_rank
        )
        self.grid = ProcessGrid.fit(comm.p)
        self.n_ranks = self.grid.n_ranks
        # Placement must be agreed before any per-rank state is materialised.
        install_placement(comm, scenario, self.grid, partitioner)
        self._repartition_at = repartition_threshold()
        factory = executor_factory or NativeExecutor
        self.executor = factory(comm, self.grid, scenario, layout=layout)

        self.step_stats: list[StepStats] = []
        self.applied_counts: dict[str, int] = {}
        self.app_results: list[AppQueryResult] = []
        self.truncated_at: int | None = None
        #: index of the next step to apply
        self.cursor = 0
        self._prefix_comm: dict[str, dict[str, float]] | None = None
        self._prefix_update: dict[str, dict[str, float]] | None = None
        self._prefix_elapsed = 0.0
        self._elapsed_start = comm.elapsed()
        self._start = comm.stats.snapshot()
        self._post_construct = None
        self._begun = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self, resume=None) -> "ScenarioEngine":
        """Construct the world — or rebuild it from a ``resume`` snapshot.

        Resuming skips construction, restores the executor state (recovery
        traffic charged to the ``recovery`` category) and stitches the
        snapshot's progress prefix onto the accumulators, so the eventual
        result covers the whole trace.
        """
        from repro.scenarios.checkpoint import (
            SnapshotFormatError,
            check_snapshot,
            restore_state,
            scenario_fingerprint,
        )

        if self._begun:
            raise RuntimeError("ScenarioEngine.begin() may only run once")
        self._begun = True
        comm, scenario = self.comm, self.scenario
        if resume is not None:
            check_snapshot(resume)
            fingerprint = scenario_fingerprint(scenario)
            if resume["fingerprint"] != fingerprint:
                raise SnapshotFormatError(
                    f"snapshot fingerprint {resume['fingerprint']} does not match "
                    f"scenario {scenario.name!r} ({fingerprint}); refusing to "
                    "continue a different trace"
                )
            if resume["layout"] != self.layout:
                raise SnapshotFormatError(
                    f"snapshot was taken with layout {resume['layout']!r}; "
                    f"resuming with {self.layout!r} would diverge"
                )
            progress = resume["progress"]
            self.cursor = int(resume["cursor"])
            self.step_stats = [StepStats(**dict(s)) for s in progress["step_stats"]]
            self.applied_counts = dict(progress["applied_counts"])
            self.app_results = [
                AppQueryResult(
                    index=int(r["index"]),
                    kind=str(r["kind"]),
                    label=str(r["label"]),
                    payload=r["payload"],
                )
                for r in progress["app_results"]
            ]
            self._prefix_comm = progress["comm_stats"]
            self._prefix_update = progress["update_stats"]
            self._prefix_elapsed = float(progress["elapsed"])
            with perf_phase("replay_restore"):
                restore_state(self.executor, resume)
            # Recovery traffic lands between `_start` and here: it shows up
            # in the run's comm_stats (recovery category only) but not in
            # the update-phase statistics.
            self._post_construct = comm.stats.snapshot()
            return self
        # ------------ construction (optionally timed) -------------------
        # The round-robin scatter is measurement infrastructure, not part
        # of the construction protocol: it always stays outside the timed
        # region.
        with perf_phase("replay_prepare"):
            self.executor.prepare()
        if scenario.timed_construction:
            before = comm.stats.snapshot()
            with comm.timer() as timer, perf_phase("replay_construct"):
                self.executor.construct()
            diff = global_stats_diff(comm, before)
            n_initial = (
                int(scenario.initial_tuples[0].size)
                if scenario.initial_tuples is not None
                else 0
            )
            self.step_stats.append(
                StepStats(
                    index=-1,
                    kind="construct",
                    label="construct",
                    n_tuples=n_initial,
                    applied=n_initial,
                    seconds=timer.seconds,
                    comm_messages=diff.total_messages(),
                    comm_bytes=diff.total_bytes(),
                )
            )
        else:
            with perf_phase("replay_construct"):
                self.executor.construct()
        self._post_construct = comm.stats.snapshot()
        return self

    # ------------------------------------------------------------------
    # the trace
    # ------------------------------------------------------------------
    def advance(self, stop: int | None = None) -> "ScenarioEngine":
        """Apply steps from the cursor up to ``stop`` (default: all).

        A truncating step (one the executor reports as unsupported) ends
        the engine permanently: further ``advance`` calls are no-ops and
        the result reports ``truncated_at``.
        """
        if not self._begun:
            raise RuntimeError("call begin() before advance()")
        steps = self.scenario.steps
        limit = len(steps) if stop is None else min(int(stop), len(steps))
        while self.cursor < limit and self.truncated_at is None:
            index = self.cursor
            self._apply_one(index, steps[index])
            self.cursor = index + 1
        return self

    def _apply_one(self, index: int, step) -> None:
        from repro.competitors import UnsupportedOperation
        from repro.scenarios.checkpoint import build_snapshot

        comm, executor = self.comm, self.executor
        if self.injector is not None:
            self.injector.check_step(index, process=self.world_rank)
        if isinstance(step, CheckpointStep):
            # The checkpoint's own (untimed, zero-comm) statistics are
            # part of the snapshot, so the restored run replays it as
            # already-done.
            self.step_stats.append(
                StepStats(
                    index=index,
                    kind="checkpoint",
                    label=step.label,
                    n_tuples=0,
                    applied=0,
                    seconds=0.0,
                )
            )
            snapshot = build_snapshot(
                executor,
                cursor=index + 1,
                step_stats=self.step_stats,
                applied_counts=self.applied_counts,
                app_results=self.app_results,
                comm_stats=merged_stats(
                    self._prefix_comm, comm, self._start
                ).as_dict(),
                update_stats=merged_stats(
                    self._prefix_update, comm, self._post_construct
                ).as_dict(),
                elapsed=self._prefix_elapsed + comm.elapsed() - self._elapsed_start,
            )
            if self.store is not None:
                self.store.save(step.tag, self.world_rank, snapshot)
            return
        if isinstance(step, RestoreStep):
            from repro.scenarios.checkpoint import restore_state

            if self.store is None:
                raise ScenarioCheckError(
                    f"step {step.label!r}: RestoreStep needs a checkpoint "
                    "store (did a CheckpointStep run first?)"
                )
            snapshot = self.store.load(step.tag, self.world_rank)
            before = comm.stats.snapshot()
            with perf_phase("replay_restore"):
                n_blocks = restore_state(executor, snapshot)
            diff = global_stats_diff(comm, before)
            self.step_stats.append(
                StepStats(
                    index=index,
                    kind="restore",
                    label=step.label,
                    n_tuples=0,
                    applied=int(n_blocks),
                    seconds=0.0,
                    comm_messages=diff.total_messages(),
                    comm_bytes=diff.total_bytes(),
                )
            )
            return
        if isinstance(step, CrashStep):
            if self.injector is not None:
                self.injector.fire_crash(index, step.process, process=self.world_rank)
            self.step_stats.append(
                StepStats(
                    index=index,
                    kind="crash",
                    label=step.label,
                    n_tuples=0,
                    applied=0,
                    seconds=0.0,
                )
            )
            return
        if isinstance(step, SnapshotCheck):
            if self.check_snapshots:
                executor.snapshot(step)
            self.step_stats.append(
                StepStats(
                    index=index,
                    kind="snapshot",
                    label=step.label,
                    n_tuples=0,
                    applied=0,
                    seconds=0.0,
                )
            )
            return
        if isinstance(step, AppQueryStep):
            before = comm.stats.snapshot()
            try:
                with comm.timer() as timer, perf_phase(f"replay_{step.kind}"):
                    applied, payload = executor.query(
                        step, check=self.check_snapshots
                    )
            except UnsupportedOperation:
                self.step_stats.append(
                    StepStats(
                        index=index,
                        kind=step.kind,
                        label=step.label,
                        n_tuples=0,
                        applied=0,
                        seconds=0.0,
                        supported=False,
                    )
                )
                self.truncated_at = index
                return
            diff = global_stats_diff(comm, before)
            self.step_stats.append(
                StepStats(
                    index=index,
                    kind=step.kind,
                    label=step.label,
                    n_tuples=0,
                    applied=int(applied),
                    seconds=timer.seconds,
                    comm_messages=diff.total_messages(),
                    comm_bytes=diff.total_bytes(),
                )
            )
            self.app_results.append(
                AppQueryResult(
                    index=index, kind=step.kind, label=step.label, payload=payload
                )
            )
            self.applied_counts[step.kind] = self.applied_counts.get(
                step.kind, 0
            ) + int(applied)
            return
        # the applications re-scatter their (transformed) batches themselves
        per_rank = (
            step.per_rank(self.n_ranks)
            if getattr(executor, "app", None) is None
            else {}
        )
        before = comm.stats.snapshot()
        try:
            with comm.timer() as timer, perf_phase(f"replay_{step.kind}"):
                applied = executor.apply(step, per_rank)
        except UnsupportedOperation:
            self.step_stats.append(
                StepStats(
                    index=index,
                    kind=step.kind,
                    label=step.label,
                    n_tuples=step.n_tuples,
                    applied=0,
                    seconds=0.0,
                    supported=False,
                )
            )
            self.truncated_at = index
            return
        diff = global_stats_diff(comm, before)
        self.step_stats.append(
            StepStats(
                index=index,
                kind=step.kind,
                label=step.label,
                n_tuples=step.n_tuples,
                applied=int(applied),
                seconds=timer.seconds,
                comm_messages=diff.total_messages(),
                comm_bytes=diff.total_bytes(),
            )
        )
        self.applied_counts[step.kind] = self.applied_counts.get(
            step.kind, 0
        ) + int(applied)
        # Online repartitioning (REPRO_REPARTITION): only for pure-update
        # replays on a placement-aware backend — with SpGEMM state or an
        # application in play, more matrices than `a` would have to move
        # in lock-step, which the hook deliberately does not attempt.
        if (
            self._repartition_at is not None
            and isinstance(executor, NativeExecutor)
            and executor.app is None
            and executor.product is None
            and executor.b_static is None
            and executor.c is None
            and executor.a is not None
        ):
            with perf_phase("replay_repartition"):
                maybe_repartition(
                    comm, self.grid, [executor.a], threshold=self._repartition_at
                )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result(self, collect_final: bool = True) -> ScenarioResult:
        """Assemble the structured result for everything applied so far.

        Safe to call between batches: the global queries (final tuples,
        merged statistics) go through the uncharged control plane, so
        sampling a mid-trace result leaves the charged comm volume — the
        quantity the differential oracle compares — untouched.
        """
        comm = self.comm
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        final_a: TupleArrays = self.executor.final_a() if collect_final else empty
        final_c = self.executor.final_c() if collect_final else None
        return ScenarioResult(
            scenario=self.scenario.name,
            backend=self.backend_name,
            n_ranks=self.n_ranks,
            layout=self.layout,
            semiring_name=self.scenario.semiring_name,
            steps=list(self.step_stats),
            final_a=final_a,
            final_c=final_c,
            applied_counts=dict(self.applied_counts),
            comm_stats=merged_stats(self._prefix_comm, comm, self._start).as_dict(),
            update_stats=merged_stats(
                self._prefix_update, comm, self._post_construct
            ).as_dict(),
            truncated_at=self.truncated_at,
            elapsed_modeled=self._prefix_elapsed + comm.elapsed() - self._elapsed_start,
            app_results=list(self.app_results),
        )
