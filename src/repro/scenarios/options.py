"""Replay configuration as a first-class object.

:class:`ReplayOptions` consolidates the (previously sprawling) keyword
surface of :func:`repro.scenarios.replay.replay` into one dataclass that
can be stored, shared and overridden:

* ``replay(scenario, options=opts)`` runs with the bundled configuration;
* every historical keyword still works — ``replay(scenario, layout="dhb",
  partitioner="nnz_aware")`` — and explicit keywords override the bundle;
* unknown keywords flow into ``backend_kwargs`` and are forwarded to
  :func:`repro.runtime.make_communicator`, exactly as ``**backend_kwargs``
  always did;
* the always-on service embeds the same object in its
  :class:`repro.service.ServiceConfig`, so ``tenant.replay_options()`` is
  *the* configuration of the cold-replay correctness oracle — one source
  of truth for both the serving path and its differential reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable

from repro.runtime.config import MachineModel
from repro.runtime.partitioner import Partitioner

__all__ = ["ReplayOptions"]


@dataclass
class ReplayOptions:
    """Everything :func:`~repro.scenarios.replay.replay` can be told.

    Field semantics are documented on :func:`repro.scenarios.replay.replay`
    (they are the historical keyword arguments, unchanged).  ``backend_kwargs``
    collects extra keywords for the communicator factory.
    """

    backend: str | None = None
    n_ranks: int = 16
    machine: MachineModel | None = None
    layout: str = "csr"
    partitioner: "str | Partitioner | None" = None
    executor_factory: Callable | None = None
    check_snapshots: bool = True
    collect_final: bool = True
    checkpoint_store: Any = None
    resume_from: Any = None
    faults: Any = None
    on_crash: str = "raise"
    max_recoveries: int = 8
    backend_kwargs: dict[str, Any] = field(default_factory=dict)

    def merged(self, **overrides: Any) -> "ReplayOptions":
        """A copy with ``overrides`` applied.

        Known field names replace the bundled values; anything else lands
        in ``backend_kwargs`` (merged over the bundled ones), preserving
        the historical ``replay(..., **backend_kwargs)`` contract.
        """
        known = {f.name for f in fields(self)} - {"backend_kwargs"}
        updates: dict[str, Any] = {}
        extra = dict(self.backend_kwargs)
        for key, value in overrides.items():
            if key in known:
                updates[key] = value
            else:
                extra[key] = value
        return replace(self, backend_kwargs=extra, **updates)

    def validate(self) -> "ReplayOptions":
        """Check cross-field invariants; returns ``self`` for chaining."""
        if self.on_crash not in ("raise", "retry", "restore"):
            raise ValueError(
                f"unknown on_crash policy {self.on_crash!r} "
                "(use 'raise', 'retry' or 'restore')"
            )
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be non-negative")
        return self
