"""Step executors: how one scenario step becomes matrix operations.

The :class:`~repro.scenarios.engine.ScenarioEngine` delegates the actual
application of steps to an *executor*:

* :class:`NativeExecutor` — the paper's own machinery: a
  :class:`~repro.distributed.DynamicDistMatrix` target, hypersparse update
  matrices, Algorithm 1 / 2 for :class:`~repro.scenarios.model.SpGEMMStep`
  steps and support for all four local layouts (COO, CSR, DCSR, DHB) of the
  static right-hand operand.
* :class:`CompetitorExecutor` — wraps any backend from
  :mod:`repro.competitors` (``ours``, ``combblas``, ``ctf``, ``petsc``), so
  the benchmark drivers can replay one scenario against every system under
  comparison.  Steps a backend does not support truncate the replay and are
  reported via ``ScenarioResult.truncated_at``.

Both classes are re-exported from :mod:`repro.scenarios.replay` (their
historical home) and :mod:`repro.scenarios`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core import DynamicProduct, dynamic_spgemm_algebraic
from repro.distributed import (
    DynamicDistMatrix,
    StaticDistMatrix,
    UpdateBatch,
    build_update_matrix,
    partition_tuples_round_robin,
)
from repro.runtime import ProcessGrid
from repro.runtime.backend import Communicator
from repro.scenarios.model import (
    AppQueryStep,
    ContractStep,
    Scenario,
    ScenarioStep,
    ShortestPathCheck,
    SnapshotCheck,
    SpGEMMStep,
    TriangleCountCheck,
    TupleArrays,
    canonical_tuples,
)
from repro.semirings import Semiring
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    DCSRMatrix,
    DHBMatrix,
    spgemm_local,
)

__all__ = [
    "REPLAY_LAYOUTS",
    "ScenarioCheckError",
    "NativeExecutor",
    "CompetitorExecutor",
]

#: Local layouts a scenario can be replayed against (the differential
#: harness sweeps all of them).
REPLAY_LAYOUTS = ("coo", "csr", "dcsr", "dhb")


class ScenarioCheckError(RuntimeError):
    """A :class:`SnapshotCheck` assertion failed during replay."""


def _as_layout(block, layout: str):
    """Convert a CSR block to the requested local layout."""
    if layout == "csr":
        return block
    coo = block.to_coo()
    if layout == "coo":
        return coo
    if layout == "dcsr":
        return DCSRMatrix.from_coo(coo, dedup=False)
    if layout == "dhb":
        return DHBMatrix.from_coo(coo, combine_duplicates=False)
    raise ValueError(f"unknown replay layout {layout!r} (use one of {REPLAY_LAYOUTS})")


# ----------------------------------------------------------------------
# native executor (the paper's machinery)
# ----------------------------------------------------------------------
class NativeExecutor:
    """Replays a scenario on the repository's own distributed matrices.

    When the scenario carries an :class:`~repro.scenarios.model.AppSpec`,
    the executor instantiates the corresponding application at construction
    time, routes every update step through it (so the app's incremental
    state — the maintained ``A²`` or ``S·A`` product — tracks the trace),
    and answers the application query steps from that state.
    """

    name = "native"
    supports_layouts = True
    #: the maintained application instance (None outside app scenarios)
    app = None

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        scenario: Scenario,
        *,
        layout: str = "csr",
        update_layout: str | None = None,
    ) -> None:
        if layout not in REPLAY_LAYOUTS:
            raise ValueError(
                f"unknown replay layout {layout!r} (use one of {REPLAY_LAYOUTS})"
            )
        self.comm = comm
        self.grid = grid
        self.scenario = scenario
        self.layout = layout
        #: update matrices need a static assembly layout (CSR or DCSR);
        #: by default they follow ``layout``, degrading to hypersparse DCSR
        #: for the layouts without an assembly path
        self.update_layout = update_layout or (
            layout if layout in ("csr", "dcsr") else "dcsr"
        )
        self.semiring: Semiring = scenario.semiring
        self.a: DynamicDistMatrix | None = None
        self.b_static: StaticDistMatrix | None = None
        self.c: DynamicDistMatrix | None = None
        self.product: DynamicProduct | None = None
        self._initial_per_rank: dict[int, TupleArrays] | None = None
        self._b_per_rank: dict[int, TupleArrays] | None = None

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Scatter the construction tuples (outside the timed region)."""
        scenario, grid = self.scenario, self.grid
        if scenario.b_tuples is None and scenario.has_spgemm:
            raise ValueError(
                f"scenario {scenario.name!r} contains SpGEMM steps but no "
                "b_tuples for the right-hand operand"
            )
        if scenario.app is not None:
            # the applications scatter their own construction batches
            # (seeded with construct_seed), so there is nothing to stage
            return
        if scenario.initial_tuples is not None:
            self._initial_per_rank = partition_tuples_round_robin(
                *scenario.initial_tuples, grid.n_ranks, seed=scenario.construct_seed
            )
        if scenario.b_tuples is not None:
            self._b_per_rank = partition_tuples_round_robin(
                *scenario.b_tuples, grid.n_ranks, seed=scenario.construct_seed
            )

    def _construct_app(self) -> None:
        """Instantiate the scenario's application and alias its matrices.

        ``self.a`` aliases the app's adjacency matrix and ``self.c`` the
        maintained product, so snapshot checks, ``final_a``/``final_c`` and
        :class:`ContractStep` work unchanged on app scenarios.
        """
        from repro.apps import (
            DynamicMultiSourceShortestPaths,
            DynamicTriangleCounter,
        )

        scenario, comm, grid = self.scenario, self.comm, self.grid
        spec = scenario.app
        n = scenario.shape[0]
        empty = np.empty(0, dtype=np.int64)
        rows, cols, values = scenario.initial_tuples or (
            empty,
            empty,
            np.empty(0, dtype=np.float64),
        )
        if spec.name == "triangle":
            self.app = DynamicTriangleCounter(
                comm, grid, n, rows, cols, seed=scenario.construct_seed
            )
        else:  # sssp (AppSpec validated the name)
            self.app = DynamicMultiSourceShortestPaths(
                comm,
                grid,
                n,
                rows,
                cols,
                values,
                spec.sources,
                seed=scenario.construct_seed,
            )
        self.a = self.app.adjacency
        self.c = self.app.product.c
        self.product = self.app.product

    def construct(self) -> None:
        """Build the initial distributed state (matrices or application)."""
        scenario, comm, grid = self.scenario, self.comm, self.grid
        shape = scenario.shape
        if scenario.app is not None:
            self._construct_app()
            return
        if self._initial_per_rank is not None:
            self.a = DynamicDistMatrix.from_tuples(
                comm, grid, shape, self._initial_per_rank, self.semiring, combine="add"
            )
        else:
            self.a = DynamicDistMatrix.empty(comm, grid, shape, self.semiring)
        if self._b_per_rank is None:
            return
        b_per_rank = self._b_per_rank
        if scenario.has_general_spgemm:
            # Algorithm 2 maintains the product through DynamicProduct and
            # needs a dynamic right operand (last-write-wins duplicates).
            b_dyn = DynamicDistMatrix.from_tuples(
                comm, grid, shape, b_per_rank, self.semiring, combine="last"
            )
            self.product = DynamicProduct(
                comm, grid, self.a, b_dyn, semiring=self.semiring, mode="general"
            )
            self.c = self.product.c
        else:
            b_static = StaticDistMatrix.from_tuples(
                comm, grid, shape, b_per_rank, self.semiring, layout="csr"
            )
            if self.layout != "csr":
                for rank in list(b_static.blocks):
                    b_static.blocks[rank] = comm.run_local(
                        rank, _as_layout, b_static.blocks[rank], self.layout
                    )
            self.b_static = b_static
            self.c = DynamicDistMatrix.empty(comm, grid, shape, self.semiring)

    # ------------------------------------------------------------------
    def apply(self, step: ScenarioStep, per_rank: dict[int, TupleArrays]) -> int:
        """Apply one tuple step; returns the applied-update count."""
        if self.app is not None:
            return self._apply_app(step)
        if isinstance(step, SpGEMMStep):
            return self._apply_spgemm(step, per_rank)
        assert self.a is not None
        update = build_update_matrix(
            self.comm,
            self.grid,
            self.a.dist,
            per_rank,
            self.semiring,
            layout=self.update_layout,
            combine="add" if step.kind == "insert" else "last",
        )
        if step.kind == "insert":
            return self.a.add_update(update)
        if step.kind == "update":
            return self.a.merge_update(update)
        return self.a.mask_update(update)

    def _apply_spgemm(
        self, step: SpGEMMStep, per_rank: dict[int, TupleArrays]
    ) -> int:
        assert self.a is not None
        if step.mode == "general":
            assert self.product is not None
            batch = UpdateBatch(
                shape=self.scenario.shape,
                tuples_per_rank=dict(per_rank),
                kind=step.kind,
                semiring=self.semiring,
            )
            return self.product.apply_updates(a_batch=batch).touched_outputs
        assert self.b_static is not None and self.c is not None
        a_star = build_update_matrix(
            self.comm,
            self.grid,
            self.a.dist,
            per_rank,
            self.semiring,
            layout=self.update_layout,
            combine="add",
        )
        touched = dynamic_spgemm_algebraic(
            self.comm, self.grid, self.a, self.b_static, a_star, None, self.c
        )
        self.a.add_update(a_star)
        return touched

    def _apply_app(self, step: ScenarioStep) -> int:
        """Route one update step through the maintained application.

        The applications redistribute their (symmetrised / semiring-coerced)
        batches themselves, seeded with the step's ``partition_seed``, so
        the pre-scattered ``per_rank`` mapping is not used here.
        """
        spec = self.scenario.app
        if spec.name == "triangle":
            if step.kind != "insert":
                raise ValueError(
                    "the triangle application maintains A² additively; "
                    f"{step.kind!r} steps are not expressible (insert only)"
                )
            return self.app.insert_edges(
                step.rows, step.cols, seed=step.partition_seed
            )
        if step.kind == "delete":
            return self.app.delete_edges(
                step.rows, step.cols, seed=step.partition_seed
            )
        # insert and value-update steps are both general MERGE updates
        return self.app.update_edges(
            step.rows, step.cols, step.values, seed=step.partition_seed
        )

    # ------------------------------------------------------------------
    def query(self, step: AppQueryStep, *, check: bool = True) -> tuple[int, object]:
        """Execute one application query step.

        Returns ``(applied, payload)`` — an operation count for the step
        statistics and the byte-comparable payload recorded in
        ``ScenarioResult.app_results``.  ``check=False`` records without
        evaluating the baked-in expectations (mirrors ``check_snapshots``).
        """
        if isinstance(step, ContractStep):
            return self._query_contract(step, check)
        if isinstance(step, TriangleCountCheck):
            if self.app is None or self.scenario.app.name != "triangle":
                raise ScenarioCheckError(
                    f"step {step.label!r}: TriangleCountCheck requires a "
                    "triangle application scenario"
                )
            count = self.app.triangle_count()
            if check and step.expect is not None and count != step.expect:
                raise ScenarioCheckError(
                    f"step {step.label!r}: expected {step.expect} triangles, "
                    f"got {count}"
                )
            return count, int(count)
        if isinstance(step, ShortestPathCheck):
            if self.app is None or self.scenario.app.name != "sssp":
                raise ScenarioCheckError(
                    f"step {step.label!r}: ShortestPathCheck requires an "
                    "sssp application scenario"
                )
            payload = self.app.distance_tuples(max_hops=step.max_hops)
            if check and step.expect_tuples is not None:
                self._check_expected_tuples(step.label, payload, step.expect_tuples)
            return int(payload[0].size), payload
        raise ScenarioCheckError(f"unknown application query step {step!r}")

    def _query_contract(self, step: ContractStep, check: bool) -> tuple[int, object]:
        from repro.apps import contract_graph

        assert self.a is not None
        contracted = contract_graph(
            self.comm,
            self.grid,
            self.a,
            step.clusters,
            n_clusters=step.n_clusters,
            drop_self_loops=step.drop_self_loops,
        )
        payload = canonical_tuples(contracted)
        if check and step.expect_tuples is not None:
            self._check_expected_tuples(step.label, payload, step.expect_tuples)
        return int(contracted.nnz), payload

    @staticmethod
    def _check_expected_tuples(
        label: str, got: TupleArrays, expected: TupleArrays
    ) -> None:
        ok = (
            np.array_equal(got[0], expected[0])
            and np.array_equal(got[1], expected[1])
            and np.allclose(got[2], expected[2], rtol=1e-9)
        )
        if not ok:
            raise ScenarioCheckError(
                f"step {label!r}: query result ({got[0].size} tuples) does "
                f"not match the expected tuples ({expected[0].size})"
            )

    # ------------------------------------------------------------------
    def snapshot(self, step: SnapshotCheck) -> None:
        """Run one mid-trace invariant check (nnz and/or product)."""
        assert self.a is not None
        if step.expect_nnz is not None:
            got = self.a.nnz()
            if got != step.expect_nnz:
                raise ScenarioCheckError(
                    f"snapshot {step.label!r}: expected nnz {step.expect_nnz}, "
                    f"got {got}"
                )
        if step.verify_product:
            self._verify_product(step)

    def _verify_product(self, step: SnapshotCheck) -> None:
        if self.c is None or self.scenario.b_tuples is None:
            raise ScenarioCheckError(
                f"snapshot {step.label!r}: verify_product requires SpGEMM state"
            )
        a_global = CSRMatrix.from_coo(self.a.to_coo_global())
        b_coo = COOMatrix(
            shape=self.scenario.shape,
            rows=self.scenario.b_tuples[0],
            cols=self.scenario.b_tuples[1],
            values=self.semiring.coerce(self.scenario.b_tuples[2]),
            semiring=self.semiring,
        ).sum_duplicates()
        reference, _ = spgemm_local(
            a_global, CSRMatrix.from_coo(b_coo), self.semiring, use_scipy=False
        )
        reference = reference.drop_zeros().sort()
        maintained = self.c.to_coo_global().drop_zeros().sort()
        ok = (
            maintained.nnz == reference.nnz
            and np.array_equal(maintained.rows, reference.rows)
            and np.array_equal(maintained.cols, reference.cols)
            and np.allclose(maintained.values, reference.values, rtol=1e-9)
        )
        if not ok:
            raise ScenarioCheckError(
                f"snapshot {step.label!r}: maintained C (nnz {maintained.nnz}) "
                f"does not match recomputed A·B (nnz {reference.nnz})"
            )

    # ------------------------------------------------------------------
    def final_a(self) -> TupleArrays:
        """Canonical global tuples of the maintained matrix ``A``."""
        assert self.a is not None
        return canonical_tuples(self.a.to_coo_global())

    def final_c(self) -> TupleArrays | None:
        """Canonical global tuples of the maintained product ``C``, if any."""
        if self.c is None:
            return None
        return canonical_tuples(self.c.to_coo_global())


# ----------------------------------------------------------------------
# competitor executor (benchmark backends)
# ----------------------------------------------------------------------
class CompetitorExecutor:
    """Replays the data-structure steps of a scenario on a benchmark backend.

    SpGEMM steps are not expressible through the uniform
    :class:`repro.competitors.base.Backend` interface and raise
    :class:`~repro.competitors.base.UnsupportedOperation`, truncating the
    replay (mirroring how the paper's figures drop unsupported systems).
    """

    name = "competitor"
    supports_layouts = False
    #: competitor backends expose no incremental application state
    app = None

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        scenario: Scenario,
        *,
        layout: str = "csr",
        backend_name: str = "ours",
        **backend_kwargs,
    ) -> None:
        from repro.competitors import get_backend

        self.comm = comm
        self.grid = grid
        self.scenario = scenario
        self.layout = layout
        self.backend_name = backend_name
        self.backend = get_backend(backend_name)(
            comm, grid, scenario.shape, scenario.semiring, **backend_kwargs
        )

    @classmethod
    def factory(cls, backend_name: str, **backend_kwargs) -> Callable:
        """An ``executor_factory`` for :func:`replay` bound to a backend."""

        def make(comm, grid, scenario, *, layout="csr"):
            return cls(
                comm,
                grid,
                scenario,
                layout=layout,
                backend_name=backend_name,
                **backend_kwargs,
            )

        return make

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Scatter the construction tuples (outside the timed region)."""
        scenario = self.scenario
        initial = (
            scenario.initial_tuples
            if scenario.initial_tuples is not None
            else (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        )
        self._initial_per_rank = partition_tuples_round_robin(
            *initial, self.grid.n_ranks, seed=scenario.construct_seed
        )

    def construct(self) -> None:
        """Build the competitor backend's state from the initial tuples."""
        self.backend.construct(self._initial_per_rank)

    def apply(self, step: ScenarioStep, per_rank: dict[int, TupleArrays]) -> int:
        """Apply one tuple step through the uniform backend interface."""
        from repro.competitors import UnsupportedOperation

        if isinstance(step, SpGEMMStep):
            raise UnsupportedOperation(
                f"backend {self.backend_name!r} cannot replay SpGEMM steps "
                "through the uniform update interface"
            )
        if step.kind == "insert":
            self.backend.insert_batch(per_rank)
        elif step.kind == "update":
            self.backend.update_batch(per_rank)
        else:
            self.backend.delete_batch(per_rank)
        # The uniform backend interface does not report created/changed
        # counts; the batch size is the comparable volume measure.
        return step.n_tuples

    def query(self, step: AppQueryStep, *, check: bool = True) -> tuple[int, object]:
        """Application queries are outside the uniform backend interface."""
        from repro.competitors import UnsupportedOperation

        raise UnsupportedOperation(
            f"backend {self.backend_name!r} cannot answer application "
            f"queries ({step.kind})"
        )

    def snapshot(self, step: SnapshotCheck) -> None:
        """Check nnz invariants (product checks need the native executor)."""
        if step.expect_nnz is not None:
            got = self.backend.nnz()
            if got != step.expect_nnz:
                raise ScenarioCheckError(
                    f"snapshot {step.label!r}: expected nnz {step.expect_nnz}, "
                    f"got {got}"
                )
        if step.verify_product:
            raise ScenarioCheckError(
                "verify_product snapshots require the native executor"
            )

    def final_a(self) -> TupleArrays:
        """Canonical global tuples of the competitor's matrix."""
        return canonical_tuples(self.backend.to_coo_global())

    def final_c(self) -> TupleArrays | None:
        """Competitor backends maintain no product; always ``None``."""
        return None
