"""Declarative, fully seeded scenario model for dynamic-graph traces.

A :class:`Scenario` is a replayable description of one experiment protocol:
an optional pre-loaded initial matrix, an optional fixed right-hand operand
``B`` for SpGEMM steps, and an ordered list of *steps*.  Steps carry their
update tuples in **global** coordinates plus an explicit per-step partition
seed, so a scenario replays bit-for-bit on any
:class:`~repro.runtime.backend.Communicator` backend, any rank count and any
local storage layout — the property the cross-backend differential harness
in ``tests/test_scenarios_differential.py`` relies on.

Step types (mirroring the paper's Sections IV-A and VII):

* :class:`InsertBatch` — structural insertions (semiring ``ADD``);
* :class:`ValueUpdateBatch` — value overwrites (``MERGE``);
* :class:`DeleteBatch` — deletions (``MASK``);
* :class:`SpGEMMStep` — a dynamic-SpGEMM round: apply the carried batch to
  ``A`` *and* bring the maintained product ``C = A·B`` up to date
  (Algorithm 1 for ``mode="algebraic"``, Algorithm 2 for ``mode="general"``);
* :class:`SnapshotCheck` — an untimed assertion point (expected ``nnz``
  and/or a full recompute-and-compare of the maintained product);
* the *application* steps (Section I workloads): :class:`TriangleCountCheck`
  and :class:`ShortestPathCheck` query the incremental application state an
  :class:`AppSpec` scenario maintains across its update steps, and
  :class:`ContractStep` contracts the current graph along a clustering —
  each records a byte-comparable result the differential harness pins
  across backends and world sizes.

:class:`ScenarioResult` is the structured outcome of one replay: canonical
final tuples, per-step statistics, recorded application query results and
the per-category communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.semirings import Semiring, get_semiring

__all__ = [
    "TupleArrays",
    "ScenarioStep",
    "InsertBatch",
    "DeleteBatch",
    "ValueUpdateBatch",
    "SpGEMMStep",
    "SnapshotCheck",
    "CheckpointStep",
    "RestoreStep",
    "CrashStep",
    "AppSpec",
    "AppQueryStep",
    "TriangleCountCheck",
    "ShortestPathCheck",
    "ContractStep",
    "AppQueryResult",
    "Scenario",
    "StepStats",
    "ScenarioResult",
    "canonical_tuples",
    "trimmed_mean_seconds",
    "spawn_seeds",
    "seed_int",
]

TupleArrays = tuple[np.ndarray, np.ndarray, np.ndarray]

#: Salt mixed into the scenario seed when deriving per-step partition seeds.
_PARTITION_SALT = 0x5CE7A410

#: Dedicated salt for the construction scatter seed.  It must NOT share the
#: partition-seed stream: the construct seed used to be the last child of
#: that pool, which made its value depend on *how many* step seeds were
#: still missing — so a scenario rebuilt from fully-seeded steps (the
#: checkpoint/trace-log path) silently constructed with a different scatter
#: order than the original.
_CONSTRUCT_SALT = 0x5CE7A411


def spawn_seeds(
    key: "int | list[int] | np.random.SeedSequence", n: int
) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences of an entropy key.

    The single derivation point for all scenario-related seeding (step
    partition seeds, generator pools, workload batches): children of
    different keys never collide, and keeping one implementation guarantees
    that every producer derives seeds the same way — the property the
    bit-identical replay contract rests on.
    """
    parent = (
        key
        if isinstance(key, np.random.SeedSequence)
        else np.random.SeedSequence(key)
    )
    return parent.spawn(n)


def seed_int(seq: np.random.SeedSequence) -> int:
    """Collapse a seed sequence to a plain ``int`` seed."""
    return int(seq.generate_state(1)[0])


def _clean_tuples(
    rows: np.ndarray, cols: np.ndarray, values: np.ndarray
) -> TupleArrays:
    rows = np.ascontiguousarray(np.asarray(rows, dtype=np.int64))
    cols = np.ascontiguousarray(np.asarray(cols, dtype=np.int64))
    values = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    if not (rows.size == cols.size == values.size):
        raise ValueError("rows, cols and values must have identical lengths")
    return rows, cols, values


def trimmed_mean_seconds(times: "list[float]") -> float:
    """Mean with the extreme samples dropped (midmean for ≥ 4 samples).

    Per-step wall-clock measurements at benchmark smoke scale are sub-100µs,
    where a single GC pause or scheduler stall (or the interpreter's cold
    start on the very first step) can dwarf the signal; trimming both ends
    makes the reported means robust against such outliers.
    """
    if not times:
        return float("nan")
    times = sorted(times)
    if len(times) >= 4:
        times = times[1:-1]
    elif len(times) == 3:
        times = times[:-1]
    return sum(times) / len(times)


def canonical_tuples(coo) -> TupleArrays:
    """Sorted ``(rows, cols, values)`` of a COO matrix, for comparisons."""
    coo = coo.sort()
    return (
        np.asarray(coo.rows, dtype=np.int64).copy(),
        np.asarray(coo.cols, dtype=np.int64).copy(),
        np.asarray(coo.values).copy(),
    )


# ----------------------------------------------------------------------
# steps
# ----------------------------------------------------------------------
@dataclass
class ScenarioStep:
    """Base class of the tuple-carrying steps (global coordinates)."""

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    #: seed used to scatter the batch round-robin over ranks at replay time;
    #: assigned deterministically by :class:`Scenario` when left ``None``.
    partition_seed: int | None = None
    label: str = ""

    kind = "insert"

    def __post_init__(self) -> None:
        self.rows, self.cols, self.values = _clean_tuples(
            self.rows, self.cols, self.values
        )

    @property
    def n_tuples(self) -> int:
        return int(self.rows.size)

    def tuples(self) -> TupleArrays:
        return self.rows, self.cols, self.values

    def per_rank(self, n_ranks: int) -> dict[int, TupleArrays]:
        """The batch scattered over ranks exactly as replay scatters it."""
        from repro.distributed import partition_tuples_round_robin

        return partition_tuples_round_robin(
            self.rows, self.cols, self.values, n_ranks, seed=self.partition_seed
        )


@dataclass
class InsertBatch(ScenarioStep):
    """Structural insertions, ⊕-combined with existing entries (ADD)."""

    kind = "insert"


@dataclass
class ValueUpdateBatch(ScenarioStep):
    """Value overwrites of existing (or new) entries (MERGE)."""

    kind = "update"


@dataclass
class DeleteBatch(ScenarioStep):
    """Deletions; the values are ignored markers (MASK)."""

    kind = "delete"


@dataclass
class SpGEMMStep(ScenarioStep):
    """One dynamic-SpGEMM round driven by the carried batch.

    ``mode="algebraic"`` runs Algorithm 1: the batch becomes the hypersparse
    update matrix ``A*``, ``C ⊕= A*·B`` and then ``A ⊕= A*``.
    ``mode="general"`` routes the batch (with ``kind`` semantics) through
    :class:`~repro.core.api.DynamicProduct` and Algorithm 2.
    """

    mode: str = "algebraic"
    #: how the batch applies to ``A`` (general mode): insert/update/delete
    kind: str = "insert"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in ("algebraic", "general"):
            raise ValueError(
                f"unknown SpGEMM mode {self.mode!r} (use 'algebraic' or 'general')"
            )
        if self.kind not in ("insert", "update", "delete"):
            raise ValueError(
                f"unknown SpGEMM batch kind {self.kind!r} "
                "(use 'insert', 'update' or 'delete')"
            )


@dataclass
class SnapshotCheck:
    """Untimed assertion point in a scenario.

    ``expect_nnz`` checks the structural non-zero count of the maintained
    matrix ``A``; ``verify_product`` recomputes ``A·B`` from scratch and
    compares it against the maintained ``C`` (only meaningful for scenarios
    whose every ``A`` change flows through :class:`SpGEMMStep`).
    """

    expect_nnz: int | None = None
    verify_product: bool = False
    label: str = ""

    kind = "snapshot"

    @property
    def n_tuples(self) -> int:
        return 0


# ----------------------------------------------------------------------
# fault-tolerance control steps
# ----------------------------------------------------------------------
@dataclass
class CheckpointStep:
    """Snapshot the full world state into the replay's checkpoint store.

    The snapshot (see :mod:`repro.scenarios.checkpoint`) captures every
    piece of state the remaining trace needs: owned blocks in their exact
    layout-internal form, the placement map, app/product state, per-step
    statistics and communication counters up to (and including) this step.
    Untimed and communication-free on the charged categories — assembling
    the snapshot uses the uncharged control plane.
    """

    #: key the snapshot is stored (and restored) under
    tag: str = "default"
    label: str = ""

    kind = "checkpoint"

    @property
    def n_tuples(self) -> int:
        return 0


@dataclass
class RestoreStep:
    """Replace the world state with the snapshot stored under ``tag``.

    The rebuilt state is byte-identical to the checkpointed one; the
    traffic spent shipping blocks back into the world is charged to the
    ``recovery`` category only.
    """

    tag: str = "default"
    label: str = ""

    kind = "restore"

    @property
    def n_tuples(self) -> int:
        return 0


@dataclass
class CrashStep:
    """Deterministic kill point: crash here when a fault plan is armed.

    Without an armed :class:`~repro.runtime.faults.FaultInjector` the step
    is a no-op, so the *same trace* serves as both the crashing run and the
    uninterrupted reference of a differential drill.  ``process`` restricts
    the kill to one loopback process (``None`` kills the world).
    """

    process: int | None = None
    label: str = ""

    kind = "crash"

    @property
    def n_tuples(self) -> int:
        return 0


# ----------------------------------------------------------------------
# application steps
# ----------------------------------------------------------------------
@dataclass
class AppSpec:
    """Application state a scenario maintains across its update steps.

    ``name`` selects the application the replay executor instantiates at
    construction time and routes every update step through:

    * ``"triangle"`` — :class:`repro.apps.DynamicTriangleCounter`; insert
      steps become undirected edge insertions maintaining ``A²``.
    * ``"sssp"`` — :class:`repro.apps.DynamicMultiSourceShortestPaths`
      (requires ``sources`` and a ``min_plus`` scenario semiring); insert
      and value-update steps become general weight updates, delete steps
      become edge deletions.
    """

    name: str
    #: source vertices of the ``"sssp"`` application
    sources: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.name not in ("triangle", "sssp"):
            raise ValueError(
                f"unknown application {self.name!r} (use 'triangle' or 'sssp')"
            )
        if self.name == "sssp":
            if self.sources is None:
                raise ValueError("the sssp application requires source vertices")
            self.sources = np.ascontiguousarray(
                np.asarray(self.sources, dtype=np.int64)
            )


@dataclass
class AppQueryStep:
    """Base class of the application query steps (no update tuples).

    Query steps are timed like update steps (they do real distributed
    work), return an operation count via ``StepStats.applied`` and record a
    byte-comparable payload in ``ScenarioResult.app_results``.
    """

    label: str = ""

    kind = "app_query"

    @property
    def n_tuples(self) -> int:
        return 0


@dataclass
class TriangleCountCheck(AppQueryStep):
    """Query the maintained triangle count (``triangle`` scenarios).

    When ``expect`` is set, replay raises
    :class:`~repro.scenarios.replay.ScenarioCheckError` on a mismatch
    (suppressed by ``check_snapshots=False``, like :class:`SnapshotCheck`).
    """

    expect: int | None = None

    kind = "triangle_count"


@dataclass
class ShortestPathCheck(AppQueryStep):
    """Query the full multi-source distances (``sssp`` scenarios).

    Records the canonical finite-distance tuples
    ``(source_index, vertex, distance)``; ``expect_tuples`` (same form)
    pins them at replay time.  ``max_hops`` bounds the Bellman-Ford sweep.
    """

    expect_tuples: TupleArrays | None = None
    max_hops: int | None = None

    kind = "shortest_path"


@dataclass
class ContractStep(AppQueryStep):
    """Contract the current graph along ``clusters`` (``Sᵀ·A·S``).

    Available in any scenario (with or without an :class:`AppSpec`):
    the contraction runs on the maintained matrix ``A`` — two distributed
    SUMMA products — and records the contracted graph's canonical COO
    tuples.  ``expect_tuples`` pins structure exactly and values up to
    float round-off.
    """

    clusters: np.ndarray = None  # type: ignore[assignment]
    n_clusters: int | None = None
    drop_self_loops: bool = False
    expect_tuples: TupleArrays | None = None

    kind = "contract"

    def __post_init__(self) -> None:
        if self.clusters is None:
            raise ValueError("ContractStep requires a clusters array")
        self.clusters = np.ascontiguousarray(np.asarray(self.clusters, dtype=np.int64))


# ----------------------------------------------------------------------
# the scenario
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """A replayable, fully seeded dynamic-graph trace.

    All randomness that went into the trace is already materialised in the
    step tuples; the only seeds consumed at replay time are the per-step
    partition seeds (assigned here when missing, derived from ``seed``), so
    two replays of the same scenario are identical regardless of backend.
    """

    name: str
    shape: tuple[int, int]
    steps: list[
        ScenarioStep | SnapshotCheck | CheckpointStep | RestoreStep | CrashStep | AppQueryStep
    ] = field(default_factory=list)
    #: pre-loaded matrix content, constructed before the trace runs
    initial_tuples: TupleArrays | None = None
    #: fixed right-hand operand for SpGEMM steps
    b_tuples: TupleArrays | None = None
    #: application maintained across the update steps (None: plain matrix)
    app: AppSpec | None = None
    semiring_name: str = "plus_times"
    seed: int = 0
    #: scatter seed for the initial construction
    construct_seed: int | None = None
    #: when True, the initial construction is measured as step ``construct``
    timed_construction: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n, m = self.shape
        if n < 0 or m < 0:
            raise ValueError("scenario shape must be non-negative")
        if self.initial_tuples is not None:
            self.initial_tuples = _clean_tuples(*self.initial_tuples)
            self._check_bounds(*self.initial_tuples[:2], what="initial tuples")
        if self.b_tuples is not None:
            self.b_tuples = _clean_tuples(*self.b_tuples)
            self._check_bounds(*self.b_tuples[:2], what="B tuples")
        # Deterministically derive missing partition seeds from the scenario
        # seed: independent SeedSequence children, collision-free across
        # scenarios with different seeds (unlike ``seed + index`` schemes).
        missing = [
            s
            for s in self.steps
            if isinstance(s, ScenarioStep) and s.partition_seed is None
        ]
        if missing:
            children = spawn_seeds([int(self.seed), _PARTITION_SALT], len(missing))
            for step, child in zip(missing, children):
                step.partition_seed = seed_int(child)
        if self.construct_seed is None:
            self.construct_seed = seed_int(
                spawn_seeds([int(self.seed), _CONSTRUCT_SALT], 1)[0]
            )
        for step in self.steps:
            if isinstance(step, ScenarioStep):
                self._check_bounds(step.rows, step.cols, what=f"step {step.label!r}")
            elif isinstance(step, ContractStep) and step.clusters.size != n:
                raise ValueError(
                    f"step {step.label!r}: clustering has {step.clusters.size} "
                    f"entries but the scenario matrix has {n} rows"
                )
        if self.app is not None:
            if self.has_spgemm:
                raise ValueError(
                    "application scenarios maintain their own product; "
                    "SpGEMMStep steps are not allowed alongside an AppSpec"
                )
            if self.app.name == "sssp" and self.semiring_name != "min_plus":
                raise ValueError(
                    "the sssp application requires semiring_name='min_plus'"
                )
            if self.app.name == "triangle":
                bad = sorted(
                    {
                        s.kind
                        for s in self.steps
                        if isinstance(s, ScenarioStep) and s.kind != "insert"
                    }
                )
                if bad:
                    raise ValueError(
                        "the triangle application maintains A² additively; "
                        f"only insert steps are expressible (got {bad})"
                    )

    # ------------------------------------------------------------------
    def _check_bounds(
        self, rows: np.ndarray, cols: np.ndarray, *, what: str
    ) -> None:
        n, m = self.shape
        if rows.size and (
            rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= m
        ):
            raise ValueError(f"{what} contain coordinates outside shape {self.shape}")

    # ------------------------------------------------------------------
    @property
    def semiring(self) -> Semiring:
        return get_semiring(self.semiring_name)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def update_steps(self) -> Iterator[ScenarioStep]:
        """The tuple-carrying (timed) steps, in order."""
        for step in self.steps:
            if isinstance(step, ScenarioStep):
                yield step

    @property
    def total_update_tuples(self) -> int:
        return sum(step.n_tuples for step in self.update_steps())

    @property
    def has_spgemm(self) -> bool:
        return any(isinstance(s, SpGEMMStep) for s in self.steps)

    @property
    def has_general_spgemm(self) -> bool:
        return any(
            isinstance(s, SpGEMMStep) and s.mode == "general" for s in self.steps
        )

    def describe(self) -> dict[str, Any]:
        counts: dict[str, int] = {}
        for step in self.steps:
            counts[step.kind] = counts.get(step.kind, 0) + 1
        return {
            "name": self.name,
            "shape": list(self.shape),
            "semiring": self.semiring_name,
            "seed": self.seed,
            "steps": counts,
            "total_update_tuples": self.total_update_tuples,
            **self.metadata,
        }

    # ------------------------------------------------------------------
    def replay(self, **kwargs) -> "ScenarioResult":
        """Run this scenario; see :func:`repro.scenarios.replay.replay`."""
        from repro.scenarios.replay import replay

        return replay(self, **kwargs)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class StepStats:
    """Measured outcome of one replayed step."""

    index: int
    kind: str
    label: str
    n_tuples: int
    #: operation-specific count: entries created / changed / deleted, or
    #: result entries touched for SpGEMM steps; 0 for snapshots
    applied: int
    #: measured seconds of the timed region (0.0 for snapshots)
    seconds: float
    comm_messages: int = 0
    comm_bytes: int = 0
    supported: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "label": self.label,
            "n_tuples": self.n_tuples,
            "applied": self.applied,
            "seconds": self.seconds,
            "comm_messages": self.comm_messages,
            "comm_bytes": self.comm_bytes,
            "supported": self.supported,
        }


@dataclass
class AppQueryResult:
    """Recorded payload of one application query step.

    ``payload`` is an ``int`` for triangle counts and a
    :data:`TupleArrays` triple for shortest-path distances and contracted
    graphs — byte-comparable forms the differential harness asserts are
    identical across backends, layouts and world sizes.
    """

    index: int
    kind: str
    label: str
    payload: Any

    def payload_json(self) -> Any:
        """JSON-friendly form of the payload (for the CI artifacts)."""
        if isinstance(payload := self.payload, tuple):
            return [np.asarray(part).tolist() for part in payload]
        return payload


@dataclass
class ScenarioResult:
    """Structured outcome of one scenario replay."""

    scenario: str
    backend: str
    n_ranks: int
    layout: str
    semiring_name: str
    steps: list[StepStats]
    #: canonical (sorted) final tuples of the maintained matrix ``A``
    final_a: TupleArrays
    #: canonical final tuples of the maintained product ``C`` (if any)
    final_c: TupleArrays | None
    #: ``kind -> summed applied counts`` over all steps of that kind
    applied_counts: dict[str, int]
    #: full per-category accounting of the replay (snapshot diff, as_dict)
    comm_stats: dict[str, dict[str, float]]
    #: accounting restricted to the update steps (excludes construction)
    update_stats: dict[str, dict[str, float]]
    #: index of the first unsupported step, or None when all steps ran
    truncated_at: int | None = None
    elapsed_modeled: float = 0.0
    #: recorded application query payloads, in step order
    app_results: list[AppQueryResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    def comm_signature(self) -> dict[str, tuple[int, int]]:
        """``category -> (messages, bytes)``, zero categories dropped.

        This is the quantity the differential harness requires to match
        across backends: logical traffic, independent of timing.
        """
        out: dict[str, tuple[int, int]] = {}
        for name, totals in sorted(self.comm_stats.items()):
            msgs = int(totals.get("messages", 0))
            nbytes = int(totals.get("bytes", 0))
            if msgs or nbytes:
                out[name] = (msgs, nbytes)
        return out

    def total_comm_bytes(self) -> int:
        return sum(b for _m, b in self.comm_signature().values())

    def total_comm_messages(self) -> int:
        return sum(m for m, _b in self.comm_signature().values())

    # ------------------------------------------------------------------
    def measured_steps(self, kinds: tuple[str, ...] | None = None) -> list[StepStats]:
        """Supported, timed (non-snapshot) steps, optionally filtered."""
        out = []
        for s in self.steps:
            if s.kind == "snapshot" or not s.supported:
                continue
            if kinds is not None and s.kind not in kinds:
                continue
            out.append(s)
        return out

    def mean_step_seconds(self, kinds: tuple[str, ...] | None = None) -> float:
        steps = self.measured_steps(kinds)
        if not steps:
            return float("nan")
        return sum(s.seconds for s in steps) / len(steps)

    def trimmed_mean_step_seconds(
        self, kinds: tuple[str, ...] | None = None
    ) -> float:
        """Outlier-robust per-step mean; see :func:`trimmed_mean_seconds`."""
        return trimmed_mean_seconds([s.seconds for s in self.measured_steps(kinds)])

    def breakdown(
        self, categories: tuple[str, ...], *, include_construction: bool = False
    ) -> dict[str, float]:
        """Modelled seconds per category over the update (or all) steps."""
        source: Mapping[str, Mapping[str, float]] = (
            self.comm_stats if include_construction else self.update_stats
        )
        return {
            name: float(source.get(name, {}).get("modeled_seconds", 0.0))
            for name in categories
        }

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly summary (used for the CI comm-stats artifacts)."""
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "n_ranks": self.n_ranks,
            "layout": self.layout,
            "semiring": self.semiring_name,
            "final_nnz": int(self.final_a[0].size),
            "final_c_nnz": (
                int(self.final_c[0].size) if self.final_c is not None else None
            ),
            "applied_counts": dict(self.applied_counts),
            "comm_signature": {
                k: {"messages": m, "bytes": b}
                for k, (m, b) in self.comm_signature().items()
            },
            "elapsed_modeled": self.elapsed_modeled,
            "truncated_at": self.truncated_at,
            "steps": [s.as_dict() for s in self.steps],
            "app_results": [
                {
                    "index": r.index,
                    "kind": r.kind,
                    "label": r.label,
                    "payload": r.payload_json(),
                }
                for r in self.app_results
            ],
        }
