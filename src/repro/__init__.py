"""repro — Fast Dynamic Updates and Dynamic SpGEMM on (simulated) MPI-Distributed Graphs.

A from-scratch Python reproduction of

    A. van der Grinten, G. Custers, D. Le Thanh, H. Meyerhenke:
    "Fast Dynamic Updates and Dynamic SpGEMM on MPI-Distributed Graphs",
    IEEE CLUSTER 2022 (arXiv:2202.08808).

The package provides

* a simulated MPI runtime (:mod:`repro.runtime`),
* local sparse matrix layouts — CSR, doubly-compressed CSR and the DHB
  dynamic layout (:mod:`repro.sparse`) over arbitrary semirings
  (:mod:`repro.semirings`),
* 2D-distributed dynamic and static matrices with fast batch updates
  (:mod:`repro.distributed`),
* the paper's dynamic SpGEMM algorithms and the high-level
  :class:`~repro.core.DynamicProduct` API (:mod:`repro.core`),
* simulated CombBLAS / CTF / PETSc competitor backends
  (:mod:`repro.competitors`),
* graph generators and the Table-I surrogate catalogue (:mod:`repro.graphs`),
* applications (triangle counting, shortest paths, contraction;
  :mod:`repro.apps`) and the benchmark harness reproducing every table and
  figure of the paper (:mod:`repro.bench`),
* replayable, fully seeded dynamic-graph scenarios and the cross-backend
  replay driver (:mod:`repro.scenarios`),
* unified performance instrumentation — nested phase timers, counters and
  the ``BENCH_*.json`` regression harness (:mod:`repro.perf`).
"""

from repro.semirings import (
    BOOLEAN,
    MAX_MIN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
    SemiringError,
    get_semiring,
)
from repro.runtime import (
    CommStats,
    Communicator,
    MPIBackend,
    MachineModel,
    ProcessGrid,
    SimMPI,
    StatCategory,
    available_backends,
    make_communicator,
    register_backend,
)
from repro.sparse import (
    BloomFilterMatrix,
    COOMatrix,
    CSRMatrix,
    DCSRMatrix,
    DHBMatrix,
    spgemm_local,
    spgemm_local_masked,
)
from repro.distributed import (
    BlockDistribution,
    DynamicDistMatrix,
    IndexPermutation,
    StaticDistMatrix,
    UpdateBatch,
    build_update_matrix,
    partition_tuples_round_robin,
)
from repro.core import (
    DynamicProduct,
    compute_cstar,
    dynamic_spgemm_algebraic,
    dynamic_spgemm_general,
    summa_spgemm,
    transpose_dist,
)
from repro.scenarios import (
    Scenario,
    ScenarioResult,
    library_scenarios,
    replay,
)
from repro.perf import PerfRecorder, use_recorder

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # semirings
    "Semiring",
    "SemiringError",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_MIN",
    "MAX_TIMES",
    "BOOLEAN",
    "get_semiring",
    # runtime
    "Communicator",
    "SimMPI",
    "MPIBackend",
    "make_communicator",
    "register_backend",
    "available_backends",
    "ProcessGrid",
    "MachineModel",
    "CommStats",
    "StatCategory",
    # sparse
    "COOMatrix",
    "CSRMatrix",
    "DCSRMatrix",
    "DHBMatrix",
    "BloomFilterMatrix",
    "spgemm_local",
    "spgemm_local_masked",
    # distributed
    "BlockDistribution",
    "IndexPermutation",
    "DynamicDistMatrix",
    "StaticDistMatrix",
    "UpdateBatch",
    "build_update_matrix",
    "partition_tuples_round_robin",
    # core
    "DynamicProduct",
    "summa_spgemm",
    "dynamic_spgemm_algebraic",
    "dynamic_spgemm_general",
    "compute_cstar",
    "transpose_dist",
    # scenarios
    "Scenario",
    "ScenarioResult",
    "library_scenarios",
    "replay",
    # perf
    "PerfRecorder",
    "use_recorder",
]
