"""Batches of dynamic updates and distributed update matrices.

The experimental workflow of the paper (Sections IV-A and VII) is:

1. every rank independently generates a *batch* of update tuples
   ``(i, j, x)`` — insertions, value updates, or deletions;
2. an *update matrix* ``A*`` is built from the batch: tuples are
   redistributed to the owning rank and assembled into hypersparse DCSR
   blocks;
3. the update is applied to the (dynamic) target matrix purely locally —
   semiring ``ADD`` for algebraic updates, ``MERGE`` for general value
   updates, ``MASK`` for deletions;
4. for dynamic SpGEMM, the same ``A*`` also drives Algorithm 1 / 2.

:class:`UpdateBatch` is the per-rank tuple container;
:func:`build_update_matrix` performs step 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse import COOMatrix, DCSRMatrix, CSRMatrix
from repro.distributed.dist_matrix import StaticDistMatrix
from repro.distributed.distribution import BlockDistribution
from repro.distributed.redistribution import (
    redistribute_tuples,
    redistribute_tuples_single_phase,
)

__all__ = ["UpdateBatch", "build_update_matrix", "partition_tuples_round_robin"]

TupleArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


def partition_tuples_round_robin(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    n_ranks: int,
    *,
    seed: int | None = None,
) -> dict[int, TupleArrays]:
    """Split global tuple arrays across ranks (round-robin after a shuffle).

    Models the paper's assumption that "MPI processes can generate updates
    independently and without knowledge of the distribution of data": each
    rank ends up with ``nnz/p`` tuples drawn without regard to ownership.

    The shuffle is unconditional: dealing tuples in generation order would
    correlate batch skew (generators emit hot rows in bursts) with rank
    assignment, which is exactly the imbalance the shuffle is documented to
    break.  ``seed=None`` derives a deterministic seed from the batch
    geometry, so replays stay reproducible without callers having to pick
    a seed.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values)
    if not (rows.size == cols.size == values.size):
        raise ValueError("rows, cols and values must have identical lengths")
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if seed is None:
        seed = (rows.size * 0x9E3779B1 + n_ranks) & 0xFFFFFFFF
    rng = np.random.default_rng(seed)
    order = rng.permutation(rows.size)
    out: dict[int, TupleArrays] = {}
    for rank in range(n_ranks):
        sel = order[rank::n_ranks]
        out[rank] = (rows[sel], cols[sel], values[sel])
    return out


@dataclass
class UpdateBatch:
    """One batch of per-rank update tuples.

    ``kind`` is one of ``"insert"``, ``"update"`` or ``"delete"`` and only
    documents intent (deletions carry dummy values); the same container is
    used for all three.
    """

    shape: tuple[int, int]
    tuples_per_rank: dict[int, TupleArrays] = field(default_factory=dict)
    kind: str = "insert"
    semiring: Semiring = PLUS_TIMES

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "update", "delete"):
            raise ValueError(f"unknown update kind {self.kind!r}")
        clean: dict[int, TupleArrays] = {}
        for rank, (rows, cols, vals) in self.tuples_per_rank.items():
            rows = np.ascontiguousarray(np.asarray(rows, dtype=np.int64))
            cols = np.ascontiguousarray(np.asarray(cols, dtype=np.int64))
            vals = self.semiring.coerce(vals)
            if not (rows.size == cols.size == vals.size):
                raise ValueError("tuple arrays must have identical lengths")
            n, m = self.shape
            if rows.size and (
                rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= m
            ):
                raise ValueError("update coordinate outside the matrix shape")
            clean[int(rank)] = (rows, cols, vals)
        self.tuples_per_rank = clean

    # ------------------------------------------------------------------
    @classmethod
    def from_global(
        cls,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        n_ranks: int,
        *,
        kind: str = "insert",
        semiring: Semiring = PLUS_TIMES,
        seed: int | None = None,
    ) -> "UpdateBatch":
        """Build a batch by distributing global tuples round-robin."""
        return cls(
            shape=shape,
            tuples_per_rank=partition_tuples_round_robin(
                rows, cols, values, n_ranks, seed=seed
            ),
            kind=kind,
            semiring=semiring,
        )

    @property
    def total_tuples(self) -> int:
        return sum(rows.size for rows, _c, _v in self.tuples_per_rank.values())

    def tuples_of(self, rank: int) -> TupleArrays:
        return self.tuples_per_rank.get(
            rank,
            (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                self.semiring.zeros(0),
            ),
        )

    def to_global_coo(self) -> COOMatrix:
        """All tuples of the batch as one global COO matrix (⊕-combined)."""
        pieces_r, pieces_c, pieces_v = [], [], []
        for rows, cols, vals in self.tuples_per_rank.values():
            pieces_r.append(rows)
            pieces_c.append(cols)
            pieces_v.append(vals)
        if not pieces_r:
            return COOMatrix.empty(self.shape, self.semiring)
        coo = COOMatrix(
            shape=self.shape,
            rows=np.concatenate(pieces_r),
            cols=np.concatenate(pieces_c),
            values=np.concatenate(pieces_v),
            semiring=self.semiring,
        )
        return coo.sum_duplicates() if self.kind != "update" else coo.last_write_wins()


def build_update_matrix(
    comm: Communicator,
    grid: ProcessGrid,
    dist: BlockDistribution,
    batch: UpdateBatch | Mapping[int, TupleArrays],
    semiring: Semiring = PLUS_TIMES,
    *,
    layout: str = "dcsr",
    combine: str = "add",
    redistribution: str = "two_phase",
) -> StaticDistMatrix:
    """Assemble a distributed (hypersparse) update matrix from a batch.

    This is the communication step of a dynamic update: tuples are routed
    to their owning ranks (two-phase counting-sort ``ALLTOALL`` by default)
    and assembled into DCSR blocks.  After this call, applying the update
    to a dynamic matrix is purely local.
    """
    if isinstance(batch, UpdateBatch):
        tuples_per_rank = batch.tuples_per_rank
        shape = batch.shape
        if combine == "add" and batch.kind == "update":
            combine = "last"
    else:
        tuples_per_rank = dict(batch)
        shape = dist.shape
    if shape != dist.shape:
        raise ValueError(
            f"batch shape {shape} does not match distribution shape {dist.shape}"
        )
    if redistribution == "two_phase":
        routed = redistribute_tuples(
            comm, grid, dist, tuples_per_rank, value_dtype=semiring.dtype
        )
    elif redistribution == "single_phase":
        routed = redistribute_tuples_single_phase(
            comm, grid, dist, tuples_per_rank, value_dtype=semiring.dtype
        )
    else:
        raise ValueError(f"unknown redistribution mode {redistribution!r}")

    out = StaticDistMatrix.empty(comm, grid, dist.shape, semiring, layout=layout)
    # Reuse the *target* distribution rather than the freshly created one so
    # that the update matrix is block-aligned with the matrix it updates.
    out.dist = dist
    for rank in comm.owned_ranks(grid.all_ranks()):
        rows, cols, vals = routed.get(
            rank,
            (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                semiring.zeros(0),
            ),
        )
        lrows, lcols = dist.to_local(rank, rows, cols)
        block_shape = dist.block_shape_of_rank(rank)

        def _build(lrows=lrows, lcols=lcols, vals=vals, block_shape=block_shape):
            coo = COOMatrix(
                shape=block_shape,
                rows=lrows,
                cols=lcols,
                values=vals,
                semiring=semiring,
            )
            coo = coo.sum_duplicates() if combine == "add" else coo.last_write_wins()
            if layout == "csr":
                return CSRMatrix.from_coo(coo, dedup=False)
            return DCSRMatrix.from_coo(coo, dedup=False)

        out.blocks[rank] = comm.run_local(
            rank, _build, category=StatCategory.LOCAL_CONSTRUCT
        )
    return out
