"""Distributed sparse matrices (2D block decomposition).

Two flavours, mirroring Section IV of the paper:

* :class:`DynamicDistMatrix` — every rank stores its block as a DHB dynamic
  matrix; updates are applied *in place* and purely locally once the update
  tuples (or a distributed update matrix) have been routed to their owners.
* :class:`StaticDistMatrix` — every rank stores its block as CSR or DCSR;
  used for the right-hand operand of SpGEMM, for update matrices (DCSR,
  hypersparse) and by the competitor backends that rebuild static storage
  on every batch.

Both classes live on the orchestration runtime and follow its
partial-mapping contract: ``blocks`` holds the local block of every rank
*this process owns* — all of them on the simulator, a round-robin share
under a multi-process MPI world — so per-process memory scales with
``owned/p``.  All per-rank kernels are executed through
``Communicator.run_local`` so that their cost lands on the right rank, and
the global queries (``nnz``, ``to_coo_global``, ``get``) assemble their
answers through the uncharged ``host_*`` control plane, returning the same
value on every process.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import PLUS_TIMES, Semiring
from repro.sparse import COOMatrix, CSRMatrix, DCSRMatrix, DHBMatrix
from repro.distributed.distribution import BlockDistribution
from repro.distributed.redistribution import (
    redistribute_tuples,
    redistribute_tuples_single_phase,
)

__all__ = ["DistMatrixBase", "DynamicDistMatrix", "StaticDistMatrix"]

TupleArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


class DistMatrixBase:
    """Shared plumbing of distributed matrices."""

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        dist: BlockDistribution,
        semiring: Semiring,
        blocks: dict[int, object],
    ) -> None:
        if grid.n_ranks > comm.p:
            raise ValueError(
                f"grid needs {grid.n_ranks} ranks but communicator has {comm.p}"
            )
        if dist.grid is not grid and dist.grid.n_ranks != grid.n_ranks:
            raise ValueError("distribution and grid disagree on the rank count")
        self.comm = comm
        self.grid = grid
        self.dist = dist
        self.semiring = semiring
        self.blocks = blocks

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.dist.shape

    def owned_ranks(self) -> list[int]:
        """Grid ranks whose block lives on this process."""
        return self.comm.owned_ranks(self.grid.all_ranks())

    def block(self, rank: int):
        """The local block stored by ``rank`` (KeyError when not owned here)."""
        return self.blocks[rank]

    def nnz(self) -> int:
        """Total structural non-zeros over all blocks (global, every process)."""
        local = sum(block.nnz for block in self.blocks.values())
        return int(self.comm.host_fold(local, lambda x, y: x + y))

    def block_nnz(self) -> dict[int, int]:
        """Per-rank structural non-zeros (global; load-balance diagnostics)."""
        return self.comm.host_merge(
            {rank: block.nnz for rank, block in self.blocks.items()}
        )

    def nbytes(self) -> int:
        """Total block bytes over all processes."""
        local = sum(block.nbytes for block in self.blocks.values())
        return int(self.comm.host_fold(local, lambda x, y: x + y))

    def to_coo_global(self) -> COOMatrix:
        """Assemble the full matrix in global coordinates (for testing).

        Every process receives the complete matrix (the owned pieces are
        merged through the control plane), so assertions against the result
        hold identically on all processes.
        """
        local_pieces: dict[int, COOMatrix] = {}
        for rank, block in self.blocks.items():
            coo = block.to_coo()
            if coo.nnz == 0:
                continue
            grows, gcols = self.dist.to_global(rank, coo.rows, coo.cols)
            local_pieces[rank] = COOMatrix(
                shape=self.shape,
                rows=grows,
                cols=gcols,
                values=coo.values,
                semiring=self.semiring,
            )
        merged = self.comm.host_merge(local_pieces)
        pieces = [merged[rank] for rank in sorted(merged)]
        if not pieces:
            return COOMatrix.empty(self.shape, self.semiring)
        out = pieces[0]
        for extra in pieces[1:]:
            out = out.concatenate(extra)
        return out.sum_duplicates()

    def to_dense(self) -> np.ndarray:
        return self.to_coo_global().to_dense()

    def contains_tuples(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorised global membership test for ``(rows[k], cols[k])`` pairs.

        Each owning rank probes its block once for all the coordinates it
        hosts (charged as local compute); the hit indices are merged through
        the control plane, so every process receives the same boolean mask.
        One collective round instead of one :meth:`get` per coordinate —
        the applications use this to screen whole edge batches.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        out = np.zeros(rows.size, dtype=bool)
        if rows.size == 0:
            return out
        owners = self.dist.owner_of(rows, cols)
        hits: dict[int, np.ndarray] = {}
        for rank in self.owned_ranks():
            sel = np.nonzero(owners == rank)[0]
            if sel.size == 0:
                continue
            lrows, lcols = self.dist.to_local(rank, rows[sel], cols[sel])
            block = self.blocks[rank]

            def _probe(block=block, lrows=lrows, lcols=lcols):
                if hasattr(block, "contains"):
                    found = [block.contains(int(i), int(j)) for i, j in zip(lrows, lcols)]
                else:
                    coo = block.to_coo()
                    keys = coo.rows * block.shape[1] + coo.cols
                    found = np.isin(lrows * block.shape[1] + lcols, keys)
                return np.asarray(found, dtype=bool)

            present = self.comm.run_local(rank, _probe)
            hits[rank] = sel[present]
        for sel in self.comm.host_merge(hits).values():
            out[sel] = True
        return out

    def get(self, i: int, j: int):
        """Global entry lookup (owning process answers, everyone receives)."""
        owner = int(self.dist.owner_of(np.array([i]), np.array([j]))[0])
        found: dict[int, object] = {}
        if self.comm.owns(owner):
            li, lj = self.dist.to_local(owner, np.array([i]), np.array([j]))
            block = self.blocks[owner]
            if isinstance(block, (CSRMatrix, DHBMatrix)):
                found[owner] = block.get(int(li[0]), int(lj[0]))
            else:
                coo = block.to_coo()
                hits = (coo.rows == li[0]) & (coo.cols == lj[0])
                if not np.any(hits):
                    found[owner] = self.semiring.zero
                else:
                    found[owner] = float(self.semiring.add_reduce(coo.values[hits]))
        return self.comm.host_merge(found)[owner]

    # ------------------------------------------------------------------
    def _local_tuple_blocks(
        self, routed: Mapping[int, TupleArrays]
    ) -> dict[int, TupleArrays]:
        """Convert routed global-coordinate tuples to block-local ones."""
        out: dict[int, TupleArrays] = {}
        for rank in self.owned_ranks():
            rows, cols, vals = routed.get(
                rank,
                (
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    self.semiring.zeros(0),
                ),
            )
            lrows, lcols = self.dist.to_local(rank, rows, cols)
            out[rank] = (lrows, lcols, vals)
        return out


# ----------------------------------------------------------------------
class DynamicDistMatrix(DistMatrixBase):
    """Distributed matrix with DHB (dynamic) blocks."""

    @classmethod
    def empty(
        cls,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        semiring: Semiring = PLUS_TIMES,
    ) -> "DynamicDistMatrix":
        dist = BlockDistribution(shape[0], shape[1], grid)
        blocks = {
            rank: DHBMatrix(dist.block_shape_of_rank(rank), semiring)
            for rank in comm.owned_ranks(grid.all_ranks())
        }
        return cls(comm, grid, dist, semiring, blocks)

    @classmethod
    def from_tuples(
        cls,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        tuples_per_rank: Mapping[int, TupleArrays],
        semiring: Semiring = PLUS_TIMES,
        *,
        combine: str = "add",
        redistribution: str = "two_phase",
    ) -> "DynamicDistMatrix":
        """Construct by redistributing tuples and building DHB blocks.

        ``combine`` chooses how duplicate coordinates are handled:
        ``"add"`` (⊕-combine, the adjacency-matrix semantics used in the
        experiments) or ``"last"`` (last write wins).
        """
        mat = cls.empty(comm, grid, shape, semiring)
        mat.insert_tuples(
            tuples_per_rank, combine=combine, redistribution=redistribution
        )
        return mat

    # ------------------------------------------------------------------
    def insert_tuples(
        self,
        tuples_per_rank: Mapping[int, TupleArrays],
        *,
        combine: str = "add",
        redistribution: str = "two_phase",
        reserve: bool = True,
    ) -> int:
        """Redistribute raw update tuples and insert them into the blocks.

        Returns the *global* number of newly created structural non-zeros
        (identical on every process).  The phases are charged to the Fig. 7
        categories: redistribution sort and communication inside
        :func:`redistribute_tuples`, adjacency-array growth to *memory
        management* and the per-entry inserts to *local construct*.
        """
        combine_fn = self._combine_fn(combine)
        routed = self._route(tuples_per_rank, redistribution)
        local = self._local_tuple_blocks(routed)
        created = 0
        for rank, (lrows, lcols, vals) in local.items():
            block: DHBMatrix = self.blocks[rank]
            if reserve:
                self.comm.run_local(
                    rank,
                    block.reserve_batch,
                    lrows,
                    category=StatCategory.MEMORY_MANAGEMENT,
                )
            created += self.comm.run_local(
                rank,
                block.insert_batch,
                lrows,
                lcols,
                vals,
                combine_fn,
                category=StatCategory.LOCAL_CONSTRUCT,
            )
        return int(self.comm.host_fold(created, lambda x, y: x + y))

    def add_update(self, update: "StaticDistMatrix") -> int:
        """``A ← A ⊕ A*`` block-by-block; purely local (no communication).

        Returns the global count of created non-zeros on every process.
        """
        self._check_update(update)
        created = 0
        for rank, block in self.blocks.items():
            created += self.comm.run_local(
                rank,
                block.add_update,
                update.blocks[rank],
                category=StatCategory.LOCAL_ADDITION,
            )
        return int(self.comm.host_fold(created, lambda x, y: x + y))

    def merge_update(self, update: "StaticDistMatrix") -> int:
        """MERGE: overwrite entries present in the update matrix (local)."""
        self._check_update(update)
        changed = 0
        for rank, block in self.blocks.items():
            changed += self.comm.run_local(
                rank,
                block.merge_update,
                update.blocks[rank],
                category=StatCategory.LOCAL_ADDITION,
            )
        return int(self.comm.host_fold(changed, lambda x, y: x + y))

    def mask_update(self, update: "StaticDistMatrix") -> int:
        """MASK: delete entries that are non-zero in the update matrix."""
        self._check_update(update)
        deleted = 0
        for rank, block in self.blocks.items():
            deleted += self.comm.run_local(
                rank,
                block.mask_update,
                update.blocks[rank],
                category=StatCategory.LOCAL_ADDITION,
            )
        return int(self.comm.host_fold(deleted, lambda x, y: x + y))

    # ------------------------------------------------------------------
    def to_static(self, layout: str = "csr") -> "StaticDistMatrix":
        """Freeze the dynamic blocks into a static distributed matrix."""
        return StaticDistMatrix.from_dynamic(self, layout=layout)

    def copy(self) -> "DynamicDistMatrix":
        blocks = {rank: block.copy() for rank, block in self.blocks.items()}
        return DynamicDistMatrix(self.comm, self.grid, self.dist, self.semiring, blocks)

    # ------------------------------------------------------------------
    def _combine_fn(self, combine: str) -> Callable | None:
        if combine == "add":
            return self.semiring.plus
        if combine == "last":
            return None
        raise ValueError(f"unknown combine mode {combine!r} (use 'add' or 'last')")

    def _route(
        self, tuples_per_rank: Mapping[int, TupleArrays], redistribution: str
    ) -> dict[int, TupleArrays]:
        if redistribution == "two_phase":
            return redistribute_tuples(
                self.comm,
                self.grid,
                self.dist,
                tuples_per_rank,
                value_dtype=self.semiring.dtype,
            )
        if redistribution == "single_phase":
            return redistribute_tuples_single_phase(
                self.comm,
                self.grid,
                self.dist,
                tuples_per_rank,
                value_dtype=self.semiring.dtype,
            )
        raise ValueError(
            f"unknown redistribution mode {redistribution!r} "
            "(use 'two_phase' or 'single_phase')"
        )

    def _check_update(self, update: "StaticDistMatrix") -> None:
        if update.shape != self.shape:
            raise ValueError(
                f"update shape {update.shape} does not match matrix shape {self.shape}"
            )
        if update.semiring.name != self.semiring.name:
            raise ValueError("update semiring does not match matrix semiring")
        if update.grid.n_ranks != self.grid.n_ranks:
            raise ValueError("update lives on a different process grid")


# ----------------------------------------------------------------------
class StaticDistMatrix(DistMatrixBase):
    """Distributed matrix with static (CSR or DCSR) blocks."""

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        dist: BlockDistribution,
        semiring: Semiring,
        blocks: dict[int, object],
        layout: str = "csr",
    ) -> None:
        if layout not in ("csr", "dcsr"):
            raise ValueError(f"unknown static layout {layout!r} (use 'csr' or 'dcsr')")
        super().__init__(comm, grid, dist, semiring, blocks)
        self.layout = layout

    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        semiring: Semiring = PLUS_TIMES,
        *,
        layout: str = "csr",
    ) -> "StaticDistMatrix":
        dist = BlockDistribution(shape[0], shape[1], grid)
        maker = CSRMatrix.empty if layout == "csr" else DCSRMatrix.empty
        blocks = {
            rank: maker(dist.block_shape_of_rank(rank), semiring)
            for rank in comm.owned_ranks(grid.all_ranks())
        }
        return cls(comm, grid, dist, semiring, blocks, layout=layout)

    @classmethod
    def from_tuples(
        cls,
        comm: Communicator,
        grid: ProcessGrid,
        shape: tuple[int, int],
        tuples_per_rank: Mapping[int, TupleArrays],
        semiring: Semiring = PLUS_TIMES,
        *,
        layout: str = "csr",
        combine: str = "add",
        redistribution: str = "two_phase",
    ) -> "StaticDistMatrix":
        """Construct a static distributed matrix from raw tuples."""
        out = cls.empty(comm, grid, shape, semiring, layout=layout)
        if redistribution == "two_phase":
            routed = redistribute_tuples(
                comm, grid, out.dist, tuples_per_rank, value_dtype=semiring.dtype
            )
        elif redistribution == "single_phase":
            routed = redistribute_tuples_single_phase(
                comm, grid, out.dist, tuples_per_rank, value_dtype=semiring.dtype
            )
        else:
            raise ValueError(f"unknown redistribution mode {redistribution!r}")
        local = out._local_tuple_blocks(routed)
        for rank, (lrows, lcols, vals) in local.items():
            block_shape = out.dist.block_shape_of_rank(rank)

            def _build(
                lrows=lrows, lcols=lcols, vals=vals, block_shape=block_shape
            ):
                coo = COOMatrix(
                    shape=block_shape,
                    rows=lrows,
                    cols=lcols,
                    values=vals,
                    semiring=semiring,
                )
                coo = coo.sum_duplicates() if combine == "add" else coo.last_write_wins()
                if layout == "csr":
                    return CSRMatrix.from_coo(coo, dedup=False)
                return DCSRMatrix.from_coo(coo, dedup=False)

            out.blocks[rank] = comm.run_local(
                rank, _build, category=StatCategory.LOCAL_CONSTRUCT
            )
        return out

    @classmethod
    def from_dynamic(
        cls, dynamic: DynamicDistMatrix, *, layout: str = "csr"
    ) -> "StaticDistMatrix":
        blocks: dict[int, object] = {}
        for rank, block in dynamic.blocks.items():
            blocks[rank] = (
                block.to_csr() if layout == "csr" else block.to_dcsr()
            )
        return cls(
            dynamic.comm,
            dynamic.grid,
            dynamic.dist,
            dynamic.semiring,
            blocks,
            layout=layout,
        )

    # ------------------------------------------------------------------
    def to_dynamic(self) -> DynamicDistMatrix:
        blocks = {
            rank: DHBMatrix.from_coo(block.to_coo(), combine_duplicates=False)
            for rank, block in self.blocks.items()
        }
        return DynamicDistMatrix(self.comm, self.grid, self.dist, self.semiring, blocks)

    def copy(self) -> "StaticDistMatrix":
        blocks = {rank: block.copy() for rank, block in self.blocks.items()}
        return StaticDistMatrix(
            self.comm, self.grid, self.dist, self.semiring, blocks, layout=self.layout
        )
