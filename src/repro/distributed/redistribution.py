"""Routing update tuples to their owning ranks.

Section IV-B: ranks generate ``(i, j, x)`` update tuples with no knowledge
of the data distribution, so tuples must be redistributed to the rank that
owns block ``(i, j)``.  The paper's scheme:

1. group the local tuples by their destination *process-grid row* with a
   counting sort over ``√p`` buckets (cheap — the key range is tiny);
2. ``ALLTOALL`` within the grid *column*, so every tuple reaches the correct
   process row;
3. group by destination *process-grid column* (counting sort again);
4. ``ALLTOALL`` within the grid *row*.

Each ``ALLTOALL`` involves only ``√p`` peers, in contrast to the
single-phase scheme used by CombBLAS (one global ``ALLTOALL`` over all
``p`` ranks preceded by a comparison sort of the whole tuple set), which is
also implemented here for the competitor backends and the ablation
benchmark.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.perf.recorder import perf_count, perf_phase
from repro.runtime.config import overlap_enabled
from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.distributed.distribution import BlockDistribution

__all__ = [
    "group_by_buckets",
    "redistribute_tuples",
    "redistribute_tuples_single_phase",
]

TupleArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


def _empty_tuples(dtype) -> TupleArrays:
    return (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=dtype),
    )


def _as_tuple_arrays(data, dtype) -> TupleArrays:
    if data is None:
        return _empty_tuples(dtype)
    rows, cols, vals = data
    rows = np.ascontiguousarray(np.asarray(rows, dtype=np.int64))
    cols = np.ascontiguousarray(np.asarray(cols, dtype=np.int64))
    vals = np.ascontiguousarray(np.asarray(vals, dtype=dtype))
    if not (rows.size == cols.size == vals.size):
        raise ValueError("tuple arrays must have identical lengths")
    return rows, cols, vals


def group_by_buckets(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    bucket_of: np.ndarray,
    n_buckets: int,
    *,
    mode: str = "counting",
) -> tuple[TupleArrays, np.ndarray]:
    """Group tuples by destination bucket.

    ``mode="counting"`` groups by the (small-range) bucket key only — the
    counting sort of the paper.  ``mode="comparison"`` performs a full
    lexicographic sort of ``(bucket, row, col)`` — the strictly more
    expensive strategy CombBLAS-style assembly uses; exposed for the
    ablation benchmark.

    Returns the reordered tuple arrays plus the bucket boundary offsets
    (length ``n_buckets + 1``).
    """
    bucket_of = np.asarray(bucket_of, dtype=np.int64)
    if bucket_of.size != rows.size:
        raise ValueError("bucket array must align with the tuple arrays")
    if bucket_of.size and (bucket_of.min() < 0 or bucket_of.max() >= n_buckets):
        raise ValueError("bucket id outside [0, n_buckets)")
    if mode == "counting":
        # A stable sort keyed only by the bucket id: identical grouping
        # semantics (and identical output) to a counting sort over
        # n_buckets buckets.
        order = np.argsort(bucket_of, kind="stable")
    elif mode == "comparison":
        order = np.lexsort((cols, rows, bucket_of))
    else:
        raise ValueError(f"unknown sort mode {mode!r}")
    counts = np.bincount(bucket_of, minlength=n_buckets)
    offsets = np.zeros(n_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return (rows[order], cols[order], vals[order]), offsets


def _slice_bucket(data: TupleArrays, offsets: np.ndarray, bucket: int) -> TupleArrays:
    lo, hi = offsets[bucket], offsets[bucket + 1]
    return data[0][lo:hi], data[1][lo:hi], data[2][lo:hi]


def _concat_inbox(chunks: list[TupleArrays], dtype) -> TupleArrays:
    if not chunks:
        return _empty_tuples(dtype)
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]),
    )


def _exchange_chunks(
    comm: Communicator,
    sendbufs: dict[int, dict[int, TupleArrays]],
    *,
    category: str,
) -> dict[int, dict[int, TupleArrays]]:
    """Deliver per-rank outgoing chunks with ``isend``/``irecv``.

    The overlap-schedule replacement for the per-group ``alltoallv`` calls
    of the synchronous redistribution: every cross-rank chunk travels as
    one point-to-point message, all sends are posted before any receive is
    waited on, and self-addressed chunks are delivered locally *without*
    posting a request — exactly like ``alltoallv``, which never charges
    self-messages — so the per-category communication volume stays
    identical to the blocking schedule.  The send pattern is agreed
    through the uncharged ``host_merge`` control plane, so every process
    knows which sources each of its ranks must wait on; receives are
    completed in sorted ``(rank, src)`` order, keeping assembly
    deterministic.
    """
    pattern = comm.host_merge(
        {rank: sorted(out.keys()) for rank, out in sendbufs.items()}
    )
    inbox: dict[int, dict[int, TupleArrays]] = {rank: {} for rank in sendbufs}
    send_reqs = []
    for rank in sorted(sendbufs):
        for dst in sorted(sendbufs[rank]):
            chunk = sendbufs[rank][dst]
            if dst == rank:
                inbox[rank][rank] = chunk
            else:
                send_reqs.append(comm.isend(rank, dst, chunk, category=category))
    sources: dict[int, list[int]] = {rank: [] for rank in sendbufs}
    for src in sorted(pattern):
        for dst in pattern[src]:
            if src != dst and dst in sources:
                sources[dst].append(src)
    for rank in sorted(sources):
        for src in sorted(sources[rank]):
            inbox[rank][src] = comm.wait(comm.irecv(src, rank, category=category))
    comm.waitall(send_reqs)
    return inbox


def redistribute_tuples(
    comm: Communicator,
    grid: ProcessGrid,
    dist: BlockDistribution,
    tuples_per_rank: Mapping[int, TupleArrays],
    *,
    value_dtype=np.float64,
    sort_mode: str = "counting",
    sort_category: str = StatCategory.REDIST_SORT,
    comm_category: str = StatCategory.REDIST_COMM,
) -> dict[int, TupleArrays]:
    """Two-phase redistribution of update tuples (the paper's scheme).

    Parameters
    ----------
    tuples_per_rank:
        ``rank -> (rows, cols, values)`` with *global* coordinates; ranks
        may be missing (treated as empty).
    sort_mode:
        ``"counting"`` (default, the paper) or ``"comparison"`` (ablation).

    Returns
    -------
    dict rank -> (rows, cols, values)
        Tuples grouped on their owning rank, still in global coordinates.
    """
    dtype = np.dtype(value_dtype)
    q = grid.q
    owned = comm.owned_ranks(grid.all_ranks())
    overlapped = overlap_enabled()
    with perf_phase("redistribute"):
        # Per-rank state is partial: this process materialises (and sorts,
        # and sends) only the tuples generated by the ranks it owns.
        local = {
            rank: _as_tuple_arrays(tuples_per_rank.get(rank), dtype)
            for rank in owned
        }
        perf_count(
            "redistribute.tuples", sum(t[0].size for t in local.values())
        )

        # ------------- phase 1: route to the correct process-grid row ----
        # Communication happens within each grid column.
        grouped: dict[int, tuple[TupleArrays, np.ndarray]] = {}
        with perf_phase("sort"):
            for rank in owned:
                rows, cols, vals = local[rank]

                def _group(rows=rows, cols=cols, vals=vals):
                    dest_rows = dist.block_row_of(rows) if rows.size else rows
                    return group_by_buckets(
                        rows, cols, vals, dest_rows, q, mode=sort_mode
                    )

                grouped[rank] = comm.run_local(rank, _group, category=sort_category)

        with perf_phase("comm"):
            if overlapped:
                # Overlap schedule: one point-to-point exchange across all
                # grid columns at once — chunks of different column groups
                # travel concurrently instead of one group barrier at a
                # time.
                sendbufs: dict[int, dict[int, TupleArrays]] = {}
                for rank in owned:
                    data, offsets = grouped[rank]
                    col = grid.col_of(rank)
                    outgoing: dict[int, TupleArrays] = {}
                    for dest_row in range(q):
                        chunk = _slice_bucket(data, offsets, dest_row)
                        if chunk[0].size:
                            outgoing[grid.rank_of(dest_row, col)] = chunk
                    sendbufs[rank] = outgoing
                recv = _exchange_chunks(comm, sendbufs, category=comm_category)
                for rank in owned:
                    chunks = [
                        payload
                        for _src, payload in sorted(recv.get(rank, {}).items())
                    ]
                    local[rank] = _concat_inbox(chunks, dtype)
            else:
                for col in range(q):
                    col_ranks = grid.col_group(col)
                    sendbufs = {}
                    for rank in comm.owned_ranks(col_ranks):
                        data, offsets = grouped[rank]
                        outgoing = {}
                        for dest_row in range(q):
                            chunk = _slice_bucket(data, offsets, dest_row)
                            if chunk[0].size:
                                outgoing[grid.rank_of(dest_row, col)] = chunk
                        sendbufs[rank] = outgoing
                    recv = comm.alltoallv(
                        sendbufs, group=col_ranks, category=comm_category
                    )
                    for rank in comm.owned_ranks(col_ranks):
                        chunks = [
                            payload
                            for _src, payload in sorted(recv.get(rank, {}).items())
                        ]
                        local[rank] = _concat_inbox(chunks, dtype)

        # ------------- phase 2: route to the correct process-grid column -
        # Tuples are now on the right grid row; communicate within each row.
        with perf_phase("sort"):
            for rank in owned:
                rows, cols, vals = local[rank]

                def _group(rows=rows, cols=cols, vals=vals):
                    dest_cols = dist.block_col_of(cols) if cols.size else cols
                    return group_by_buckets(
                        rows, cols, vals, dest_cols, q, mode=sort_mode
                    )

                grouped[rank] = comm.run_local(rank, _group, category=sort_category)

        result: dict[int, TupleArrays] = {r: _empty_tuples(dtype) for r in owned}
        with perf_phase("comm"):
            if overlapped:
                sendbufs = {}
                for rank in owned:
                    data, offsets = grouped[rank]
                    row = grid.row_of(rank)
                    outgoing = {}
                    for dest_col in range(q):
                        chunk = _slice_bucket(data, offsets, dest_col)
                        if chunk[0].size:
                            outgoing[grid.rank_of(row, dest_col)] = chunk
                    sendbufs[rank] = outgoing
                recv = _exchange_chunks(comm, sendbufs, category=comm_category)
                for rank in owned:
                    chunks = [
                        payload
                        for _src, payload in sorted(recv.get(rank, {}).items())
                    ]
                    result[rank] = _concat_inbox(chunks, dtype)
            else:
                for row in range(q):
                    row_ranks = grid.row_group(row)
                    sendbufs = {}
                    for rank in comm.owned_ranks(row_ranks):
                        data, offsets = grouped[rank]
                        outgoing = {}
                        for dest_col in range(q):
                            chunk = _slice_bucket(data, offsets, dest_col)
                            if chunk[0].size:
                                outgoing[grid.rank_of(row, dest_col)] = chunk
                        sendbufs[rank] = outgoing
                    recv = comm.alltoallv(
                        sendbufs, group=row_ranks, category=comm_category
                    )
                    for rank in comm.owned_ranks(row_ranks):
                        chunks = [
                            payload
                            for _src, payload in sorted(recv.get(rank, {}).items())
                        ]
                        result[rank] = _concat_inbox(chunks, dtype)

    return result


def redistribute_tuples_single_phase(
    comm: Communicator,
    grid: ProcessGrid,
    dist: BlockDistribution,
    tuples_per_rank: Mapping[int, TupleArrays],
    *,
    value_dtype=np.float64,
    sort_mode: str = "comparison",
    sort_category: str = StatCategory.REDIST_SORT,
    comm_category: str = StatCategory.REDIST_COMM,
) -> dict[int, TupleArrays]:
    """Single-phase redistribution: one global ``ALLTOALL`` over all ranks.

    This is the strategy the paper attributes to CombBLAS ("a comparison
    sort and a global ALLTOALL"); it is used by the competitor backends and
    by the redistribution ablation benchmark.
    """
    dtype = np.dtype(value_dtype)
    p = grid.n_ranks
    owned = comm.owned_ranks(grid.all_ranks())
    with perf_phase("redistribute_single_phase"):
        sendbufs: dict[int, dict[int, TupleArrays]] = {}
        with perf_phase("sort"):
            for rank in owned:
                rows, cols, vals = _as_tuple_arrays(tuples_per_rank.get(rank), dtype)

                def _group(rows=rows, cols=cols, vals=vals):
                    owners = dist.owner_of(rows, cols) if rows.size else rows
                    return group_by_buckets(rows, cols, vals, owners, p, mode=sort_mode)

                data, offsets = comm.run_local(rank, _group, category=sort_category)
                outgoing: dict[int, TupleArrays] = {}
                for dest in range(p):
                    chunk = _slice_bucket(data, offsets, dest)
                    if chunk[0].size:
                        outgoing[dest] = chunk
                sendbufs[rank] = outgoing

        with perf_phase("comm"):
            recv = comm.alltoallv(sendbufs, group=grid.all_ranks(), category=comm_category)
        result: dict[int, TupleArrays] = {}
        for rank in owned:
            chunks = [payload for _src, payload in sorted(recv.get(rank, {}).items())]
            result[rank] = _concat_inbox(chunks, dtype)
    return result
