"""Faithful (de)serialisation of per-process sparse blocks.

The checkpoint subsystem (:mod:`repro.scenarios.checkpoint`) must restore a
world so exactly that continuing a trace after a crash is *byte-identical*
to never having crashed.  That rules out round-tripping blocks through a
canonical form: a :class:`~repro.sparse.dhb.DHBMatrix` keeps its entries in
adjacency-array order (deletions swap with the last entry), and that order
is observable downstream, so the codec preserves it — together with per-row
capacity and ``grow_count`` so memory-management accounting continues from
the same state.

Every encoded block is a self-describing ``dict`` of plain numpy arrays and
scalars (safe to ship through ``np.savez`` or any communicator):

``{"layout": <coo|csr|dcsr|dhb>, "shape": (n, m), "semiring": <name>, ...}``

plus the layout-specific arrays.  Bloom filter matrices (the incremental
state ``F`` of the general dynamic-SpGEMM algorithm) get their own pair of
helpers; their ``(row, col) -> bits`` mapping is encoded in insertion order
so the rebuilt dict iterates identically.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.semirings import Semiring, get_semiring
from repro.sparse import (
    BloomFilterMatrix,
    COOMatrix,
    CSRMatrix,
    DCSRMatrix,
    DHBMatrix,
)
from repro.sparse.dhb import DHBRow

__all__ = [
    "BlockCodecError",
    "encode_block",
    "decode_block",
    "encode_bloom",
    "decode_bloom",
]


class BlockCodecError(ValueError):
    """An encoded block is malformed or names an unknown layout."""


def _base(layout: str, shape: tuple[int, int], semiring: Semiring) -> dict[str, Any]:
    return {
        "layout": layout,
        "shape": (int(shape[0]), int(shape[1])),
        "semiring": semiring.name,
    }


def encode_block(block: Any) -> dict[str, Any]:
    """Encode a sparse block into a self-describing dict of arrays.

    Supports all four layouts (COO, CSR, DCSR, DHB).  The encoding is
    *faithful*, not canonical: DHB rows keep their adjacency order, row
    insertion order, capacities and grow counts, so a decoded matrix is
    indistinguishable from the original under any sequence of further
    updates and accounting queries.
    """
    if isinstance(block, COOMatrix):
        out = _base("coo", block.shape, block.semiring)
        out["rows"] = np.ascontiguousarray(block.rows)
        out["cols"] = np.ascontiguousarray(block.cols)
        out["values"] = np.ascontiguousarray(block.values)
        return out
    if isinstance(block, CSRMatrix):
        out = _base("csr", block.shape, block.semiring)
        out["indptr"] = np.ascontiguousarray(block.indptr)
        out["indices"] = np.ascontiguousarray(block.indices)
        out["values"] = np.ascontiguousarray(block.values)
        return out
    if isinstance(block, DCSRMatrix):
        out = _base("dcsr", block.shape, block.semiring)
        out["nz_rows"] = np.ascontiguousarray(block.nz_rows)
        out["indptr"] = np.ascontiguousarray(block.indptr)
        out["indices"] = np.ascontiguousarray(block.indices)
        out["values"] = np.ascontiguousarray(block.values)
        return out
    if isinstance(block, DHBMatrix):
        return _encode_dhb(block)
    raise BlockCodecError(f"cannot encode block of type {type(block).__name__}")


def _encode_dhb(block: DHBMatrix) -> dict[str, Any]:
    row_ids: list[int] = []
    sizes: list[int] = []
    capacities: list[int] = []
    grow_counts: list[int] = []
    col_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray] = []
    for row_id, row in block._rows.items():
        row_ids.append(int(row_id))
        sizes.append(int(row.size))
        capacities.append(row.capacity())
        grow_counts.append(int(row.grow_count))
        col_chunks.append(row.cols[: row.size])
        val_chunks.append(row.vals[: row.size])
    dtype = block.semiring.dtype
    out = _base("dhb", block.shape, block.semiring)
    out["row_ids"] = np.asarray(row_ids, dtype=np.int64)
    out["sizes"] = np.asarray(sizes, dtype=np.int64)
    out["capacities"] = np.asarray(capacities, dtype=np.int64)
    out["grow_counts"] = np.asarray(grow_counts, dtype=np.int64)
    out["cols"] = (
        np.concatenate(col_chunks) if col_chunks else np.empty(0, dtype=np.int64)
    )
    out["values"] = (
        np.concatenate(val_chunks) if val_chunks else np.empty(0, dtype=dtype)
    )
    return out


def decode_block(data: dict[str, Any]) -> Any:
    """Rebuild a sparse block from its :func:`encode_block` form."""
    try:
        layout = str(data["layout"])
        shape = (int(data["shape"][0]), int(data["shape"][1]))
        semiring = get_semiring(str(data["semiring"]))
    except (KeyError, IndexError, TypeError) as exc:
        raise BlockCodecError(f"malformed encoded block: {exc}") from exc
    if layout == "coo":
        return COOMatrix(
            shape, data["rows"], data["cols"], data["values"], semiring=semiring
        )
    if layout == "csr":
        return CSRMatrix(
            shape, data["indptr"], data["indices"], data["values"], semiring=semiring
        )
    if layout == "dcsr":
        return DCSRMatrix(
            shape,
            data["nz_rows"],
            data["indptr"],
            data["indices"],
            data["values"],
            semiring=semiring,
        )
    if layout == "dhb":
        return _decode_dhb(data, shape, semiring)
    raise BlockCodecError(f"unknown block layout {layout!r}")


def _decode_dhb(
    data: dict[str, Any], shape: tuple[int, int], semiring: Semiring
) -> DHBMatrix:
    out = DHBMatrix(shape, semiring=semiring)
    cols = np.asarray(data["cols"], dtype=np.int64)
    values = semiring.coerce(data["values"])
    offset = 0
    nnz = 0
    for row_id, size, capacity, grow_count in zip(
        np.asarray(data["row_ids"], dtype=np.int64),
        np.asarray(data["sizes"], dtype=np.int64),
        np.asarray(data["capacities"], dtype=np.int64),
        np.asarray(data["grow_counts"], dtype=np.int64),
    ):
        size = int(size)
        row = DHBRow(semiring.dtype, capacity=int(capacity))
        row.cols[:size] = cols[offset : offset + size]
        row.vals[:size] = values[offset : offset + size]
        row.size = size
        row.index = None
        row.grow_count = int(grow_count)
        out._rows[int(row_id)] = row
        offset += size
        nnz += size
    out._nnz = nnz
    return out


def encode_bloom(matrix: BloomFilterMatrix) -> dict[str, Any]:
    """Encode a bloom-filter matrix, preserving entry insertion order."""
    n_entries = len(matrix._bits)
    rows = np.empty(n_entries, dtype=np.int64)
    cols = np.empty(n_entries, dtype=np.int64)
    bits = np.empty(n_entries, dtype=np.uint64)
    for k, ((i, j), b) in enumerate(matrix._bits.items()):
        rows[k] = i
        cols[k] = j
        bits[k] = b
    return {
        "layout": "bloom",
        "shape": (int(matrix.shape[0]), int(matrix.shape[1])),
        "rows": rows,
        "cols": cols,
        "bits": bits,
    }


def decode_bloom(data: dict[str, Any]) -> BloomFilterMatrix:
    """Rebuild a bloom-filter matrix from its :func:`encode_bloom` form."""
    if data.get("layout") != "bloom":
        raise BlockCodecError(
            f"expected a bloom encoding, got layout {data.get('layout')!r}"
        )
    shape = (int(data["shape"][0]), int(data["shape"][1]))
    return BloomFilterMatrix.from_arrays(
        shape, data["rows"], data["cols"], data["bits"]
    )
