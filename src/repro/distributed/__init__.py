"""Distributed (2D block) sparse matrices on the simulated MPI runtime.

This package implements Section IV of the paper:

* :mod:`repro.distributed.distribution` — the 2D block distribution over a
  square process grid and the random index permutation used for load
  balancing.
* :mod:`repro.distributed.redistribution` — routing of update tuples to the
  owning rank: the paper's two-phase (rows of the grid, then columns)
  counting-sort + ``ALLTOALL`` scheme, plus the single-phase global
  ``ALLTOALL`` variant used by the competitors and by the ablation study.
* :mod:`repro.distributed.dist_matrix` — :class:`DynamicDistMatrix` (DHB
  blocks, in-place updates) and :class:`StaticDistMatrix` (CSR/DCSR blocks).
* :mod:`repro.distributed.updates` — batch-update representation and the
  construction of distributed (hypersparse, DCSR) update matrices.
* :mod:`repro.distributed.serialization` — faithful block codecs used by
  the checkpoint/restore subsystem (adjacency order, capacities and bloom
  insertion order all survive the round trip).
"""

from repro.distributed.distribution import BlockDistribution, IndexPermutation
from repro.distributed.redistribution import (
    group_by_buckets,
    redistribute_tuples,
    redistribute_tuples_single_phase,
)
from repro.distributed.dist_matrix import (
    DistMatrixBase,
    DynamicDistMatrix,
    StaticDistMatrix,
)
from repro.distributed.updates import (
    UpdateBatch,
    build_update_matrix,
    partition_tuples_round_robin,
)
from repro.distributed.serialization import (
    BlockCodecError,
    decode_block,
    decode_bloom,
    encode_block,
    encode_bloom,
)

__all__ = [
    "BlockDistribution",
    "IndexPermutation",
    "group_by_buckets",
    "redistribute_tuples",
    "redistribute_tuples_single_phase",
    "DistMatrixBase",
    "DynamicDistMatrix",
    "StaticDistMatrix",
    "UpdateBatch",
    "build_update_matrix",
    "partition_tuples_round_robin",
    "BlockCodecError",
    "encode_block",
    "decode_block",
    "encode_bloom",
    "decode_bloom",
]
