"""Online repartitioning: nnz-imbalance diagnostics and block migration.

Skewed update streams (the bursty R-MAT scenarios) concentrate nnz in a
few blocks over time, so a placement that was balanced at construction
drifts: a few processes carry most of the data while others idle.  This
module watches the per-process nnz loads between batches and, when the
``max/mean`` imbalance exceeds the armed ``REPRO_REPARTITION`` threshold
(see :func:`repro.runtime.partitioner.repartition_threshold`), computes a
fresh nnz-aware placement and migrates block ownership through
:meth:`~repro.runtime.mpi_backend.MPIBackend.migrate_ownership` — the
blocks travel as intact pickled objects over the same bucketed all-to-all
transport the two-phase redistribution uses, charged as redistribution
traffic, so scenario results stay byte-identical across a migration.
"""

from __future__ import annotations

from typing import Sequence

from repro.perf.recorder import perf_count
from repro.runtime.grid import ProcessGrid
from repro.runtime.partitioner import NnzAwarePartitioner

__all__ = ["process_nnz_loads", "nnz_imbalance", "maybe_repartition"]


def process_nnz_loads(comm, matrices: Sequence) -> tuple[dict[int, float], dict[int, float]]:
    """Current ``(rank -> nnz, process -> nnz)`` loads, globally agreed.

    Per-rank nnz comes from each matrix's host-merged ``block_nnz()`` (so
    every process sees the same view); per-process loads group the rank
    weights by the communicator's current placement.
    """
    rank_nnz: dict[int, float] = {}
    for matrix in matrices:
        for rank, nnz in matrix.block_nnz().items():
            rank_nnz[rank] = rank_nnz.get(rank, 0.0) + float(nnz)
    active = min(comm.world_size, comm.n_ranks)
    loads = {q: 0.0 for q in range(active)}
    for rank, nnz in rank_nnz.items():
        owner = comm.owner_of(rank)
        loads[owner] = loads.get(owner, 0.0) + nnz
    return rank_nnz, loads


def nnz_imbalance(loads: dict[int, float]) -> float:
    """``max/mean`` of the per-process loads (1.0 when empty or uniform)."""
    if not loads:
        return 1.0
    mean = sum(loads.values()) / len(loads)
    if mean <= 0.0:
        return 1.0
    return max(loads.values()) / mean


def maybe_repartition(
    comm,
    grid: ProcessGrid,
    matrices: Sequence,
    *,
    threshold: float,
) -> bool:
    """Migrate block ownership if the nnz imbalance exceeds ``threshold``.

    Returns ``True`` when a migration happened.  No-op (``False``) when the
    communicator has no placement surface (the simulator), when the
    imbalance is within the threshold, or when the nnz-aware placement
    would not actually lower the maximum per-process load.  Every process
    reaches the identical decision from host-merged loads — the migration
    is a collective, so agreement is a correctness requirement.
    """
    if not hasattr(comm, "migrate_ownership"):
        return False
    rank_nnz, loads = process_nnz_loads(comm, matrices)
    ratio = nnz_imbalance(loads)
    perf_count("partition.imbalance_checks")
    if ratio <= threshold:
        return False
    new_placement = NnzAwarePartitioner().placement(
        comm.n_ranks, comm.world_size, grid=grid, weights=rank_nnz
    )
    if new_placement == comm.placement():
        return False
    new_loads: dict[int, float] = {}
    for rank, nnz in rank_nnz.items():
        owner = new_placement[rank]
        new_loads[owner] = new_loads.get(owner, 0.0) + nnz
    if max(new_loads.values(), default=0.0) >= max(loads.values(), default=0.0):
        return False
    comm.migrate_ownership(new_placement, [matrix.blocks for matrix in matrices])
    perf_count("partition.repartitions")
    return True
