"""2D block distribution of a matrix over a square process grid.

Each rank ``(r, c)`` of the ``√p × √p`` grid owns the block of rows
``[row_offsets[r], row_offsets[r+1])`` × columns
``[col_offsets[c], col_offsets[c+1])``.  The paper (like CombBLAS) relies on
a *random permutation* of the row/column indices before constructing the
matrix so that skewed real-world degree distributions do not overload a few
blocks; :class:`IndexPermutation` provides that permutation and its inverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.grid import ProcessGrid

__all__ = ["BlockDistribution", "IndexPermutation"]


def _even_offsets(n: int, parts: int) -> np.ndarray:
    """Offsets of an as-even-as-possible split of ``n`` items into ``parts``."""
    base = n // parts
    rem = n % parts
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:rem] += 1
    offsets = np.zeros(parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


@dataclass(frozen=True)
class BlockDistribution:
    """Mapping of global matrix coordinates to grid blocks and back."""

    n_rows: int
    n_cols: int
    grid: ProcessGrid
    row_offsets: np.ndarray = field(init=False, repr=False)
    col_offsets: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        q = self.grid.q
        object.__setattr__(self, "row_offsets", _even_offsets(self.n_rows, q))
        object.__setattr__(self, "col_offsets", _even_offsets(self.n_cols, q))

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def block_shape(self, block_row: int, block_col: int) -> tuple[int, int]:
        """Shape of the block owned by grid position ``(block_row, block_col)``."""
        q = self.grid.q
        if not (0 <= block_row < q and 0 <= block_col < q):
            raise IndexError(f"block ({block_row}, {block_col}) outside {q}x{q} grid")
        return (
            int(self.row_offsets[block_row + 1] - self.row_offsets[block_row]),
            int(self.col_offsets[block_col + 1] - self.col_offsets[block_col]),
        )

    def block_shape_of_rank(self, rank: int) -> tuple[int, int]:
        br, bc = self.grid.coords_of(rank)
        return self.block_shape(br, bc)

    # ------------------------------------------------------------------
    # coordinate mapping (vectorised)
    # ------------------------------------------------------------------
    def block_row_of(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise IndexError("row index outside the distributed matrix")
        return np.searchsorted(self.row_offsets, rows, side="right") - 1

    def block_col_of(self, cols: np.ndarray) -> np.ndarray:
        cols = np.asarray(cols, dtype=np.int64)
        if cols.size and (cols.min() < 0 or cols.max() >= self.n_cols):
            raise IndexError("column index outside the distributed matrix")
        return np.searchsorted(self.col_offsets, cols, side="right") - 1

    def owner_of(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Owning rank of each ``(row, col)`` coordinate (vectorised)."""
        br = self.block_row_of(rows)
        bc = self.block_col_of(cols)
        return (br * self.grid.q + bc).astype(np.int64)

    def to_local(
        self, rank: int, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convert global coordinates owned by ``rank`` to block-local ones."""
        br, bc = self.grid.coords_of(rank)
        rows = np.asarray(rows, dtype=np.int64) - self.row_offsets[br]
        cols = np.asarray(cols, dtype=np.int64) - self.col_offsets[bc]
        h, w = self.block_shape(br, bc)
        if rows.size and (rows.min() < 0 or rows.max() >= h or cols.min() < 0 or cols.max() >= w):
            raise IndexError(f"coordinate not owned by rank {rank}")
        return rows, cols

    def to_global(
        self, rank: int, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convert block-local coordinates of ``rank`` to global ones."""
        br, bc = self.grid.coords_of(rank)
        rows = np.asarray(rows, dtype=np.int64) + self.row_offsets[br]
        cols = np.asarray(cols, dtype=np.int64) + self.col_offsets[bc]
        return rows, cols

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BlockDistribution({self.n_rows}x{self.n_cols} over "
            f"{self.grid.q}x{self.grid.q} grid)"
        )


class IndexPermutation:
    """A random permutation of ``[0, n)`` with its inverse.

    Applied to row/column indices *before* constructing distributed
    matrices so that skewed inputs are evenly spread across the process
    grid (Section VII-A: "we randomly permute input indices before
    constructing each matrix").  The same permutation must be used for every
    matrix participating in a multiplication, which is why it is a
    standalone object rather than hidden inside the matrix constructors.
    """

    def __init__(self, n: int, seed: int | None = 0) -> None:
        if n < 0:
            raise ValueError("permutation size must be non-negative")
        self.n = int(n)
        rng = np.random.default_rng(seed)
        self.perm = rng.permutation(self.n).astype(np.int64)
        self.inverse = np.empty(self.n, dtype=np.int64)
        self.inverse[self.perm] = np.arange(self.n, dtype=np.int64)

    @classmethod
    def identity(cls, n: int) -> "IndexPermutation":
        out = cls.__new__(cls)
        out.n = int(n)
        out.perm = np.arange(n, dtype=np.int64)
        out.inverse = np.arange(n, dtype=np.int64)
        return out

    def apply(self, indices: np.ndarray) -> np.ndarray:
        """Map original indices to permuted indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.n):
            raise IndexError("index outside permutation domain")
        return self.perm[indices]

    def undo(self, indices: np.ndarray) -> np.ndarray:
        """Map permuted indices back to the original ones."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.n):
            raise IndexError("index outside permutation domain")
        return self.inverse[indices]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IndexPermutation(n={self.n})"
