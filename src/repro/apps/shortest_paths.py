"""Dynamic multi-source shortest paths over the ``(min, +)`` semiring.

Multi-source shortest-path distance matrices can be computed algebraically:
with ``D_h = S ⊗ A^h`` in the tropical semiring (``S`` selects the source
rows), ``D_h[s, v]`` is the length of the shortest path from source ``s``
to ``v`` using at most ``h + 1`` hops.  The paper uses exactly this
``(min, +)`` setting to motivate the *general* update case: inserting a
lighter edge is an algebraic update (``min`` absorbs it), but increasing a
weight or deleting an edge is not, so the Bloom-filter-driven masked
recomputation of Algorithm 2 is required.

:class:`DynamicMultiSourceShortestPaths` maintains the h-hop distance
product ``S·A`` (one hop beyond the sources by default) under edge
insertions, weight changes and deletions, and exposes a full shortest-path
solve (repeated min-plus products) for the example scripts.
"""

from __future__ import annotations

import numpy as np

from repro.runtime import Communicator, ProcessGrid
from repro.semirings import MIN_PLUS
from repro.sparse import CSRMatrix, COOMatrix, spgemm_local
from repro.distributed import DynamicDistMatrix, UpdateBatch
from repro.core import DynamicProduct

__all__ = ["DynamicMultiSourceShortestPaths", "sssp_reference"]


def sssp_reference(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    sources: np.ndarray,
) -> np.ndarray:
    """Reference multi-source shortest paths via NetworkX (Dijkstra).

    Returns a dense ``len(sources) × n`` distance matrix with ``inf`` for
    unreachable vertices.
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(int(n)))
    graph.add_weighted_edges_from(
        zip(rows.tolist(), cols.tolist(), weights.tolist())
    )
    out = np.full((len(sources), n), np.inf)
    for si, s in enumerate(sources):
        lengths = nx.single_source_dijkstra_path_length(graph, int(s))
        for v, d in lengths.items():
            out[si, v] = d
    return out


class DynamicMultiSourceShortestPaths:
    """Maintains ``S·A`` (1-hop bounded distances) under general updates."""

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        n: int,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray,
        sources: np.ndarray,
        *,
        seed: int = 0,
    ) -> None:
        self.comm = comm
        self.grid = grid
        self.n = int(n)
        self.sources = np.asarray(sources, dtype=np.int64)
        n_src = self.sources.size

        # Selector matrix S: one row per source, s[k, sources[k]] = 0
        # (the multiplicative identity of (min, +)).
        sel_batch = UpdateBatch.from_global(
            (n_src, n),
            np.arange(n_src, dtype=np.int64),
            self.sources,
            np.zeros(n_src),
            grid.n_ranks,
            semiring=MIN_PLUS,
            seed=seed,
        )
        selector = DynamicDistMatrix.from_tuples(
            comm, grid, (n_src, n), sel_batch.tuples_per_rank, MIN_PLUS, combine="last"
        )
        adj_batch = UpdateBatch.from_global(
            (n, n), rows, cols, weights, grid.n_ranks, semiring=MIN_PLUS, seed=seed + 1
        )
        adjacency = DynamicDistMatrix.from_tuples(
            comm, grid, (n, n), adj_batch.tuples_per_rank, MIN_PLUS, combine="last"
        )
        # General mode: weight increases and deletions are not expressible
        # as (min, +) additions.
        self.product = DynamicProduct(
            comm, grid, selector, adjacency, semiring=MIN_PLUS, mode="general"
        )

    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> DynamicDistMatrix:
        return self.product.b

    def one_hop_distances(self) -> COOMatrix:
        """The maintained ``S·A`` product (1-hop bounded distances)."""
        return self.product.result_coo()

    # ------------------------------------------------------------------
    def update_edges(
        self, rows: np.ndarray, cols: np.ndarray, weights: np.ndarray, *, seed: int = 0
    ) -> None:
        """Insert edges or overwrite edge weights (general update)."""
        batch = UpdateBatch.from_global(
            (self.n, self.n),
            rows,
            cols,
            weights,
            self.grid.n_ranks,
            kind="update",
            semiring=MIN_PLUS,
            seed=seed,
        )
        self.product.apply_updates(b_batch=batch)

    def delete_edges(self, rows: np.ndarray, cols: np.ndarray, *, seed: int = 0) -> None:
        """Delete edges (general update; triggers masked recomputation)."""
        batch = UpdateBatch.from_global(
            (self.n, self.n),
            rows,
            cols,
            np.zeros(len(rows)),
            self.grid.n_ranks,
            kind="delete",
            semiring=MIN_PLUS,
            seed=seed,
        )
        self.product.apply_updates(b_batch=batch)

    # ------------------------------------------------------------------
    def full_distances(self, *, max_hops: int | None = None) -> np.ndarray:
        """Full shortest-path distances from the sources (dense).

        Iterates ``D ← min(D, D·A)`` until convergence (or ``max_hops``),
        i.e. an algebraic Bellman-Ford sweep over the current adjacency
        matrix.  Used by the examples; runs sequentially on gathered data.
        """
        adjacency = CSRMatrix.from_coo(
            self.adjacency.to_coo_global(), dedup=False
        )
        n_src = self.sources.size
        dist = np.full((n_src, self.n), np.inf)
        dist[np.arange(n_src), self.sources] = 0.0
        max_hops = max_hops if max_hops is not None else self.n
        frontier = CSRMatrix.from_dense(dist, MIN_PLUS)
        for _ in range(max_hops):
            product, _ = spgemm_local(frontier, adjacency, MIN_PLUS)
            new_dist = np.minimum(dist, product.to_dense())
            if np.array_equal(
                np.nan_to_num(new_dist, posinf=1e300),
                np.nan_to_num(dist, posinf=1e300),
            ):
                break
            dist = new_dist
            frontier = CSRMatrix.from_dense(dist, MIN_PLUS)
        return dist

    def verify_one_hop(self) -> bool:
        """Check the maintained one-hop product against recomputation."""
        return self.product.check_consistency()
