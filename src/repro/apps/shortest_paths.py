"""Dynamic multi-source shortest paths over the ``(min, +)`` semiring.

Multi-source shortest-path distance matrices can be computed algebraically:
with ``D_h = S ⊗ A^h`` in the tropical semiring (``S`` selects the source
rows), ``D_h[s, v]`` is the length of the shortest path from source ``s``
to ``v`` using at most ``h + 1`` hops.  The paper uses exactly this
``(min, +)`` setting to motivate the *general* update case: inserting a
lighter edge is an algebraic update (``min`` absorbs it), but increasing a
weight or deleting an edge is not, so the Bloom-filter-driven masked
recomputation of Algorithm 2 is required.

:class:`DynamicMultiSourceShortestPaths` maintains the h-hop distance
product ``S·A`` (one hop beyond the sources by default) under edge
insertions, weight changes and deletions, and exposes a full shortest-path
solve (repeated min-plus products) for the example scripts.
"""

from __future__ import annotations

import numpy as np

from repro.perf import perf_count, perf_phase
from repro.runtime import Communicator, ProcessGrid
from repro.semirings import MIN_PLUS
from repro.sparse import CSRMatrix, COOMatrix, spgemm_local
from repro.distributed import DynamicDistMatrix, UpdateBatch
from repro.core import DynamicProduct

__all__ = [
    "DynamicMultiSourceShortestPaths",
    "sssp_reference",
    "sssp_minplus_reference",
    "distances_to_tuples",
]


def sssp_reference(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    sources: np.ndarray,
) -> np.ndarray:
    """Reference multi-source shortest paths via NetworkX (Dijkstra).

    Returns a dense ``len(sources) × n`` distance matrix with ``inf`` for
    unreachable vertices.
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(int(n)))
    graph.add_weighted_edges_from(
        zip(rows.tolist(), cols.tolist(), weights.tolist())
    )
    out = np.full((len(sources), n), np.inf)
    for si, s in enumerate(sources):
        lengths = nx.single_source_dijkstra_path_length(graph, int(s))
        for v, d in lengths.items():
            out[si, v] = d
    return out


def sssp_minplus_reference(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    sources: np.ndarray,
    *,
    max_hops: int | None = None,
) -> np.ndarray:
    """Dense min-plus Bellman-Ford reference, bit-compatible with the app.

    Performs exactly the relaxation the distributed app performs —
    ``D ← min(D, D·A)`` with per-entry candidates ``D[s, k] + A[k, v]`` —
    on a dense adjacency matrix, so the resulting distances are
    byte-identical to :meth:`DynamicMultiSourceShortestPaths.full_distances`
    (the same IEEE additions, and ``min`` is exact).  Scenario generators
    use this to bake expected distances into
    :class:`~repro.scenarios.model.ShortestPathCheck` steps without
    replaying the scenario.
    """
    n = int(n)
    adjacency = np.full((n, n), np.inf)
    # last write wins, matching the MERGE semantics of repeated updates
    adjacency[np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)] = (
        np.asarray(weights, dtype=np.float64)
    )
    sources = np.asarray(sources, dtype=np.int64)
    dist = np.full((sources.size, n), np.inf)
    dist[np.arange(sources.size), sources] = 0.0
    hops = max_hops if max_hops is not None else n
    for _ in range(hops):
        with np.errstate(invalid="ignore"):
            candidates = (dist[:, :, None] + adjacency[None, :, :]).min(axis=1)
        new_dist = np.minimum(dist, candidates)
        if np.array_equal(
            np.nan_to_num(new_dist, posinf=1e300), np.nan_to_num(dist, posinf=1e300)
        ):
            break
        dist = new_dist
    return dist


def distances_to_tuples(
    distances: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical sparse form of a dense distance matrix.

    Returns ``(source_index, vertex, distance)`` arrays for the finite
    entries, in row-major (source, vertex) order — the representation the
    scenario engine records and the differential harness compares
    byte-for-byte.
    """
    src, vertex = np.nonzero(np.isfinite(distances))
    return (
        src.astype(np.int64),
        vertex.astype(np.int64),
        distances[src, vertex].astype(np.float64),
    )


class DynamicMultiSourceShortestPaths:
    """Maintains ``S·A`` (1-hop bounded distances) under general updates."""

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        n: int,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray,
        sources: np.ndarray,
        *,
        seed: int = 0,
    ) -> None:
        self.comm = comm
        self.grid = grid
        self.n = int(n)
        self.sources = np.asarray(sources, dtype=np.int64)
        n_src = self.sources.size

        # Selector matrix S: one row per source, s[k, sources[k]] = 0
        # (the multiplicative identity of (min, +)).
        sel_batch = UpdateBatch.from_global(
            (n_src, n),
            np.arange(n_src, dtype=np.int64),
            self.sources,
            np.zeros(n_src),
            grid.n_ranks,
            semiring=MIN_PLUS,
            seed=seed,
        )
        selector = DynamicDistMatrix.from_tuples(
            comm, grid, (n_src, n), sel_batch.tuples_per_rank, MIN_PLUS, combine="last"
        )
        adj_batch = UpdateBatch.from_global(
            (n, n), rows, cols, weights, grid.n_ranks, semiring=MIN_PLUS, seed=seed + 1
        )
        adjacency = DynamicDistMatrix.from_tuples(
            comm, grid, (n, n), adj_batch.tuples_per_rank, MIN_PLUS, combine="last"
        )
        # General mode: weight increases and deletions are not expressible
        # as (min, +) additions.
        self.product = DynamicProduct(
            comm, grid, selector, adjacency, semiring=MIN_PLUS, mode="general"
        )

    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> DynamicDistMatrix:
        """The maintained weighted adjacency matrix (right operand of ``S·A``)."""
        return self.product.b

    def one_hop_distances(self) -> COOMatrix:
        """The maintained ``S·A`` product (1-hop bounded distances)."""
        return self.product.result_coo()

    # ------------------------------------------------------------------
    def update_edges(
        self, rows: np.ndarray, cols: np.ndarray, weights: np.ndarray, *, seed: int = 0
    ) -> int:
        """Insert edges or overwrite edge weights (general update).

        Duplicate coordinates within one batch resolve last-write-wins.
        Returns the number of maintained-product entries recomputed.
        """
        with perf_phase("app_sssp_update"):
            perf_count("app_sssp_edges_updated", len(rows))
            batch = UpdateBatch.from_global(
                (self.n, self.n),
                rows,
                cols,
                weights,
                self.grid.n_ranks,
                kind="update",
                semiring=MIN_PLUS,
                seed=seed,
            )
            return int(self.product.apply_updates(b_batch=batch).touched_outputs)

    def delete_edges(self, rows: np.ndarray, cols: np.ndarray, *, seed: int = 0) -> int:
        """Delete edges (general update; triggers masked recomputation).

        Deleting a coordinate that is not present is a structural no-op.
        Returns the number of maintained-product entries recomputed.
        """
        with perf_phase("app_sssp_delete"):
            perf_count("app_sssp_edges_deleted", len(rows))
            batch = UpdateBatch.from_global(
                (self.n, self.n),
                rows,
                cols,
                np.zeros(len(rows)),
                self.grid.n_ranks,
                kind="delete",
                semiring=MIN_PLUS,
                seed=seed,
            )
            return int(self.product.apply_updates(b_batch=batch).touched_outputs)

    # ------------------------------------------------------------------
    def full_distances(self, *, max_hops: int | None = None) -> np.ndarray:
        """Full shortest-path distances from the sources (dense).

        Iterates ``D ← min(D, D·A)`` until convergence (or ``max_hops``),
        i.e. an algebraic Bellman-Ford sweep over the current adjacency
        matrix.  Runs sequentially on the gathered adjacency (assembled
        through the uncharged control plane), so every process computes the
        identical dense matrix.
        """
        adjacency = CSRMatrix.from_coo(
            self.adjacency.to_coo_global(), dedup=False
        )
        n_src = self.sources.size
        dist = np.full((n_src, self.n), np.inf)
        dist[np.arange(n_src), self.sources] = 0.0
        max_hops = max_hops if max_hops is not None else self.n
        frontier = CSRMatrix.from_dense(dist, MIN_PLUS)
        for _ in range(max_hops):
            product, _ = spgemm_local(frontier, adjacency, MIN_PLUS)
            new_dist = np.minimum(dist, product.to_dense())
            if np.array_equal(
                np.nan_to_num(new_dist, posinf=1e300),
                np.nan_to_num(dist, posinf=1e300),
            ):
                break
            dist = new_dist
            frontier = CSRMatrix.from_dense(dist, MIN_PLUS)
        return dist

    def distance_tuples(
        self, *, max_hops: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical finite-distance tuples ``(source_index, vertex, distance)``.

        The sparse, byte-comparable form of :meth:`full_distances` — what
        :class:`~repro.scenarios.model.ShortestPathCheck` steps record and
        the differential harness compares across backends and world sizes.
        """
        with perf_phase("app_sssp_query"):
            perf_count("app_sssp_queries")
            return distances_to_tuples(self.full_distances(max_hops=max_hops))

    def verify_one_hop(self) -> bool:
        """Check the maintained one-hop product against recomputation."""
        return self.product.check_consistency()
