"""Algebraic graph applications built on the dynamic SpGEMM API.

The paper motivates dynamic SpGEMM with graph workloads whose inputs change
over time (Section I).  This package implements three such applications on
top of :class:`repro.core.DynamicProduct`:

* :mod:`repro.apps.triangle_counting` — triangle counting via the masked
  product ``(A·A) ∘ A``, maintained as edges are inserted.
* :mod:`repro.apps.shortest_paths` — multi-source shortest paths in the
  ``(min, +)`` semiring, maintained under edge insertions, weight changes
  and deletions (the general-update algorithm).
* :mod:`repro.apps.contraction` — graph contraction / coarsening expressed
  as ``Sᵀ·A·S`` with a cluster-membership matrix ``S``.

All three are wired into the scenario engine (see
:mod:`repro.scenarios`): the app-aware executor maintains the incremental
state across a scenario's update steps, and the query steps
(``TriangleCountCheck``, ``ShortestPathCheck``, ``ContractStep``) record
byte-comparable results.  Global float reductions go through
:func:`repro.apps.reductions.rank_ordered_sum` so query results are
byte-identical across backends and world sizes.
"""

from repro.apps.triangle_counting import DynamicTriangleCounter, count_triangles_reference
from repro.apps.shortest_paths import (
    DynamicMultiSourceShortestPaths,
    distances_to_tuples,
    sssp_minplus_reference,
    sssp_reference,
)
from repro.apps.contraction import contract_graph, contraction_matrix
from repro.apps.reductions import rank_ordered_sum

__all__ = [
    "DynamicTriangleCounter",
    "count_triangles_reference",
    "DynamicMultiSourceShortestPaths",
    "sssp_reference",
    "sssp_minplus_reference",
    "distances_to_tuples",
    "contract_graph",
    "contraction_matrix",
    "rank_ordered_sum",
]
