"""Dynamic triangle counting via SpGEMM.

The algebraic formulation (Azad et al., and the GraphBLAS triangle-counting
benchmark) counts triangles of an undirected graph with adjacency matrix
``A`` as ``sum(A² ∘ A) / 6`` where ``∘`` is the element-wise (Hadamard)
product.  Because ``A²`` is maintained incrementally by
:class:`repro.core.DynamicProduct`, the triangle count can be refreshed
after every batch of edge insertions without recomputing the full product —
exactly the kind of workload the paper's introduction motivates.

The count itself is computed *in place*: ``A²`` and ``A`` share one block
distribution, so each rank intersects its two local blocks and contributes
one partial sum, and the partials are combined in canonical rank order
(:func:`repro.apps.reductions.rank_ordered_sum`) so the query is
byte-identical across backends and world sizes — no global gather of either
matrix is required.
"""

from __future__ import annotations

import numpy as np

from repro.perf import perf_count, perf_phase
from repro.runtime import Communicator, ProcessGrid
from repro.runtime.stats import StatCategory
from repro.semirings import PLUS_TIMES
from repro.distributed import DynamicDistMatrix, UpdateBatch
from repro.core import DynamicProduct
from repro.apps.reductions import rank_ordered_sum

__all__ = ["DynamicTriangleCounter", "count_triangles_reference"]


def count_triangles_reference(n: int, rows: np.ndarray, cols: np.ndarray) -> int:
    """Reference triangle count (dense/NetworkX-free, for verification)."""
    import scipy.sparse as sp

    adj = sp.coo_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n, n)
    ).tocsr()
    adj = ((adj + adj.T) > 0).astype(np.float64)
    adj.setdiag(0)
    adj.eliminate_zeros()
    a2 = adj @ adj
    closed = a2.multiply(adj)
    return int(round(closed.sum() / 6.0))


def _block_closed_weight(dist, rank: int, a2_block, adj_block) -> float:
    """Rank-local ``sum(A² ∘ A)`` restricted to off-diagonal entries.

    ``A²`` and ``A`` live on the same distribution, so the Hadamard mask is
    a purely local pattern intersection; the diagonal test must use global
    coordinates (a block's local diagonal is not the global one).
    """
    a2_coo = a2_block.to_coo()
    adj_coo = adj_block.to_coo()
    if a2_coo.nnz == 0 or adj_coo.nnz == 0:
        return 0.0
    m = dist.shape[1]
    grows, gcols = dist.to_global(rank, a2_coo.rows, a2_coo.cols)
    adj_rows, adj_cols = dist.to_global(rank, adj_coo.rows, adj_coo.cols)
    keys = grows * m + gcols
    adj_keys = adj_rows * m + adj_cols
    hit = np.isin(keys, adj_keys) & (grows != gcols)
    return float(np.sum(a2_coo.values[hit]))


class DynamicTriangleCounter:
    """Maintains the triangle count of an undirected graph under insertions."""

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        n: int,
        rows: np.ndarray,
        cols: np.ndarray,
        *,
        seed: int = 0,
    ) -> None:
        self.comm = comm
        self.grid = grid
        self.n = int(n)
        rows, cols = self._symmetrize(rows, cols)
        rows, cols = self._unique_edges(rows, cols)
        values = np.ones(rows.size, dtype=np.float64)
        batch = UpdateBatch.from_global(
            (n, n), rows, cols, values, grid.n_ranks, seed=seed
        )
        adj = DynamicDistMatrix.from_tuples(
            comm, grid, (n, n), batch.tuples_per_rank, PLUS_TIMES, combine="last"
        )
        # Both operands hold the adjacency matrix, but as *separate* copies:
        # Algorithm 1 needs the left operand to stay at its pre-update state
        # while the right operand is already updated.  The product is
        # maintained in algebraic mode because edge insertions are additive
        # in (+, ·) as long as every edge is inserted at most once.
        self.product = DynamicProduct(comm, grid, adj, adj.copy(), mode="algebraic")

    # ------------------------------------------------------------------
    @staticmethod
    def _symmetrize(rows: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
        r = np.concatenate([rows, cols])
        c = np.concatenate([cols, rows])
        return r, c

    def _unique_edges(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop duplicate directed pairs (first occurrence wins).

        A batch that names the same undirected edge twice must still insert
        each directed non-zero exactly once, or the additive (+, ·)
        maintenance of ``A²`` double-counts the edge.
        """
        if rows.size == 0:
            return rows, cols
        keys = rows * self.n + cols
        _, first = np.unique(keys, return_index=True)
        first.sort()
        return rows[first], cols[first]

    @property
    def adjacency(self) -> DynamicDistMatrix:
        """The maintained symmetric adjacency matrix (left operand of ``A²``)."""
        return self.product.a

    def _new_edges_only(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop edges already present (re-inserting would double-count)."""
        present = self.adjacency.contains_tuples(rows, cols)
        keep = ~present
        return rows[keep], cols[keep]

    def insert_edges(self, rows: np.ndarray, cols: np.ndarray, *, seed: int = 0) -> int:
        """Insert undirected edges and update the maintained ``A²``.

        Self-loops, duplicate edges within the batch and edges already
        present in the graph are all screened out; returns the number of new
        directed non-zeros actually inserted.
        """
        with perf_phase("app_triangle_insert"):
            rows, cols = self._symmetrize(rows, cols)
            rows, cols = self._unique_edges(rows, cols)
            if rows.size:
                rows, cols = self._new_edges_only(rows, cols)
            if rows.size == 0:
                return 0
            perf_count("app_triangle_edges_inserted", rows.size)
            values = np.ones(rows.size, dtype=np.float64)
            # The same batch updates both operands (they are the same matrix):
            # (A+Δ)² = A² + Δ·A' + A·Δ, which is exactly Algorithm 1 with
            # A* = B* = Δ.
            a_batch = UpdateBatch.from_global(
                (self.n, self.n), rows, cols, values, self.grid.n_ranks, seed=seed
            )
            b_batch = UpdateBatch.from_global(
                (self.n, self.n), rows, cols, values, self.grid.n_ranks, seed=seed
            )
            self.product.apply_updates(a_batch=a_batch, b_batch=b_batch)
            return int(rows.size)

    # ------------------------------------------------------------------
    def closed_wedge_weight(self) -> float:
        """``sum(A² ∘ A)`` over off-diagonal entries (6× the triangle count).

        Each rank intersects its local ``A²`` and ``A`` blocks (they share
        one distribution) and the per-rank partials are summed in canonical
        rank order, so the value is byte-identical on every backend and
        world size.
        """
        c = self.product.c
        adj = self.adjacency
        partials: dict[int, float] = {}
        for rank in c.owned_ranks():
            partials[rank] = self.comm.run_local(
                rank,
                _block_closed_weight,
                c.dist,
                rank,
                c.blocks[rank],
                adj.blocks[rank],
                category=StatCategory.LOCAL_COMPUTE,
            )
        return rank_ordered_sum(self.comm, partials)

    def triangle_count(self) -> int:
        """Current number of triangles: ``sum(A² ∘ A) / 6``."""
        with perf_phase("app_triangle_count"):
            perf_count("app_triangle_queries")
            return int(round(self.closed_wedge_weight() / 6.0))

    def verify(self) -> bool:
        """Check the maintained product against a fresh recomputation."""
        return self.product.check_consistency()
