"""Dynamic triangle counting via SpGEMM.

The algebraic formulation (Azad et al., and the GraphBLAS triangle-counting
benchmark) counts triangles of an undirected graph with adjacency matrix
``A`` as ``sum(A² ∘ A) / 6`` where ``∘`` is the element-wise (Hadamard)
product.  Because ``A²`` is maintained incrementally by
:class:`repro.core.DynamicProduct`, the triangle count can be refreshed
after every batch of edge insertions without recomputing the full product —
exactly the kind of workload the paper's introduction motivates.
"""

from __future__ import annotations

import numpy as np

from repro.runtime import Communicator, ProcessGrid
from repro.semirings import PLUS_TIMES
from repro.sparse import CSRMatrix
from repro.distributed import DynamicDistMatrix, UpdateBatch
from repro.core import DynamicProduct

__all__ = ["DynamicTriangleCounter", "count_triangles_reference"]


def count_triangles_reference(n: int, rows: np.ndarray, cols: np.ndarray) -> int:
    """Reference triangle count (dense/NetworkX-free, for verification)."""
    import scipy.sparse as sp

    adj = sp.coo_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n, n)
    ).tocsr()
    adj = ((adj + adj.T) > 0).astype(np.float64)
    adj.setdiag(0)
    adj.eliminate_zeros()
    a2 = adj @ adj
    closed = a2.multiply(adj)
    return int(round(closed.sum() / 6.0))


class DynamicTriangleCounter:
    """Maintains the triangle count of an undirected graph under insertions."""

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        n: int,
        rows: np.ndarray,
        cols: np.ndarray,
        *,
        seed: int = 0,
    ) -> None:
        self.comm = comm
        self.grid = grid
        self.n = int(n)
        rows, cols = self._symmetrize(rows, cols)
        values = np.ones(rows.size, dtype=np.float64)
        batch = UpdateBatch.from_global(
            (n, n), rows, cols, values, grid.n_ranks, seed=seed
        )
        adj = DynamicDistMatrix.from_tuples(
            comm, grid, (n, n), batch.tuples_per_rank, PLUS_TIMES, combine="last"
        )
        # Both operands hold the adjacency matrix, but as *separate* copies:
        # Algorithm 1 needs the left operand to stay at its pre-update state
        # while the right operand is already updated.  The product is
        # maintained in algebraic mode because edge insertions are additive
        # in (+, ·) as long as every edge is inserted at most once.
        self.product = DynamicProduct(comm, grid, adj, adj.copy(), mode="algebraic")

    # ------------------------------------------------------------------
    @staticmethod
    def _symmetrize(rows: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
        r = np.concatenate([rows, cols])
        c = np.concatenate([cols, rows])
        return r, c

    @property
    def adjacency(self) -> DynamicDistMatrix:
        return self.product.a

    def _new_edges_only(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop edges already present (re-inserting would double-count)."""
        adj = self.adjacency
        keep = [
            not adj.contains_edge(int(i), int(j)) if hasattr(adj, "contains_edge") else adj.get(int(i), int(j)) == 0.0
            for i, j in zip(rows, cols)
        ]
        keep = np.asarray(keep, dtype=bool)
        return rows[keep], cols[keep]

    def insert_edges(self, rows: np.ndarray, cols: np.ndarray, *, seed: int = 0) -> int:
        """Insert undirected edges and update the maintained ``A²``.

        Returns the number of new directed non-zeros actually inserted
        (already-present edges are skipped).
        """
        rows, cols = self._symmetrize(rows, cols)
        if rows.size == 0:
            return 0
        rows, cols = self._new_edges_only(rows, cols)
        if rows.size == 0:
            return 0
        values = np.ones(rows.size, dtype=np.float64)
        # The same batch updates both operands (they are the same matrix):
        # (A+Δ)² = A² + Δ·A' + A·Δ, which is exactly Algorithm 1 with
        # A* = B* = Δ.
        a_batch = UpdateBatch.from_global(
            (self.n, self.n), rows, cols, values, self.grid.n_ranks, seed=seed
        )
        b_batch = UpdateBatch.from_global(
            (self.n, self.n), rows, cols, values, self.grid.n_ranks, seed=seed
        )
        self.product.apply_updates(a_batch=a_batch, b_batch=b_batch)
        return int(rows.size)

    # ------------------------------------------------------------------
    def triangle_count(self) -> int:
        """Current number of triangles: ``sum(A² ∘ A) / 6``."""
        a2 = self.product.result_coo()
        adj = self.adjacency.to_coo_global()
        adj_keys = set(zip(adj.rows.tolist(), adj.cols.tolist()))
        total = 0.0
        for i, j, v in zip(a2.rows.tolist(), a2.cols.tolist(), a2.values.tolist()):
            if i != j and (i, j) in adj_keys:
                total += v
        return int(round(total / 6.0))

    def verify(self) -> bool:
        """Check the maintained product against a fresh recomputation."""
        return self.product.check_consistency()
