"""Deterministic global reductions for application-level queries.

Application queries (triangle counts, contracted edge weights, …) reduce
per-rank floating-point partials to one global number.  The obvious way —
summing each process's owned partials locally and folding the per-process
values through ``Communicator.host_fold`` — is *not* byte-stable across
world sizes: the fold groups the same per-rank partials differently under
``mpiexec -n 1`` and ``-n 4``, and float addition is not associative, so
the "same" query can return different bits on different launch geometries.
The world-size differential legs of ``tests/test_scenarios_differential.py``
require app query results to be byte-identical, so every app-level float
reduction goes through :func:`rank_ordered_sum` instead: the per-rank
partials are merged through the control plane and summed in canonical
(ascending) rank order, which is independent of how ranks map onto
processes.  ``tests/test_apps_property.py`` pins this with a regression
test whose partials expose the grouping difference.
"""

from __future__ import annotations

from typing import Mapping

from repro.runtime.backend import Communicator

__all__ = ["rank_ordered_sum"]


def rank_ordered_sum(comm: Communicator, per_rank: Mapping[int, float]) -> float:
    """Sum per-rank float partials in canonical rank order (all processes).

    ``per_rank`` holds one partial per *owned* logical rank; the mapping is
    merged across processes through the uncharged ``host_merge`` control
    plane and accumulated in ascending rank order, so the result is
    byte-identical on every process and for every world size.
    """
    merged = comm.host_merge({int(rank): float(v) for rank, v in per_rank.items()})
    total = 0.0
    for rank in sorted(merged):
        total += merged[rank]
    return total
