"""Graph contraction (coarsening) expressed with SpGEMM.

Contracting a graph along a clustering ``π : V → {0, …, k-1}`` is the
triple product ``A_c = Sᵀ · A · S`` where ``S`` is the ``n × k``
cluster-membership matrix (``s_{v, π(v)} = 1``).  Contraction is one of the
two "popular applications" of SpGEMM the paper's introduction cites; it is
included here both as an example workload for the distributed SpGEMM and as
a building block for multilevel algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.perf import perf_count, perf_phase
from repro.runtime import Communicator, ProcessGrid
from repro.semirings import PLUS_TIMES
from repro.sparse import COOMatrix
from repro.distributed import DynamicDistMatrix, StaticDistMatrix, UpdateBatch
from repro.core import summa_spgemm, transpose_dist

__all__ = ["contraction_matrix", "contract_graph"]


def contraction_matrix(
    comm: Communicator,
    grid: ProcessGrid,
    clusters: np.ndarray,
    *,
    n_clusters: int | None = None,
    seed: int = 0,
) -> DynamicDistMatrix:
    """Build the distributed ``n × k`` cluster-membership matrix ``S``."""
    clusters = np.asarray(clusters, dtype=np.int64)
    n = clusters.size
    k = int(n_clusters) if n_clusters is not None else int(clusters.max()) + 1 if n else 0
    if clusters.size and (clusters.min() < 0 or clusters.max() >= k):
        raise ValueError("cluster ids must lie in [0, n_clusters)")
    batch = UpdateBatch.from_global(
        (n, k),
        np.arange(n, dtype=np.int64),
        clusters,
        np.ones(n, dtype=np.float64),
        grid.n_ranks,
        seed=seed,
    )
    return DynamicDistMatrix.from_tuples(
        comm, grid, (n, k), batch.tuples_per_rank, PLUS_TIMES, combine="last"
    )


def contract_graph(
    comm: Communicator,
    grid: ProcessGrid,
    adjacency: DynamicDistMatrix | StaticDistMatrix,
    clusters: np.ndarray,
    *,
    n_clusters: int | None = None,
    drop_self_loops: bool = False,
) -> COOMatrix:
    """Contract a distributed graph along a clustering.

    Computes ``A_c = Sᵀ · (A · S)`` with two distributed SUMMA products and
    returns the contracted adjacency matrix as a global COO (cluster-level
    edge weights are the sums of the underlying inter-cluster edge weights).
    """
    clusters = np.asarray(clusters, dtype=np.int64)
    n = adjacency.shape[0]
    if clusters.size != n:
        raise ValueError(
            f"clustering has {clusters.size} entries but the graph has {n} vertices"
        )
    with perf_phase("app_contract"):
        s = contraction_matrix(comm, grid, clusters, n_clusters=n_clusters)
        # A · S  (n × k)
        a_s, _ = summa_spgemm(comm, grid, adjacency, s, output="static")
        # Sᵀ (k × n) by distributed transposition, then Sᵀ · (A·S)
        s_t = transpose_dist(s)
        contracted, _ = summa_spgemm(comm, grid, s_t, a_s, output="static")
        result = contracted.to_coo_global()
        if drop_self_loops:
            keep = result.rows != result.cols
            result = COOMatrix(
                shape=result.shape,
                rows=result.rows[keep],
                cols=result.cols[keep],
                values=result.values[keep],
                semiring=result.semiring,
            )
        perf_count("app_contract_nnz", result.nnz)
        return result
