"""Micro-batched ingestion: requests in, coalesced scenario steps out.

The service accepts *requests* — single insert/update/delete calls of any
size — and applies them in *micro-batches*: consecutive same-kind requests
are concatenated into one :class:`~repro.scenarios.model.ScenarioStep`, so
one distributed update (one redistribution, one DHB ``insert_batch``)
amortises over many requests.  Flushing is governed by two policies:

flush-by-count
    A queue holding ``max_requests`` pending requests flushes immediately
    (the service flushes inline on the submit that fills it).
flush-by-deadline
    A non-empty queue whose oldest pending request is ``max_delay`` old
    flushes when the service clock advances past the deadline.

Time here is the service's **logical clock** (explicitly advanced, never
read from the wall): every process of an SPMD world sees identical
timestamps, so flush decisions — which determine the coalesced request
log and therefore the differential oracle — are deterministic and
identical on all processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IngestRequest", "FlushPolicy", "MicroBatchQueue", "coalesce"]

_KINDS = ("insert", "update", "delete")


@dataclass(frozen=True)
class IngestRequest:
    """One ingestion call: ``kind`` plus global-coordinate tuples.

    ``values`` may be omitted for deletions (the markers are ignored) and
    defaults to ones for insertions/updates without explicit values.
    """

    kind: str
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    label: str = ""

    @staticmethod
    def make(
        kind: str,
        rows,
        cols,
        values=None,
        *,
        label: str = "",
    ) -> "IngestRequest":
        """Validate and normalise one request (int64/float64 arrays)."""
        if kind not in _KINDS:
            raise ValueError(
                f"unknown request kind {kind!r} (use one of {_KINDS})"
            )
        rows = np.ascontiguousarray(np.asarray(rows, dtype=np.int64))
        cols = np.ascontiguousarray(np.asarray(cols, dtype=np.int64))
        if values is None:
            values = np.ones(rows.size, dtype=np.float64)
        values = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
        if not (rows.size == cols.size == values.size):
            raise ValueError("rows, cols and values must have identical lengths")
        return IngestRequest(kind, rows, cols, values, label)

    @property
    def n_tuples(self) -> int:
        """Number of tuples this request carries."""
        return int(self.rows.size)


@dataclass(frozen=True)
class FlushPolicy:
    """When a tenant's pending requests become a micro-batch.

    ``max_requests=1`` degenerates to one-request-per-batch (the baseline
    the service benchmark gates against); ``max_delay=None`` disables the
    deadline so only the count policy flushes.
    """

    max_requests: int = 8
    max_delay: float | None = None

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ValueError("max_requests must be at least 1")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")


@dataclass
class MicroBatchQueue:
    """Pending requests of one tenant, with deterministic flush decisions."""

    policy: FlushPolicy = field(default_factory=FlushPolicy)
    _pending: list[IngestRequest] = field(default_factory=list)
    _oldest: float | None = None

    def offer(self, request: IngestRequest, now: float = 0.0) -> bool:
        """Enqueue one request; True when the count policy demands a flush."""
        if not self._pending:
            self._oldest = float(now)
        self._pending.append(request)
        return len(self._pending) >= self.policy.max_requests

    def due(self, now: float) -> bool:
        """True when the deadline policy demands a flush at logical ``now``."""
        if not self._pending or self.policy.max_delay is None:
            return False
        assert self._oldest is not None
        return float(now) - self._oldest >= self.policy.max_delay

    def drain(self) -> list[IngestRequest]:
        """Remove and return every pending request (possibly empty)."""
        pending, self._pending = self._pending, []
        self._oldest = None
        return pending

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_tuples(self) -> int:
        """Total tuples currently queued."""
        return sum(r.n_tuples for r in self._pending)


def coalesce(requests: list[IngestRequest]) -> list[IngestRequest]:
    """Merge runs of consecutive same-kind requests into single requests.

    Order is preserved — an ``insert, insert, delete, insert`` stream
    coalesces to three batches, never two — so the coalesced log applies
    the exact same state transitions as the request stream, just in fewer
    distributed rounds.  Labels join with ``+`` (truncated) for
    traceability.
    """
    groups: list[IngestRequest] = []
    run: list[IngestRequest] = []
    for request in requests:
        if run and request.kind != run[0].kind:
            groups.append(_merge_run(run))
            run = []
        run.append(request)
    if run:
        groups.append(_merge_run(run))
    return groups


def _merge_run(run: list[IngestRequest]) -> IngestRequest:
    if len(run) == 1:
        return run[0]
    labels = [r.label for r in run if r.label]
    label = "+".join(labels[:4]) + ("+…" if len(labels) > 4 else "")
    return IngestRequest(
        kind=run[0].kind,
        rows=np.concatenate([r.rows for r in run]),
        cols=np.concatenate([r.cols for r in run]),
        values=np.concatenate([r.values for r in run]),
        label=label,
    )
