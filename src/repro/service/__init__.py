"""The always-on graph service.

The batch pipeline (``repro.scenarios.replay``) builds a world, runs one
trace and tears everything down.  This package keeps the world alive:
:class:`GraphService` owns a persistent
:class:`~repro.runtime.world.ServiceWorld` and serves many independent
*tenants* over it — each with its own minted communicator (isolated
statistics and rank namespace), its own live
:class:`~repro.scenarios.engine.ScenarioEngine`, a
:class:`MicroBatchQueue` coalescing ingestion requests into micro-batches
(flush-by-count / flush-by-deadline on a logical clock), and a growing
request log that *is* a :class:`~repro.scenarios.model.Scenario`.

That last point is the design's correctness story: at any flush boundary,
``replay(tenant.log, options=tenant.replay_options())`` on a cold world
reproduces the tenant's state byte-identically — final tuples, application
query payloads, per-category comm volume.  The differential suite that
guards the batch pipeline therefore also guards the service.

Module map
----------
==============  ==========================================================
``queue``       :class:`IngestRequest`, :class:`FlushPolicy`,
                :class:`MicroBatchQueue` and :func:`coalesce` — the
                micro-batching layer (pure data, no communication).
``service``     :class:`GraphService`, :class:`GraphTenant`,
                :class:`ServiceConfig` — worlds, tenancy, ingestion,
                consistent-snapshot queries, checkpoints, the oracle.
==============  ==========================================================
"""

from repro.service.queue import FlushPolicy, IngestRequest, MicroBatchQueue, coalesce
from repro.service.service import GraphService, GraphTenant, ServiceConfig

__all__ = [
    "FlushPolicy",
    "IngestRequest",
    "MicroBatchQueue",
    "coalesce",
    "GraphService",
    "GraphTenant",
    "ServiceConfig",
]
