"""The always-on graph service: long-lived worlds, tenants, micro-batches.

:class:`GraphService` turns the batch pipeline into a serving system.  One
:class:`~repro.runtime.world.ServiceWorld` persists across everything; each
*tenant* is an independent dynamic graph multiplexed over that world with

* its own minted communicator (isolated per-tenant comm/stat accounting
  and an independent logical-rank namespace — tenants size their grids
  freely),
* its own live :class:`~repro.scenarios.engine.ScenarioEngine` holding the
  incrementally-maintained state (matrix, SpGEMM product, application),
* its own :class:`~repro.service.queue.MicroBatchQueue` coalescing
  insert/update/delete requests into micro-batches,
* its own **request log** — a real
  :class:`~repro.scenarios.model.Scenario` that grows one coalesced step
  per flush.

The log is the correctness oracle: at any flush boundary,
``replay(tenant.log, options=tenant.replay_options())`` on a cold world
must reproduce the tenant's state **byte-identically** — final tuples,
application query payloads and per-category comm volume.  The engine is
the same code on both paths, partition seeds are pre-assigned from the
same ``SeedSequence`` stream ``Scenario`` itself derives missing seeds
from, and mid-trace result sampling uses only the uncharged control
plane, so the equality is structural, not statistical.

Queries (:meth:`GraphTenant.triangle_count`,
:meth:`~GraphTenant.shortest_paths`, :meth:`~GraphTenant.contract`) are
answered against **consistent snapshots**: the tenant's pending requests
are flushed first, so every answer reflects exactly the micro-batches
applied so far and lands in the log as a replayable query step.

SPMD discipline: like every orchestration program in this repository, a
service over a multi-process world is driven identically on every
process; tenant operations execute sequentially in submission order, so
minted communicators never interleave collectives on the shared
transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.runtime.backend import Communicator
from repro.runtime.world import ServiceWorld
from repro.scenarios.engine import ScenarioEngine
from repro.scenarios.model import (
    AppSpec,
    CheckpointStep,
    ContractStep,
    DeleteBatch,
    InsertBatch,
    RestoreStep,
    Scenario,
    ScenarioResult,
    ShortestPathCheck,
    SnapshotCheck,
    SpGEMMStep,
    TriangleCountCheck,
    TupleArrays,
    ValueUpdateBatch,
    _PARTITION_SALT,
    seed_int,
)
from repro.scenarios.options import ReplayOptions
from repro.service.queue import FlushPolicy, IngestRequest, MicroBatchQueue, coalesce

__all__ = ["ServiceConfig", "GraphService", "GraphTenant"]

_STEP_CLASSES = {
    "insert": InsertBatch,
    "update": ValueUpdateBatch,
    "delete": DeleteBatch,
}


@dataclass
class ServiceConfig:
    """Service-wide defaults; tenants may override at creation time.

    ``replay`` is the shared configuration surface: the tenant's engine
    runs under it *and* :meth:`GraphTenant.replay_options` hands the very
    same bundle to the cold-replay oracle, so there is one source of truth
    for layout, placement, executor and snapshot checking.  The queue
    knobs map onto :class:`~repro.service.queue.FlushPolicy`.
    """

    replay: ReplayOptions = field(default_factory=lambda: ReplayOptions(n_ranks=4))
    flush_max_requests: int = 8
    flush_max_delay: float | None = None

    def flush_policy(self) -> FlushPolicy:
        """The queue policy this configuration describes."""
        return FlushPolicy(
            max_requests=self.flush_max_requests, max_delay=self.flush_max_delay
        )


class GraphTenant:
    """One independent dynamic graph served by a :class:`GraphService`.

    Created through :meth:`GraphService.create_tenant`; all ingestion and
    query methods live here.  The tenant owns a live engine (world state)
    and a growing request log; ``tenant.log`` plus
    ``tenant.replay_options()`` is everything a cold replay needs.
    """

    def __init__(
        self,
        service: "GraphService",
        name: str,
        log: Scenario,
        comm: Communicator,
        config: ServiceConfig,
    ) -> None:
        self._service = service
        self.name = name
        self.log = log
        self.comm = comm
        self.config = config
        self.closed = False
        # Partition seeds are allocated from the exact SeedSequence stream
        # Scenario.__post_init__ uses for missing seeds, consumed
        # incrementally (SeedSequence tracks spawned children), so a log
        # rebuilt from scratch with the same tenant seed derives the same
        # per-step seeds — the bit-identical replay contract.
        self._seed_source = np.random.SeedSequence([int(log.seed), _PARTITION_SALT])
        self._queue = MicroBatchQueue(policy=config.flush_policy())
        opts = config.replay
        self._engine = ScenarioEngine(
            log,
            comm,
            backend_name=service.world.backend_name,
            layout=opts.layout,
            partitioner=opts.partitioner,
            executor_factory=opts.executor_factory,
            check_snapshots=opts.check_snapshots,
            store=opts.checkpoint_store,
        )
        self._engine.begin()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def submit(self, kind: str, rows, cols, values=None, *, label: str = "") -> bool:
        """Queue one request; returns True when it triggered a flush.

        Flushes inline when the request fills the micro-batch
        (flush-by-count) or when the oldest pending request has aged past
        the deadline on the service's logical clock (flush-by-deadline).
        """
        self._check_open()
        request = IngestRequest.make(kind, rows, cols, values, label=label)
        if (
            self.log.app is not None
            and self.log.app.name == "triangle"
            and kind != "insert"
        ):
            raise ValueError(
                "the triangle application maintains A² additively; "
                f"{kind!r} requests are not expressible (insert only)"
            )
        self.log._check_bounds(
            request.rows, request.cols, what=f"request {label or kind!r}"
        )
        now = self._service.now
        if self._queue.offer(request, now) or self._queue.due(now):
            self.flush()
            return True
        return False

    def insert(self, rows, cols, values=None, *, label: str = "") -> bool:
        """Queue structural insertions (⊕-combined, ADD semantics)."""
        return self.submit("insert", rows, cols, values, label=label)

    def update(self, rows, cols, values, *, label: str = "") -> bool:
        """Queue value overwrites (MERGE semantics)."""
        return self.submit("update", rows, cols, values, label=label)

    def delete(self, rows, cols, *, label: str = "") -> bool:
        """Queue deletions (MASK semantics; values are ignored markers)."""
        return self.submit("delete", rows, cols, None, label=label)

    @property
    def pending(self) -> int:
        """Requests queued but not yet applied to the world."""
        return len(self._queue)

    def flush(self) -> int:
        """Coalesce and apply every pending request; returns steps applied.

        Consecutive same-kind requests become one scenario step each (one
        distributed update round), appended to the request log with a
        pre-assigned partition seed and applied through the engine.
        """
        self._check_open()
        requests = self._queue.drain()
        if not requests:
            return 0
        applied = 0
        for group in coalesce(requests):
            step_cls = _STEP_CLASSES[group.kind]
            step = step_cls(
                rows=group.rows,
                cols=group.cols,
                values=group.values,
                partition_seed=self._next_partition_seed(),
                label=group.label or f"{group.kind}[{len(self.log.steps)}]",
            )
            self._append_and_advance(step)
            applied += 1
        return applied

    def spgemm(
        self,
        rows,
        cols,
        values=None,
        *,
        mode: str = "algebraic",
        kind: str = "insert",
        label: str = "",
    ) -> None:
        """Apply one dynamic-SpGEMM round (flushes pending requests first).

        Requires the tenant to have been created with ``b_tuples`` (the
        static right-hand operand); ``mode``/``kind`` follow
        :class:`~repro.scenarios.model.SpGEMMStep`.
        """
        self._check_open()
        self.flush()
        request = IngestRequest.make("insert", rows, cols, values, label=label)
        step = SpGEMMStep(
            rows=request.rows,
            cols=request.cols,
            values=request.values,
            partition_seed=self._next_partition_seed(),
            label=label or f"spgemm[{len(self.log.steps)}]",
            mode=mode,
            kind=kind,
        )
        self._append_and_advance(step)

    # ------------------------------------------------------------------
    # consistent-snapshot queries
    # ------------------------------------------------------------------
    def triangle_count(self, *, label: str = "") -> int:
        """Triangle count from the maintained ``A²`` (triangle tenants)."""
        step = TriangleCountCheck(label=label or f"triangles[{len(self.log.steps)}]")
        return self._run_query(step)

    def shortest_paths(
        self, *, max_hops: int | None = None, label: str = ""
    ) -> TupleArrays:
        """Multi-source distance tuples from the maintained product (sssp)."""
        step = ShortestPathCheck(
            label=label or f"distances[{len(self.log.steps)}]", max_hops=max_hops
        )
        return self._run_query(step)

    def contract(
        self,
        clusters,
        *,
        n_clusters: int | None = None,
        drop_self_loops: bool = False,
        label: str = "",
    ) -> TupleArrays:
        """Contract the current graph along ``clusters`` (``Sᵀ·A·S``)."""
        step = ContractStep(
            clusters=np.asarray(clusters, dtype=np.int64),
            n_clusters=n_clusters,
            drop_self_loops=drop_self_loops,
            label=label or f"contract[{len(self.log.steps)}]",
        )
        return self._run_query(step)

    def check_nnz(self, expect_nnz: int, *, label: str = "") -> None:
        """Assert the maintained matrix's nnz between batches."""
        self._check_open()
        self.flush()
        step = SnapshotCheck(
            expect_nnz=expect_nnz, label=label or f"nnz[{len(self.log.steps)}]"
        )
        self._append_and_advance(step)

    def nnz(self) -> int:
        """Structural non-zeros of the maintained matrix (uncharged)."""
        self._check_open()
        matrix = getattr(self._engine.executor, "a", None)
        if matrix is None:
            raise RuntimeError("tenant executor exposes no maintained matrix")
        return int(matrix.nnz())

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, tag: str = "default", *, label: str = "") -> None:
        """Snapshot the tenant's full state into its checkpoint store.

        Requires ``config.replay.checkpoint_store``; the checkpoint
        becomes part of the request log, so the cold replay snapshots at
        the same point.
        """
        self._check_open()
        if self._engine.store is None:
            raise RuntimeError(
                "tenant has no checkpoint store "
                "(set ServiceConfig.replay.checkpoint_store)"
            )
        self.flush()
        step = CheckpointStep(tag=tag, label=label or f"checkpoint:{tag}")
        self._append_and_advance(step)

    def restore(self, tag: str = "default", *, label: str = "") -> None:
        """Replace the tenant's state with the checkpoint under ``tag``."""
        self._check_open()
        if self._engine.store is None:
            raise RuntimeError(
                "tenant has no checkpoint store "
                "(set ServiceConfig.replay.checkpoint_store)"
            )
        self.flush()
        step = RestoreStep(tag=tag, label=label or f"restore:{tag}")
        self._append_and_advance(step)

    # ------------------------------------------------------------------
    # results and the oracle
    # ------------------------------------------------------------------
    def result(self, collect_final: bool = True) -> ScenarioResult:
        """Flush, then assemble the tenant's result so far.

        Byte-comparable to ``replay(tenant.log, ...)`` of the log at this
        flush boundary: tuples, app payloads and per-category comm volume.
        """
        self._check_open()
        self.flush()
        return self._engine.result(collect_final=collect_final)

    def replay_options(self) -> ReplayOptions:
        """The cold-replay oracle's configuration for this tenant."""
        return replace(
            self.config.replay,
            backend=self._service.world.backend_name,
            n_ranks=self.comm.p,
        )

    @property
    def n_steps(self) -> int:
        """Steps in the request log so far."""
        return len(self.log.steps)

    def close(self) -> None:
        """Retire the tenant: flush, then refuse further requests.

        The request log survives (it is plain data); the engine state is
        dropped with the tenant.
        """
        if self.closed:
            return
        self.flush()
        self.closed = True

    # ------------------------------------------------------------------
    def _run_query(self, step) -> Any:
        """Flush, append one query step, advance, return its payload."""
        self._check_open()
        self.flush()
        self._append_and_advance(step)
        return self._engine.app_results[-1].payload

    def _append_and_advance(self, step) -> None:
        self.log.steps.append(step)
        self._engine.advance()

    def _next_partition_seed(self) -> int:
        return seed_int(self._seed_source.spawn(1)[0])

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"tenant {self.name!r} is closed")
        if self._service.closed:
            raise RuntimeError("service is shut down")


class GraphService:
    """Many independent dynamic graphs served from one persistent world.

    Parameters
    ----------
    world:
        A :class:`~repro.runtime.world.ServiceWorld` to serve on; created
        (and owned, i.e. shut down with the service) when ``None``.
    backend, machine:
        World construction arguments when no world is passed.
    config:
        Service-wide :class:`ServiceConfig` defaults.
    """

    def __init__(
        self,
        world: ServiceWorld | None = None,
        *,
        backend: str | None = None,
        machine=None,
        config: ServiceConfig | None = None,
    ) -> None:
        self._owns_world = world is None
        self.world = (
            world if world is not None else ServiceWorld(backend, machine=machine)
        )
        self.config = config if config is not None else ServiceConfig()
        self._tenants: dict[str, GraphTenant] = {}
        self._clock = 0.0
        self.closed = False

    # ------------------------------------------------------------------
    # tenancy
    # ------------------------------------------------------------------
    def create_tenant(
        self,
        name: str,
        shape: tuple[int, int],
        *,
        seed: int = 0,
        n_ranks: int | None = None,
        initial_tuples: TupleArrays | None = None,
        b_tuples: TupleArrays | None = None,
        app: AppSpec | None = None,
        semiring_name: str = "plus_times",
        config: ServiceConfig | None = None,
    ) -> GraphTenant:
        """Provision one tenant: mint a communicator, construct its world.

        The tenant's request log starts as an empty
        :class:`~repro.scenarios.model.Scenario` carrying the construction
        inputs (``initial_tuples``, ``b_tuples``, ``app``, seeds), so a
        cold replay constructs exactly the same starting state.
        """
        if self.closed:
            raise RuntimeError("service is shut down")
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already exists")
        cfg = config if config is not None else self.config
        ranks = n_ranks if n_ranks is not None else cfg.replay.n_ranks
        comm = self.world.communicator(ranks, machine=cfg.replay.machine)
        log = Scenario(
            name=name,
            shape=shape,
            steps=[],
            initial_tuples=initial_tuples,
            b_tuples=b_tuples,
            app=app,
            semiring_name=semiring_name,
            seed=seed,
            metadata={"service_tenant": name},
        )
        tenant = GraphTenant(self, name, log, comm, cfg)
        self._tenants[name] = tenant
        return tenant

    def tenant(self, name: str) -> GraphTenant:
        """Look one tenant up by name."""
        return self._tenants[name]

    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenant names in creation order."""
        return tuple(self._tenants)

    def drop_tenant(self, name: str) -> None:
        """Close a tenant and release its slot (the world lives on)."""
        tenant = self._tenants.pop(name)
        tenant.close()

    # ------------------------------------------------------------------
    # the logical clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The service's logical time (explicitly advanced, never wall)."""
        return self._clock

    def advance_time(self, dt: float) -> int:
        """Advance the logical clock; flush tenants whose deadline passed.

        Returns the number of tenants flushed.  Deterministic: tenants are
        visited in creation order and the clock is identical on every
        process of the world.
        """
        if dt < 0:
            raise ValueError("time cannot run backwards")
        self._clock += float(dt)
        flushed = 0
        for tenant in self._tenants.values():
            if not tenant.closed and tenant._queue.due(self._clock):
                tenant.flush()
                flushed += 1
        return flushed

    def flush_all(self) -> int:
        """Flush every open tenant's pending requests; returns steps applied."""
        return sum(
            tenant.flush() for tenant in self._tenants.values() if not tenant.closed
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Flush and close every tenant, then retire the owned world.

        A world that was passed in stays open (its creator may serve
        another service from it); a world the service created is shut
        down.  Idempotent.
        """
        if self.closed:
            return
        for tenant in self._tenants.values():
            tenant.close()
        self.closed = True
        if self._owns_world:
            self.world.shutdown()

    def __enter__(self) -> "GraphService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: shut the service down."""
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "closed" if self.closed else "open"
        return (
            f"GraphService(backend={self.world.backend_name!r}, "
            f"tenants={list(self._tenants)}, {state})"
        )
